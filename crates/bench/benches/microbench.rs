//! Criterion microbenchmarks for the individual substrates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dwqa_bench::{build_corpus, FixtureConfig};
use dwqa_common::Month;
use dwqa_corpus::{default_cities, generate_sales, SalesConfig};
use dwqa_ir::{InvertedIndex, PassageRetriever};
use dwqa_mdmodel::last_minute_sales;
use dwqa_nlp::{analyze_sentence, Lexicon};
use dwqa_ontology::{
    enrich_from_warehouse, merge_into_upper, schema_to_ontology, upper_ontology, MergeOptions,
};
use dwqa_warehouse::{AggFn, CubeQuery, Warehouse};

fn bench_nlp(c: &mut Criterion) {
    let lexicon = Lexicon::english();
    let sentence =
        "Monday, January 31, 2004 Barcelona Weather: Temperature 8º C around 46.4 F Clear skies today";
    c.bench_function("nlp/analyze_sentence", |b| {
        b.iter(|| analyze_sentence(&lexicon, std::hint::black_box(sentence)))
    });
}

fn bench_index(c: &mut Criterion) {
    let lexicon = Lexicon::english();
    let (store, _) = build_corpus(&FixtureConfig::default());
    let mut group = c.benchmark_group("ir");
    group.sample_size(20);
    group.bench_function("index_build_sequential", |b| {
        b.iter(|| InvertedIndex::build(&lexicon, &store))
    });
    group.bench_function("index_build_parallel_4", |b| {
        b.iter(|| InvertedIndex::build_parallel(&lexicon, &store, 4))
    });
    let index = InvertedIndex::build(&lexicon, &store);
    let terms: Vec<String> = ["temperature", "january", "barcelona"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    // The paper fixes the passage window at 8 sentences; sweep it to show
    // the retrieval-cost/context trade-off (design-choice ablation).
    for window in [2usize, 4, 8, 16] {
        let retriever = PassageRetriever::build(&lexicon, &store, window);
        group.bench_with_input(
            BenchmarkId::new("passage_retrieval_window", window),
            &window,
            |b, _| b.iter(|| retriever.retrieve(&index, std::hint::black_box(&terms), 5)),
        );
    }
    group.finish();
}

fn bench_warehouse(c: &mut Criterion) {
    let (_, truth) = build_corpus(&FixtureConfig {
        months: vec![(2004, Month::January), (2004, Month::June)],
        ..FixtureConfig::default()
    });
    let cities = default_cities();
    let rows = generate_sales(&SalesConfig::default(), &cities, &truth);
    let n_rows = rows.len();
    let mut group = c.benchmark_group("warehouse");
    group.sample_size(20);
    group.bench_function(format!("etl_load_{n_rows}_rows"), |b| {
        b.iter_batched(
            || (Warehouse::new(last_minute_sales()), rows.clone()),
            |(mut wh, rows)| wh.load("Last Minute Sales", rows).unwrap(),
            criterion::BatchSize::LargeInput,
        )
    });
    let mut wh = Warehouse::new(last_minute_sales());
    wh.load("Last Minute Sales", rows).unwrap();
    group.bench_function("cube_rollup_city_month", |b| {
        b.iter(|| {
            CubeQuery::on("Last Minute Sales")
                .group_by("Destination", "City")
                .group_by("Date", "Month")
                .aggregate("price", AggFn::Sum)
                .aggregate("price", AggFn::Count)
                .run(std::hint::black_box(&wh))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_ontology(c: &mut Criterion) {
    let mut wh = Warehouse::new(last_minute_sales());
    let (_, truth) = build_corpus(&FixtureConfig::default());
    let rows = generate_sales(&SalesConfig::default(), &default_cities(), &truth);
    wh.load("Last Minute Sales", rows).unwrap();
    let mut domain = schema_to_ontology(wh.schema());
    enrich_from_warehouse(&mut domain, &wh);
    let mut group = c.benchmark_group("ontology");
    group.sample_size(20);
    group.bench_function("upper_ontology_build", |b| b.iter(upper_ontology));
    group.bench_function("merge_into_upper", |b| {
        b.iter_batched(
            upper_ontology,
            |mut upper| merge_into_upper(&domain, &mut upper, &MergeOptions::default()),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_nlp,
    bench_index,
    bench_warehouse,
    bench_ontology
);
criterion_main!(benches);
