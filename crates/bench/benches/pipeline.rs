//! End-to-end benchmarks: pipeline construction (Steps 1–4 + indexation),
//! per-question latency for QA vs the IR and IE baselines — the paper's
//! "IR is extremely quick but its precision is quite low" / "time of
//! analysis spent by users is highly decreased" trade-off, measured —
//! and the batch engine: a 64-question batch answered sequentially vs on
//! a 4-thread worker pool vs from a warm answer cache.
//!
//! The worker-pool comparison needs ≥4 hardware threads to show its
//! near-linear speedup; on a single-core host the pooled run degenerates
//! to sequential (±scheduling noise) while the warm-cache run still
//! shows the ≥2.5× batch speedup on any machine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dwqa_bench::{build_corpus, build_fixture, daily_questions, monthly_question, FixtureConfig};
use dwqa_common::Month;
use dwqa_core::{integrated_schema, IntegrationPipeline, PipelineOptions};
use dwqa_engine::QaEngine;
use dwqa_ir::DocumentStore;
use dwqa_qa::{IeBaseline, IeTemplate, IrBaseline};
use dwqa_warehouse::Warehouse;

fn clone_store(store: &DocumentStore) -> DocumentStore {
    let mut out = DocumentStore::new();
    for (_, d) in store.iter() {
        out.add(d.clone());
    }
    out
}

fn bench_pipeline(c: &mut Criterion) {
    let (store, _) = build_corpus(&FixtureConfig::default());
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("build_steps_1_to_4_plus_indexation", |b| {
        b.iter_batched(
            || clone_store(&store),
            |store| {
                IntegrationPipeline::build(
                    Warehouse::new(integrated_schema()),
                    store,
                    PipelineOptions::default(),
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });

    // QA indexation: sequential vs parallel.
    let lexicon = dwqa_nlp::Lexicon::english();
    group.bench_function("qa_indexation_sequential", |b| {
        b.iter(|| dwqa_qa::QaIndex::build(&lexicon, &store, 8))
    });
    group.bench_function("qa_indexation_parallel_4", |b| {
        b.iter(|| dwqa_qa::QaIndex::build_with_threads(&lexicon, &store, 8, 4))
    });

    let pipeline = IntegrationPipeline::build(
        Warehouse::new(integrated_schema()),
        clone_store(&store),
        PipelineOptions::default(),
    );
    let read = pipeline.read_path();
    let question = monthly_question("El Prat", 2004, Month::January);
    group.bench_function("qa_question_latency", |b| {
        b.iter(|| read.answer(std::hint::black_box(&question)))
    });

    let ir = IrBaseline::build(&store);
    group.bench_function("ir_baseline_passage_latency", |b| {
        b.iter(|| ir.search_passages(std::hint::black_box(&question), 1))
    });

    let ie = IeBaseline::new(vec![IeTemplate::Temperature]);
    group.bench_function("ie_baseline_full_corpus_scan", |b| {
        b.iter(|| ie.scan(std::hint::black_box(&store)))
    });
    group.finish();
}

/// The acceptance benchmark for the batch engine: 64 per-day questions,
/// answered (a) sequentially on one worker, (b) on a 4-thread worker
/// pool (both with the cache disabled so every answer is computed), and
/// (c) on the pool with a warm answer cache.
fn bench_batch_engine(c: &mut Criterion) {
    let fx = build_fixture(FixtureConfig {
        styles: vec![dwqa_corpus::PageStyle::Prose],
        ..FixtureConfig::default()
    });
    let mut questions: Vec<String> = Vec::new();
    for city in ["Barcelona", "Madrid", "New York"] {
        questions.extend(daily_questions(city, 2004, Month::January));
    }
    questions.truncate(64);
    assert_eq!(questions.len(), 64);

    let mut group = c.benchmark_group("batch_64_questions");
    group.sample_size(10);

    let sequential = QaEngine::new(&fx.pipeline)
        .with_workers(1)
        .with_cache_capacity(0);
    group.bench_function("sequential_1_worker", |b| {
        b.iter(|| sequential.answer_batch(black_box(&questions)))
    });

    let pooled = QaEngine::new(&fx.pipeline)
        .with_workers(4)
        .with_cache_capacity(0);
    group.bench_function("pool_4_workers", |b| {
        b.iter(|| pooled.answer_batch(black_box(&questions)))
    });

    let cached = QaEngine::new(&fx.pipeline).with_workers(4);
    cached.warm(&questions);
    group.bench_function("pool_4_workers_warm_cache", |b| {
        b.iter(|| cached.answer_batch(black_box(&questions)))
    });

    // The observability tax (E13): the same pooled uncached batch with
    // a full span tree collected per question. Compare against
    // pool_4_workers — the gap is the enabled-tracing overhead and must
    // stay within a few percent.
    let traced = QaEngine::new(&fx.pipeline)
        .with_workers(4)
        .with_cache_capacity(0)
        .with_tracing(true)
        .with_trace_capacity(questions.len());
    group.bench_function("pool_4_workers_traced", |b| {
        b.iter(|| traced.answer_batch(black_box(&questions)))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_batch_engine);
criterion_main!(benches);
