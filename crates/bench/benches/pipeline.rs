//! End-to-end benchmarks: pipeline construction (Steps 1–4 + indexation)
//! and per-question latency for QA vs the IR and IE baselines — the
//! paper's "IR is extremely quick but its precision is quite low" /
//! "time of analysis spent by users is highly decreased" trade-off,
//! measured.

use criterion::{criterion_group, criterion_main, Criterion};
use dwqa_bench::{build_corpus, monthly_question, FixtureConfig};
use dwqa_common::Month;
use dwqa_core::{integrated_schema, IntegrationPipeline, PipelineOptions};
use dwqa_ir::DocumentStore;
use dwqa_qa::{IeBaseline, IeTemplate, IrBaseline};
use dwqa_warehouse::Warehouse;

fn clone_store(store: &DocumentStore) -> DocumentStore {
    let mut out = DocumentStore::new();
    for (_, d) in store.iter() {
        out.add(d.clone());
    }
    out
}

fn bench_pipeline(c: &mut Criterion) {
    let (store, _) = build_corpus(&FixtureConfig::default());
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("build_steps_1_to_4_plus_indexation", |b| {
        b.iter_batched(
            || clone_store(&store),
            |store| {
                IntegrationPipeline::build(
                    Warehouse::new(integrated_schema()),
                    store,
                    PipelineOptions::default(),
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });

    // QA indexation: sequential vs parallel.
    let lexicon = dwqa_nlp::Lexicon::english();
    group.bench_function("qa_indexation_sequential", |b| {
        b.iter(|| dwqa_qa::QaIndex::build(&lexicon, &store, 8))
    });
    group.bench_function("qa_indexation_parallel_4", |b| {
        b.iter(|| dwqa_qa::QaIndex::build_with_threads(&lexicon, &store, 8, 4))
    });

    let pipeline = IntegrationPipeline::build(
        Warehouse::new(integrated_schema()),
        clone_store(&store),
        PipelineOptions::default(),
    );
    let question = monthly_question("El Prat", 2004, Month::January);
    group.bench_function("qa_question_latency", |b| {
        b.iter(|| pipeline.ask(std::hint::black_box(&question)))
    });

    let ir = IrBaseline::build(&store);
    group.bench_function("ir_baseline_passage_latency", |b| {
        b.iter(|| ir.search_passages(std::hint::black_box(&question), 1))
    });

    let ie = IeBaseline::new(vec![IeTemplate::Temperature]);
    group.bench_function("ie_baseline_full_corpus_scan", |b| {
        b.iter(|| ie.scan(std::hint::black_box(&store)))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
