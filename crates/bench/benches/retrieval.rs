//! Criterion benchmarks for index-driven passage retrieval.
//!
//! Compares the pruned postings-driven path against the exhaustive
//! reference scan (the pre-postings implementation, kept on
//! `PassageRetriever` precisely for this comparison), separates query
//! compilation cost (cold) from the compiled hot path (warm), sweeps the
//! paper's window parameter, and scales the corpus with distractor
//! documents — the pruned path should be flat in corpus size while the
//! exhaustive scan grows linearly. `exp_retrieval_bench` records the same
//! comparison as `BENCH_retrieval.json` for the tracked perf trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dwqa_bench::{build_corpus, FixtureConfig};
use dwqa_ir::{InvertedIndex, PassageRetriever};
use dwqa_nlp::Lexicon;

/// The weighted terms of a typical dated question ("What is the
/// temperature on January 15, 2004 in Barcelona?") after Module 1: the
/// day number carries the paper-style temporal boost.
fn query_terms() -> Vec<(String, f64)> {
    vec![
        ("temperature".to_owned(), 1.0),
        ("january".to_owned(), 1.0),
        ("15".to_owned(), 3.0),
        ("barcelona".to_owned(), 1.0),
    ]
}

fn corpus_with_distractors(distractors: usize) -> (Lexicon, InvertedIndex, PassageRetriever) {
    let lexicon = Lexicon::english();
    let (store, _) = build_corpus(&FixtureConfig {
        distractors,
        ..FixtureConfig::default()
    });
    let index = InvertedIndex::build(&lexicon, &store);
    let retriever = PassageRetriever::build(&lexicon, &store, PassageRetriever::DEFAULT_WINDOW);
    (lexicon, index, retriever)
}

fn bench_pruned_vs_exhaustive(c: &mut Criterion) {
    let (_lx, index, retriever) = corpus_with_distractors(100);
    let terms = query_terms();
    let mut group = c.benchmark_group("retrieval");
    group.sample_size(20);
    group.bench_function("exhaustive_reference", |b| {
        b.iter(|| retriever.retrieve_weighted_exhaustive(&index, std::hint::black_box(&terms), 5))
    });
    // Cold: compile the query (vocabulary lookups + idf) every call.
    group.bench_function("pruned_cold", |b| {
        b.iter(|| retriever.retrieve_weighted(&index, std::hint::black_box(&terms), 5))
    });
    // Warm: the compiled-query hot path on its own.
    let query = retriever.compile_query(&index, terms.iter().map(|(t, w)| (t.as_str(), *w)));
    group.bench_function("pruned_warm", |b| {
        b.iter(|| retriever.retrieve_query(std::hint::black_box(&query), 5))
    });
    group.finish();
}

fn bench_window_sweep(c: &mut Criterion) {
    let lexicon = Lexicon::english();
    let (store, _) = build_corpus(&FixtureConfig {
        distractors: 100,
        ..FixtureConfig::default()
    });
    let index = InvertedIndex::build(&lexicon, &store);
    let terms = query_terms();
    let mut group = c.benchmark_group("retrieval_window");
    group.sample_size(20);
    for window in [4usize, 8, 16] {
        let retriever = PassageRetriever::build(&lexicon, &store, window);
        group.bench_with_input(BenchmarkId::new("pruned", window), &window, |b, _| {
            b.iter(|| retriever.retrieve_weighted(&index, std::hint::black_box(&terms), 5))
        });
        group.bench_with_input(BenchmarkId::new("exhaustive", window), &window, |b, _| {
            b.iter(|| {
                retriever.retrieve_weighted_exhaustive(&index, std::hint::black_box(&terms), 5)
            })
        });
    }
    group.finish();
}

fn bench_corpus_sweep(c: &mut Criterion) {
    let terms = query_terms();
    let mut group = c.benchmark_group("retrieval_corpus");
    group.sample_size(20);
    for distractors in [0usize, 50, 200] {
        let (_lx, index, retriever) = corpus_with_distractors(distractors);
        group.bench_with_input(
            BenchmarkId::new("pruned", distractors),
            &distractors,
            |b, _| b.iter(|| retriever.retrieve_weighted(&index, std::hint::black_box(&terms), 5)),
        );
        group.bench_with_input(
            BenchmarkId::new("exhaustive", distractors),
            &distractors,
            |b, _| {
                b.iter(|| {
                    retriever.retrieve_weighted_exhaustive(&index, std::hint::black_box(&terms), 5)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pruned_vs_exhaustive,
    bench_window_sweep,
    bench_corpus_sweep
);
criterion_main!(benches);
