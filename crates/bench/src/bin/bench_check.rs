//! Validates `BENCH_*.json` artifacts against the schema each
//! experiment binary promises, so CI fails on schema drift (a renamed
//! field, a dropped self-gate) instead of silently archiving junk.
//!
//! Usage: `bench_check [FILES...]` — with no arguments, checks every
//! `BENCH_*.json` in the current directory. Exits non-zero when any
//! file is missing a required field, carries a wrong type, reports an
//! unknown experiment, or when no file is found at all.

use serde::Content;

/// The JSON shape a required field must have.
#[derive(Clone, Copy)]
enum Kind {
    Str,
    Bool,
    Number,
    NonEmptySeq,
    Map,
}

fn has_kind(v: &Content, kind: Kind) -> bool {
    match kind {
        Kind::Str => matches!(v, Content::Str(_)),
        Kind::Bool => matches!(v, Content::Bool(_)),
        Kind::Number => matches!(v, Content::I64(_) | Content::U64(_) | Content::F64(_)),
        Kind::NonEmptySeq => matches!(v, Content::Seq(items) if !items.is_empty()),
        Kind::Map => matches!(v, Content::Map(_)),
    }
}

fn kind_name(kind: Kind) -> &'static str {
    match kind {
        Kind::Str => "string",
        Kind::Bool => "bool",
        Kind::Number => "number",
        Kind::NonEmptySeq => "non-empty array",
        Kind::Map => "object",
    }
}

fn as_f64(v: &Content) -> Option<f64> {
    match v {
        Content::I64(n) => Some(*n as f64),
        Content::U64(n) => Some(*n as f64),
        Content::F64(n) => Some(*n),
        _ => None,
    }
}

fn require(root: &Content, name: &str, kind: Kind, out: &mut Vec<String>) {
    if !root.get(name).is_some_and(|v| has_kind(v, kind)) {
        out.push(format!(
            "missing or mistyped `{name}` ({})",
            kind_name(kind)
        ));
    }
}

/// Every element of array `name` must carry numeric field `inner`.
fn require_each(root: &Content, name: &str, inner: &str, out: &mut Vec<String>) {
    if let Some(Content::Seq(items)) = root.get(name) {
        for (i, item) in items.iter().enumerate() {
            if !item.get(inner).is_some_and(|v| has_kind(v, Kind::Number)) {
                out.push(format!("`{name}[{i}]` lacks numeric `{inner}`"));
            }
        }
    }
}

/// The per-experiment schema: common envelope plus the fields the
/// matching binary's `BenchReport` writes — including the self-gate
/// fields CI relies on.
fn check_report(root: &Content) -> Vec<String> {
    let mut out = Vec::new();
    require(root, "experiment", Kind::Str, &mut out);
    require(root, "quick", Kind::Bool, &mut out);
    let experiment = match root.get("experiment") {
        Some(Content::Str(s)) => s.as_str(),
        _ => "",
    };
    match experiment {
        "retrieval_bench" => {
            require(root, "query", Kind::NonEmptySeq, &mut out);
            require(root, "passages_k", Kind::Number, &mut out);
            require(root, "measurements", Kind::NonEmptySeq, &mut out);
            require_each(root, "measurements", "speedup_warm", &mut out);
        }
        "trace_overhead" => {
            for f in [
                "untraced_mean_us",
                "traced_mean_us",
                "overhead_pct",
                "budget_pct",
            ] {
                require(root, f, Kind::Number, &mut out);
            }
        }
        "warehouse_bench" => {
            require(root, "rollups", Kind::NonEmptySeq, &mut out);
            require(root, "cache", Kind::NonEmptySeq, &mut out);
            require_each(root, "rollups", "speedup_warm", &mut out);
            require_each(root, "cache", "ops_per_sec", &mut out);
        }
        "incremental" => {
            for f in ["base_rows", "delta_rows", "cycles", "queries"] {
                require(root, f, Kind::Number, &mut out);
            }
            for lane in ["incremental", "purge"] {
                require(root, lane, Kind::Map, &mut out);
                if let Some(obj) = root.get(lane) {
                    if !obj
                        .get("cycle_us")
                        .is_some_and(|v| has_kind(v, Kind::Number))
                    {
                        out.push(format!("`{lane}` lane lacks numeric `cycle_us`"));
                    }
                }
            }
            require(root, "speedup", Kind::Number, &mut out);
            require(root, "speedup_floor", Kind::Number, &mut out);
            if let (Some(speedup), Some(floor)) = (
                root.get("speedup").and_then(as_f64),
                root.get("speedup_floor").and_then(as_f64),
            ) {
                if speedup < floor {
                    out.push(format!(
                        "self-gate violated: speedup {speedup:.2} < floor {floor:.2}"
                    ));
                }
            }
        }
        "service_saturation" => {
            require(root, "sweep", Kind::NonEmptySeq, &mut out);
            require(root, "drain", Kind::Map, &mut out);
            require(root, "shed_under_overload", Kind::Bool, &mut out);
            require(root, "p50_within_2x", Kind::Bool, &mut out);
        }
        "crash_recovery" => {
            require(root, "seed", Kind::Number, &mut out);
            require(root, "fsync", Kind::NonEmptySeq, &mut out);
            require(root, "scenarios", Kind::NonEmptySeq, &mut out);
            require(root, "chaos", Kind::Map, &mut out);
        }
        "failover" => {
            require(root, "seed", Kind::Number, &mut out);
            require(root, "link_chaos_rate", Kind::Number, &mut out);
            require(root, "scenarios", Kind::NonEmptySeq, &mut out);
            require_each(root, "scenarios", "promotion_ms", &mut out);
            require(root, "async_mode", Kind::Map, &mut out);
            require(root, "zero_loss_all", Kind::Bool, &mut out);
            require(root, "max_promotion_ms", Kind::Number, &mut out);
            require(root, "promotion_budget_ms", Kind::Number, &mut out);
            if matches!(root.get("zero_loss_all"), Some(Content::Bool(false))) {
                out.push("self-gate violated: zero_loss_all is false".to_owned());
            }
            if let (Some(max), Some(budget)) = (
                root.get("max_promotion_ms").and_then(as_f64),
                root.get("promotion_budget_ms").and_then(as_f64),
            ) {
                if max > budget {
                    out.push(format!(
                        "self-gate violated: max_promotion_ms {max:.1} > budget {budget:.1}"
                    ));
                }
            }
        }
        other => out.push(format!("unknown experiment `{other}`")),
    }
    out
}

fn main() {
    let mut files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        if let Ok(entries) = std::fs::read_dir(".") {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.starts_with("BENCH_") && name.ends_with(".json") {
                    files.push(name);
                }
            }
        }
        files.sort();
    }
    if files.is_empty() {
        eprintln!("bench_check: no BENCH_*.json artifacts found");
        std::process::exit(1);
    }

    let mut failures = 0usize;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("{path}: unreadable: {err}");
                failures += 1;
                continue;
            }
        };
        let root: Content = match serde_json::from_str(&text) {
            Ok(root) => root,
            Err(err) => {
                eprintln!("{path}: invalid JSON: {err}");
                failures += 1;
                continue;
            }
        };
        let violations = check_report(&root);
        if violations.is_empty() {
            let experiment = match root.get("experiment") {
                Some(Content::Str(s)) => s.as_str(),
                _ => "?",
            };
            println!("{path}: ok ({experiment})");
        } else {
            for v in &violations {
                eprintln!("{path}: {v}");
            }
            failures += violations.len();
        }
    }
    if failures > 0 {
        eprintln!(
            "bench_check: {failures} violation(s) across {} file(s)",
            files.len()
        );
        std::process::exit(1);
    }
}
