//! Interactive demo: the integrated system as a console REPL.
//!
//! Builds the standard fixture (seeded corpus + correlated sales +
//! five-step pipeline) and answers questions from stdin through a
//! [`dwqa_engine::QaSession`] (cached, instrumented). Commands:
//!
//! * plain text — ask the QA system, feed valid tuples into the DW;
//! * `:trace <question>` — print the Table-1 pipeline trace;
//! * `:trace` — print the span tree of the most recent question from
//!   the flight recorder (every question is traced: timings, retrieval
//!   pruning, fault-layer retries, cache disposition);
//! * `:bands` — the sales-vs-temperature analysis on current DW contents;
//! * `:missing` — DW-proposed questions for January 2004;
//! * `:stats` — per-stage latency histograms, cache counters, outcome
//!   taxonomy and resilience counters (retries, breaker trips, timeouts,
//!   rollbacks);
//! * `:chaos <rate>` — route document acquisition through a seeded fault
//!   injector at the given transient-error rate (0 disables);
//! * `:persist <path>` — attach a durable feedback store at `path`:
//!   recovers any existing checkpoint + WAL first, then WAL-logs every
//!   committed feed before acknowledging it;
//! * `:recover <path>` — alias of `:persist` that reads more naturally
//!   after a crash: replay the store at `path` into this session;
//! * `:serve <port>` — hand the pipeline to a `dwqa-server` and serve
//!   the JSON-lines protocol on `127.0.0.1:<port>` until a client
//!   sends `drain` (the REPL exits once the drain completes);
//! * `:replicas <addr>` — ask a running server for its replication
//!   topology (role, mode, generation, per-peer ack positions and lag);
//! * `:promote <addr>` — promote the standby at `addr` to primary
//!   (fences the old primary's generation);
//! * `:quit`.
//!
//! Run with: `cargo run --release -p dwqa-bench --bin dwqa_repl`

use dwqa_bench::{build_fixture, FixtureConfig};
use dwqa_common::Month;
use dwqa_corpus::PageStyle;
use dwqa_engine::QaSession;
use dwqa_faults::{CorpusSource, FaultInjector, FaultPlan, ResilientSource, RetryPolicy};
use dwqa_server::{QaClient, QaServer, ServerConfig};
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

/// Seed for the REPL's interactive chaos toggle.
const CHAOS_SEED: u64 = 42;

fn main() {
    println!("Building the integrated pipeline (seeded corpus + DW)…");
    let mut fx = build_fixture(FixtureConfig {
        styles: vec![PageStyle::Prose],
        intranet: true,
        ..FixtureConfig::default()
    });
    let mut session = QaSession::new(&fx.pipeline);
    // Trace every question into the flight recorder; bare `:trace`
    // prints the latest span tree.
    session.engine().set_tracing(true);
    println!(
        "Ready: {} documents indexed, {} ontology instances fed, {} sales rows.\n\
         Ask a question (e.g. \"What is the temperature on January 15, 2004 in Barcelona?\"),\n\
         or :trace [question] / :bands / :missing / :stats / :chaos <rate> / :persist <path>\n\
         / :recover <path> / :serve <port> / :replicas <addr> / :promote <addr> / :quit.",
        fx.corpus_size,
        fx.pipeline.enrichment.instances_added,
        fx.pipeline
            .warehouse
            .fact("Last Minute Sales")
            .map(|f| f.len())
            .unwrap_or(0),
    );
    let stdin = std::io::stdin();
    let mut serve_port: Option<u16> = None;
    loop {
        print!("dwqa> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if line == ":bands" {
            // Observe against the session registry so the roll-up
            // counters land in `:stats`.
            let _obs = dwqa_obs::observe(
                Some(Arc::clone(session.stats().registry())),
                None,
                "analysis",
                ":bands",
            );
            match fx.pipeline.sales_by_temperature_band(5.0) {
                Ok(bands) if bands.is_empty() => {
                    println!("(no weather rows yet — ask some temperature questions first)")
                }
                Ok(bands) => println!("{}", dwqa_core::analysis::render_bands(&bands)),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if line == ":missing" {
            let _obs = dwqa_obs::observe(
                Some(Arc::clone(session.stats().registry())),
                None,
                "analysis",
                ":missing",
            );
            match fx.pipeline.missing_weather_questions(2004, Month::January) {
                Ok(qs) if qs.is_empty() => println!("(weather coverage is complete)"),
                Ok(qs) => {
                    for q in qs {
                        println!("  {q}");
                    }
                }
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if line == ":stats" {
            print!("{}", session.stats().render());
            println!(
                "feed: {} transaction rollback(s) on this pipeline",
                fx.pipeline.rollbacks()
            );
            println!(
                "session: {} question(s) asked, cache holds {} entr(ies)",
                session.history().len(),
                session.engine().cache().len()
            );
            continue;
        }
        if let Some(rate) = line.strip_prefix(":chaos ") {
            match rate.trim().parse::<f64>() {
                Ok(rate) if rate <= 0.0 => {
                    session.engine_mut().set_source(None);
                    session.engine_mut().set_deadline(None);
                    println!("chaos off: documents served straight from the index");
                }
                Ok(rate) => match fx.pipeline.qa.store() {
                    Some(store) => {
                        let rate = rate.min(1.0);
                        let source = Arc::new(ResilientSource::new(
                            FaultInjector::new(
                                CorpusSource::new(store),
                                FaultPlan::chaos(CHAOS_SEED, rate),
                            ),
                            RetryPolicy::default(),
                        ));
                        session.engine_mut().set_source(Some(source));
                        session
                            .engine_mut()
                            .set_deadline(Some(Duration::from_secs(5)));
                        println!(
                            "chaos on: transient rate {rate:.2} (seed {CHAOS_SEED}), \
                             default retry policy, 5s per-question deadline"
                        );
                    }
                    None => println!("no indexed corpus to inject faults into"),
                },
                Err(_) => println!("usage: :chaos <rate between 0 and 1>"),
            }
            continue;
        }
        let persist = line
            .strip_prefix(":persist ")
            .or_else(|| line.strip_prefix(":recover "));
        if let Some(path) = persist {
            let path = path.trim();
            if path.is_empty() {
                println!("usage: :persist <directory>  (or :recover <directory>)");
                continue;
            }
            match fx.pipeline.attach_store_at(path) {
                Ok(report) => {
                    if report.checkpoint_loaded || report.transactions_replayed > 0 {
                        println!(
                            "recovered from {path}: checkpoint {}, {} transaction(s) replayed, \
                             {} row(s) loaded (generation {})",
                            if report.checkpoint_loaded {
                                "loaded"
                            } else {
                                "absent"
                            },
                            report.transactions_replayed,
                            report.rows_loaded,
                            report.generation,
                        );
                    } else {
                        println!("durable store attached at {path} (fresh)");
                    }
                    if report.torn_bytes > 0
                        || report.stale_skipped > 0
                        || report.duplicates_skipped > 0
                    {
                        println!(
                            "  WAL hygiene: {} torn byte(s) truncated, {} stale record(s) \
                             skipped, {} duplicate(s) skipped",
                            report.torn_bytes, report.stale_skipped, report.duplicates_skipped,
                        );
                    }
                    println!("  feeds are now WAL-logged before being acknowledged");
                }
                Err(e) => println!("cannot attach store at {path}: {e}"),
            }
            continue;
        }
        if let Some(port) = line.strip_prefix(":serve ") {
            match port.trim().parse::<u16>() {
                Ok(port) => {
                    serve_port = Some(port);
                    break;
                }
                Err(_) => println!("usage: :serve <port>"),
            }
            continue;
        }
        if let Some(addr) = line.strip_prefix(":replicas ") {
            let addr = addr.trim();
            match QaClient::connect(addr).and_then(|mut c| {
                c.replicas()
                    .map_err(|e| std::io::Error::other(e.to_string()))
            }) {
                Ok(resp) => match resp.replicas {
                    Some(r) => {
                        println!(
                            "  {} ({}), generation {}, position {}{}{}",
                            r.role,
                            r.mode,
                            r.generation,
                            r.next_seq,
                            r.lag
                                .map(|l| format!(", lag {l} frame(s)"))
                                .unwrap_or_default(),
                            r.primary
                                .map(|p| format!(", primary at {p}"))
                                .unwrap_or_default(),
                        );
                        for peer in &r.peers {
                            println!(
                                "    peer {}: acked {}, lag {} frame(s), {}",
                                peer.addr,
                                peer.acked_seq,
                                peer.lag,
                                if peer.connected {
                                    "connected"
                                } else {
                                    "disconnected"
                                },
                            );
                        }
                        if r.peers.is_empty() && r.role == "primary" {
                            println!("    (no standbys subscribed)");
                        }
                    }
                    None => println!("no replication state at {addr}"),
                },
                Err(e) => println!("replicas {addr}: {e}"),
            }
            continue;
        }
        if let Some(addr) = line.strip_prefix(":promote ") {
            let addr = addr.trim();
            match QaClient::connect(addr).and_then(|mut c| {
                c.promote()
                    .map_err(|e| std::io::Error::other(e.to_string()))
            }) {
                Ok(resp) => match resp.detail {
                    Some(detail) => println!("  {addr}: {detail}"),
                    None => println!("  {addr}: {:?}", resp.status),
                },
                Err(e) => println!("promote {addr}: {e}"),
            }
            continue;
        }
        if line == ":trace" {
            let recorder = session.engine().flight_recorder();
            match recorder.last() {
                Some(trace) => {
                    print!("{}", trace.render_tree());
                    println!(
                        "(flight recorder holds {} of up to {} traces)",
                        recorder.len(),
                        recorder.capacity()
                    );
                }
                None => println!("(no questions traced yet — ask one first)"),
            }
            continue;
        }
        if let Some(q) = line.strip_prefix(":trace ") {
            println!("{}", session.trace(q).render());
            continue;
        }
        let report = session.ask_checked(line);
        if !report.outcome.is_ok() {
            let detail = report.detail.as_deref().unwrap_or("no detail");
            println!("  [{}] {}", report.outcome, detail);
        }
        let answers = report.answers;
        if answers.is_empty() {
            println!("no answer found");
            continue;
        }
        for a in answers.iter().take(3) {
            println!("  {}  (score {:.2}, {})", a.tuple_format(), a.score, a.url);
        }
        let report = fx.pipeline.apply_feedback(&answers);
        if report.loaded > 0 {
            println!(
                "  → {} tuple(s) fed into the City Weather star",
                report.loaded
            );
        }
    }
    if let Some(port) = serve_port {
        // The session only holds read-path clones, so the pipeline can
        // move into the server; the REPL becomes the service process.
        drop(session);
        let cfg = match ServerConfig::builder().tracing(true).build() {
            Ok(cfg) => cfg,
            Err(e) => {
                println!("server config: {e}");
                return;
            }
        };
        match QaServer::start(fx.pipeline, cfg, ("127.0.0.1", port)) {
            Ok(server) => {
                println!(
                    "serving on {} — JSON-lines protocol (ask/batch/feedback/stats/drain);\n\
                     send a drain request to stop, e.g.:\n\
                     printf '{{\"id\":1,\"kind\":\"drain\"}}\\n' | nc 127.0.0.1 {port}",
                    server.local_addr()
                );
                let registry = std::sync::Arc::clone(server.metrics());
                // `serve` (not `join`) — block until a client sends
                // `drain`, rather than initiating the drain ourselves.
                let drained = server.serve();
                println!(
                    "drained: {} request(s), {} admitted, {} shed, {} rate-limited, {} completed, \
                     {} idle disconnect(s)",
                    registry.counter_value(dwqa_obs::names::SERVER_REQUESTS),
                    registry.counter_value(dwqa_obs::names::SERVER_ADMITTED),
                    registry.counter_value(dwqa_obs::names::SERVER_SHED),
                    registry.counter_value(dwqa_obs::names::SERVER_RATE_LIMITED),
                    registry.counter_value(dwqa_obs::names::SERVER_COMPLETED),
                    registry.counter_value(dwqa_obs::names::SERVER_DISCONNECTS_TIMEOUT),
                );
                if let Some(pipeline) = drained {
                    println!(
                        "warehouse holds {} weather row(s) after the session",
                        pipeline
                            .warehouse
                            .fact("City Weather")
                            .map(|f| f.len())
                            .unwrap_or(0)
                    );
                }
            }
            Err(e) => println!("cannot bind 127.0.0.1:{port}: {e}"),
        }
    }
    println!("bye");
}
