//! E7 — the end-to-end BI outcome: "the analysis of the range of
//! temperatures that increase the last minute flights to a city".
//!
//! The sales generator *plants* a bonus on days whose destination-city
//! temperature lies in [15, 25] °C. Before Step 5 the analysis is
//! unanswerable (the DW has no weather). After asking the QA system one
//! question per (city, day) and feeding the answers back, the band table
//! must recover the planted sweet range.

use dwqa_bench::{build_fixture, daily_questions, section, FixtureConfig};
use dwqa_common::Month;
use dwqa_core::{questions_for_missing_weather, sales_by_temperature_band};
use dwqa_corpus::{PageStyle, SWEET_RANGE_C};
use dwqa_engine::SubmitBatch;

fn main() {
    let months = vec![(2004, Month::January), (2004, Month::June)];
    let mut fx = build_fixture(FixtureConfig {
        months: months.clone(),
        styles: vec![PageStyle::Prose],
        ..FixtureConfig::default()
    });

    section("Before Step 5");
    let bands = sales_by_temperature_band(&fx.pipeline.warehouse, 5.0).unwrap();
    println!(
        "weather rows: 0 → the sales-vs-temperature analysis returns {} bands (unanswerable)",
        bands.len()
    );
    for (year, month) in &months {
        let qs = questions_for_missing_weather(&fx.pipeline.warehouse, *year, *month).unwrap();
        println!(
            "DW-query→QA generation proposes {} questions for {} {}",
            qs.len(),
            month,
            year
        );
    }

    section("Step 5 — one batch of (city, day) questions through the engine");
    let mut distinct: Vec<String> = Vec::new();
    for c in &fx.cities {
        if !distinct.contains(&c.city.to_owned()) {
            distinct.push(c.city.to_owned());
        }
    }
    let mut questions = Vec::new();
    for (year, month) in &months {
        for city in &distinct {
            questions.extend(daily_questions(city, *year, *month));
        }
    }
    // The batch is answered concurrently over the read path and fed back
    // through the serialized write path, in input order.
    let report = fx.pipeline.submit_batch(&questions);
    println!(
        "{} questions on {} worker(s) in {:?} → {} rows loaded, {} rejected, load rate {:.3}, {} source pages recorded",
        questions.len(),
        report.workers,
        report.wall,
        report.feed.loaded,
        report.feed.rejected.len(),
        report.feed.load_rate(),
        report.feed.urls.len()
    );

    section("After Step 5 — sales per temperature band (5 ºC bands)");
    let bands = sales_by_temperature_band(&fx.pipeline.warehouse, 5.0).unwrap();
    println!("{}", dwqa_core::analysis::render_bands(&bands));

    section("Shape check vs the paper");
    let sweet_avg: Vec<&dwqa_core::TemperatureBand> = bands
        .iter()
        .filter(|b| b.lo >= SWEET_RANGE_C.0 && b.hi <= SWEET_RANGE_C.1 + 0.01)
        .collect();
    let other_avg: Vec<&dwqa_core::TemperatureBand> = bands
        .iter()
        .filter(|b| b.hi <= SWEET_RANGE_C.0 || b.lo >= SWEET_RANGE_C.1)
        .collect();
    let avg = |v: &[&dwqa_core::TemperatureBand]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().map(|b| b.avg_sales_per_day).sum::<f64>() / v.len() as f64
        }
    };
    println!(
        "planted sweet range {:?} ºC: {:.2} sales/day inside vs {:.2} outside → ratio {:.2}x",
        SWEET_RANGE_C,
        avg(&sweet_avg),
        avg(&other_avg),
        if avg(&other_avg) > 0.0 {
            avg(&sweet_avg) / avg(&other_avg)
        } else {
            f64::INFINITY
        }
    );
    println!("The integrated pipeline recovers the planted correlation from the Web corpus.");
}
