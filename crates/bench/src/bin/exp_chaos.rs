//! Chaos experiment: fault-injected document acquisition vs answer
//! accuracy and warehouse load rate.
//!
//! Three sections:
//!
//! 1. A sweep over transient-fault rates ([`FaultPlan::chaos`]: transient
//!    errors plus truncated/garbled/duplicated bodies and latency spikes)
//!    with the default [`RetryPolicy`]. Accuracy (recall of the ground
//!    truth from warehouse contents) must stay within 5 points of the
//!    fault-free run at a 20% rate, with zero worker deaths.
//! 2. A transactional-feed demonstration: an injected mid-batch ETL fault
//!    rolls the warehouse back all-or-nothing; the retry commits cleanly.
//! 3. A total-outage run (100% permanent 404s): every question resolves
//!    to `SourceUnavailable` within its deadline — no hangs, no panics,
//!    no partial loads.
//!
//! Every engine runs with tracing enabled: each sweep prints its
//! batch's worst-latency span tree, the first degraded question's full
//! trace is rendered, and `--trace-out <file>` dumps the flight
//! recorders as JSON lines for offline inspection.
//!
//! Override the fault seed with `DWQA_CHAOS_SEED` (CI derives one from
//! the run number). Run with:
//! `cargo run --release -p dwqa-bench --bin exp_chaos [--trace-out FILE]`

use dwqa_bench::{build_fixture, daily_questions, expected_points, section, FixtureConfig};
use dwqa_common::Month;
use dwqa_core::{ExtractionEval, FeedFault, IntegrationPipeline};
use dwqa_corpus::{GroundTruth, PageStyle};
use dwqa_engine::{AnswerOutcome, QaEngine, SubmitBatch};
use dwqa_faults::{
    CorpusSource, DocumentSource, FaultInjector, FaultPlan, ResilientSource, RetryPolicy,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn chaos_seed() -> u64 {
    match std::env::var("DWQA_CHAOS_SEED") {
        Ok(v) => v.parse().unwrap_or(0xC4A05),
        Err(_) => 0xC4A05,
    }
}

fn fixture() -> dwqa_bench::Fixture {
    build_fixture(FixtureConfig {
        styles: vec![PageStyle::Prose],
        distractors: 4,
        ..FixtureConfig::default()
    })
}

fn questions() -> Vec<String> {
    let cities = dwqa_corpus::default_cities();
    let mut distinct: Vec<&str> = Vec::new();
    for c in &cities {
        if !distinct.contains(&c.city) {
            distinct.push(c.city);
        }
    }
    let mut qs = Vec::new();
    for city in distinct {
        qs.extend(daily_questions(city, 2004, Month::January));
    }
    qs
}

fn resilient_source(pipeline: &IntegrationPipeline, plan: FaultPlan) -> Arc<dyn DocumentSource> {
    let store = pipeline.qa.store().expect("fixture indexes a corpus");
    Arc::new(ResilientSource::new(
        FaultInjector::new(CorpusSource::new(store), plan),
        RetryPolicy::default(),
    ))
}

/// Recall/precision of the warehouse's weather star against the truth.
fn evaluate(pipeline: &IntegrationPipeline, truth: &GroundTruth) -> (ExtractionEval, usize) {
    let rs = dwqa_warehouse::CubeQuery::on("City Weather")
        .group_by("City", "City")
        .group_by("Date", "Date")
        .aggregate("temperature_c", dwqa_warehouse::AggFn::Avg)
        .run(&pipeline.warehouse)
        .expect("weather star is queryable");
    let mut eval = ExtractionEval::default();
    let mut found = Vec::new();
    for row in &rs.rows {
        let city = row[0].as_text().expect("city is text").to_owned();
        let date = row[1].as_date().expect("date is a date");
        let got = row[2].as_f64().expect("temperature is numeric");
        match truth.temperature(&city, date) {
            Some(want) if (want - got).abs() < 0.51 => {
                eval.true_positives += 1;
                found.push((dwqa_common::text::fold(&city), date));
            }
            _ => eval.false_positives += 1,
        }
    }
    for (city, date) in expected_points(&dwqa_corpus::default_cities(), 2004, Month::January) {
        if !found.contains(&(dwqa_common::text::fold(&city), date)) {
            eval.false_negatives += 1;
        }
    }
    (eval, rs.rows.len())
}

fn outcome_histogram(outcomes: &[AnswerOutcome]) -> String {
    let count = |want: AnswerOutcome| outcomes.iter().filter(|o| **o == want).count();
    format!(
        "{}ok/{}dg/{}to/{}su/{}pa",
        count(AnswerOutcome::Ok),
        count(AnswerOutcome::Degraded),
        count(AnswerOutcome::TimedOut),
        count(AnswerOutcome::SourceUnavailable),
        count(AnswerOutcome::Panicked),
    )
}

fn main() {
    let seed = chaos_seed();
    println!("chaos seed: {seed}");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut trace_dump = String::new();

    section("Fault-rate sweep: chaos plan, default retry policy, 5s deadline");
    println!(" rate | outcomes (ok/dg/to/su/pa) | retries | trips | recall | precision | fed rows");
    println!("------+---------------------------+---------+-------+--------+-----------+---------");
    let qs = questions();
    let mut baseline_recall = None;
    let mut recall_at_20 = None;
    let mut worst_trace = None;
    let mut degraded_trace = None;
    for rate in [0.0f64, 0.1, 0.2, 0.5] {
        let mut fx = fixture();
        let source = resilient_source(&fx.pipeline, FaultPlan::chaos(seed, rate));
        let engine = QaEngine::new(&fx.pipeline)
            .with_workers(4)
            .with_source(source)
            .with_deadline(Duration::from_secs(5))
            .with_tracing(true)
            .with_trace_capacity(qs.len() + 1);
        let report = fx.pipeline.submit_batch_with(&engine, &qs);
        if report.worst_trace.is_some() {
            worst_trace = report.worst_trace.clone();
        }
        if degraded_trace.is_none() {
            degraded_trace = engine
                .flight_recorder()
                .recent()
                .into_iter()
                .find(|t| t.root_field("outcome").and_then(|v| v.as_str()) == Some("degraded"));
        }
        if trace_out.is_some() {
            trace_dump.push_str(&engine.flight_recorder().dump_jsonl());
        }
        let (eval, fed) = evaluate(&fx.pipeline, &fx.truth);
        assert_eq!(
            engine.stats().worker_deaths(),
            0,
            "the worker pool must survive every fault rate"
        );
        assert!(!report.rolled_back, "source faults never poison the feed");
        if rate == 0.0 {
            baseline_recall = Some(eval.recall());
        }
        if rate == 0.2 {
            recall_at_20 = Some(eval.recall());
        }
        println!(
            "{rate:>5.2} | {:>25} | {:>7} | {:>5} | {:>6.3} | {:>9.3} | {fed:>7}",
            outcome_histogram(&report.outcomes),
            engine.stats().source_retries(),
            engine.stats().breaker_trips(),
            eval.recall(),
            eval.precision(),
        );
    }
    let baseline = baseline_recall.expect("rate 0.0 ran") * 100.0;
    let at_20 = recall_at_20.expect("rate 0.2 ran") * 100.0;
    println!(
        "accuracy at 20% faults: {at_20:.1} vs fault-free {baseline:.1} \
         (delta {:.1} points, budget 5.0)",
        baseline - at_20
    );
    assert!(
        baseline - at_20 <= 5.0,
        "retry/backoff must hold accuracy within 5 points at a 20% fault rate"
    );

    section("Worst-latency trace of the sweep (from the flight recorder)");
    match &worst_trace {
        Some(trace) => print!("{}", trace.render_tree()),
        None => println!("(tracing produced no batch trace — unexpected)"),
    }
    assert!(worst_trace.is_some(), "traced batches report a worst trace");

    section("First degraded question, full span tree");
    match &degraded_trace {
        Some(trace) => {
            print!("{}", trace.render_tree());
            let retrieve = trace
                .find("retrieve")
                .expect("degraded trace spans retrieval");
            assert!(
                retrieve.field("docs_candidate").is_some()
                    && retrieve.field("docs_pruned").is_some(),
                "retrieval span carries candidate/pruned counts"
            );
            assert!(
                trace.root_field("feed").is_some(),
                "feed disposition is back-annotated onto the question trace"
            );
        }
        None => println!("(no degraded question this seed — rerun with another DWQA_CHAOS_SEED)"),
    }

    section("Transactional feedback: injected mid-batch ETL fault");
    let mut fx = fixture();
    let engine = QaEngine::new(&fx.pipeline).with_workers(4);
    let facts_before = fx
        .pipeline
        .warehouse
        .fact("City Weather")
        .expect("weather star exists")
        .len();
    let revision_before = fx.pipeline.revision();
    fx.pipeline
        .set_feed_fault(Some(FeedFault { seed, rate: 1.0 }));
    let report = fx.pipeline.submit_batch_with(&engine, &qs);
    println!(
        "faulted feed: rolled_back={} loaded={} error={:?}",
        report.rolled_back, report.feed.loaded, report.feed_error
    );
    assert!(report.rolled_back);
    assert_eq!(report.feed.loaded, 0, "all-or-nothing: no partial load");
    assert_eq!(
        fx.pipeline
            .warehouse
            .fact("City Weather")
            .expect("weather star exists")
            .len(),
        facts_before,
        "rollback restored the fact table"
    );
    assert_eq!(
        fx.pipeline.revision(),
        revision_before,
        "no spurious cache-revision bump"
    );
    fx.pipeline.set_feed_fault(None);
    let report = fx.pipeline.submit_batch_with(&engine, &qs);
    println!(
        "retried feed: rolled_back={} loaded={} rollbacks so far={}",
        report.rolled_back,
        report.feed.loaded,
        fx.pipeline.rollbacks()
    );
    assert!(!report.rolled_back && report.feed.loaded > 0);
    assert_eq!(fx.pipeline.revision(), revision_before + 1);

    section("Total outage: 100% permanent 404s");
    let mut fx = fixture();
    let deadline = Duration::from_secs(5);
    let source = resilient_source(&fx.pipeline, FaultPlan::new(seed).with_not_found(1.0));
    let engine = QaEngine::new(&fx.pipeline)
        .with_workers(4)
        .with_source(source)
        .with_deadline(deadline);
    let start = Instant::now();
    let report = fx.pipeline.submit_batch_with(&engine, &qs);
    let wall = start.elapsed();
    let unavailable = report
        .outcomes
        .iter()
        .filter(|o| **o == AnswerOutcome::SourceUnavailable)
        .count();
    println!(
        "{} questions -> {} source-unavailable in {wall:.2?} (deadline {deadline:?} each), \
         {} loaded, {} worker deaths",
        qs.len(),
        unavailable,
        report.feed.loaded,
        engine.stats().worker_deaths()
    );
    assert_eq!(unavailable, qs.len(), "every question degrades explicitly");
    assert!(report.answers.iter().all(|a| a.is_empty()));
    assert_eq!(report.feed.loaded, 0);
    assert_eq!(engine.stats().worker_deaths(), 0);
    assert!(
        wall < deadline * (qs.len() as u32),
        "no hangs: the outage resolves inside the deadline budget"
    );

    if let Some(path) = &trace_out {
        std::fs::write(path, &trace_dump).expect("write trace dump");
        println!(
            "\nwrote {} trace(s) as JSON lines to {path}",
            trace_dump.lines().count()
        );
    }

    section("Shape check");
    println!("Transient faults cost recall only at extreme rates: bounded retries with");
    println!("exponential backoff re-fetch clean copies, corruption is detected by");
    println!("re-validation (answers are dropped, never altered, so precision holds), and");
    println!("the circuit breaker plus per-question deadline turn a dead source into");
    println!("explicit source-unavailable outcomes instead of hangs. ETL faults roll the");
    println!("warehouse back atomically; the retried batch commits with one revision bump.");
}
