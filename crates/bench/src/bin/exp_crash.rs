//! E15 — crash recovery of the durable warehouse under injected torn
//! writes.
//!
//! Three sections:
//!
//! 1. **Fsync-policy overhead** — raw WAL append latency for the same
//!    transaction payloads under `Always` / `EveryN(8)` / `Never`, with
//!    the actual fsync counts, quantifying what the durability
//!    guarantee costs per acknowledged feed.
//! 2. **Crash-point sweep** — a seeded kill at every interesting point
//!    of the write path (mid-record, bit-flipped tail, failed fsync,
//!    duplicated record, mid-checkpoint, post-checkpoint before the WAL
//!    truncate, clean post-fsync kill). After every crash, recovery
//!    must reproduce **exactly** the acknowledged-transaction prefix:
//!    the recovered warehouse serializes byte-identically to the
//!    in-memory state the survivors committed.
//! 3. **Chaos run** — every feed routed through a seeded
//!    [`TornPlan::chaos`] mix; each wedge is recovered in place and the
//!    invariant re-checked, then the retry continues under a reseeded
//!    plan.
//!
//! Override the fault seed with `DWQA_CRASH_SEED` (CI derives one from
//! the run number). Usage: `exp_crash [--quick] [--out PATH]`

use dwqa_bench::{build_fixture, daily_questions, section, FixtureConfig};
use dwqa_common::Month;
use dwqa_core::durability::{encode_transaction, LoggedTransaction};
use dwqa_core::IntegrationPipeline;
use dwqa_corpus::PageStyle;
use dwqa_qa::Answer;
use dwqa_store::{FeedbackStore, FsyncPolicy, StoreConfig, TornPlan};
use dwqa_warehouse::WarehouseSnapshot;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

fn crash_seed() -> u64 {
    match std::env::var("DWQA_CRASH_SEED") {
        Ok(v) => v.parse().unwrap_or(0xC4A57),
        Err(_) => 0xC4A57,
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dwqa-exp-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("mkdir {}: {e}", dir.display()));
    dir
}

#[derive(Serialize)]
struct FsyncPoint {
    policy: String,
    appends: usize,
    payload_bytes: usize,
    p50_us: u64,
    p95_us: u64,
    total_ms: f64,
    fsyncs: u64,
}

#[derive(Serialize)]
struct CrashScenario {
    name: &'static str,
    acknowledged: usize,
    feed_failed: bool,
    recovery_us: u64,
    transactions_replayed: usize,
    rows_recovered: usize,
    torn_bytes: u64,
    stale_skipped: u64,
    duplicates_skipped: u64,
    byte_identical: bool,
}

#[derive(Serialize)]
struct ChaosReport {
    seed: u64,
    rate: f64,
    transactions: usize,
    acknowledged: usize,
    wedges: usize,
    recoveries: usize,
    all_recoveries_byte_identical: bool,
}

#[derive(Serialize)]
struct BenchReport {
    experiment: &'static str,
    quick: bool,
    seed: u64,
    fsync: Vec<FsyncPoint>,
    scenarios: Vec<CrashScenario>,
    chaos: ChaosReport,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// Raw store-level append latency per fsync policy, same payloads.
fn fsync_phase(payload: &[u8], appends: usize) -> Vec<FsyncPoint> {
    use dwqa_obs::MetricsRegistry;
    use std::sync::Arc;

    let mut points = Vec::new();
    for (name, policy) in [
        ("always", FsyncPolicy::Always),
        ("every8", FsyncPolicy::EveryN(8)),
        ("never", FsyncPolicy::Never),
    ] {
        let dir = scratch(&format!("fsync-{name}"));
        let config = StoreConfig::builder()
            .fsync(policy)
            .checkpoint_every(None)
            .build()
            .unwrap_or_else(|e| panic!("store config: {e}"));
        let (mut store, _) =
            FeedbackStore::open(&dir, config).unwrap_or_else(|e| panic!("open: {e}"));
        let registry = Arc::new(MetricsRegistry::new());
        let mut lat_us: Vec<u64> = Vec::with_capacity(appends);
        let start = Instant::now();
        {
            let _obs = dwqa_obs::observe(Some(Arc::clone(&registry)), None, "bench", name);
            for _ in 0..appends {
                let t = Instant::now();
                store
                    .append(payload)
                    .unwrap_or_else(|e| panic!("append: {e}"));
                lat_us.push(t.elapsed().as_micros() as u64);
            }
        }
        let total_ms = start.elapsed().as_secs_f64() * 1e3;
        lat_us.sort_unstable();
        let point = FsyncPoint {
            policy: name.to_owned(),
            appends,
            payload_bytes: payload.len(),
            p50_us: percentile(&lat_us, 0.50),
            p95_us: percentile(&lat_us, 0.95),
            total_ms,
            fsyncs: registry.counter_value(dwqa_obs::names::STORE_WAL_FSYNCS),
        };
        println!(
            "  {:7}: p50 {:>5} µs, p95 {:>5} µs, {:>4} fsync(s) over {} appends ({:.1} ms)",
            point.policy, point.p50_us, point.p95_us, point.fsyncs, appends, total_ms
        );
        points.push(point);
        let _ = std::fs::remove_dir_all(&dir);
    }
    points
}

/// What to break, and when, during one crash-point scenario.
struct Crash {
    name: &'static str,
    /// Torn plan installed before feeding transaction `fault_at`.
    plan: Option<TornPlan>,
    fault_at: Option<usize>,
    /// Post-feed file surgery simulating a kill inside the checkpoint
    /// protocol ("tmp" = garbage checkpoint.tmp; "before-truncate" =
    /// checkpoint then restore the pre-checkpoint WAL bytes).
    surgery: Option<&'static str>,
}

fn run_scenario(
    pipeline: &mut IntegrationPipeline,
    seed_snap: &WarehouseSnapshot,
    batches: &[Vec<Answer>],
    crash: &Crash,
) -> CrashScenario {
    // Reset to the seed state and a fresh store directory.
    drop(pipeline.detach_store());
    pipeline
        .restore_warehouse(seed_snap)
        .unwrap_or_else(|e| panic!("reset: {e}"));
    let dir = scratch(crash.name);
    pipeline
        .attach_store_at(&dir)
        .unwrap_or_else(|e| panic!("attach: {e}"));

    let mut acknowledged = 0;
    let mut feed_failed = false;
    for (i, batch) in batches.iter().enumerate() {
        let plan = match (crash.fault_at, crash.plan) {
            (Some(at), Some(plan)) if i == at => Some(plan),
            _ => None,
        };
        pipeline
            .store_mut()
            .unwrap_or_else(|| unreachable!())
            .set_torn(plan);
        match pipeline.try_apply_feedback(batch) {
            Ok(_) => acknowledged += 1,
            Err(_) => {
                feed_failed = true;
                break; // the store is wedged: the process is "dead"
            }
        }
    }

    // The pipeline's own memory holds exactly the committed prefix
    // (failed transactions rolled back) — that is recovery's target.
    let expected_json = pipeline.warehouse.to_json();
    let store = pipeline.store().unwrap_or_else(|| unreachable!());
    let (wal, ckpt_tmp) = (store.wal_path(), store.checkpoint_tmp_path());
    match crash.surgery {
        Some("tmp") => {
            // Killed mid-checkpoint: a partial tmp file, never renamed.
            drop(pipeline.detach_store());
            std::fs::write(&ckpt_tmp, b"partial checkpoint garbage")
                .unwrap_or_else(|e| panic!("surgery: {e}"));
        }
        Some("before-truncate") => {
            // Killed between the checkpoint rename and the WAL
            // truncate: new-generation checkpoint, old WAL bytes.
            let old_wal = std::fs::read(&wal).unwrap_or_else(|e| panic!("read wal: {e}"));
            pipeline
                .checkpoint_now()
                .unwrap_or_else(|e| panic!("checkpoint: {e}"));
            drop(pipeline.detach_store());
            std::fs::write(&wal, old_wal).unwrap_or_else(|e| panic!("surgery: {e}"));
        }
        _ => drop(pipeline.detach_store()),
    }

    // "Restart": back to the seed state, recover from disk alone.
    pipeline
        .restore_warehouse(seed_snap)
        .unwrap_or_else(|e| panic!("reset: {e}"));
    let t = Instant::now();
    let report = pipeline
        .attach_store_at(&dir)
        .unwrap_or_else(|e| panic!("recovery: {e}"));
    let recovery_us = t.elapsed().as_micros() as u64;
    let byte_identical = pipeline.warehouse.to_json() == expected_json;
    let _ = std::fs::remove_dir_all(&dir);
    CrashScenario {
        name: crash.name,
        acknowledged,
        feed_failed,
        recovery_us,
        transactions_replayed: report.transactions_replayed,
        rows_recovered: report.rows_loaded,
        torn_bytes: report.torn_bytes,
        stale_skipped: report.stale_skipped,
        duplicates_skipped: report.duplicates_skipped,
        byte_identical,
    }
}

fn chaos_phase(
    pipeline: &mut IntegrationPipeline,
    seed_snap: &WarehouseSnapshot,
    batches: &[Vec<Answer>],
    seed: u64,
) -> ChaosReport {
    const RATE: f64 = 0.3;
    drop(pipeline.detach_store());
    pipeline
        .restore_warehouse(seed_snap)
        .unwrap_or_else(|e| panic!("reset: {e}"));
    let dir = scratch("chaos");
    let config = StoreConfig::builder()
        .checkpoint_every(Some(8))
        .build()
        .unwrap_or_else(|e| panic!("store config: {e}"));
    pipeline
        .attach_store_with(&dir, config.clone())
        .unwrap_or_else(|e| panic!("attach: {e}"));
    pipeline
        .store_mut()
        .unwrap_or_else(|| unreachable!())
        .set_torn(Some(TornPlan::chaos(seed, RATE)));

    let mut acknowledged = 0;
    let mut wedges = 0;
    let mut recoveries = 0;
    let mut all_identical = true;
    for batch in batches {
        if pipeline.try_apply_feedback(batch).is_ok() {
            acknowledged += 1;
            continue;
        }
        // Wedged mid-run: the acknowledged prefix lives in memory;
        // recovery from disk must reproduce it byte-for-byte.
        wedges += 1;
        let expected = pipeline.warehouse.to_json();
        pipeline
            .attach_store_with(&dir, config.clone())
            .unwrap_or_else(|e| panic!("chaos recovery: {e}"));
        recoveries += 1;
        all_identical &= pipeline.warehouse.to_json() == expected;
        // Reseed so the retried sequence number rolls a fresh fault.
        pipeline
            .store_mut()
            .unwrap_or_else(|| unreachable!())
            .set_torn(Some(TornPlan::chaos(
                seed.wrapping_add(recoveries as u64),
                RATE,
            )));
        if pipeline.try_apply_feedback(batch).is_ok() {
            acknowledged += 1;
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    ChaosReport {
        seed,
        rate: RATE,
        transactions: batches.len(),
        acknowledged,
        wedges,
        recoveries,
        all_recoveries_byte_identical: all_identical,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_crash.json", String::as_str);
    let seed = crash_seed();
    println!("crash seed: {seed}");

    let mut fx = build_fixture(FixtureConfig {
        styles: vec![PageStyle::Prose],
        distractors: 4,
        ..FixtureConfig::default()
    });
    let cities: &[&str] = if quick {
        &["Barcelona"]
    } else {
        &["Barcelona", "Madrid", "New York"]
    };
    let read = fx.pipeline.read_path();
    let batches: Vec<Vec<Answer>> = cities
        .iter()
        .flat_map(|city| daily_questions(city, 2004, Month::January))
        .map(|q| read.answer(&q))
        .filter(|answers| !answers.is_empty())
        .collect();
    assert!(batches.len() >= 8, "fixture yielded too few transactions");
    let seed_snap = fx.pipeline.warehouse.snapshot();

    section("E15: fsync policy overhead (raw WAL appends)");
    let sample = LoggedTransaction {
        batches: vec![batches[0].clone()],
    };
    let payload = encode_transaction(&sample).unwrap_or_else(|e| panic!("encode: {e}"));
    let fsync = fsync_phase(&payload, if quick { 64 } else { 256 });

    section("E15: crash-point sweep");
    let fault_at = batches.len() / 2;
    let scenarios_spec = [
        Crash {
            name: "clean-kill-post-fsync",
            plan: None,
            fault_at: None,
            surgery: None,
        },
        Crash {
            name: "kill-mid-record",
            plan: Some(TornPlan::new(seed).with_short_write(1.0)),
            fault_at: Some(fault_at),
            surgery: None,
        },
        Crash {
            name: "bit-flip-tail",
            plan: Some(TornPlan::new(seed).with_bit_flip(1.0)),
            fault_at: Some(fault_at),
            surgery: None,
        },
        Crash {
            name: "failed-fsync",
            plan: Some(TornPlan::new(seed).with_fsync_fail(1.0)),
            fault_at: Some(fault_at),
            surgery: None,
        },
        Crash {
            name: "duplicated-record",
            plan: Some(TornPlan::new(seed).with_duplicate(1.0)),
            fault_at: Some(fault_at),
            surgery: None,
        },
        Crash {
            name: "kill-mid-checkpoint",
            plan: None,
            fault_at: None,
            surgery: Some("tmp"),
        },
        Crash {
            name: "kill-before-wal-truncate",
            plan: None,
            fault_at: None,
            surgery: Some("before-truncate"),
        },
    ];
    let mut scenarios = Vec::new();
    for crash in &scenarios_spec {
        let outcome = run_scenario(&mut fx.pipeline, &seed_snap, &batches, crash);
        println!(
            "  {:26} {} acked, replay {:3}, {:5} torn B, {:2} stale, {:2} dup | \
             recovery {:>6} µs | identical: {}",
            outcome.name,
            outcome.acknowledged,
            outcome.transactions_replayed,
            outcome.torn_bytes,
            outcome.stale_skipped,
            outcome.duplicates_skipped,
            outcome.recovery_us,
            outcome.byte_identical,
        );
        assert!(
            outcome.byte_identical,
            "{}: recovery diverged from the committed prefix",
            outcome.name
        );
        scenarios.push(outcome);
    }
    // Spot-check that each crash point actually exercised its path.
    let by_name = |n: &str| {
        scenarios
            .iter()
            .find(|s| s.name == n)
            .unwrap_or_else(|| unreachable!())
    };
    assert!(by_name("kill-mid-record").torn_bytes > 0);
    assert!(by_name("bit-flip-tail").torn_bytes > 0);
    assert_eq!(by_name("failed-fsync").torn_bytes, 0, "undone, not torn");
    assert!(by_name("duplicated-record").duplicates_skipped > 0);
    assert!(by_name("kill-before-wal-truncate").stale_skipped > 0);
    assert!(
        !by_name("duplicated-record").feed_failed,
        "duplicates are benign"
    );

    section("E15: chaos run (seeded torn-write mix)");
    let chaos = chaos_phase(&mut fx.pipeline, &seed_snap, &batches, seed);
    println!(
        "  {} transactions: {} acked, {} wedge(s), {} recover(ies), all identical: {}",
        chaos.transactions,
        chaos.acknowledged,
        chaos.wedges,
        chaos.recoveries,
        chaos.all_recoveries_byte_identical
    );
    assert!(chaos.all_recoveries_byte_identical);
    assert!(
        chaos.acknowledged > 0,
        "chaos at rate {} should still commit work",
        chaos.rate
    );

    let report = BenchReport {
        experiment: "crash_recovery",
        quick,
        seed,
        fsync,
        scenarios,
        chaos,
    };
    let json = serde_json::to_string_pretty(&report).unwrap_or_else(|e| panic!("json: {e}"));
    std::fs::write(out_path, json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("\nwrote {out_path}");
    println!("E15 PASS: recovery reproduced the acknowledged prefix at every crash point");
}
