//! E5 — the Step-2 ablation: does feeding the ontology with DW instances
//! measurably improve the QA system, as Section 3 claims? ("if we ask the
//! QA system for the temperature in 'JFK' … the system will know that the
//! previous entities mean airports instead of a person or a Spanish
//! musical group.")
//!
//! Two identical pipelines are built, one with Step 2 skipped. We compare
//! (a) WSD of the ambiguous entities, (b) question analysis (location
//! constraint + city expansion), and (c) end-to-end extraction quality on
//! airport-named questions.

use dwqa_bench::{build_fixture, daily_questions, section, FixtureConfig};
use dwqa_common::Month;
use dwqa_core::{evaluate_temperatures, ExtractionEval, PipelineOptions};
use dwqa_corpus::PageStyle;
use dwqa_nlp::wsd::disambiguate;

fn airport_eval(fx: &dwqa_bench::Fixture, airport: &str, city: &str) -> ExtractionEval {
    let read = fx.pipeline.read_path();
    let mut answers = Vec::new();
    for q in daily_questions(airport, 2004, Month::January) {
        answers.extend(read.answer(&q).into_iter().next());
    }
    let expected: Vec<(String, dwqa_common::Date)> =
        dwqa_common::Date::month_days(2004, Month::January)
            .map(|d| (city.to_owned(), d))
            .collect();
    evaluate_temperatures(&answers, |c, d| fx.truth.temperature(c, d), &expected, 0.51)
}

fn main() {
    let with = build_fixture(FixtureConfig {
        styles: vec![PageStyle::Prose],
        ..FixtureConfig::default()
    });
    let without = build_fixture(FixtureConfig {
        styles: vec![PageStyle::Prose],
        options: PipelineOptions::builder()
            .skip_enrichment(true)
            .build()
            .unwrap(),
        ..FixtureConfig::default()
    });

    section("(a) Word-sense disambiguation of the ambiguous entities");
    for lemma in ["jfk", "la guardia", "el prat"] {
        for (name, fx) in [("with Step 2", &with), ("without    ", &without)] {
            let onto = fx.pipeline.qa.ontology();
            let sense = disambiguate(onto, lemma, &[]);
            let gloss = sense
                .map(|s| {
                    let c = onto.concept(s);
                    format!("{} — {}", c.canonical(), c.gloss)
                })
                .unwrap_or_else(|| "(unknown)".to_owned());
            println!("{name} | {lemma:<10} → {gloss}");
        }
    }

    section("(b) Question analysis for 'temperature in El Prat'");
    for (name, fx) in [("with Step 2", &with), ("without    ", &without)] {
        let analysis = fx
            .pipeline
            .qa
            .analyze("What is the temperature in January of 2004 in El Prat?");
        println!(
            "{name} | locations = {:?} | retrieval terms = {:?}",
            analysis.locations,
            analysis.retrieval_terms()
        );
    }

    section("(c) Extraction quality on airport-named questions");
    println!("pipeline     | airport    | precision | recall |   f1");
    println!("-------------+------------+-----------+--------+------");
    for (name, fx) in [("with Step 2 ", &with), ("without     ", &without)] {
        for (airport, city) in [
            ("El Prat", "Barcelona"),
            ("JFK", "New York"),
            ("John Wayne", "Costa Mesa"),
        ] {
            let eval = airport_eval(fx, airport, city);
            println!(
                "{name} | {airport:<10} | {:>9.3} | {:>6.3} | {:>5.3}",
                eval.precision(),
                eval.recall(),
                eval.f1()
            );
        }
    }
    section("Shape check vs the paper");
    println!("Step 2 must strictly improve airport-question handling (locations resolve,");
    println!("WSD prefers the airport senses, extraction recall rises from ~0).");
}
