//! E18 — warm-standby failover: WAL shipping under seeded link chaos,
//! lossless promotion, and fencing.
//!
//! Three sections:
//!
//! 1. **Seeded kill sweep** — a replicating primary (sync quorum 1,
//!    10% link chaos) is killed between requests at ≥5 seeded crash
//!    points; after each kill the standby is promoted (the last sweep
//!    point exercises the heartbeat failure detector instead of a
//!    manual `promote`), must serve reads *and* accept writes within
//!    the promotion budget, and — once every batch has been driven to
//!    an acknowledged commit — must hold a roll-up state
//!    byte-identical to a never-failed reference pipeline. The old
//!    primary's generation must be fenced below the promoted one.
//! 2. **Drain handoff** — the graceful path: drain the primary (which
//!    flushes replication), promote the standby, same gates.
//! 3. **Async staleness** — the same topology under `async(budget)`;
//!    every acknowledged commit must observe connected-standby lag
//!    within the budget, and the standby must converge to the
//!    primary's exact state.
//!
//! Override the fault seed with `DWQA_FAILOVER_SEED` (CI derives one
//! from the run number). Usage: `exp_failover [--quick] [--out PATH]`

use dwqa_bench::{build_fixture, daily_questions, section, FixtureConfig};
use dwqa_common::Month;
use dwqa_core::IntegrationPipeline;
use dwqa_corpus::PageStyle;
use dwqa_faults::LinkPlan;
use dwqa_qa::Answer;
use dwqa_server::{
    QaClient, QaServer, ReplicasReport, ReplicationConfig, ReplicationMode, ServerConfig, Status,
};
use dwqa_warehouse::WarehouseSnapshot;
use serde::Serialize;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Link chaos rate on the replication link for the kill sweep.
const CHAOS_RATE: f64 = 0.10;
/// Failover budget: kill → promoted standby serving reads and writes.
const PROMOTION_BUDGET_MS: f64 = 1000.0;
/// Staleness budget (frames) for the async section.
const ASYNC_BUDGET: u64 = 4;

fn failover_seed() -> u64 {
    match std::env::var("DWQA_FAILOVER_SEED") {
        Ok(v) => v.parse().unwrap_or(0xFA170),
        Err(_) => 0xFA170,
    }
}

/// SplitMix64 — the workspace's standard deterministic stream mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dwqa-exp-failover-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn server_config() -> ServerConfig {
    ServerConfig::builder()
        .workers(2)
        .queue_capacity(64)
        .rate_burst(4096)
        .rate_per_sec(1_000_000.0)
        .build()
        .unwrap_or_else(|e| panic!("server config: {e}"))
}

fn repl_builder(mode: ReplicationMode) -> dwqa_server::ReplicationConfigBuilder {
    ReplicationConfig::builder()
        .mode(mode)
        .heartbeat_interval(Duration::from_millis(20))
        .heartbeat_timeout(Duration::from_millis(150))
        .ack_timeout(Duration::from_secs(3))
        .reconnect_backoff(Duration::from_millis(10))
}

fn repl_config(mode: ReplicationMode) -> ReplicationConfig {
    repl_builder(mode)
        .build()
        .unwrap_or_else(|e| panic!("repl config: {e}"))
}

fn report(client: &mut QaClient) -> ReplicasReport {
    client
        .replicas()
        .unwrap_or_else(|e| panic!("replicas: {e}"))
        .replicas
        .unwrap_or_else(|| panic!("no replicas report"))
}

/// Drives one feedback batch to an acknowledged commit, counting the
/// busy-retry round trips the client needed (quorum timeouts under
/// chaos surface as `ReplicationLag` busies, never as silent loss).
fn feed_until_acked(client: &mut QaClient, batch: &[String], retries: &mut u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let response = client
            .feedback(batch)
            .unwrap_or_else(|e| panic!("feedback i/o: {e}"));
        if response.status == Status::Ok {
            return;
        }
        *retries += 1;
        assert!(
            Instant::now() < deadline,
            "batch never acknowledged: {response:?}"
        );
        let wait = response.retry_after_ms.unwrap_or(20).min(250);
        std::thread::sleep(Duration::from_millis(wait));
    }
}

fn await_subscribed(client: &mut QaClient) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while report(client).peers.is_empty() {
        assert!(Instant::now() < deadline, "standby never subscribed");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[derive(Serialize)]
struct FailoverScenario {
    name: String,
    /// "kill" (hard crash, manual promote), "kill-detect" (hard crash,
    /// heartbeat failure detector auto-promotes), or "drain" (graceful
    /// handoff).
    kind: &'static str,
    kill_after: usize,
    batches: usize,
    busy_retries: u64,
    promotion_ms: f64,
    zero_loss: bool,
    fenced: bool,
    old_generation: u64,
    new_generation: u64,
}

/// One full failover round. Feeds `batches[..kill_after]` through the
/// replicating primary, fails it over per `kind`, drives the remaining
/// batches into the promoted standby, and hands both pipelines back
/// for reuse alongside the scenario outcome.
#[allow(clippy::too_many_arguments)]
fn failover_round(
    name: String,
    kind: &'static str,
    primary_pipe: IntegrationPipeline,
    standby_pipe: IntegrationPipeline,
    batches: &[Vec<String>],
    kill_after: usize,
    scenario_seed: u64,
    reference_json: &str,
) -> (FailoverScenario, IntegrationPipeline, IntegrationPipeline) {
    let primary_cfg = repl_builder(ReplicationMode::Sync { quorum: 1 })
        .link_fault(Some(LinkPlan::chaos(scenario_seed, CHAOS_RATE)))
        .build()
        .unwrap_or_else(|e| panic!("primary repl config: {e}"));
    let standby_cfg = repl_builder(ReplicationMode::Sync { quorum: 1 })
        .auto_promote(kind == "kill-detect")
        .build()
        .unwrap_or_else(|e| panic!("standby repl config: {e}"));

    let primary = QaServer::start_primary(
        primary_pipe,
        server_config(),
        "127.0.0.1:0",
        "127.0.0.1:0",
        primary_cfg,
    )
    .unwrap_or_else(|e| panic!("start primary: {e}"));
    let repl_addr = primary
        .replication_addr()
        .unwrap_or_else(|| panic!("no repl addr"));
    let standby = QaServer::start_standby(
        standby_pipe,
        server_config(),
        "127.0.0.1:0",
        &repl_addr.to_string(),
        standby_cfg,
    )
    .unwrap_or_else(|e| panic!("start standby: {e}"));

    let mut client_p =
        QaClient::connect(primary.local_addr()).unwrap_or_else(|e| panic!("connect: {e}"));
    let mut client_s =
        QaClient::connect(standby.local_addr()).unwrap_or_else(|e| panic!("connect: {e}"));
    await_subscribed(&mut client_p);

    let mut busy_retries = 0u64;
    for batch in &batches[..kill_after] {
        feed_until_acked(&mut client_p, batch, &mut busy_retries);
    }

    // Fail over. The clock runs from the moment the primary is gone
    // (or starts draining) until the promoted standby has served a
    // read AND accepted a write — the client-visible outage window.
    let clock = Instant::now();
    let old_pipeline = match kind {
        "drain" => {
            client_p.drain().unwrap_or_else(|e| panic!("drain: {e}"));
            primary
                .serve()
                .unwrap_or_else(|| panic!("drained primary lost its pipeline"))
        }
        _ => primary
            .kill()
            .unwrap_or_else(|| panic!("killed primary lost its pipeline")),
    };
    let old_generation = old_pipeline
        .store()
        .map(dwqa_store::FeedbackStore::generation)
        .unwrap_or(0);

    if kind == "kill-detect" {
        // The seeded failure detector: sustained heartbeat silence
        // plus a failed reconnect probe promotes the standby.
        let deadline = Instant::now() + Duration::from_secs(5);
        while report(&mut client_s).role != "primary" {
            assert!(Instant::now() < deadline, "failure detector never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
    } else {
        let promoted = client_s
            .promote()
            .unwrap_or_else(|e| panic!("promote: {e}"));
        assert_eq!(promoted.status, Status::Ok, "promote refused: {promoted:?}");
    }
    let ask = client_s
        .ask(&batches[0][0])
        .unwrap_or_else(|e| panic!("promoted ask: {e}"));
    assert_eq!(ask.status, Status::Ok, "promoted standby refused a read");
    feed_until_acked(&mut client_s, &batches[kill_after], &mut busy_retries);
    let promotion_ms = clock.elapsed().as_secs_f64() * 1e3;

    for batch in &batches[kill_after + 1..] {
        feed_until_acked(&mut client_s, batch, &mut busy_retries);
    }
    let post = report(&mut client_s);
    let fenced = post.generation > old_generation;

    client_s
        .drain()
        .unwrap_or_else(|e| panic!("drain standby: {e}"));
    let promoted_pipe = standby
        .serve()
        .unwrap_or_else(|| panic!("drained standby lost its pipeline"));
    let zero_loss = promoted_pipe.warehouse.to_json() == reference_json;

    let scenario = FailoverScenario {
        name,
        kind,
        kill_after,
        batches: batches.len(),
        busy_retries,
        promotion_ms,
        zero_loss,
        fenced,
        old_generation,
        new_generation: post.generation,
    };
    (scenario, old_pipeline, promoted_pipe)
}

#[derive(Serialize)]
struct AsyncReport {
    staleness_budget: u64,
    batches: usize,
    max_observed_lag: u64,
    within_budget: bool,
    converged_byte_identical: bool,
}

fn async_phase(
    primary_pipe: IntegrationPipeline,
    standby_pipe: IntegrationPipeline,
    batches: &[Vec<String>],
) -> (AsyncReport, IntegrationPipeline, IntegrationPipeline) {
    let mode = ReplicationMode::Async {
        staleness_budget: ASYNC_BUDGET,
    };
    let primary = QaServer::start_primary(
        primary_pipe,
        server_config(),
        "127.0.0.1:0",
        "127.0.0.1:0",
        repl_config(mode),
    )
    .unwrap_or_else(|e| panic!("start primary: {e}"));
    let repl_addr = primary
        .replication_addr()
        .unwrap_or_else(|| panic!("no repl addr"));
    let standby = QaServer::start_standby(
        standby_pipe,
        server_config(),
        "127.0.0.1:0",
        &repl_addr.to_string(),
        repl_config(mode),
    )
    .unwrap_or_else(|e| panic!("start standby: {e}"));
    let mut client_p =
        QaClient::connect(primary.local_addr()).unwrap_or_else(|e| panic!("connect: {e}"));
    let mut client_s =
        QaClient::connect(standby.local_addr()).unwrap_or_else(|e| panic!("connect: {e}"));
    await_subscribed(&mut client_p);

    let mut retries = 0u64;
    let mut max_lag = 0u64;
    for batch in batches {
        feed_until_acked(&mut client_p, batch, &mut retries);
        // Sequential feeding: nothing ships between the ack and this
        // probe, so the admission-time staleness bound is still
        // visible in the peer gauge.
        for peer in &report(&mut client_p).peers {
            if peer.connected {
                max_lag = max_lag.max(peer.lag);
            }
        }
    }
    let within_budget = max_lag <= ASYNC_BUDGET;

    // Let the standby converge, then compare exact states.
    let target = report(&mut client_p).next_seq;
    let deadline = Instant::now() + Duration::from_secs(10);
    while report(&mut client_s).next_seq < target {
        assert!(Instant::now() < deadline, "async standby never converged");
        std::thread::sleep(Duration::from_millis(10));
    }
    client_p.drain().unwrap_or_else(|e| panic!("drain: {e}"));
    let primary_pipe = primary
        .serve()
        .unwrap_or_else(|| panic!("drained primary lost its pipeline"));
    client_s.drain().unwrap_or_else(|e| panic!("drain: {e}"));
    let standby_pipe = standby
        .serve()
        .unwrap_or_else(|| panic!("drained standby lost its pipeline"));
    let converged = standby_pipe.warehouse.to_json() == primary_pipe.warehouse.to_json();

    let outcome = AsyncReport {
        staleness_budget: ASYNC_BUDGET,
        batches: batches.len(),
        max_observed_lag: max_lag,
        within_budget,
        converged_byte_identical: converged,
    };
    (outcome, primary_pipe, standby_pipe)
}

#[derive(Serialize)]
struct BenchReport {
    experiment: &'static str,
    quick: bool,
    seed: u64,
    link_chaos_rate: f64,
    promotion_budget_ms: f64,
    scenarios: Vec<FailoverScenario>,
    async_mode: AsyncReport,
    zero_loss_all: bool,
    max_promotion_ms: f64,
}

/// Resets a pipeline to the fixture seed state, dropping any store.
fn reset(pipeline: &mut IntegrationPipeline, seed_snap: &WarehouseSnapshot) {
    drop(pipeline.detach_store());
    pipeline
        .restore_warehouse(seed_snap)
        .unwrap_or_else(|e| panic!("reset: {e}"));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_failover.json", String::as_str);
    let seed = failover_seed();
    println!("failover seed: {seed}");

    let fixture_cfg = FixtureConfig {
        styles: vec![PageStyle::Prose],
        distractors: 2,
        ..FixtureConfig::default()
    };
    let primary_fx = build_fixture(fixture_cfg.clone());
    let standby_fx = build_fixture(fixture_cfg.clone());
    let mut reference_fx = build_fixture(fixture_cfg);
    let seed_snap = primary_fx.pipeline.warehouse.snapshot();

    let take = if quick { 8 } else { 16 };
    let questions: Vec<Vec<String>> = daily_questions("Barcelona", 2004, Month::January)
        .into_iter()
        .take(take)
        .map(|q| vec![q])
        .collect();
    assert!(questions.len() >= 8, "fixture yielded too few batches");

    // The never-failed reference: every batch applied exactly once to
    // a standalone pipeline. Lossless failover must land on exactly
    // this roll-up state, byte for byte.
    let read = reference_fx.pipeline.read_path();
    let answers: Vec<Vec<Answer>> = questions.iter().map(|b| read.answer(&b[0])).collect();
    for batch in &answers {
        assert!(!batch.is_empty(), "fixture question yielded no answers");
        reference_fx.pipeline.apply_feedback(batch);
    }
    let reference_json = reference_fx.pipeline.warehouse.to_json();

    section("E18: seeded kill sweep (sync quorum 1, 10% link chaos)");
    // ≥5 distinct seeded crash points, killed between requests; the
    // last one exercises the heartbeat failure detector.
    let mut kill_points: Vec<usize> = Vec::new();
    let mut stream = seed;
    while kill_points.len() < 5 {
        stream = mix(stream);
        let k = 1 + (stream as usize) % (questions.len() - 2);
        if !kill_points.contains(&k) {
            kill_points.push(k);
        }
    }
    let mut primary_pipe = primary_fx.pipeline;
    let mut standby_pipe = standby_fx.pipeline;
    let mut scenarios: Vec<FailoverScenario> = Vec::new();
    for (i, &kill_after) in kill_points.iter().enumerate() {
        let kind = if i == kill_points.len() - 1 {
            "kill-detect"
        } else {
            "kill"
        };
        reset(&mut primary_pipe, &seed_snap);
        reset(&mut standby_pipe, &seed_snap);
        let dir = scratch(&format!("kill-{kill_after}"));
        primary_pipe
            .attach_store_at(&dir)
            .unwrap_or_else(|e| panic!("attach: {e}"));
        let (outcome, old, promoted) = failover_round(
            format!("{kind}-after-{kill_after}"),
            kind,
            primary_pipe,
            standby_pipe,
            &questions,
            kill_after,
            mix(seed ^ (i as u64)),
            &reference_json,
        );
        primary_pipe = old;
        standby_pipe = promoted;
        let _ = std::fs::remove_dir_all(&dir);
        println!(
            "  {:22} promoted in {:>6.1} ms ({} retries) | zero loss: {} | fenced: {} ({} -> {})",
            outcome.name,
            outcome.promotion_ms,
            outcome.busy_retries,
            outcome.zero_loss,
            outcome.fenced,
            outcome.old_generation,
            outcome.new_generation,
        );
        assert!(
            outcome.zero_loss,
            "{}: acknowledged feedback lost",
            outcome.name
        );
        assert!(outcome.fenced, "{}: old primary not fenced", outcome.name);
        scenarios.push(outcome);
    }

    section("E18: drain handoff (graceful promotion)");
    {
        reset(&mut primary_pipe, &seed_snap);
        reset(&mut standby_pipe, &seed_snap);
        let dir = scratch("drain");
        primary_pipe
            .attach_store_at(&dir)
            .unwrap_or_else(|e| panic!("attach: {e}"));
        let kill_after = questions.len() / 2;
        let (outcome, old, promoted) = failover_round(
            format!("drain-after-{kill_after}"),
            "drain",
            primary_pipe,
            standby_pipe,
            &questions,
            kill_after,
            mix(seed ^ 0xD4A1),
            &reference_json,
        );
        primary_pipe = old;
        standby_pipe = promoted;
        let _ = std::fs::remove_dir_all(&dir);
        println!(
            "  {:22} promoted in {:>6.1} ms ({} retries) | zero loss: {} | fenced: {} ({} -> {})",
            outcome.name,
            outcome.promotion_ms,
            outcome.busy_retries,
            outcome.zero_loss,
            outcome.fenced,
            outcome.old_generation,
            outcome.new_generation,
        );
        assert!(
            outcome.zero_loss,
            "drain handoff lost acknowledged feedback"
        );
        assert!(outcome.fenced, "drain handoff did not fence");
        scenarios.push(outcome);
    }

    section("E18: async staleness (bounded lag)");
    let (async_mode, mut primary_pipe, _standby_pipe) = {
        reset(&mut primary_pipe, &seed_snap);
        reset(&mut standby_pipe, &seed_snap);
        let dir = scratch("async");
        primary_pipe
            .attach_store_at(&dir)
            .unwrap_or_else(|e| panic!("attach: {e}"));
        let (outcome, p, s) = async_phase(primary_pipe, standby_pipe, &questions);
        let _ = std::fs::remove_dir_all(&dir);
        (outcome, p, s)
    };
    println!(
        "  {} batches: max lag {} (budget {}) | converged byte-identical: {}",
        async_mode.batches,
        async_mode.max_observed_lag,
        async_mode.staleness_budget,
        async_mode.converged_byte_identical,
    );
    assert!(async_mode.within_budget, "async staleness exceeded budget");
    assert!(
        async_mode.converged_byte_identical,
        "async standby diverged"
    );
    drop(primary_pipe.detach_store());

    let zero_loss_all = scenarios.iter().all(|s| s.zero_loss && s.fenced);
    let max_promotion_ms = scenarios
        .iter()
        .map(|s| s.promotion_ms)
        .fold(0.0f64, f64::max);
    assert!(zero_loss_all);
    assert!(
        max_promotion_ms < PROMOTION_BUDGET_MS,
        "promotion took {max_promotion_ms:.1} ms, budget {PROMOTION_BUDGET_MS} ms"
    );

    let report = BenchReport {
        experiment: "failover",
        quick,
        seed,
        link_chaos_rate: CHAOS_RATE,
        promotion_budget_ms: PROMOTION_BUDGET_MS,
        scenarios,
        async_mode,
        zero_loss_all,
        max_promotion_ms,
    };
    let json = serde_json::to_string_pretty(&report).unwrap_or_else(|e| panic!("json: {e}"));
    std::fs::write(out_path, json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("\nwrote {out_path}");
    println!(
        "E18 PASS: zero acknowledged loss at every crash point, promotion under {PROMOTION_BUDGET_MS} ms"
    );
}
