//! E8 — regenerates the paper's descriptive figures from code:
//! **Figure 1** (the Last Minute Sales multidimensional model, rendered in
//! the UML profile's stereotyped notation) and **Figure 2** (the domain
//! ontology Step 1 derives from it, plus its OWL serialization).

use dwqa_bench::section;
use dwqa_mdmodel::{last_minute_sales, render_uml};
use dwqa_ontology::{render_owl, schema_to_ontology, Relation};

fn main() {
    let schema = last_minute_sales();

    section("Figure 1 — multidimensional model (UML profile)");
    println!("{}", render_uml(&schema));

    section("Figure 2 — derived domain ontology (Step 1)");
    let onto = schema_to_ontology(&schema);
    for (id, c) in onto.iter() {
        let parts: Vec<String> = onto
            .related(id, Relation::Meronym)
            .iter()
            .map(|&t| onto.concept(t).canonical().to_owned())
            .collect();
        let related: Vec<String> = onto
            .related(id, Relation::RelatedTo)
            .iter()
            .map(|&t| onto.concept(t).canonical().to_owned())
            .collect();
        let mut line = format!("concept {:?}", c.canonical());
        if !parts.is_empty() {
            line.push_str(&format!("  part-of {parts:?}"));
        }
        if !related.is_empty() {
            line.push_str(&format!("  related-to {related:?}"));
        }
        println!("{line}");
    }

    section("Figure 2 in OWL functional syntax (step 1.b)");
    let owl = render_owl(&onto);
    println!("{owl}");
    // Round-trip sanity.
    let parsed = dwqa_ontology::parse_owl(&owl).expect("OWL round-trip");
    println!(
        "(round-trip OK: {} concepts serialized and parsed back)",
        parsed.len()
    );
}
