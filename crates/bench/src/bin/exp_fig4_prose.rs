//! E2 — the **Figure 4** experiment: extraction quality on *prose*
//! weather pages ("the best precision in the extraction of temperatures
//! and dates is obtained for [the prose] URL … because temperatures …
//! and dates … are clearly identified").
//!
//! For every city the pipeline asks one question per day of the month and
//! the extracted (temperature, date, city) tuples are scored against the
//! generator's ground truth, across several corpus seeds.

use dwqa_bench::{build_fixture, daily_questions, section, FixtureConfig};
use dwqa_common::Month;
use dwqa_core::{evaluate_temperatures, ExtractionEval};
use dwqa_corpus::PageStyle;
use dwqa_engine::QaEngine;

fn main() {
    section("Figure 4 — extraction from prose weather pages");
    println!("seed | city        | precision | recall |   f1");
    println!("-----+-------------+-----------+--------+------");
    let mut overall = ExtractionEval::default();
    for seed in [42u64, 7, 1234] {
        let fx = build_fixture(FixtureConfig {
            seed,
            styles: vec![PageStyle::Prose],
            ..FixtureConfig::default()
        });
        // One engine per fixture: the per-day questions for a city go in
        // as one batch, answered by the worker pool in input order.
        let engine = QaEngine::new(&fx.pipeline);
        let mut distinct: Vec<&str> = Vec::new();
        for c in &fx.cities {
            if !distinct.contains(&c.city) {
                distinct.push(c.city);
            }
        }
        for city in distinct {
            // CLEF-style: the system's answer to a question is its top
            // candidate.
            let batch = daily_questions(city, 2004, Month::January);
            let answers: Vec<_> = engine
                .answer_batch(&batch)
                .into_iter()
                .filter_map(|a| a.into_iter().next())
                .collect();
            let expected: Vec<(String, dwqa_common::Date)> =
                dwqa_common::Date::month_days(2004, Month::January)
                    .map(|d| (city.to_owned(), d))
                    .collect();
            let eval =
                evaluate_temperatures(&answers, |c, d| fx.truth.temperature(c, d), &expected, 0.51);
            println!(
                "{seed:>4} | {city:<11} | {:>9.3} | {:>6.3} | {:>5.3}",
                eval.precision(),
                eval.recall(),
                eval.f1()
            );
            overall.merge(&eval);
        }
        let s = engine.stats();
        println!(
            "     ({} questions on {} worker(s): analyze {} µs, passages {} µs, extract {} µs mean)",
            s.questions(),
            engine.workers(),
            s.analyze.mean_us(),
            s.passages.mean_us(),
            s.extract.mean_us()
        );
    }
    section("Overall (all seeds, all cities)");
    println!(
        "precision = {:.3}   recall = {:.3}   f1 = {:.3}   (TP={}, FP={}, FN={})",
        overall.precision(),
        overall.recall(),
        overall.f1(),
        overall.true_positives,
        overall.false_positives,
        overall.false_negatives
    );
    println!(
        "\nPaper claim: prose pages yield the *best* precision — compare with exp_fig5_tables."
    );
}
