//! E3 — the **Figure 5** experiment: extraction from *tabular* weather
//! pages ("lower precision is obtained from web pages that contain
//! tables, in which the task of associating the measure with its
//! corresponding measure unit gets more difficult"), plus the paper's
//! future-work fix: the table pre-processor of `dwqa-core::tableprep`.

use dwqa_bench::{build_corpus, daily_questions, section, FixtureConfig};
use dwqa_common::Month;
use dwqa_core::{
    evaluate_temperatures, integrated_schema, preprocess_tables, ExtractionEval,
    IntegrationPipeline, PipelineOptions,
};
use dwqa_corpus::PageStyle;
use dwqa_warehouse::Warehouse;

fn run(preprocess: bool) -> ExtractionEval {
    let config = FixtureConfig {
        styles: vec![PageStyle::Table],
        ..FixtureConfig::default()
    };
    let (store, truth) = build_corpus(&config);
    let (store, rewritten) = if preprocess {
        preprocess_tables(&store)
    } else {
        (store, 0)
    };
    if preprocess {
        println!("(table pre-processor rewrote {rewritten} pages)");
    }
    let pipeline = IntegrationPipeline::build(
        Warehouse::new(integrated_schema()),
        store,
        PipelineOptions::default(),
    );
    let read = pipeline.read_path();
    let mut eval = ExtractionEval::default();
    let cities = ["Barcelona", "New York", "Costa Mesa", "Madrid"];
    for city in cities {
        let mut answers = Vec::new();
        for q in daily_questions(city, 2004, Month::January) {
            answers.extend(read.answer(&q).into_iter().next());
        }
        let expected: Vec<(String, dwqa_common::Date)> =
            dwqa_common::Date::month_days(2004, Month::January)
                .map(|d| (city.to_owned(), d))
                .collect();
        eval.merge(&evaluate_temperatures(
            &answers,
            |c, d| truth.temperature(c, d),
            &expected,
            0.51,
        ));
    }
    eval
}

fn main() {
    section("Figure 5 — extraction from tabular weather pages");
    let raw = run(false);
    println!(
        "raw tables          : precision = {:.3}  recall = {:.3}  f1 = {:.3} (TP={}, FP={}, FN={})",
        raw.precision(),
        raw.recall(),
        raw.f1(),
        raw.true_positives,
        raw.false_positives,
        raw.false_negatives
    );

    section("With the future-work table pre-processor");
    let prep = run(true);
    println!(
        "pre-processed tables: precision = {:.3}  recall = {:.3}  f1 = {:.3} (TP={}, FP={}, FN={})",
        prep.precision(),
        prep.recall(),
        prep.f1(),
        prep.true_positives,
        prep.false_positives,
        prep.false_negatives
    );

    section("Shape check vs the paper");
    println!(
        "tables ≪ prose without help: recall {:.3} (raw) vs {:.3} (pre-processed)",
        raw.recall(),
        prep.recall()
    );
    println!("The paper's robustness rule (record the URL anyway) is exercised in exp_bi_outcome.");
}
