//! E17 — incremental roll-up maintenance vs purge-and-recompute.
//!
//! Replays the same stream of small feedback-style commits against two
//! identically seeded warehouses. The **incremental** lane folds each
//! commit's append delta into the live materialized roll-ups
//! ([`RollupCache::apply_delta`]) and serves the post-commit queries
//! from the maintained entries; the **purge** lane models the old
//! behaviour — every commit invalidates the cache, so every post-commit
//! query re-scans the whole fact table. Both lanes must produce
//! byte-identical results at every cycle; the report self-gates on the
//! incremental lane winning the commit-then-query cycle by ≥2×.
//!
//! Usage: `exp_incremental [--quick] [--out PATH]`

use dwqa_bench::section;
use dwqa_core::RollupCache;
use dwqa_warehouse::testing::{synthetic_batch, synthetic_warehouse, Mix};
use dwqa_warehouse::{AggFn, CubeQuery, Predicate, Value};
use serde::Serialize;
use std::time::Instant;

const WAREHOUSE_SEED: u64 = 0x5EED;
const DELTA_SEED: u64 = 0xDE17A;

/// One maintenance lane's timings over the whole commit stream.
#[derive(Serialize)]
struct LaneReport {
    lane: &'static str,
    total_us: f64,
    /// Mean commit-then-query latency (load + maintenance + queries).
    cycle_us: f64,
    /// Mean of the query part alone.
    query_us: f64,
}

#[derive(Serialize)]
struct BenchReport {
    experiment: &'static str,
    quick: bool,
    base_rows: usize,
    airports: usize,
    delta_rows: usize,
    cycles: usize,
    queries: usize,
    incremental: LaneReport,
    purge: LaneReport,
    /// purge cycle time / incremental cycle time.
    speedup: f64,
    /// The self-gate this report was checked against.
    speedup_floor: f64,
}

/// The post-commit read set: the analyses a feedback-driven pipeline
/// re-reads after every commit. All are lane-packable (≤ 4 coordinates).
fn read_set() -> Vec<CubeQuery> {
    vec![
        CubeQuery::on("Last Minute Sales")
            .aggregate("price", AggFn::Sum)
            .aggregate("miles", AggFn::Avg),
        CubeQuery::on("Last Minute Sales")
            .group_by("Destination", "Country")
            .aggregate("price", AggFn::Sum),
        CubeQuery::on("Last Minute Sales")
            .group_by("Destination", "City")
            .group_by("Date", "Date")
            .aggregate("price", AggFn::Count),
        CubeQuery::on("Last Minute Sales")
            .filter(
                "Destination",
                "Country",
                Predicate::Eq(Value::text("Spain")),
            )
            .group_by("Destination", "City")
            .aggregate("price", AggFn::Sum)
            .aggregate("price", AggFn::Count),
    ]
}

/// Whether a lane folds deltas into live entries or purges on commit.
#[derive(Clone, Copy, PartialEq)]
enum Lane {
    Incremental,
    Purge,
}

/// Replays the identical commit stream through one lane, returning the
/// timings and the final result sets (for the cross-lane parity check).
fn run_lane(
    lane: Lane,
    base_rows: usize,
    airports: usize,
    delta_rows: usize,
    cycles: usize,
) -> (LaneReport, Vec<dwqa_warehouse::ResultSet>) {
    let mut wh = synthetic_warehouse(base_rows, airports, WAREHOUSE_SEED);
    let queries = read_set();
    let cache = RollupCache::new(queries.len() + 2);
    let mut revision = 0u64;

    // Warm the registry: every lane starts with live entries.
    for q in &queries {
        cache
            .run(&wh, revision, q)
            .unwrap_or_else(|e| panic!("warm-up query failed: {e}"));
    }

    let mut m = Mix(DELTA_SEED);
    let mut query_secs = 0.0f64;
    let start = Instant::now();
    for _ in 0..cycles {
        let tracker = wh.delta_tracker();
        let batch = synthetic_batch(&mut m, delta_rows, airports);
        wh.load("Last Minute Sales", batch)
            .unwrap_or_else(|e| panic!("delta load failed: {e}"));
        revision += 1;
        match lane {
            Lane::Incremental => {
                let delta = wh
                    .delta_since(&tracker)
                    .unwrap_or_else(|| panic!("load must be a pure append"));
                cache.apply_delta(&wh, &delta, revision);
            }
            Lane::Purge => cache.purge_stale(revision),
        }
        let q_start = Instant::now();
        for q in &queries {
            std::hint::black_box(
                cache
                    .run(&wh, revision, q)
                    .unwrap_or_else(|e| panic!("post-commit query failed: {e}")),
            );
        }
        query_secs += q_start.elapsed().as_secs_f64();
    }
    let total_us = start.elapsed().as_secs_f64() * 1e6;

    let finals: Vec<_> = queries
        .iter()
        .map(|q| {
            cache
                .run(&wh, revision, q)
                .unwrap_or_else(|e| panic!("final query failed: {e}"))
        })
        .collect();
    (
        LaneReport {
            lane: match lane {
                Lane::Incremental => "incremental",
                Lane::Purge => "purge",
            },
            total_us,
            cycle_us: total_us / cycles as f64,
            query_us: query_secs * 1e6 / cycles as f64,
        },
        finals,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_incremental.json", String::as_str);

    let (base_rows, airports, delta_rows, cycles) = if quick {
        (10_000, 64, 16, 40)
    } else {
        (50_000, 256, 16, 120)
    };
    let queries = read_set().len();

    section("incremental maintenance: fold deltas vs purge-and-recompute");
    println!(
        "base {base_rows} rows, {delta_rows}-row commits × {cycles} cycles, \
         {queries} post-commit queries"
    );
    let (incremental, inc_finals) =
        run_lane(Lane::Incremental, base_rows, airports, delta_rows, cycles);
    let (purge, purge_finals) = run_lane(Lane::Purge, base_rows, airports, delta_rows, cycles);

    // Both lanes replayed the identical commit stream; their final
    // results must agree byte for byte — incremental maintenance is an
    // optimization, never a different answer.
    assert_eq!(
        inc_finals, purge_finals,
        "incremental lane diverged from the purge lane"
    );

    // A cold reference recompute agrees too (the ground truth).
    let reference = {
        let mut wh = synthetic_warehouse(base_rows, airports, WAREHOUSE_SEED);
        let mut m = Mix(DELTA_SEED);
        for _ in 0..cycles {
            let batch = synthetic_batch(&mut m, delta_rows, airports);
            wh.load("Last Minute Sales", batch)
                .unwrap_or_else(|e| panic!("reference load failed: {e}"));
        }
        read_set()
            .iter()
            .map(|q| {
                q.execute_reference(&wh)
                    .unwrap_or_else(|e| panic!("reference query failed: {e}"))
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(
        inc_finals, reference,
        "maintained results diverged from a cold recompute"
    );

    for lane in [&incremental, &purge] {
        println!(
            "{:<12} {:>9.1} µs/cycle  (queries {:>9.1} µs)  total {:>9.1} ms",
            lane.lane,
            lane.cycle_us,
            lane.query_us,
            lane.total_us / 1e3,
        );
    }

    let speedup = purge.cycle_us / incremental.cycle_us.max(1e-9);
    let speedup_floor = 2.0;
    println!("commit-then-query speedup: {speedup:.1}× (floor {speedup_floor:.1}×)");
    assert!(
        speedup >= speedup_floor,
        "incremental maintenance speedup {speedup:.2}× is below the \
         {speedup_floor:.1}× floor on {delta_rows}-row commits"
    );

    let report = BenchReport {
        experiment: "incremental",
        quick,
        base_rows,
        airports,
        delta_rows,
        cycles,
        queries,
        incremental,
        purge,
        speedup,
        speedup_floor,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(out_path, format!("{json}\n")).expect("write bench report");
    println!("\nwrote {out_path}");
}
