//! E6 — Step-3 statistics: how the domain ontology lands in the upper
//! ontology (exact / head-word / new-root placements, instance additions,
//! synonym enrichments such as "JFK" → Kennedy International Airport),
//! plus the head-word-fallback ablation and an idempotence check.

use dwqa_bench::{build_fixture, section, FixtureConfig};
use dwqa_core::PipelineOptions;
use dwqa_ontology::{MatchKind, MergeOptions};

fn report(title: &str, fx: &dwqa_bench::Fixture) {
    section(title);
    let m = &fx.pipeline.merge;
    println!(
        "classes: {} exact, {} head-word, {} new-root",
        m.count(MatchKind::Exact),
        m.count(MatchKind::HeadWord),
        m.count(MatchKind::NewRoot)
    );
    for (label, kind) in &m.class_matches {
        let kind = match kind {
            MatchKind::Exact => "exact   ",
            MatchKind::HeadWord => "headword",
            MatchKind::NewRoot => "new root",
        };
        println!("  {kind} ← {label}");
    }
    println!(
        "instances: {} added, {} already present, {} synonym enrichments",
        m.instances_added,
        m.instances_existing,
        m.synonyms_enriched.len()
    );
    for (term, target) in &m.synonyms_enriched {
        println!("  synonym: {term:?} joined {target:?}");
    }
    println!(
        "enrichment (Step 2) instances fed: {}",
        fx.pipeline.enrichment.instances_added
    );
}

fn main() {
    let fx = build_fixture(FixtureConfig::default());
    report("Step 3 merge — default options", &fx);

    let ablated = build_fixture(FixtureConfig {
        options: PipelineOptions::builder()
            .merge(MergeOptions {
                head_word_fallback: false,
                ..MergeOptions::default()
            })
            .build()
            .unwrap(),
        ..FixtureConfig::default()
    });
    report("Ablation — head-word fallback disabled", &ablated);

    section("Shape check vs the paper");
    println!("Expected: Airport/City/State/Country/Date/… map exactly; 'Last Minute Sales'");
    println!("hangs under 'sale' via its head word (new root when the fallback is off);");
    println!("'JFK' enriches Kennedy International Airport as a synonym.");
}
