//! E9 (extension) — failure injection: how the Step-4 axioms protect the
//! DW when the Web lies.
//!
//! A fraction of the prose weather lines is corrupted: either the unit is
//! dropped (unextractable — the tuned answer type *requires* "number
//! followed by ºC or F") or the value is multiplied by 100 (extractable
//! but rejected by the plausible-range axiom). Precision of what reaches
//! the warehouse must stay at 1.0; only recall may fall with the noise
//! rate.

use dwqa_bench::{daily_questions, expected_points, section};
use dwqa_common::Month;
use dwqa_core::{
    evaluate_temperatures, integrated_schema, ExtractionEval, IntegrationPipeline, PipelineOptions,
};
use dwqa_corpus::{
    default_cities, generate_distractors, generate_weather_corpus, PageStyle, WeatherConfig,
};
use dwqa_engine::SubmitBatch;
use dwqa_warehouse::Warehouse;

fn main() {
    section("Failure injection: corrupted weather lines vs the Step-4 axioms");
    println!("noise | corrupted lines | precision | recall | fed rows | axiom rejections");
    println!("------+-----------------+-----------+--------+----------+-----------------");
    for noise in [0.0f64, 0.1, 0.3, 0.5] {
        let corpus = generate_weather_corpus(
            &WeatherConfig::new(42, 2004, Month::January)
                .with_styles(&[PageStyle::Prose])
                .with_noise(noise),
            &default_cities(),
        );
        let corrupted = corpus.corrupted.clone();
        let mut store = corpus.store;
        for d in generate_distractors(5, 12) {
            store.add(d);
        }
        // Enrich from one sale per airport so locations resolve.
        let mut warehouse = Warehouse::new(integrated_schema());
        let mut rows = Vec::new();
        for c in default_cities() {
            let mut b = dwqa_warehouse::FactRowBuilder::new();
            b.measure("price", dwqa_warehouse::Value::Float(100.0))
                .measure("miles", dwqa_warehouse::Value::Float(500.0))
                .measure("traveler_rate", dwqa_warehouse::Value::Float(0.5))
                .role_member(
                    "Origin",
                    &[("airport_name", dwqa_warehouse::Value::text("Elsewhere"))],
                )
                .role_member(
                    "Destination",
                    &[
                        ("airport_name", dwqa_warehouse::Value::text(c.airport)),
                        ("city_name", dwqa_warehouse::Value::text(c.city)),
                    ],
                )
                .role_member(
                    "Customer",
                    &[("customer_name", dwqa_warehouse::Value::text("Ann"))],
                )
                .role_member(
                    "Date",
                    &[("date", dwqa_warehouse::Value::date(2004, 1, 1).unwrap())],
                );
            rows.push(b.build());
        }
        warehouse.load("Last Minute Sales", rows).unwrap();
        let mut pipeline = IntegrationPipeline::build(warehouse, store, PipelineOptions::default());

        // Ask per-day questions for every city, feed the DW.
        let mut distinct: Vec<&str> = Vec::new();
        for c in default_cities() {
            if !distinct.contains(&c.city) {
                distinct.push(c.city);
            }
        }
        let mut questions = Vec::new();
        for city in &distinct {
            questions.extend(daily_questions(city, 2004, Month::January));
        }
        let feed = pipeline.submit_batch(&questions).feed;
        let axiom_rejections = feed
            .rejected
            .iter()
            .filter(|(_, why)| why.contains("plausible interval"))
            .count();

        // Evaluate what actually reached the warehouse against the truth.
        let rs = dwqa_warehouse::CubeQuery::on("City Weather")
            .group_by("City", "City")
            .group_by("Date", "Date")
            .aggregate("temperature_c", dwqa_warehouse::AggFn::Avg)
            .run(&pipeline.warehouse)
            .unwrap();
        let mut eval = ExtractionEval::default();
        let expected = expected_points(&default_cities(), 2004, Month::January);
        let mut found = Vec::new();
        for row in &rs.rows {
            let city = row[0].as_text().unwrap().to_owned();
            let date = row[1].as_date().unwrap();
            let got = row[2].as_f64().unwrap();
            match corpus.truth.temperature(&city, date) {
                Some(want) if (want - got).abs() < 0.51 => {
                    eval.true_positives += 1;
                    found.push((dwqa_common::text::fold(&city), date));
                }
                _ => eval.false_positives += 1,
            }
        }
        for (city, date) in &expected {
            if !found.contains(&(dwqa_common::text::fold(city), *date)) {
                eval.false_negatives += 1;
            }
        }
        println!(
            "{noise:>5.1} | {:>15} | {:>9.3} | {:>6.3} | {:>8} | {:>15}",
            corrupted.len(),
            eval.precision(),
            eval.recall(),
            rs.rows.len(),
            axiom_rejections,
        );
        let _ = evaluate_temperatures(&[], |_, _| None, &[], 0.5);
    }
    section("Shape check");
    println!("Precision of warehouse contents stays 1.0 at every noise level while recall");
    println!("degrades with the injected corruption. Implausible readings (800ºC) are");
    println!("already discarded by the extraction-stage range axiom, so the feed-level");
    println!("axiom (the second line of defence) reports no survivors to reject; unit-less");
    println!("readings never match the tuned answer shape at all.");
}
