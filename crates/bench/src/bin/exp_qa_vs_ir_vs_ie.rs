//! E4 — the comparison the paper's introduction argues: **QA vs IR vs
//! IE** for feeding a BI system from unstructured data.
//!
//! * IR "only returns unstructured information … which cannot be easily
//!   processed by BI applications" — its structured-output precision is
//!   zero by construction; we also measure the answer-in-text rate and
//!   the user's reading burden.
//! * IE (Badia 2006) fills fixed templates but "does not facilitate the
//!   processing of huge amounts of documents" — its cost scans the whole
//!   corpus, and questions outside its template set return nothing.
//! * QA returns typed tuples from IR-filtered passages; the paper's
//!   argument is exactly this trade: a slower, deeper analysis that BI
//!   can consume directly.

use dwqa_bench::{build_fixture, monthly_question, section, FixtureConfig};
use dwqa_common::{Date, Month};
use dwqa_core::evaluate_temperatures;
use dwqa_engine::QaEngine;
use dwqa_qa::{IeBaseline, IeTemplate, IrBaseline};
use std::time::Instant;

fn main() {
    let question = monthly_question("El Prat", 2004, Month::January);
    println!("Question: {question}\n");
    println!(
        "{:<6} | {:<28} | {:<9} | {:<10} | {:<12} | notes",
        "docs", "system", "tuples", "precision", "query time"
    );
    for &distractors in &[12usize, 112, 1012] {
        let t0 = Instant::now();
        let fx = build_fixture(FixtureConfig {
            distractors,
            ..FixtureConfig::default()
        });
        let index_time = t0.elapsed();
        let n_docs = fx.corpus_size;

        // --- QA -------------------------------------------------------------
        let engine = QaEngine::new(&fx.pipeline);
        let t0 = Instant::now();
        let answers = engine.answer(&question);
        let qa_time = t0.elapsed();
        // A repeat of the same question is served from the answer cache.
        let t0 = Instant::now();
        let cached = engine.answer(&question);
        let cached_time = t0.elapsed();
        assert_eq!(cached, answers);
        let qa_eval = evaluate_temperatures(&answers, |c, d| fx.truth.temperature(c, d), &[], 0.51);
        println!(
            "{n_docs:<6} | {:<28} | {:<9} | {:<10.3} | {:<12?} | typed (temp, date, city, url); index {index_time:?}; cached repeat {cached_time:?}",
            "QA (this paper)",
            answers.len(),
            qa_eval.precision(),
            qa_time,
        );

        // --- IR -------------------------------------------------------------
        // The baselines index the same corpus; rebuild it identically.
        let (store, truth) = dwqa_bench::build_corpus(&FixtureConfig {
            distractors,
            ..FixtureConfig::default()
        });
        let ir = IrBaseline::build(&store);
        let truth_values: Vec<String> = Date::month_days(2004, Month::January)
            .filter_map(|d| truth.temperature("Barcelona", d))
            .map(|t| format!("{t}º C"))
            .collect();
        for (label, results) in [
            ("IR documents (refs 19, 6)", {
                let t0 = Instant::now();
                let r = ir.search_documents(&question, 1);
                (t0.elapsed(), r)
            }),
            ("IR-n passages (ref 9)", {
                let t0 = Instant::now();
                let r = ir.search_passages(&question, 1);
                (t0.elapsed(), r)
            }),
        ]
        .map(|(l, (t, r))| (l, (t, r)))
        {
            let (time, hits) = results;
            let contains = hits
                .first()
                .map(|h| truth_values.iter().filter(|v| h.contains_answer(v)).count())
                .unwrap_or(0);
            let burden = hits.first().map_or(0, |h| h.reading_burden());
            println!(
                "{n_docs:<6} | {label:<28} | {:<9} | {:<10.3} | {time:<12?} | text only; {contains} true readings buried in {burden} chars",
                0, 0.0
            );
        }

        // --- IE -------------------------------------------------------------
        let ie = IeBaseline::new(vec![IeTemplate::Temperature]);
        let t0 = Instant::now();
        let filled = ie.scan(&store);
        let ie_time = t0.elapsed();
        println!(
            "{n_docs:<6} | {:<28} | {:<9} | {:<10} | {ie_time:<12?} | full-corpus scan, fixed templates only",
            "IE templates (ref 1)",
            filled.len(),
            "n/a",
        );
    }
    section("Shape check vs the paper");
    println!("QA: few, typed, high-precision tuples at IR-comparable query latency.");
    println!("IR: zero structured tuples — the user reads text (burden column).");
    println!("IE: extraction without questions; scan time grows linearly with the corpus");
    println!("    and the template set bounds what can ever be asked.");
}
