//! Records the passage-retrieval performance baseline.
//!
//! Times the exhaustive reference scan against the postings-driven pruned
//! path (cold = query compiled every call, warm = compiled once) across
//! window sizes and corpus sizes, checks that both paths return identical
//! passages, and writes the measurements to `BENCH_retrieval.json` so
//! future changes have a recorded trajectory to compare against.
//!
//! Usage: `exp_retrieval_bench [--quick] [--out PATH]`
//!
//! `--quick` shrinks corpora and iteration counts for CI smoke runs.

use dwqa_bench::{build_corpus, section, FixtureConfig};
use dwqa_ir::{InvertedIndex, PassageRetriever};
use dwqa_nlp::Lexicon;
use serde::Serialize;
use std::time::Instant;

/// One measured configuration.
#[derive(Serialize)]
struct Measurement {
    distractors: usize,
    corpus_docs: usize,
    window: usize,
    iterations: u32,
    /// Candidate documents of the benchmark query (≪ `corpus_docs`).
    docs_candidate: usize,
    /// Documents the postings let the scorer skip entirely.
    docs_pruned: usize,
    /// Candidate windows actually scored by the pruned path.
    windows_scored: usize,
    exhaustive_us: f64,
    pruned_cold_us: f64,
    pruned_warm_us: f64,
    speedup_cold: f64,
    speedup_warm: f64,
}

#[derive(Serialize)]
struct BenchReport {
    experiment: &'static str,
    quick: bool,
    query: Vec<(String, f64)>,
    passages_k: usize,
    measurements: Vec<Measurement>,
}

/// Mean wall-clock microseconds per call of `f` over `iters` calls (after
/// a small warm-up).
fn time_us<T>(iters: u32, mut f: impl FnMut() -> T) -> f64 {
    for _ in 0..iters.div_ceil(10).max(1) {
        std::hint::black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

/// The weighted terms of a typical dated question after Module 1 (the day
/// number carries the temporal boost).
fn query_terms() -> Vec<(String, f64)> {
    vec![
        ("temperature".to_owned(), 1.0),
        ("january".to_owned(), 1.0),
        ("15".to_owned(), 3.0),
        ("barcelona".to_owned(), 1.0),
    ]
}

const K: usize = 5;

fn measure(distractors: usize, window: usize, iters: u32) -> Measurement {
    let lexicon = Lexicon::english();
    let (store, _) = build_corpus(&FixtureConfig {
        distractors,
        ..FixtureConfig::default()
    });
    let index = InvertedIndex::build(&lexicon, &store);
    let retriever = PassageRetriever::build(&lexicon, &store, window);
    let terms = query_terms();
    let query = retriever.compile_query(&index, terms.iter().map(|(t, w)| (t.as_str(), *w)));

    // Sanity: the pruned path must return exactly the reference results.
    let (pruned, stats) = retriever.retrieve_query(&query, K);
    let exhaustive = retriever.retrieve_weighted_exhaustive(&index, &terms, K);
    assert_eq!(
        pruned, exhaustive,
        "pruned retrieval diverged from the exhaustive reference"
    );

    let exhaustive_us = time_us(iters, || {
        retriever.retrieve_weighted_exhaustive(&index, &terms, K)
    });
    let pruned_cold_us = time_us(iters, || retriever.retrieve_weighted(&index, &terms, K));
    let pruned_warm_us = time_us(iters, || retriever.retrieve_query(&query, K));

    Measurement {
        distractors,
        corpus_docs: store.len(),
        window,
        iterations: iters,
        docs_candidate: stats.docs_candidate,
        docs_pruned: stats.docs_pruned,
        windows_scored: stats.windows_scored,
        exhaustive_us,
        pruned_cold_us,
        pruned_warm_us,
        speedup_cold: exhaustive_us / pruned_cold_us.max(1e-9),
        speedup_warm: exhaustive_us / pruned_warm_us.max(1e-9),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_retrieval.json", String::as_str);

    let (distractor_steps, iters): (&[usize], u32) = if quick {
        (&[0, 50], 30)
    } else {
        (&[0, 50, 200], 200)
    };
    let windows: &[usize] = if quick { &[8] } else { &[4, 8, 16] };

    section("retrieval bench: exhaustive reference vs pruned postings path");
    let mut measurements = Vec::new();
    for &d in distractor_steps {
        for &w in windows {
            let m = measure(d, w, iters);
            println!(
                "corpus {:>3} docs  window {:>2}  candidates {:>2}/{:<3}  \
                 exhaustive {:>9.1} µs  pruned cold {:>8.1} µs ({:>5.1}×)  \
                 warm {:>8.1} µs ({:>5.1}×)",
                m.corpus_docs,
                m.window,
                m.docs_candidate,
                m.corpus_docs,
                m.exhaustive_us,
                m.pruned_cold_us,
                m.speedup_cold,
                m.pruned_warm_us,
                m.speedup_warm,
            );
            measurements.push(m);
        }
    }

    let report = BenchReport {
        experiment: "retrieval_bench",
        quick,
        query: query_terms(),
        passages_k: K,
        measurements,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(out_path, format!("{json}\n")).expect("write bench report");
    println!("\nwrote {out_path}");
}
