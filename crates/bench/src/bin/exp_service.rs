//! E14 — the QA service under multi-client load: saturation, shedding
//! and the drain guarantee.
//!
//! A `dwqa-server` with a deliberately small footprint (2 workers,
//! 2-slot admission queue, cache off so every request pays the real
//! pipeline cost) faces a closed-loop client sweep. Three claims are
//! demonstrated and recorded:
//!
//! 1. **Explicit shedding** — at 2× the saturating client count the
//!    queue overflows and requests are refused with `busy` + a
//!    retry-after hint, never silently dropped or endlessly queued;
//! 2. **Bounded admitted latency** — because the queue is bounded,
//!    the p50 of *admitted* requests at the heaviest load stays within
//!    2× the unloaded p50 (load shedding converts overload into
//!    refusals, not latency collapse);
//! 3. **Drain loses nothing** — a drain fired into in-flight pipelined
//!    traffic completes every admitted question (`completed ==
//!    admitted` on the server's own counters) before sockets close.
//!
//! Usage: `exp_service [--quick] [--out PATH]`

use dwqa_bench::{build_fixture, daily_questions, section, FixtureConfig};
use dwqa_common::Month;
use dwqa_corpus::PageStyle;
use dwqa_obs::names;
use dwqa_server::{QaClient, QaServer, Request, ServerConfig, Status};
use serde::Serialize;
use std::time::{Duration, Instant};

const WORKERS: usize = 2;
const QUEUE_CAPACITY: usize = 1;

#[derive(Serialize)]
struct SweepPoint {
    clients: usize,
    sent: usize,
    ok: usize,
    shed: usize,
    rate_limited: usize,
    p50_us: u64,
    p95_us: u64,
    throughput_qps: f64,
}

#[derive(Serialize)]
struct DrainReport {
    clients: usize,
    sent: usize,
    responded: usize,
    admitted: u64,
    completed: u64,
    lost: u64,
}

#[derive(Serialize)]
struct BenchReport {
    experiment: &'static str,
    quick: bool,
    workers: usize,
    queue_capacity: usize,
    requests_per_client: usize,
    unloaded_p50_us: u64,
    sweep: Vec<SweepPoint>,
    saturated_clients: usize,
    shed_under_overload: bool,
    loaded_p50_us: u64,
    p50_within_2x: bool,
    drain: DrainReport,
}

fn question_pool() -> Vec<String> {
    let mut pool = Vec::new();
    for city in ["Barcelona", "Madrid", "New York"] {
        pool.extend(daily_questions(city, 2004, Month::January));
    }
    pool
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn server_config() -> ServerConfig {
    ServerConfig::builder()
        .workers(WORKERS)
        .queue_capacity(QUEUE_CAPACITY)
        // Rate limiting is exercised by the test suite; here the
        // buckets are opened wide so the sweep isolates queue-driven
        // shedding.
        .rate_burst(u32::MAX)
        .rate_per_sec(1e9)
        .cache_capacity(0)
        .drain_grace(Duration::from_secs(60))
        .build()
        .unwrap_or_else(|e| panic!("server config: {e}"))
}

/// One closed-loop client: sends `count` asks one at a time and
/// reports (latencies of ok responses, shed count, rate-limited
/// count). A refused request is *not* retried, but the client honours
/// the server's retry-after hint before its next request — the
/// protocol's contract, and what keeps refused clients from busy-
/// spinning the service into the ground.
fn run_client(
    addr: std::net::SocketAddr,
    pool: &[String],
    offset: usize,
    count: usize,
) -> (Vec<u64>, usize, usize) {
    let mut client = QaClient::connect(addr).unwrap_or_else(|e| panic!("connect: {e}"));
    let mut latencies = Vec::with_capacity(count);
    let (mut shed, mut rate_limited) = (0, 0);
    for i in 0..count {
        let q = &pool[(offset + i * 7) % pool.len()];
        let t = Instant::now();
        let resp = client.ask(q).unwrap_or_else(|e| panic!("ask: {e}"));
        let us = t.elapsed().as_micros() as u64;
        match resp.status {
            Status::Ok => latencies.push(us),
            Status::Busy => {
                match resp.reason {
                    Some(dwqa_server::BusyReason::RateLimited) => rate_limited += 1,
                    _ => shed += 1,
                }
                let hint = resp.retry_after_ms.unwrap_or(10).min(100);
                std::thread::sleep(Duration::from_millis(hint));
            }
            Status::Error => panic!("protocol error: {:?}", resp.detail),
        }
    }
    (latencies, shed, rate_limited)
}

fn sweep_point(
    addr: std::net::SocketAddr,
    pool: &[String],
    clients: usize,
    per_client: usize,
) -> SweepPoint {
    let t = Instant::now();
    let results: Vec<(Vec<u64>, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| scope.spawn(move || run_client(addr, pool, c * 11, per_client)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| panic!("client panicked")))
            .collect()
    });
    let elapsed = t.elapsed().as_secs_f64();
    let mut latencies: Vec<u64> = results
        .iter()
        .flat_map(|(l, _, _)| l.iter().copied())
        .collect();
    latencies.sort_unstable();
    let ok = latencies.len();
    let shed: usize = results.iter().map(|(_, s, _)| s).sum();
    let rate_limited: usize = results.iter().map(|(_, _, r)| r).sum();
    SweepPoint {
        clients,
        sent: clients * per_client,
        ok,
        shed,
        rate_limited,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        throughput_qps: ok as f64 / elapsed,
    }
}

/// Pipelined clients interrupted by a drain: every response the server
/// wrote is read back; admitted-vs-completed comes from the counters.
fn drain_phase(quick: bool) -> DrainReport {
    let fx = build_fixture(FixtureConfig {
        styles: vec![PageStyle::Prose],
        ..FixtureConfig::default()
    });
    let server = QaServer::start(fx.pipeline, server_config(), "127.0.0.1:0")
        .unwrap_or_else(|e| panic!("bind: {e}"));
    let addr = server.local_addr();
    let metrics = std::sync::Arc::clone(server.metrics());
    let pool = question_pool();
    let clients = 4;
    let per_client = if quick { 8 } else { 16 };

    let responded: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let pool = &pool;
                scope.spawn(move || {
                    let mut client = QaClient::connect(addr).unwrap_or_else(|e| panic!("{e}"));
                    for i in 0..per_client {
                        let q = &pool[(c * 13 + i * 7) % pool.len()];
                        let id = i as u64 + 1;
                        if client.send(&Request::ask(id, q)).is_err() {
                            break;
                        }
                    }
                    // Read until the drained server closes the socket.
                    let mut seen = 0;
                    while seen < per_client {
                        match client.recv() {
                            Ok(_) => seen += 1,
                            Err(_) => break,
                        }
                    }
                    seen
                })
            })
            .collect();
        // Let some requests land in-flight, then pull the plug.
        std::thread::sleep(Duration::from_millis(30));
        server.drain();
        handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
    });
    assert!(server.join().is_some(), "drain must hand the pipeline back");

    let admitted = metrics.counter_value(names::SERVER_ADMITTED);
    let completed = metrics.counter_value(names::SERVER_COMPLETED);
    DrainReport {
        clients,
        sent: clients * per_client,
        responded,
        admitted,
        completed,
        lost: admitted.saturating_sub(completed),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_service.json", String::as_str);
    let per_client = if quick { 24 } else { 64 };
    // Closed-loop saturation: WORKERS in flight + QUEUE_CAPACITY
    // queued. Beyond that, admission must shed.
    let saturated_clients = WORKERS + QUEUE_CAPACITY;
    let client_counts: Vec<usize> = vec![1, 2, saturated_clients, 2 * saturated_clients];

    section("E14: multi-client service saturation sweep");
    let fx = build_fixture(FixtureConfig {
        styles: vec![PageStyle::Prose],
        ..FixtureConfig::default()
    });
    let server = QaServer::start(fx.pipeline, server_config(), "127.0.0.1:0")
        .unwrap_or_else(|e| panic!("bind: {e}"));
    let addr = server.local_addr();
    let pool = question_pool();

    // Unloaded baseline: one sequential client cannot overrun a
    // 2-worker service, so nothing may be shed here.
    let baseline = sweep_point(addr, &pool, 1, per_client);
    assert_eq!(baseline.shed, 0, "an unloaded service must not shed");
    let unloaded_p50_us = baseline.p50_us;
    println!(
        "unloaded: p50 {unloaded_p50_us} µs, p95 {} µs over {} requests",
        baseline.p95_us, baseline.sent
    );

    let mut sweep = Vec::new();
    for &clients in &client_counts {
        let point = sweep_point(addr, &pool, clients, per_client);
        println!(
            "{:2} clients: {:4} ok, {:4} shed | p50 {:>7} µs, p95 {:>7} µs | {:7.1} q/s",
            point.clients, point.ok, point.shed, point.p50_us, point.p95_us, point.throughput_qps
        );
        sweep.push(point);
    }
    server.drain();
    drop(server.join());

    let overloaded = sweep.last().unwrap_or_else(|| unreachable!());
    let overloaded_clients = overloaded.clients;
    let shed_under_overload = overloaded.shed > 0;
    let loaded_p50_us = overloaded.p50_us;
    let p50_within_2x = loaded_p50_us <= unloaded_p50_us.saturating_mul(2).max(1);

    section("E14: drain under pipelined load");
    let drain = drain_phase(quick);
    println!(
        "drain: {} sent, {} responded, {} admitted, {} completed, {} lost",
        drain.sent, drain.responded, drain.admitted, drain.completed, drain.lost
    );

    let (drain_lost, drain_admitted, drain_completed) =
        (drain.lost, drain.admitted, drain.completed);
    let report = BenchReport {
        experiment: "service_saturation",
        quick,
        workers: WORKERS,
        queue_capacity: QUEUE_CAPACITY,
        requests_per_client: per_client,
        unloaded_p50_us,
        sweep,
        saturated_clients,
        shed_under_overload,
        loaded_p50_us,
        p50_within_2x,
        drain,
    };
    let json = serde_json::to_string_pretty(&report).unwrap_or_else(|e| panic!("json: {e}"));
    std::fs::write(out_path, json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");

    assert!(
        shed_under_overload,
        "2× saturation ({overloaded_clients} clients) must shed with explicit busy responses"
    );
    assert!(
        p50_within_2x,
        "admitted p50 under overload ({loaded_p50_us} µs) must stay within 2× the \
         unloaded p50 ({unloaded_p50_us} µs) — the queue bound failed to cap latency"
    );
    assert_eq!(
        drain_lost, 0,
        "drain abandoned admitted questions (admitted {drain_admitted} vs completed {drain_completed})"
    );
    println!("E14 assertions hold: shed under overload, bounded admitted p50, lossless drain");
}
