//! E1 — regenerates the paper's **Table 1**: the full pipeline trace for
//! the query "What is the weather like in January of 2004 in El Prat?".

use dwqa_bench::{build_fixture, monthly_question, section, FixtureConfig};
use dwqa_common::Month;

fn main() {
    let fx = build_fixture(FixtureConfig::default());
    let question = monthly_question("El Prat", 2004, Month::January);

    section("Table 1 — the output of Step 5 for the Figure 4 web page");
    let trace = fx.pipeline.trace(&question);
    println!("{}", trace.render());

    section("Generated database rows (temperature – date – city – web page)");
    let answers = fx.pipeline.read_path().answer(&question);
    for a in &answers {
        println!("{} – {}", a.tuple_format(), a.url);
    }

    section("Ground-truth check");
    let mut correct = 0usize;
    for a in &answers {
        if let dwqa_qa::AnswerValue::Temperature { celsius, .. } = a.value {
            if let (Some(city), Some(date)) = (a.context_location.as_deref(), a.context_date) {
                if let Some(t) = fx.truth.temperature(city, date) {
                    let ok = (t - celsius).abs() < 0.51;
                    println!(
                        "{} extracted {:.1}ºC, truth {:.1}ºC → {}",
                        date,
                        celsius,
                        t,
                        if ok { "correct" } else { "WRONG" }
                    );
                    correct += usize::from(ok);
                }
            }
        }
    }
    println!(
        "{correct}/{} tuples verified against ground truth",
        answers.len()
    );
}
