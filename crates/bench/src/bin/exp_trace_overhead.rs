//! E13 — the observability tax: traced vs untraced batch answering.
//!
//! Tracing must be a pure observer in cost as well as in behaviour
//! (the behavioural half is `tests/trace_invariance.rs`). Two engines
//! answer the same 64-question batch with caches disabled, one with
//! the tracer off and one collecting a full span tree per question
//! into the flight recorder. Rounds are interleaved so clock drift and
//! cache warming hit both sides equally. Target: <2% mean overhead
//! with tracing enabled; compiling `dwqa-obs` with its `off` feature
//! removes the instrumentation entirely (a `const` short-circuit), so
//! the disabled cost is zero by construction.
//!
//! Usage: `exp_trace_overhead [--quick] [--out PATH]`

use dwqa_bench::{build_fixture, daily_questions, section, FixtureConfig};
use dwqa_common::Month;
use dwqa_corpus::PageStyle;
use dwqa_engine::QaEngine;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct BenchReport {
    experiment: &'static str,
    quick: bool,
    questions: usize,
    rounds: u32,
    workers: usize,
    untraced_mean_us: f64,
    traced_mean_us: f64,
    overhead_pct: f64,
    spans_per_question: usize,
    budget_pct: f64,
}

fn batch_us(engine: &QaEngine, questions: &[String]) -> f64 {
    let t = Instant::now();
    let reports = engine.answer_batch_checked(questions);
    let us = t.elapsed().as_secs_f64() * 1e6;
    assert_eq!(reports.len(), questions.len());
    us
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_trace_overhead.json", String::as_str);
    let rounds: u32 = if quick { 10 } else { 40 };
    let workers = 4;

    section("E13: traced vs untraced 64-question batch (caches off)");
    let fx = build_fixture(FixtureConfig {
        styles: vec![PageStyle::Prose],
        ..FixtureConfig::default()
    });
    let mut questions: Vec<String> = Vec::new();
    for city in ["Barcelona", "Madrid", "New York"] {
        questions.extend(daily_questions(city, 2004, Month::January));
    }
    questions.truncate(64);

    let untraced = QaEngine::new(&fx.pipeline)
        .with_workers(workers)
        .with_cache_capacity(0)
        .with_tracing(false);
    let traced = QaEngine::new(&fx.pipeline)
        .with_workers(workers)
        .with_cache_capacity(0)
        .with_tracing(true)
        .with_trace_capacity(questions.len());

    // Warm-up: touch every code path once on both engines.
    let _ = batch_us(&untraced, &questions);
    let _ = batch_us(&traced, &questions);

    let (mut untraced_total, mut traced_total) = (0.0f64, 0.0f64);
    for round in 0..rounds {
        // Alternate which side goes first so drift cancels.
        if round % 2 == 0 {
            untraced_total += batch_us(&untraced, &questions);
            traced_total += batch_us(&traced, &questions);
        } else {
            traced_total += batch_us(&traced, &questions);
            untraced_total += batch_us(&untraced, &questions);
        }
    }
    let untraced_mean_us = untraced_total / f64::from(rounds);
    let traced_mean_us = traced_total / f64::from(rounds);
    let overhead_pct = (traced_mean_us - untraced_mean_us) / untraced_mean_us * 100.0;
    let spans_per_question = traced
        .flight_recorder()
        .last()
        .map(|t| t.spans.len())
        .unwrap_or(0);

    // Quick CI boxes are noisy; the 2% budget is asserted on full runs.
    let budget_pct = if quick { 10.0 } else { 2.0 };
    println!(
        "{rounds} rounds × {} questions on {workers} workers:\n\
         untraced {untraced_mean_us:>10.1} µs/batch\n\
         traced   {traced_mean_us:>10.1} µs/batch ({spans_per_question} spans/question)\n\
         overhead {overhead_pct:>9.2} %   (budget {budget_pct}%)",
        questions.len(),
    );
    assert!(
        untraced.flight_recorder().is_empty(),
        "a disabled tracer must record nothing"
    );
    assert!(
        !traced.flight_recorder().is_empty(),
        "an enabled tracer must record traces"
    );
    assert!(
        overhead_pct < budget_pct,
        "tracing overhead {overhead_pct:.2}% exceeds the {budget_pct}% budget"
    );

    let report = BenchReport {
        experiment: "trace_overhead",
        quick,
        questions: questions.len(),
        rounds,
        workers,
        untraced_mean_us,
        traced_mean_us,
        overhead_pct,
        spans_per_question,
        budget_pct,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(out_path, format!("{json}\n")).expect("write bench report");
    println!("\nwrote {out_path}");
}
