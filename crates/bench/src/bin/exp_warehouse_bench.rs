//! Records the warehouse roll-up performance baseline (experiment E16).
//!
//! Times the row-at-a-time reference executor against the compiled
//! columnar path (cold = plan compiled every call, warm = plan served
//! from the warehouse plan cache) across group cardinalities — from the
//! zero-group global aggregate to a composed City×Date roll-up — checks
//! that both paths return identical result sets, measures answer-cache
//! throughput across shard counts and thread counts, and writes the
//! measurements to `BENCH_warehouse.json` so future changes have a
//! recorded trajectory to compare against.
//!
//! Usage: `exp_warehouse_bench [--quick] [--out PATH]`
//!
//! `--quick` shrinks fact tables and iteration counts for CI smoke runs.

use dwqa_bench::section;
use dwqa_engine::AnswerCache;
use dwqa_warehouse::testing::synthetic_warehouse;
use dwqa_warehouse::{AggFn, CubeQuery, Predicate, Value, Warehouse};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// One measured roll-up configuration.
#[derive(Serialize)]
struct RollupMeasurement {
    name: &'static str,
    fact_rows: usize,
    /// Result rows (group count) of the query.
    groups: usize,
    iterations: u32,
    reference_us: f64,
    compiled_cold_us: f64,
    compiled_warm_us: f64,
    speedup_cold: f64,
    speedup_warm: f64,
}

/// One measured answer-cache contention configuration.
#[derive(Serialize)]
struct CacheMeasurement {
    shards: usize,
    threads: usize,
    /// Operations per thread (one store + one lookup + one len each).
    ops_per_thread: u32,
    elapsed_us: f64,
    ops_per_sec: f64,
}

#[derive(Serialize)]
struct BenchReport {
    experiment: &'static str,
    quick: bool,
    rollups: Vec<RollupMeasurement>,
    cache: Vec<CacheMeasurement>,
}

/// Mean wall-clock microseconds per call of `f` over `iters` calls
/// (after a small warm-up).
fn time_us<T>(iters: u32, mut f: impl FnMut() -> T) -> f64 {
    for _ in 0..iters.div_ceil(10).max(1) {
        std::hint::black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

/// The group-cardinality sweep: zero groups (the global-aggregate fast
/// path), coarse and fine single-coordinate roll-ups, a composed
/// two-coordinate roll-up, and a filtered variant.
fn sweep_queries() -> Vec<(&'static str, CubeQuery)> {
    vec![
        (
            "global_sum",
            CubeQuery::on("Last Minute Sales")
                .aggregate("price", AggFn::Sum)
                .aggregate("miles", AggFn::Avg),
        ),
        (
            "by_country",
            CubeQuery::on("Last Minute Sales")
                .group_by("Destination", "Country")
                .aggregate("price", AggFn::Sum),
        ),
        (
            "by_city",
            CubeQuery::on("Last Minute Sales")
                .group_by("Destination", "City")
                .aggregate("price", AggFn::Sum)
                .aggregate("price", AggFn::Count),
        ),
        (
            "by_airport",
            CubeQuery::on("Last Minute Sales")
                .group_by("Destination", "Airport")
                .aggregate("price", AggFn::Sum)
                .aggregate("miles", AggFn::Max),
        ),
        (
            "by_city_date",
            CubeQuery::on("Last Minute Sales")
                .group_by("Destination", "City")
                .group_by("Date", "Date")
                .aggregate("price", AggFn::Count),
        ),
        (
            "filtered_by_city",
            CubeQuery::on("Last Minute Sales")
                .filter(
                    "Destination",
                    "Country",
                    Predicate::Eq(Value::text("Spain")),
                )
                .group_by("Destination", "City")
                .aggregate("price", AggFn::Sum),
        ),
    ]
}

fn measure_rollup(
    name: &'static str,
    wh: &Warehouse,
    query: &CubeQuery,
    iters: u32,
) -> RollupMeasurement {
    // Sanity: the compiled path must return exactly the reference rows.
    let reference = query.execute_reference(wh).expect("reference executes");
    let compiled = query.run(wh).expect("compiled path executes");
    assert_eq!(
        reference, compiled,
        "compiled roll-up diverged from the reference on {name}"
    );

    let reference_us = time_us(iters, || query.execute_reference(wh));
    // Cold: pay plan compilation on every call (what a plan-cache-less
    // engine would do).
    let compiled_cold_us = time_us(iters, || {
        query
            .compile(wh)
            .expect("compiles")
            .execute(wh)
            .expect("executes")
    });
    // Warm: `run` resolves the plan through the warehouse plan cache.
    let compiled_warm_us = time_us(iters, || query.run(wh));

    RollupMeasurement {
        name,
        fact_rows: wh
            .fact("Last Minute Sales")
            .map(dwqa_warehouse::FactTable::len)
            .unwrap_or(0),
        groups: reference.rows.len(),
        iterations: iters,
        reference_us,
        compiled_cold_us,
        compiled_warm_us,
        speedup_cold: reference_us / compiled_cold_us.max(1e-9),
        speedup_warm: reference_us / compiled_warm_us.max(1e-9),
    }
}

/// Hammers one shared cache from `threads` workers (store + lookup +
/// lock-free len per op) and reports aggregate throughput.
fn measure_cache(shards: usize, threads: usize, ops: u32) -> CacheMeasurement {
    let cache = Arc::new(AnswerCache::with_shards(4096, shards));
    // Pre-populate so lookups mostly hit.
    for i in 0..1024u32 {
        cache.store(format!("warm {i}"), 0, vec![]);
    }
    let start = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                for i in 0..ops {
                    let key = format!("warm {}", (i.wrapping_mul(t as u32 + 1)) % 1024);
                    cache.store(key.clone(), 0, vec![]);
                    std::hint::black_box(cache.lookup(&key, 0));
                    std::hint::black_box(cache.len());
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("cache worker");
    }
    let elapsed_us = start.elapsed().as_secs_f64() * 1e6;
    let total_ops = f64::from(ops) * threads as f64;
    CacheMeasurement {
        shards,
        threads,
        ops_per_thread: ops,
        elapsed_us,
        ops_per_sec: total_ops / (elapsed_us / 1e6).max(1e-9),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_warehouse.json", String::as_str);

    let (rows, airports, iters) = if quick {
        (2_000, 64, 20)
    } else {
        (50_000, 256, 60)
    };
    let cache_ops: u32 = if quick { 2_000 } else { 20_000 };

    section("warehouse bench: reference executor vs compiled columnar path");
    let wh = synthetic_warehouse(rows, airports, 0x5EED);
    let mut rollups = Vec::new();
    for (name, query) in sweep_queries() {
        let m = measure_rollup(name, &wh, &query, iters);
        println!(
            "{:<17} {:>6} rows → {:>5} groups  reference {:>9.1} µs  \
             cold {:>8.1} µs ({:>4.1}×)  warm {:>8.1} µs ({:>4.1}×)",
            m.name,
            m.fact_rows,
            m.groups,
            m.reference_us,
            m.compiled_cold_us,
            m.speedup_cold,
            m.compiled_warm_us,
            m.speedup_warm,
        );
        rollups.push(m);
    }

    section("answer cache: shard contention");
    let shard_steps: &[usize] = &[1, 2, 4, 8];
    let thread_steps: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut cache = Vec::new();
    for &s in shard_steps {
        for &t in thread_steps {
            let m = measure_cache(s, t, cache_ops);
            println!(
                "shards {s}  threads {t}  {:>10.0} ops/s  ({:.1} ms total)",
                m.ops_per_sec,
                m.elapsed_us / 1e3,
            );
            cache.push(m);
        }
    }

    // Acceptance gates: the compiled path must beat the reference, and
    // serving plans from the cache must beat recompiling them.
    let floor = if quick { 1.0 } else { 2.0 };
    let best_warm = rollups.iter().map(|m| m.speedup_warm).fold(0.0, f64::max);
    assert!(
        best_warm >= floor,
        "best compiled speedup {best_warm:.2}× is below the {floor:.1}× floor"
    );
    let cold_total: f64 = rollups.iter().map(|m| m.compiled_cold_us).sum();
    let warm_total: f64 = rollups.iter().map(|m| m.compiled_warm_us).sum();
    assert!(
        warm_total < cold_total,
        "plan-cache-warm ({warm_total:.1} µs) should beat cold ({cold_total:.1} µs)"
    );

    let report = BenchReport {
        experiment: "warehouse_bench",
        quick,
        rollups,
        cache,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(out_path, format!("{json}\n")).expect("write bench report");
    println!("\nwrote {out_path}");
}
