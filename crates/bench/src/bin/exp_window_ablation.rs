//! E10 (extension) — the IR-n passage-window ablation.
//!
//! The paper fixes the passage size at eight consecutive sentences
//! (footnote 6) without justifying it. This experiment sweeps the window
//! and measures end-to-end extraction quality: too small a window loses
//! the date-heading context the extractor needs; too large a window
//! drowns the reading among competitors (and costs retrieval time —
//! measured separately in the Criterion suite).

use dwqa_bench::{build_fixture, daily_questions, section, FixtureConfig};
use dwqa_common::Month;
use dwqa_core::{evaluate_temperatures, ExtractionEval, PipelineOptions};
use dwqa_corpus::PageStyle;
use dwqa_qa::AliQAnConfig;

fn main() {
    section("Passage window (sentences) vs extraction quality");
    println!("window | precision | recall |   f1");
    println!("-------+-----------+--------+------");
    for window in [1usize, 2, 4, 8, 16, 32] {
        let fx = build_fixture(FixtureConfig {
            styles: vec![PageStyle::Prose],
            options: PipelineOptions::builder()
                .qa(AliQAnConfig::builder()
                    .passage_window(window)
                    .build()
                    .unwrap())
                .build()
                .unwrap(),
            ..FixtureConfig::default()
        });
        let read = fx.pipeline.read_path();
        let mut eval = ExtractionEval::default();
        for city in ["Barcelona", "New York", "Madrid"] {
            let mut answers = Vec::new();
            for q in daily_questions(city, 2004, Month::January) {
                answers.extend(read.answer(&q).into_iter().next());
            }
            let expected: Vec<(String, dwqa_common::Date)> =
                dwqa_common::Date::month_days(2004, Month::January)
                    .map(|d| (city.to_owned(), d))
                    .collect();
            eval.merge(&evaluate_temperatures(
                &answers,
                |c, d| fx.truth.temperature(c, d),
                &expected,
                0.51,
            ));
        }
        let marker = if window == 8 {
            "  ← paper setting"
        } else {
            ""
        };
        println!(
            "{window:>6} | {:>9.3} | {:>6.3} | {:>5.3}{marker}",
            eval.precision(),
            eval.recall(),
            eval.f1()
        );
    }
    section("Shape check");
    println!("Quality is flat-to-slightly-falling across windows once the heading+reading");
    println!("pair fits (window ≥ 2); the paper's 8 sits on the plateau, trading recall");
    println!("against the retrieval latency measured in benches/microbench.rs.");
}
