//! Shared fixtures for the experiment binaries and benchmarks.
//!
//! Every experiment builds the same kind of world: a seeded synthetic
//! corpus (weather pages + distractors), a warehouse loaded with the
//! correlated sales source, and the five-step integration pipeline on
//! top. The helpers here keep the experiment binaries small and make
//! every run reproducible from its seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use dwqa_common::{Date, Month};
use dwqa_core::{integrated_schema, IntegrationPipeline, PipelineOptions};
use dwqa_corpus::{
    default_cities, generate_distractors, generate_intranet, generate_sales,
    generate_weather_corpus, CityClimate, GroundTruth, PageStyle, SalesConfig, WeatherConfig,
};
use dwqa_ir::DocumentStore;
use dwqa_warehouse::Warehouse;

pub use dwqa_corpus::weather::page_url;

/// What a fixture should contain.
#[derive(Debug, Clone)]
pub struct FixtureConfig {
    /// RNG seed.
    pub seed: u64,
    /// Months of weather pages + sales.
    pub months: Vec<(i32, Month)>,
    /// Page styles per city.
    pub styles: Vec<PageStyle>,
    /// Number of distractor documents.
    pub distractors: usize,
    /// Include the company-intranet reports/emails.
    pub intranet: bool,
    /// Pipeline options (ablations live here).
    pub options: PipelineOptions,
}

impl Default for FixtureConfig {
    fn default() -> FixtureConfig {
        FixtureConfig {
            seed: 42,
            months: vec![(2004, Month::January)],
            styles: vec![PageStyle::Prose, PageStyle::Table],
            distractors: 12,
            intranet: false,
            options: PipelineOptions::default(),
        }
    }
}

/// A fully built experiment world.
pub struct Fixture {
    /// The integrated pipeline (Steps 1–4 done, corpus indexed).
    pub pipeline: IntegrationPipeline,
    /// Ground truth for every generated weather point.
    pub truth: GroundTruth,
    /// The city set.
    pub cities: Vec<CityClimate>,
    /// Size of the indexed corpus.
    pub corpus_size: usize,
}

/// Builds the corpus (without the pipeline): weather pages for each month
/// plus distractors. Also returns the merged ground truth.
pub fn build_corpus(config: &FixtureConfig) -> (DocumentStore, GroundTruth) {
    let cities = default_cities();
    let mut store = DocumentStore::new();
    let mut truth = GroundTruth::new();
    for (i, (year, month)) in config.months.iter().enumerate() {
        let wcfg = WeatherConfig::new(config.seed.wrapping_add(i as u64), *year, *month)
            .with_styles(&config.styles);
        let corpus = generate_weather_corpus(&wcfg, &cities);
        for (_, doc) in corpus.store.iter() {
            store.add(doc.clone());
        }
        truth.extend(&corpus.truth);
    }
    for doc in generate_distractors(config.seed ^ 0xD15C0, config.distractors) {
        store.add(doc);
    }
    if config.intranet {
        let city_names: Vec<&str> = cities.iter().map(|c| c.city).collect();
        let (year, month) = config
            .months
            .first()
            .copied()
            .unwrap_or((2004, Month::January));
        for doc in generate_intranet(config.seed ^ 0x17A, &city_names, year, month).documents {
            store.add(doc);
        }
    }
    (store, truth)
}

/// Builds the full fixture: corpus, correlated sales, pipeline.
pub fn build_fixture(config: FixtureConfig) -> Fixture {
    let cities = default_cities();
    let (store, truth) = build_corpus(&config);
    let mut warehouse = Warehouse::new(integrated_schema());
    let sales = generate_sales(&SalesConfig::default(), &cities, &truth);
    warehouse
        .load("Last Minute Sales", sales)
        .expect("generated sales rows fit the schema");
    let corpus_size = store.len();
    let pipeline = IntegrationPipeline::build(warehouse, store, config.options);
    Fixture {
        pipeline,
        truth,
        cities,
        corpus_size,
    }
}

/// The per-day questions Step 5 asks for one city and month (the paper's
/// question shape, one per day: "What is the temperature on January 15,
/// 2004 in Barcelona?").
pub fn daily_questions(city: &str, year: i32, month: Month) -> Vec<String> {
    Date::month_days(year, month)
        .map(|d| {
            format!(
                "What is the temperature on {} {}, {} in {}?",
                month.name(),
                d.day(),
                year,
                city
            )
        })
        .collect()
}

/// The month-level question of the paper's Table 1.
pub fn monthly_question(city: &str, year: i32, month: Month) -> String {
    format!(
        "What is the weather like in {} of {} in {}?",
        month.name(),
        year,
        city
    )
}

/// The `(city, date)` points a perfect system would extract for a month.
pub fn expected_points(cities: &[CityClimate], year: i32, month: Month) -> Vec<(String, Date)> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for c in cities {
        if seen.insert(dwqa_common::text::fold(c.city)) {
            for d in Date::month_days(year, month) {
                out.push((c.city.to_owned(), d));
            }
        }
    }
    out
}

/// Prints a section header for experiment output.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_with_distractors() {
        let fx = build_fixture(FixtureConfig {
            distractors: 6,
            styles: vec![PageStyle::Prose],
            ..FixtureConfig::default()
        });
        // 7 distinct cities × 1 prose page + 6 distractors.
        assert_eq!(fx.corpus_size, 13);
        assert!(fx.truth.len() >= 7 * 31);
        assert_eq!(fx.cities.len(), 8);
        assert!(fx.pipeline.enrichment.instances_added > 0);
    }

    #[test]
    fn daily_questions_cover_the_month() {
        let qs = daily_questions("Barcelona", 2004, Month::January);
        assert_eq!(qs.len(), 31);
        assert!(qs[14].contains("January 15, 2004"));
        assert!(qs[14].contains("Barcelona"));
    }

    #[test]
    fn expected_points_deduplicate_shared_cities() {
        let pts = expected_points(&default_cities(), 2004, Month::January);
        // 7 distinct cities (New York appears twice in the city list).
        assert_eq!(pts.len(), 7 * 31);
    }
}
