//! The shared configuration-validation error.
//!
//! Every builder in the workspace follows one convention (DESIGN.md §6):
//! `T::builder() … .build() -> Result<T, ConfigError>`, validating
//! ranges at `build()` time instead of clamping silently or panicking
//! at first use. The error type lives here — the one crate everything
//! depends on — so `dwqa-qa`, `dwqa-faults`, `dwqa-core` and
//! `dwqa-server` all report invalid knobs the same way, and
//! `dwqa_core::Error` can absorb them all through a single `From`.

use std::fmt;

/// A configuration knob rejected by a builder's `build()` validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending field, e.g. `"max_attempts"`.
    pub field: &'static str,
    /// Why the value is invalid, including the value itself.
    pub message: String,
}

impl ConfigError {
    /// A new validation error for `field`.
    pub fn new(field: &'static str, message: impl Into<String>) -> ConfigError {
        ConfigError {
            field,
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config: {}: {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_field_and_message() {
        let e = ConfigError::new("max_attempts", "must be at least 1 (got 0)");
        assert_eq!(
            e.to_string(),
            "invalid config: max_attempts: must be at least 1 (got 0)"
        );
    }
}
