//! A minimal proleptic-Gregorian calendar.
//!
//! Implements the civil-date ↔ day-number conversion of Howard Hinnant's
//! `days_from_civil` algorithm, which is exact for all representable years.
//! Only what the reproduction needs is provided: construction, validation,
//! ordering, day arithmetic, weekday computation and English month/weekday
//! names (the corpus generator and the temporal entity recogniser both speak
//! the paper's date formats, e.g. "Monday, January 31, 2004").

use serde::{Deserialize, Serialize};
use std::fmt;

/// A month of the Gregorian calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Month {
    January = 1,
    February = 2,
    March = 3,
    April = 4,
    May = 5,
    June = 6,
    July = 7,
    August = 8,
    September = 9,
    October = 10,
    November = 11,
    December = 12,
}

impl Month {
    /// All months in calendar order.
    pub const ALL: [Month; 12] = [
        Month::January,
        Month::February,
        Month::March,
        Month::April,
        Month::May,
        Month::June,
        Month::July,
        Month::August,
        Month::September,
        Month::October,
        Month::November,
        Month::December,
    ];

    /// The month for a 1-based number, if in `1..=12`.
    pub fn from_number(n: u32) -> Option<Month> {
        Month::ALL.get(n.checked_sub(1)? as usize).copied()
    }

    /// The 1-based month number.
    pub fn number(self) -> u32 {
        self as u32
    }

    /// The English name, capitalised ("January").
    pub fn name(self) -> &'static str {
        match self {
            Month::January => "January",
            Month::February => "February",
            Month::March => "March",
            Month::April => "April",
            Month::May => "May",
            Month::June => "June",
            Month::July => "July",
            Month::August => "August",
            Month::September => "September",
            Month::October => "October",
            Month::November => "November",
            Month::December => "December",
        }
    }

    /// Parses an English month name or common three-letter abbreviation,
    /// case-insensitively.
    pub fn parse(s: &str) -> Option<Month> {
        let lower = s.trim_end_matches('.').to_ascii_lowercase();
        Month::ALL.iter().copied().find(|m| {
            let name = m.name().to_ascii_lowercase();
            name == lower || (lower.len() == 3 && name.starts_with(&lower))
        })
    }

    /// Number of days in this month for the given year.
    pub fn days_in(self, year: i32) -> u32 {
        match self {
            Month::January
            | Month::March
            | Month::May
            | Month::July
            | Month::August
            | Month::October
            | Month::December => 31,
            Month::April | Month::June | Month::September | Month::November => 30,
            Month::February => {
                if is_leap_year(year) {
                    29
                } else {
                    28
                }
            }
        }
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A day of the week.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Weekday {
    Monday = 0,
    Tuesday = 1,
    Wednesday = 2,
    Thursday = 3,
    Friday = 4,
    Saturday = 5,
    Sunday = 6,
}

impl Weekday {
    /// All weekdays, Monday first (ISO order).
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// The English name ("Monday").
    pub fn name(self) -> &'static str {
        match self {
            Weekday::Monday => "Monday",
            Weekday::Tuesday => "Tuesday",
            Weekday::Wednesday => "Wednesday",
            Weekday::Thursday => "Thursday",
            Weekday::Friday => "Friday",
            Weekday::Saturday => "Saturday",
            Weekday::Sunday => "Sunday",
        }
    }

    /// Parses an English weekday name, case-insensitively.
    pub fn parse(s: &str) -> Option<Weekday> {
        let lower = s.to_ascii_lowercase();
        Weekday::ALL
            .iter()
            .copied()
            .find(|d| d.name().to_ascii_lowercase() == lower)
    }
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// A calendar date in the proleptic Gregorian calendar.
///
/// Internally stored as year / month / day; ordering is chronological.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    year: i32,
    month: Month,
    day: u32,
}

impl Date {
    /// Constructs a date, validating the day against the month length.
    pub fn new(year: i32, month: Month, day: u32) -> Option<Date> {
        if day >= 1 && day <= month.days_in(year) {
            Some(Date { year, month, day })
        } else {
            None
        }
    }

    /// Constructs from numeric year/month/day.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Option<Date> {
        Date::new(year, Month::from_number(month)?, day)
    }

    /// The year.
    pub fn year(self) -> i32 {
        self.year
    }

    /// The month.
    pub fn month(self) -> Month {
        self.month
    }

    /// The day of month (1-based).
    pub fn day(self) -> u32 {
        self.day
    }

    /// Days since the civil epoch 1970-01-01 (negative before it).
    ///
    /// Hinnant's `days_from_civil`, exact over the full `i32` year range we
    /// use.
    pub fn days_from_epoch(self) -> i64 {
        let y = i64::from(self.year) - i64::from(self.month.number() <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = i64::from(self.month.number());
        let d = i64::from(self.day);
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146097 + doe - 719468
    }

    /// The inverse of [`Date::days_from_epoch`].
    pub fn from_days_from_epoch(days: i64) -> Date {
        let z = days + 719468;
        let era = if z >= 0 { z } else { z - 146096 } / 146097;
        let doe = z - era * 146097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
        let year = (y + i64::from(m <= 2)) as i32;
        Date::from_ymd(year, m, d).expect("round-trip of a valid day number")
    }

    /// The weekday of this date.
    pub fn weekday(self) -> Weekday {
        // 1970-01-01 was a Thursday (index 3 with Monday = 0).
        let wd = (self.days_from_epoch() + 3).rem_euclid(7);
        Weekday::ALL[wd as usize]
    }

    /// The date `n` days after (`n` may be negative).
    pub fn add_days(self, n: i64) -> Date {
        Date::from_days_from_epoch(self.days_from_epoch() + n)
    }

    /// Signed number of days from `self` to `other`.
    pub fn days_until(self, other: Date) -> i64 {
        other.days_from_epoch() - self.days_from_epoch()
    }

    /// The first day of this date's month.
    pub fn first_of_month(self) -> Date {
        Date::new(self.year, self.month, 1).expect("day 1 is always valid")
    }

    /// Iterates every date of the given month.
    pub fn month_days(year: i32, month: Month) -> impl Iterator<Item = Date> {
        (1..=month.days_in(year)).map(move |d| Date::new(year, month, d).expect("in range"))
    }

    /// Formats as the paper's long form: "Monday, January 31, 2004".
    pub fn long_format(self) -> String {
        format!(
            "{}, {} {}, {}",
            self.weekday(),
            self.month,
            self.day,
            self.year
        )
    }

    /// Formats as ISO-8601: "2004-01-31".
    pub fn iso_format(self) -> String {
        format!(
            "{:04}-{:02}-{:02}",
            self.year,
            self.month.number(),
            self.day
        )
    }

    /// Parses an ISO-8601 `YYYY-MM-DD` string.
    pub fn parse_iso(s: &str) -> Option<Date> {
        let mut parts = s.splitn(3, '-');
        let y: i32 = parts.next()?.parse().ok()?;
        let m: u32 = parts.next()?.parse().ok()?;
        let d: u32 = parts.next()?.parse().ok()?;
        Date::from_ymd(y, m, d)
    }
}

impl fmt::Debug for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.iso_format())
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.iso_format())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn month_lengths_respect_leap_years() {
        assert_eq!(Month::February.days_in(2004), 29);
        assert_eq!(Month::February.days_in(1900), 28);
        assert_eq!(Month::February.days_in(2000), 29);
        assert_eq!(Month::January.days_in(2004), 31);
        assert_eq!(Month::April.days_in(2004), 30);
    }

    #[test]
    fn invalid_dates_are_rejected() {
        assert!(Date::from_ymd(2004, 2, 30).is_none());
        assert!(Date::from_ymd(2004, 13, 1).is_none());
        assert!(Date::from_ymd(2004, 0, 1).is_none());
        assert!(Date::from_ymd(2004, 4, 31).is_none());
        assert!(Date::from_ymd(2004, 4, 0).is_none());
    }

    #[test]
    fn epoch_is_day_zero_and_a_thursday() {
        let epoch = Date::from_ymd(1970, 1, 1).unwrap();
        assert_eq!(epoch.days_from_epoch(), 0);
        assert_eq!(epoch.weekday(), Weekday::Thursday);
    }

    #[test]
    fn paper_example_date_is_a_saturday_long_formatted() {
        // The paper's Figure 4 passage claims "Monday, January 31, 2004";
        // the real Jan 31, 2004 was a Saturday. We reproduce the *format*
        // faithfully and the calendar correctly.
        let d = Date::from_ymd(2004, 1, 31).unwrap();
        assert_eq!(d.weekday(), Weekday::Saturday);
        assert_eq!(d.long_format(), "Saturday, January 31, 2004");
    }

    #[test]
    fn iso_round_trip() {
        let d = Date::from_ymd(2008, 1, 15).unwrap();
        assert_eq!(Date::parse_iso(&d.iso_format()), Some(d));
    }

    #[test]
    fn month_parse_accepts_names_and_abbreviations() {
        assert_eq!(Month::parse("january"), Some(Month::January));
        assert_eq!(Month::parse("Jan"), Some(Month::January));
        assert_eq!(Month::parse("SEP"), Some(Month::September));
        assert_eq!(Month::parse("sept"), None);
        assert_eq!(Month::parse("foo"), None);
    }

    #[test]
    fn weekday_parse() {
        assert_eq!(Weekday::parse("monday"), Some(Weekday::Monday));
        assert_eq!(Weekday::parse("SUNDAY"), Some(Weekday::Sunday));
        assert_eq!(Weekday::parse("mon"), None);
    }

    #[test]
    fn add_days_crosses_month_and_year_boundaries() {
        let d = Date::from_ymd(2003, 12, 31).unwrap();
        assert_eq!(d.add_days(1), Date::from_ymd(2004, 1, 1).unwrap());
        assert_eq!(d.add_days(31 + 29), Date::from_ymd(2004, 2, 29).unwrap());
        assert_eq!(d.add_days(-365), Date::from_ymd(2002, 12, 31).unwrap());
    }

    #[test]
    fn month_days_enumerates_whole_month() {
        let days: Vec<Date> = Date::month_days(2004, Month::January).collect();
        assert_eq!(days.len(), 31);
        assert_eq!(days[0], Date::from_ymd(2004, 1, 1).unwrap());
        assert_eq!(days[30], Date::from_ymd(2004, 1, 31).unwrap());
    }

    #[test]
    fn ordering_is_chronological() {
        let a = Date::from_ymd(2004, 1, 31).unwrap();
        let b = Date::from_ymd(2004, 2, 1).unwrap();
        let c = Date::from_ymd(2005, 1, 1).unwrap();
        assert!(a < b && b < c);
    }

    proptest! {
        #[test]
        fn prop_day_number_round_trips(days in -1_000_000i64..1_000_000) {
            let d = Date::from_days_from_epoch(days);
            prop_assert_eq!(d.days_from_epoch(), days);
        }

        #[test]
        fn prop_add_days_is_additive(days in -100_000i64..100_000, a in -500i64..500, b in -500i64..500) {
            let d = Date::from_days_from_epoch(days);
            prop_assert_eq!(d.add_days(a).add_days(b), d.add_days(a + b));
        }

        #[test]
        fn prop_consecutive_days_cycle_weekdays(days in -100_000i64..100_000) {
            let d = Date::from_days_from_epoch(days);
            let today = d.weekday() as i64;
            let tomorrow = d.add_days(1).weekday() as i64;
            prop_assert_eq!((today + 1).rem_euclid(7), tomorrow);
        }

        #[test]
        fn prop_ymd_round_trips(y in 1800i32..2200, m in 1u32..=12, d in 1u32..=31) {
            if let Some(date) = Date::from_ymd(y, m, d) {
                let back = Date::from_days_from_epoch(date.days_from_epoch());
                prop_assert_eq!(back, date);
                prop_assert_eq!(Date::parse_iso(&date.iso_format()), Some(date));
            }
        }
    }
}
