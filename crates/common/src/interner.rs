//! A simple string interner.
//!
//! The NLP lexicon, the IR vocabulary and the ontology lexicon all keep
//! large numbers of repeated strings (lemmas, surface forms, concept
//! labels). Interning gives each distinct string a small copyable
//! [`Symbol`] so the rest of the system compares and hashes integers.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A handle to an interned string. Cheap to copy, compare and hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw index of the symbol inside its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An append-only string interner.
///
/// Symbols are only meaningful relative to the interner that produced them;
/// mixing symbols across interners is a logic error (it cannot cause memory
/// unsafety, only wrong lookups).
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<Box<str>, Symbol>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `s`, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("interner capacity exceeded"));
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Looks up a previously interned string without interning.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Resolves a symbol if it belongs to this interner.
    pub fn try_resolve(&self, sym: Symbol) -> Option<&str> {
        self.strings.get(sym.index()).map(|s| &**s)
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates all interned strings with their symbols, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("temperature");
        let b = i.intern("temperature");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("airport");
        let b = i.intern("airline");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "airport");
        assert_eq!(i.resolve(b), "airline");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("weather"), None);
        let s = i.intern("weather");
        assert_eq!(i.get("weather"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        i.intern("c");
        let strings: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(strings, ["a", "b", "c"]);
    }

    #[test]
    fn try_resolve_rejects_out_of_range() {
        let i = Interner::new();
        assert_eq!(i.try_resolve(Symbol(7)), None);
    }

    proptest! {
        #[test]
        fn prop_round_trip(words in proptest::collection::vec("[a-z]{1,12}", 0..64)) {
            let mut i = Interner::new();
            let syms: Vec<Symbol> = words.iter().map(|w| i.intern(w)).collect();
            for (w, s) in words.iter().zip(&syms) {
                prop_assert_eq!(i.resolve(*s), w.as_str());
            }
            let distinct: std::collections::HashSet<&String> = words.iter().collect();
            prop_assert_eq!(i.len(), distinct.len());
        }
    }
}
