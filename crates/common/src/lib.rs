//! Shared foundations for the `dwqa` workspace.
//!
//! The reproduction of Ferrández & Peral (EDBT 2010) spans several
//! subsystems (warehouse, ontology, NLP, IR, QA). This crate holds the small
//! set of primitives they all need so the dependency graph stays acyclic:
//!
//! * [`date`] — a proleptic-Gregorian calendar date with weekday/month
//!   arithmetic. The paper's pipeline is saturated with dates ("Monday,
//!   January 31, 2004"), and pulling in `chrono` is unnecessary for the
//!   civil-calendar subset we need.
//! * [`interner`] — a string interner used by the NLP lexicon, the IR
//!   vocabulary and the ontology lexicon, where the same lemma is stored
//!   millions of times.
//! * [`text`] — ASCII-oriented normalisation and similarity helpers used by
//!   tokenisation and by the PROMPT-style ontology merge.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod date;
pub mod interner;
pub mod text;

pub use config::ConfigError;
pub use date::{Date, Month, Weekday};
pub use interner::{Interner, Symbol};
