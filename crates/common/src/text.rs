//! Text normalisation and similarity helpers.
//!
//! These are shared between tokenisation (`dwqa-nlp`), indexing (`dwqa-ir`)
//! and the PROMPT-style concept-name matching of the ontology merge
//! (`dwqa-ontology`), which needs exact, case-folded and edit-distance
//! comparisons on multi-word concept labels such as "Last Minute Sales".

/// Lower-cases ASCII letters and maps a few Latin-1 letters the corpus uses
/// (the paper's examples contain "Ferrández"-style accents and the degree
/// sign) to unaccented equivalents. Non-alphanumeric characters are kept.
pub fn fold(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            'á' | 'à' | 'ä' | 'â' | 'Á' | 'À' | 'Ä' | 'Â' => out.push('a'),
            'é' | 'è' | 'ë' | 'ê' | 'É' | 'È' | 'Ë' | 'Ê' => out.push('e'),
            'í' | 'ì' | 'ï' | 'î' | 'Í' | 'Ì' | 'Ï' | 'Î' => out.push('i'),
            'ó' | 'ò' | 'ö' | 'ô' | 'Ó' | 'Ò' | 'Ö' | 'Ô' => out.push('o'),
            'ú' | 'ù' | 'ü' | 'û' | 'Ú' | 'Ù' | 'Ü' | 'Û' => out.push('u'),
            'ñ' | 'Ñ' => out.push('n'),
            'ç' | 'Ç' => out.push('c'),
            _ => out.extend(c.to_lowercase()),
        }
    }
    out
}

/// Like [`fold`], but borrows when the input is already folded (all-ASCII
/// with no uppercase letters). Index lemmas and retrieval terms are
/// usually folded already, so hot-path lookups avoid the allocation.
pub fn fold_cow(s: &str) -> std::borrow::Cow<'_, str> {
    if s.bytes().all(|b| b.is_ascii() && !b.is_ascii_uppercase()) {
        std::borrow::Cow::Borrowed(s)
    } else {
        std::borrow::Cow::Owned(fold(s))
    }
}

/// Splits a multi-word label into case-folded words ("Last Minute Sales" →
/// `["last", "minute", "sales"]`). Underscores and hyphens are separators.
pub fn label_words(label: &str) -> Vec<String> {
    fold(label)
        .split(|c: char| c.is_whitespace() || c == '_' || c == '-')
        .filter(|w| !w.is_empty())
        .map(str::to_owned)
        .collect()
}

/// Levenshtein edit distance between two strings (by `char`).
///
/// Used by the partial-match stage of the ontology merge; inputs are short
/// labels so the O(len a × len b) dynamic program is fine.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Normalised string similarity in `[0, 1]` based on edit distance, after
/// case folding. `1.0` means identical (after folding).
pub fn similarity(a: &str, b: &str) -> f64 {
    let fa = fold(a);
    let fb = fold(b);
    let max_len = fa.chars().count().max(fb.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(&fa, &fb) as f64 / max_len as f64
}

/// Whether a word looks like a proper-noun surface form: starts with an
/// uppercase letter and is not fully uppercase punctuation. All-caps tokens
/// of length ≥ 2 ("JFK") also count — they are the acronym case the paper's
/// Step 2 is about.
pub fn looks_proper(word: &str) -> bool {
    let mut chars = word.chars();
    matches!(chars.next(), Some(c) if c.is_uppercase())
}

/// Whether the token is entirely uppercase letters of length ≥ 2 (an
/// acronym/abbreviation such as "JFK").
pub fn is_acronym(word: &str) -> bool {
    word.chars().count() >= 2 && word.chars().all(|c| c.is_ascii_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fold_lowercases_and_strips_accents() {
        assert_eq!(fold("Ferrández"), "ferrandez");
        assert_eq!(fold("AliQAn"), "aliqan");
        assert_eq!(fold("ESPAÑA"), "espana");
    }

    #[test]
    fn label_words_splits_compounds() {
        assert_eq!(
            label_words("Last Minute Sales"),
            ["last", "minute", "sales"]
        );
        assert_eq!(
            label_words("last_minute-sales"),
            ["last", "minute", "sales"]
        );
        assert!(label_words("   ").is_empty());
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("airport", "airport"), 0);
    }

    #[test]
    fn similarity_is_case_insensitive() {
        assert!((similarity("Airport", "airport") - 1.0).abs() < 1e-12);
        assert!(similarity("airport", "airline") < 1.0);
        assert!(similarity("airport", "airline") > 0.4);
    }

    #[test]
    fn proper_and_acronym_detection() {
        assert!(looks_proper("Barcelona"));
        assert!(looks_proper("JFK"));
        assert!(!looks_proper("weather"));
        assert!(is_acronym("JFK"));
        assert!(!is_acronym("Jfk"));
        assert!(!is_acronym("J"));
    }

    #[test]
    fn fold_cow_borrows_folded_input() {
        assert!(matches!(
            fold_cow("barcelona 8"),
            std::borrow::Cow::Borrowed(_)
        ));
        assert_eq!(fold_cow("Ferrández").as_ref(), "ferrandez");
        assert!(matches!(fold_cow("JFK"), std::borrow::Cow::Owned(_)));
    }

    proptest! {
        #[test]
        fn prop_fold_cow_equals_fold(s in "[a-zA-Z0-9áéíóúñÁÉÍÓÚÑ ]{0,16}") {
            prop_assert_eq!(fold_cow(&s).as_ref(), fold(&s).as_str());
        }

        #[test]
        fn prop_levenshtein_symmetric(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn prop_levenshtein_identity(a in "[a-zA-Z ]{0,16}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
        }

        #[test]
        fn prop_levenshtein_triangle(a in "[a-z]{0,8}", b in "[a-z]{0,8}", c in "[a-z]{0,8}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        #[test]
        fn prop_similarity_bounded(a in "[a-zA-Z]{0,12}", b in "[a-zA-Z]{0,12}") {
            let s = similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }
}
