//! The motivating BI analysis: sales vs. temperature ranges.
//!
//! "The analysis of the range of temperatures that increase the last
//! minute flights to a city, in order to adjust the prices of these
//! tickets." Before Step 5 the query is simply unanswerable — the DW has
//! no weather data. After feeding, it is a join of the two stars over the
//! conformed City and Date levels.

use dwqa_warehouse::{AggFn, CubeQuery, Result, ResultSet, Value, Warehouse, WarehouseError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One temperature band of the analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemperatureBand {
    /// Inclusive lower bound (°C).
    pub lo: f64,
    /// Exclusive upper bound (°C).
    pub hi: f64,
    /// (city, day) points whose temperature fell in the band.
    pub days: usize,
    /// Last-minute tickets sold on those days to those cities.
    pub total_sales: usize,
    /// `total_sales / days`.
    pub avg_sales_per_day: f64,
}

/// Groups last-minute sales by the destination-city temperature band of
/// the sale's day. `band_width` is the band size in °C.
///
/// Returns [`WarehouseError::UnknownFact`]-style errors if the schema
/// lacks either star, and an empty vector when the weather fact has no
/// rows yet (the "before Step 5" state).
pub fn sales_by_temperature_band(
    warehouse: &Warehouse,
    band_width: f64,
) -> Result<Vec<TemperatureBand>> {
    sales_by_temperature_band_with(|q| q.run(warehouse), band_width)
}

/// [`sales_by_temperature_band`] with a pluggable query runner, so the
/// pipeline can route both roll-ups through its revision-tagged result
/// cache ([`crate::RollupCache`]) instead of executing directly.
pub fn sales_by_temperature_band_with(
    mut run: impl FnMut(&CubeQuery) -> Result<ResultSet>,
    band_width: f64,
) -> Result<Vec<TemperatureBand>> {
    if band_width <= 0.0 || !band_width.is_finite() {
        return Err(WarehouseError::IllegalAggregate {
            measure: "temperature_c".to_owned(),
            reason: format!("band width must be positive, got {band_width}"),
        });
    }
    // Weather per (city, date).
    let weather = run(&CubeQuery::on("City Weather")
        .group_by("City", "City")
        .group_by("Date", "Date")
        .aggregate("temperature_c", AggFn::Avg))?;
    // Sales per (destination city, date).
    let sales = run(&CubeQuery::on("Last Minute Sales")
        .group_by("Destination", "City")
        .group_by("Date", "Date")
        .aggregate("price", AggFn::Count))?;
    // Drill-across over the conformed (city, date) coordinates. The join
    // keys use the weather side as driver; city names are folded into a
    // map first so "barcelona" from the feed matches "Barcelona" from the
    // sales ETL.
    let mut sales_of: HashMap<(String, String), usize> = HashMap::new();
    for row in &sales.rows {
        let (Value::Text(city), date, Some(n)) = (&row[0], &row[1], row[2].as_f64()) else {
            continue;
        };
        sales_of.insert(
            (dwqa_common::text::fold(city), date.to_string()),
            n as usize,
        );
    }
    // Band accumulation over the weather points (days without sales count
    // as zero-sale days — essential for unbiased per-day averages).
    let mut bands: HashMap<i64, (usize, usize)> = HashMap::new();
    for row in &weather.rows {
        let (Value::Text(city), date, Some(t)) = (&row[0], &row[1], row[2].as_f64()) else {
            continue;
        };
        let key = (dwqa_common::text::fold(city), date.to_string());
        let band = (t / band_width).floor() as i64;
        let entry = bands.entry(band).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += sales_of.get(&key).copied().unwrap_or(0);
    }
    let mut out: Vec<TemperatureBand> = bands
        .into_iter()
        .map(|(band, (days, total_sales))| TemperatureBand {
            lo: band as f64 * band_width,
            hi: (band + 1) as f64 * band_width,
            days,
            total_sales,
            avg_sales_per_day: total_sales as f64 / days as f64,
        })
        .collect();
    out.sort_by(|a, b| a.lo.partial_cmp(&b.lo).unwrap_or(std::cmp::Ordering::Equal));
    Ok(out)
}

/// Renders the band analysis as an aligned table (used by examples and
/// experiment binaries).
pub fn render_bands(bands: &[TemperatureBand]) -> String {
    let mut out = String::from("band (ºC)      | days | sales | sales/day\n");
    out.push_str("---------------+------+-------+----------\n");
    for b in bands {
        out.push_str(&format!(
            "[{:>5.1}, {:>5.1}) | {:>4} | {:>5} | {:>8.2}\n",
            b.lo, b.hi, b.days, b.total_sales, b.avg_sales_per_day
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::feed_weather;
    use crate::schema::integrated_schema;
    use crate::TemperatureAxioms;
    use dwqa_common::Date;
    use dwqa_nlp::TempUnit;
    use dwqa_qa::{Answer, AnswerValue};
    use dwqa_warehouse::FactRowBuilder;

    fn sale(city: &str, day: u32) -> dwqa_warehouse::FactRow {
        let mut b = FactRowBuilder::new();
        b.measure("price", Value::Float(100.0))
            .measure("miles", Value::Float(500.0))
            .measure("traveler_rate", Value::Float(0.5))
            .role_member("Origin", &[("airport_name", Value::text("Elsewhere"))])
            .role_member(
                "Destination",
                &[
                    ("airport_name", Value::text(format!("{city} Airport"))),
                    ("city_name", Value::text(city)),
                ],
            )
            .role_member("Customer", &[("customer_name", Value::text("Ann"))])
            .role_member("Date", &[("date", Value::date(2004, 1, day).unwrap())]);
        b.build()
    }

    fn temp(city: &str, day: u32, celsius: f64) -> Answer {
        Answer {
            value: AnswerValue::Temperature {
                celsius,
                raw: celsius,
                unit: TempUnit::Celsius,
            },
            score: 1.0,
            url: "u".into(),
            sentence: String::new(),
            context_date: Date::from_ymd(2004, 1, day),
            context_location: Some(city.to_owned()),
        }
    }

    #[test]
    fn unanswerable_before_feeding_answerable_after() {
        let mut wh = Warehouse::new(integrated_schema());
        wh.load("Last Minute Sales", vec![sale("Barcelona", 1)])
            .unwrap();
        // Before Step 5: no weather rows → empty analysis.
        assert!(sales_by_temperature_band(&wh, 5.0).unwrap().is_empty());
        // After Step 5: the band appears.
        feed_weather(
            &mut wh,
            &[temp("Barcelona", 1, 18.0)],
            &TemperatureAxioms::default(),
        )
        .unwrap();
        let bands = sales_by_temperature_band(&wh, 5.0).unwrap();
        assert_eq!(bands.len(), 1);
        assert_eq!(bands[0].lo, 15.0);
        assert_eq!(bands[0].total_sales, 1);
    }

    #[test]
    fn bands_aggregate_days_and_sales() {
        let mut wh = Warehouse::new(integrated_schema());
        // Day 1: 18ºC, 3 sales. Day 2: 17ºC, 1 sale. Day 3: 2ºC, 0 sales.
        wh.load(
            "Last Minute Sales",
            vec![
                sale("Barcelona", 1),
                sale("Barcelona", 1),
                sale("Barcelona", 1),
                sale("Barcelona", 2),
            ],
        )
        .unwrap();
        feed_weather(
            &mut wh,
            &[
                temp("Barcelona", 1, 18.0),
                temp("Barcelona", 2, 17.0),
                temp("Barcelona", 3, 2.0),
            ],
            &TemperatureAxioms::default(),
        )
        .unwrap();
        let bands = sales_by_temperature_band(&wh, 5.0).unwrap();
        assert_eq!(bands.len(), 2);
        let cold = &bands[0];
        assert_eq!((cold.lo, cold.hi), (0.0, 5.0));
        assert_eq!(cold.days, 1);
        assert_eq!(cold.total_sales, 0);
        let warm = &bands[1];
        assert_eq!((warm.lo, warm.hi), (15.0, 20.0));
        assert_eq!(warm.days, 2);
        assert_eq!(warm.total_sales, 4);
        assert!((warm.avg_sales_per_day - 2.0).abs() < 1e-12);
    }

    #[test]
    fn negative_temperatures_band_correctly() {
        let mut wh = Warehouse::new(integrated_schema());
        feed_weather(
            &mut wh,
            &[temp("New York", 1, -3.0)],
            &TemperatureAxioms::default(),
        )
        .unwrap();
        let bands = sales_by_temperature_band(&wh, 5.0).unwrap();
        assert_eq!((bands[0].lo, bands[0].hi), (-5.0, 0.0));
    }

    #[test]
    fn invalid_band_width_is_rejected() {
        let wh = Warehouse::new(integrated_schema());
        assert!(sales_by_temperature_band(&wh, 0.0).is_err());
        assert!(sales_by_temperature_band(&wh, -1.0).is_err());
    }

    #[test]
    fn render_is_stable() {
        let bands = vec![TemperatureBand {
            lo: 15.0,
            hi: 20.0,
            days: 2,
            total_sales: 4,
            avg_sales_per_day: 2.0,
        }];
        let table = render_bands(&bands);
        assert!(table.contains("[ 15.0,  20.0)"));
        assert!(table.contains("2.00"));
    }
}
