//! Step 4's domain axioms.
//!
//! "The 'temperature' concept in the ontology is updated with the
//! axiomatic information that is required in a 'temperature' answer: that
//! a temperature is composed by a number followed by the scale (Celsius
//! or Fahrenheit), the right temperature intervals, the conversion
//! formulae between Celsius and Fahrenheit scales, etc."

use dwqa_nlp::TempUnit;
use dwqa_ontology::Ontology;

/// The axioms attached to the `temperature` concept.
#[derive(Debug, Clone, PartialEq)]
pub struct TemperatureAxioms {
    /// Plausible interval in Celsius (weather readings).
    pub range_c: (f64, f64),
}

impl Default for TemperatureAxioms {
    fn default() -> TemperatureAxioms {
        TemperatureAxioms {
            // Earth surface extremes with margin.
            range_c: (-90.0, 60.0),
        }
    }
}

impl TemperatureAxioms {
    /// Normalises a reading to Celsius (the conversion axiom).
    pub fn to_celsius(&self, value: f64, unit: TempUnit) -> f64 {
        unit.to_celsius(value)
    }

    /// Validates a reading; returns the Celsius value or why it is
    /// implausible.
    pub fn validate(&self, value: f64, unit: TempUnit) -> Result<f64, String> {
        let c = self.to_celsius(value, unit);
        if !c.is_finite() {
            return Err("non-finite temperature".to_owned());
        }
        if c < self.range_c.0 || c > self.range_c.1 {
            return Err(format!(
                "temperature {c:.1}ºC outside the plausible interval [{}, {}]",
                self.range_c.0, self.range_c.1
            ));
        }
        Ok(c)
    }

    /// Writes the axioms onto the ontology's `temperature` concept as
    /// annotations (the paper's "the 'temperature' concept in the
    /// ontology is updated").
    pub fn annotate(&self, ontology: &mut Ontology) -> bool {
        let Some(temp) = ontology.class_for("temperature") else {
            return false;
        };
        ontology.annotate(temp, "axiom.shape", "number followed by ºC or F");
        ontology.annotate(
            temp,
            "axiom.range_c",
            &format!("[{}, {}]", self.range_c.0, self.range_c.1),
        );
        ontology.annotate(temp, "axiom.convert", "C = (F - 32) * 5/9");
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwqa_ontology::upper_ontology;

    #[test]
    fn validation_accepts_plausible_and_rejects_implausible() {
        let ax = TemperatureAxioms::default();
        assert_eq!(ax.validate(8.0, TempUnit::Celsius), Ok(8.0));
        let f = ax.validate(46.4, TempUnit::Fahrenheit).unwrap();
        assert!((f - 8.0).abs() < 1e-9);
        assert!(ax.validate(900.0, TempUnit::Celsius).is_err());
        assert!(ax.validate(-200.0, TempUnit::Fahrenheit).is_err());
        assert!(ax.validate(f64::NAN, TempUnit::Celsius).is_err());
    }

    #[test]
    fn boundaries_are_inclusive() {
        let ax = TemperatureAxioms::default();
        assert!(ax.validate(-90.0, TempUnit::Celsius).is_ok());
        assert!(ax.validate(60.0, TempUnit::Celsius).is_ok());
        assert!(ax.validate(60.1, TempUnit::Celsius).is_err());
    }

    #[test]
    fn annotate_updates_the_temperature_concept() {
        let mut onto = upper_ontology();
        assert!(TemperatureAxioms::default().annotate(&mut onto));
        let temp = onto.class_for("temperature").unwrap();
        assert_eq!(
            onto.annotation(temp, "axiom.shape"),
            vec!["number followed by ºC or F"]
        );
        assert_eq!(
            onto.annotation(temp, "axiom.convert"),
            vec!["C = (F - 32) * 5/9"]
        );
    }

    #[test]
    fn annotate_fails_gracefully_without_the_concept() {
        let mut onto = Ontology::new("empty");
        assert!(!TemperatureAxioms::default().annotate(&mut onto));
    }
}
