//! Durable feedback: the payloads `dwqa-core` writes through
//! [`dwqa_store::FeedbackStore`], and the recovery report the pipeline
//! returns when a store is attached.
//!
//! The store itself is payload-agnostic (opaque bytes); this module
//! owns the two payload shapes:
//!
//! * [`LoggedTransaction`] — one committed feed transaction (the exact
//!   answer batches), appended to the WAL *before* the commit is
//!   acknowledged;
//! * [`DurableCheckpoint`] — the full recovery base: a
//!   `WarehouseSnapshot` plus the `(city, date)` dedup set, written on
//!   checkpoint so replaying the WAL suffix reproduces the in-memory
//!   state exactly (including which duplicate points get skipped).

use crate::feedback::FeedError;
use dwqa_common::Date;
use dwqa_qa::Answer;
use dwqa_warehouse::{Value, Warehouse, WarehouseSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One committed feedback transaction, exactly as fed: the per-question
/// answer batches of a [`crate::IntegrationPipeline::feed_batch`] call.
///
/// Every committed transaction is logged — even one that loaded zero
/// rows — because the `(city, date)` dedup set can still grow on a
/// zero-row commit (points whose rows the ETL later rejected), and
/// replay must reproduce that set exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoggedTransaction {
    /// The answer batches, in feed order.
    pub batches: Vec<Vec<Answer>>,
}

/// The checkpoint payload: everything recovery needs as a base state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DurableCheckpoint {
    /// The warehouse contents at checkpoint time.
    pub warehouse: WarehouseSnapshot,
    /// The fed-point dedup set, sorted for deterministic bytes.
    pub fed_points: Vec<(String, Date)>,
}

/// What [`crate::IntegrationPipeline::attach_store_at`] found and
/// replayed.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct RecoveryReport {
    /// True when a checkpoint existed and became the base state
    /// (replacing the in-memory warehouse).
    pub checkpoint_loaded: bool,
    /// Committed WAL transactions replayed on top of the base.
    pub transactions_replayed: usize,
    /// Warehouse rows loaded by the replay.
    pub rows_loaded: usize,
    /// Bytes truncated from the WAL tail as torn.
    pub torn_bytes: u64,
    /// Records skipped as a stale (pre-checkpoint) generation.
    pub stale_skipped: u64,
    /// Records skipped as duplicated sequence numbers.
    pub duplicates_skipped: u64,
    /// Store generation after recovery.
    pub generation: u64,
}

fn durability(what: &str) -> impl FnOnce(String) -> FeedError + '_ {
    move |why| FeedError::Durability(format!("{what}: {why}"))
}

/// Serializes a transaction for the WAL.
pub fn encode_transaction(txn: &LoggedTransaction) -> Result<Vec<u8>, FeedError> {
    serde_json::to_string(txn)
        .map(String::into_bytes)
        .map_err(|e| durability("serialize logged transaction")(e.to_string()))
}

/// Deserializes a WAL record payload.
pub fn decode_transaction(payload: &[u8]) -> Result<LoggedTransaction, FeedError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| durability("decode logged transaction")(e.to_string()))?;
    serde_json::from_str(text).map_err(|e| durability("decode logged transaction")(e.to_string()))
}

/// Serializes the checkpoint payload (snapshot + sorted dedup set).
pub fn encode_checkpoint_payload(
    warehouse: &Warehouse,
    fed_points: &HashSet<(String, Date)>,
) -> Result<Vec<u8>, FeedError> {
    let mut points: Vec<(String, Date)> = fed_points.iter().cloned().collect();
    points.sort();
    let checkpoint = DurableCheckpoint {
        warehouse: warehouse.snapshot(),
        fed_points: points,
    };
    serde_json::to_string(&checkpoint)
        .map(String::into_bytes)
        .map_err(|e| durability("serialize checkpoint")(e.to_string()))
}

/// Deserializes a checkpoint payload.
pub fn decode_checkpoint_payload(payload: &[u8]) -> Result<DurableCheckpoint, FeedError> {
    let text =
        std::str::from_utf8(payload).map_err(|e| durability("decode checkpoint")(e.to_string()))?;
    serde_json::from_str(text).map_err(|e| durability("decode checkpoint")(e.to_string()))
}

/// Reconstructs the `(city, date)` dedup set from the `City Weather`
/// fact of a restored warehouse — used when a bare snapshot (no
/// checkpointed dedup set) is restored. Points whose rows the ETL
/// rejected are unrecoverable from the fact alone, so this is the
/// conservative floor: everything that *is* in the warehouse is marked
/// fed.
pub fn fed_points_from(warehouse: &Warehouse) -> HashSet<(String, Date)> {
    let mut points = HashSet::new();
    let Ok(fact) = warehouse.fact("City Weather") else {
        return points;
    };
    let (Ok(city_role), Ok(date_role)) = (fact.role_index("City"), fact.role_index("Date")) else {
        return points;
    };
    let (Ok(cities), Ok(dates)) = (warehouse.dimension("City"), warehouse.dimension("Date")) else {
        return points;
    };
    for row in 0..fact.len() {
        let city_key = fact.role_key(row, city_role);
        let date_key = fact.role_key(row, date_role);
        let (Ok(Value::Text(city)), Ok(Value::Date(date))) = (
            cities.attribute_value(city_key, "City.city_name"),
            dates.attribute_value(date_key, "date"),
        ) else {
            continue;
        };
        points.insert((dwqa_common::text::fold(&city), date));
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::TemperatureAxioms;
    use crate::feedback::feed_weather_dedup;
    use crate::schema::integrated_schema;
    use dwqa_nlp::TempUnit;
    use dwqa_qa::AnswerValue;

    fn answer(celsius: f64, day: u32, city: &str) -> Answer {
        Answer {
            value: AnswerValue::Temperature {
                celsius,
                raw: celsius,
                unit: TempUnit::Celsius,
            },
            score: 1.0,
            url: "url".to_owned(),
            sentence: String::new(),
            context_date: Date::from_ymd(2004, 1, day),
            context_location: Some(city.to_owned()),
        }
    }

    #[test]
    fn transaction_payload_round_trips() {
        let txn = LoggedTransaction {
            batches: vec![vec![answer(8.0, 31, "Barcelona")], vec![]],
        };
        let bytes = encode_transaction(&txn).unwrap();
        assert_eq!(decode_transaction(&bytes).unwrap(), txn);
        assert!(decode_transaction(b"{broken").is_err());
        assert!(decode_transaction(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn checkpoint_payload_round_trips_with_sorted_points() {
        let mut wh = Warehouse::new(integrated_schema());
        let mut seen = HashSet::new();
        feed_weather_dedup(
            &mut wh,
            &[answer(8.0, 31, "Barcelona"), answer(5.0, 30, "Madrid")],
            &TemperatureAxioms::default(),
            &mut seen,
        )
        .unwrap();
        let bytes = encode_checkpoint_payload(&wh, &seen).unwrap();
        let decoded = decode_checkpoint_payload(&bytes).unwrap();
        assert_eq!(decoded.fed_points.len(), 2);
        let mut sorted = decoded.fed_points.clone();
        sorted.sort();
        assert_eq!(decoded.fed_points, sorted, "points are stored sorted");
        let restored = Warehouse::restore(&decoded.warehouse).unwrap();
        assert_eq!(restored.to_json(), wh.to_json());
        // Identical inputs serialize byte-identically (determinism).
        assert_eq!(bytes, encode_checkpoint_payload(&wh, &seen).unwrap());
    }

    #[test]
    fn fed_points_reconstruct_from_the_weather_fact() {
        let mut wh = Warehouse::new(integrated_schema());
        let mut seen = HashSet::new();
        feed_weather_dedup(
            &mut wh,
            &[answer(8.0, 31, "Barcelona"), answer(5.0, 30, "Madrid")],
            &TemperatureAxioms::default(),
            &mut seen,
        )
        .unwrap();
        assert_eq!(fed_points_from(&wh), seen);
        // A schema without the weather fact yields the empty set.
        let bare = Warehouse::new(dwqa_mdmodel::last_minute_sales());
        assert!(fed_points_from(&bare).is_empty());
    }
}
