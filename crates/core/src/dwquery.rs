//! Future-work extension: DW queries generate QA questions.
//!
//! Section 5 again: "we will study … how an initial query in the DW
//! system can generate different queries in the QA system." The concrete
//! automation: when the analyst asks for the sales-vs-weather analysis
//! over a period, every destination city that *lacks* weather rows for
//! that period yields a natural-language question for the QA system —
//! closing the loop from Step 5 back to Step 4.

use dwqa_common::Month;
use dwqa_warehouse::{AggFn, CubeQuery, Predicate, Result, ResultSet, Value, Warehouse};
use std::collections::BTreeSet;

/// Destination cities with last-minute sales in `(year, month)` but no
/// weather rows for that month, each phrased as the paper's example
/// question ("What is the temperature in January of 2004 in Barcelona?").
pub fn questions_for_missing_weather(
    warehouse: &Warehouse,
    year: i32,
    month: Month,
) -> Result<Vec<String>> {
    questions_for_missing_weather_with(|q| q.run(warehouse), year, month)
}

/// [`questions_for_missing_weather`] with a pluggable query runner, so
/// the pipeline can route both roll-ups through its revision-tagged
/// result cache ([`crate::RollupCache`]) instead of executing directly.
pub fn questions_for_missing_weather_with(
    mut run: impl FnMut(&CubeQuery) -> Result<ResultSet>,
    year: i32,
    month: Month,
) -> Result<Vec<String>> {
    let month_key = Value::text(format!("{:04}-{:02}", year, month.number()));

    let sold_to = run(&CubeQuery::on("Last Minute Sales")
        .filter("Date", "Month", Predicate::Eq(month_key.clone()))
        .group_by("Destination", "City")
        .aggregate("price", AggFn::Count))?;
    let destinations: BTreeSet<String> = sold_to
        .rows
        .iter()
        .filter_map(|r| r[0].as_text().map(str::to_owned))
        .collect();

    let covered = run(&CubeQuery::on("City Weather")
        .filter("Date", "Month", Predicate::Eq(month_key))
        .group_by("City", "City")
        .aggregate("temperature_c", AggFn::Count))?;
    let covered: BTreeSet<String> = covered
        .rows
        .iter()
        .filter(|r| r[1].as_f64().unwrap_or(0.0) > 0.0)
        .filter_map(|r| r[0].as_text().map(str::to_owned))
        .collect();

    Ok(destinations
        .into_iter()
        .filter(|city| !covered.contains(city))
        .map(|city| {
            format!(
                "What is the temperature in {} of {} in {}?",
                month, year, city
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::feed_weather;
    use crate::schema::integrated_schema;
    use crate::TemperatureAxioms;
    use dwqa_common::Date;
    use dwqa_nlp::TempUnit;
    use dwqa_qa::{Answer, AnswerValue};
    use dwqa_warehouse::FactRowBuilder;

    fn sale(city: &str, day: u32) -> dwqa_warehouse::FactRow {
        let mut b = FactRowBuilder::new();
        b.measure("price", Value::Float(100.0))
            .measure("miles", Value::Float(500.0))
            .measure("traveler_rate", Value::Float(0.5))
            .role_member("Origin", &[("airport_name", Value::text("Elsewhere"))])
            .role_member(
                "Destination",
                &[
                    ("airport_name", Value::text(format!("{city} Airport"))),
                    ("city_name", Value::text(city)),
                ],
            )
            .role_member("Customer", &[("customer_name", Value::text("Ann"))])
            .role_member("Date", &[("date", Value::date(2004, 1, day).unwrap())]);
        b.build()
    }

    #[test]
    fn missing_cities_become_questions() {
        let mut wh = Warehouse::new(integrated_schema());
        wh.load(
            "Last Minute Sales",
            vec![sale("Barcelona", 5), sale("Madrid", 6)],
        )
        .unwrap();
        let qs = questions_for_missing_weather(&wh, 2004, Month::January).unwrap();
        assert_eq!(
            qs,
            vec![
                "What is the temperature in January of 2004 in Barcelona?",
                "What is the temperature in January of 2004 in Madrid?",
            ]
        );
    }

    #[test]
    fn fed_cities_stop_asking() {
        let mut wh = Warehouse::new(integrated_schema());
        wh.load(
            "Last Minute Sales",
            vec![sale("Barcelona", 5), sale("Madrid", 6)],
        )
        .unwrap();
        let a = Answer {
            value: AnswerValue::Temperature {
                celsius: 9.0,
                raw: 9.0,
                unit: TempUnit::Celsius,
            },
            score: 1.0,
            url: "u".into(),
            sentence: String::new(),
            context_date: Date::from_ymd(2004, 1, 5),
            context_location: Some("Barcelona".into()),
        };
        feed_weather(&mut wh, &[a], &TemperatureAxioms::default()).unwrap();
        let qs = questions_for_missing_weather(&wh, 2004, Month::January).unwrap();
        assert_eq!(
            qs,
            vec!["What is the temperature in January of 2004 in Madrid?"]
        );
    }

    #[test]
    fn other_months_do_not_interfere() {
        let mut wh = Warehouse::new(integrated_schema());
        wh.load("Last Minute Sales", vec![sale("Barcelona", 5)])
            .unwrap();
        // Sales are in January; asking about February yields nothing.
        let qs = questions_for_missing_weather(&wh, 2004, Month::February).unwrap();
        assert!(qs.is_empty());
    }
}
