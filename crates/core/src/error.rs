//! The workspace-wide error taxonomy.
//!
//! Callers used to juggle three crate-local enums — `FeedError` from the
//! Step-5 ETL, `SourceError` from the acquisition/retry layer, and the
//! service protocol errors — plus builder validation failures.
//! [`Error`] absorbs them all through `From` impls, so application code
//! matches **one** `#[non_exhaustive]` enum and `?` does the lifting.
//! The inner errors are kept intact and exposed via
//! [`std::error::Error::source`], so nothing is stringly flattened.

use crate::feedback::FeedError;
use dwqa_common::ConfigError;
use dwqa_faults::SourceError;
use std::fmt;

/// Any error the integrated DW ⇄ QA system can surface.
///
/// `#[non_exhaustive]`: downstream `match`es need a wildcard arm, so new
/// failure classes (and new subsystems) can be added without a breaking
/// release.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A Step-5 feedback transaction failed and was rolled back.
    Feed(FeedError),
    /// Document acquisition failed (transient fault, 404, deadline,
    /// open circuit breaker).
    Source(SourceError),
    /// A builder rejected a configuration knob at `build()`.
    Config(ConfigError),
    /// A service wire-protocol violation (malformed request line,
    /// unknown request kind, missing field).
    Protocol(String),
    /// An I/O failure at a service or storage boundary.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Feed(e) => write!(f, "feedback: {e}"),
            Error::Source(e) => write!(f, "acquisition: {e}"),
            Error::Config(e) => write!(f, "{e}"),
            Error::Protocol(why) => write!(f, "protocol: {why}"),
            Error::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Feed(e) => Some(e),
            Error::Source(e) => Some(e),
            Error::Config(e) => Some(e),
            Error::Protocol(_) => None,
            Error::Io(e) => Some(e),
        }
    }
}

impl From<FeedError> for Error {
    fn from(e: FeedError) -> Error {
        Error::Feed(e)
    }
}

impl From<SourceError> for Error {
    fn from(e: SourceError) -> Error {
        Error::Source(e)
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Error {
        Error::Config(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn one_enum_absorbs_the_crate_local_errors() {
        fn fails_feed() -> Result<(), Error> {
            Err(FeedError::Etl("disk full".into()))?
        }
        fn fails_source() -> Result<(), Error> {
            Err(SourceError::NotFound("http://gone".into()))?
        }
        fn fails_config() -> Result<(), Error> {
            Err(ConfigError::new("k", "must be positive"))?
        }
        assert!(matches!(fails_feed(), Err(Error::Feed(_))));
        assert!(matches!(fails_source(), Err(Error::Source(_))));
        assert!(matches!(fails_config(), Err(Error::Config(_))));
    }

    #[test]
    fn sources_are_chained_not_flattened() {
        let err = Error::from(FeedError::Etl("disk full".into()));
        let inner = err.source().map(|s| s.to_string()).unwrap_or_default();
        assert!(inner.contains("disk full"), "{inner}");
        assert!(err.to_string().starts_with("feedback:"));
        assert!(Error::Protocol("bad line".into()).source().is_none());
    }
}
