//! Scoring extracted answers against a ground truth.
//!
//! The paper reports its results narratively ("the best precision … is
//! obtained for the URL …"; "lower precision is obtained from web pages
//! that contain tables"). With the generated corpus we can quantify:
//! every extracted `(temperature, date, city)` tuple is checked against
//! the generator's ground truth.

use dwqa_common::Date;
use dwqa_qa::{Answer, AnswerValue};
use serde::{Deserialize, Serialize};

/// Precision/recall bookkeeping for one evaluation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExtractionEval {
    /// Correct tuples (value matches the truth for its city/date).
    pub true_positives: usize,
    /// Extracted tuples that are wrong or unverifiable.
    pub false_positives: usize,
    /// Truth points that should have been extracted but were not.
    pub false_negatives: usize,
}

impl ExtractionEval {
    /// Precision: TP / (TP + FP); 0 when nothing was extracted.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall: TP / (TP + FN); 0 when there was nothing to find.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merges another evaluation into this one.
    pub fn merge(&mut self, other: &ExtractionEval) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
    }
}

/// Evaluates temperature answers against a truth oracle.
///
/// * `answers` — the extracted tuples;
/// * `truth` — `(city, date) → Celsius` oracle (`None` = no truth point);
/// * `expected` — the `(city, date)` points a perfect system would have
///   extracted (drives recall);
/// * `tolerance` — allowed absolute Celsius deviation.
pub fn evaluate_temperatures<F>(
    answers: &[Answer],
    truth: F,
    expected: &[(String, Date)],
    tolerance: f64,
) -> ExtractionEval
where
    F: Fn(&str, Date) -> Option<f64>,
{
    let mut eval = ExtractionEval::default();
    let mut found: Vec<(String, Date)> = Vec::new();
    for a in answers {
        let AnswerValue::Temperature { celsius, .. } = a.value else {
            eval.false_positives += 1;
            continue;
        };
        let (Some(city), Some(date)) = (a.context_location.as_deref(), a.context_date) else {
            eval.false_positives += 1;
            continue;
        };
        match truth(city, date) {
            Some(t) if (t - celsius).abs() <= tolerance => {
                let key = (dwqa_common::text::fold(city), date);
                if !found.contains(&key) {
                    found.push(key);
                    eval.true_positives += 1;
                }
                // A duplicate correct tuple is neither progress nor error.
            }
            _ => eval.false_positives += 1,
        }
    }
    for (city, date) in expected {
        let key = (dwqa_common::text::fold(city), *date);
        if !found.contains(&key) {
            eval.false_negatives += 1;
        }
    }
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwqa_nlp::TempUnit;

    fn temp(city: &str, day: u32, celsius: f64) -> Answer {
        Answer {
            value: AnswerValue::Temperature {
                celsius,
                raw: celsius,
                unit: TempUnit::Celsius,
            },
            score: 1.0,
            url: "u".into(),
            sentence: String::new(),
            context_date: Date::from_ymd(2004, 1, day),
            context_location: Some(city.to_owned()),
        }
    }

    fn oracle(city: &str, date: Date) -> Option<f64> {
        if dwqa_common::text::fold(city) == "barcelona" && date.month().number() == 1 {
            Some(8.0)
        } else {
            None
        }
    }

    #[test]
    fn perfect_extraction_scores_one() {
        let expected = vec![("Barcelona".to_owned(), Date::from_ymd(2004, 1, 31).unwrap())];
        let eval = evaluate_temperatures(&[temp("Barcelona", 31, 8.0)], oracle, &expected, 0.5);
        assert_eq!(eval.true_positives, 1);
        assert_eq!(eval.precision(), 1.0);
        assert_eq!(eval.recall(), 1.0);
        assert_eq!(eval.f1(), 1.0);
    }

    #[test]
    fn wrong_value_is_a_false_positive() {
        let expected = vec![("Barcelona".to_owned(), Date::from_ymd(2004, 1, 31).unwrap())];
        let eval = evaluate_temperatures(&[temp("Barcelona", 31, 20.0)], oracle, &expected, 0.5);
        assert_eq!(eval.true_positives, 0);
        assert_eq!(eval.false_positives, 1);
        assert_eq!(eval.false_negatives, 1);
        assert_eq!(eval.precision(), 0.0);
    }

    #[test]
    fn missing_context_is_a_false_positive() {
        let mut a = temp("Barcelona", 31, 8.0);
        a.context_location = None;
        let eval = evaluate_temperatures(&[a], oracle, &[], 0.5);
        assert_eq!(eval.false_positives, 1);
    }

    #[test]
    fn duplicates_do_not_inflate_precision_counts() {
        let expected = vec![("Barcelona".to_owned(), Date::from_ymd(2004, 1, 31).unwrap())];
        let answers = vec![temp("Barcelona", 31, 8.0), temp("Barcelona", 31, 8.0)];
        let eval = evaluate_temperatures(&answers, oracle, &expected, 0.5);
        assert_eq!(eval.true_positives, 1);
        assert_eq!(eval.false_positives, 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ExtractionEval {
            true_positives: 1,
            false_positives: 2,
            false_negatives: 3,
        };
        a.merge(&ExtractionEval {
            true_positives: 4,
            false_positives: 5,
            false_negatives: 6,
        });
        assert_eq!(a.true_positives, 5);
        assert_eq!(a.false_positives, 7);
        assert_eq!(a.false_negatives, 9);
    }

    #[test]
    fn empty_runs_score_zero_without_dividing_by_zero() {
        let eval = ExtractionEval::default();
        assert_eq!(eval.precision(), 0.0);
        assert_eq!(eval.recall(), 0.0);
        assert_eq!(eval.f1(), 0.0);
    }
}
