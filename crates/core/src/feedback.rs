//! Step 5: feeding the DW with QA answers.
//!
//! "The following database is generated successfully and correctly
//! (temperature – date – city – web page): (8ºC – Monday, January 31,
//! 2004 – Barcelona – URL), (7ºC – Sunday, January 30, 2004 – Barcelona –
//! URL), etc. This database will automatically feed the DW."
//!
//! Answers are validated against the Step-4 axioms before loading;
//! structurally incomplete answers (no date, no city) are recorded as
//! rejections — but their source URL is still listed, implementing the
//! paper's robustness rule that the page reference survives even when the
//! tuple does not.

use crate::axioms::TemperatureAxioms;
use dwqa_qa::{Answer, AnswerValue};
use dwqa_warehouse::{EtlReport, FactRowBuilder, Value, Warehouse, WarehouseError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a feedback transaction failed (and was rolled back).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedError {
    /// The warehouse schema lacks the `City Weather` fact the paper's
    /// Step 5 loads into.
    MissingFact(String),
    /// The underlying warehouse ETL failed mid-load.
    Etl(String),
    /// A deterministic injected fault (chaos testing) aborted the
    /// transaction after a partial load.
    Injected(String),
    /// The post-failure rollback itself could not restore the
    /// pre-transaction snapshot — the warehouse may hold a partial load
    /// and is **poisoned**: further feed transactions are rejected with
    /// [`FeedError::Poisoned`] until a snapshot/WAL restore clears it.
    RollbackFailed(String),
    /// The write-ahead log could not make the transaction durable
    /// before commit; the transaction was rolled back (memory is
    /// consistent, the acknowledged history on disk is unchanged).
    Durability(String),
    /// A previous failed rollback left the warehouse possibly holding a
    /// partial load; feeds are rejected until a restore clears the
    /// poison (see `IntegrationPipeline::poisoned`).
    Poisoned(String),
}

impl fmt::Display for FeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedError::MissingFact(name) => {
                write!(
                    f,
                    "feedback target fact {name:?} is missing from the schema"
                )
            }
            FeedError::Etl(why) => write!(f, "feedback ETL failed: {why}"),
            FeedError::Injected(why) => write!(f, "injected feed fault: {why}"),
            FeedError::RollbackFailed(why) => write!(f, "feed rollback failed: {why}"),
            FeedError::Durability(why) => {
                write!(f, "durability write failed, transaction rolled back: {why}")
            }
            FeedError::Poisoned(why) => write!(
                f,
                "warehouse is poisoned by a failed rollback (restore a snapshot to clear): {why}"
            ),
        }
    }
}

impl std::error::Error for FeedError {}

impl From<WarehouseError> for FeedError {
    fn from(err: WarehouseError) -> FeedError {
        match err {
            WarehouseError::UnknownFact(name) => FeedError::MissingFact(name),
            other => FeedError::Etl(other.to_string()),
        }
    }
}

/// Outcome of a feedback load.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FeedReport {
    /// Rows loaded into the `City Weather` fact.
    pub loaded: usize,
    /// `(answer tuple, reason)` pairs that were not loadable.
    pub rejected: Vec<(String, String)>,
    /// Source URLs seen (loaded *and* rejected — the robustness rule).
    pub urls: Vec<String>,
    /// Tuples skipped because the same (city, date) point was already fed
    /// (overlapping questions re-extract the same readings).
    pub duplicates_skipped: usize,
    /// The underlying warehouse ETL report.
    pub etl: EtlReport,
}

impl FeedReport {
    /// Merges another report into this one, as when one batch produces a
    /// report per question: counters add up and URL lists union (keeping
    /// first-seen order, so merging is order-deterministic).
    pub fn absorb(&mut self, other: FeedReport) {
        self.loaded += other.loaded;
        self.rejected.extend(other.rejected);
        for url in other.urls {
            if !self.urls.contains(&url) {
                self.urls.push(url);
            }
        }
        self.duplicates_skipped += other.duplicates_skipped;
        self.etl.inserted += other.etl.inserted;
        self.etl.rejected.extend(other.etl.rejected);
        // Merge created-member counts by dimension name so the batch
        // total never under-counts (keeping first-seen dimension order).
        for (dimension, count) in other.etl.new_members {
            match self
                .etl
                .new_members
                .iter_mut()
                .find(|(name, _)| *name == dimension)
            {
                Some((_, existing)) => *existing += count,
                None => self.etl.new_members.push((dimension, count)),
            }
        }
    }

    /// Fraction of answers that became warehouse rows.
    pub fn load_rate(&self) -> f64 {
        let total = self.loaded + self.rejected.len();
        if total == 0 {
            0.0
        } else {
            self.loaded as f64 / total as f64
        }
    }
}

/// Validates and loads temperature answers into the `City Weather` fact.
///
/// Equivalent to [`feed_weather_dedup`] with an empty (throw-away)
/// dedup set.
pub fn feed_weather(
    warehouse: &mut Warehouse,
    answers: &[Answer],
    axioms: &TemperatureAxioms,
) -> Result<FeedReport, WarehouseError> {
    let mut seen = std::collections::HashSet::new();
    feed_weather_dedup(warehouse, answers, axioms, &mut seen)
}

/// Like [`feed_weather`], skipping `(city, date)` points already present
/// in `seen` (and recording the new ones). The pipeline threads one set
/// across a whole question batch so overlapping questions do not load the
/// same reading twice.
pub fn feed_weather_dedup(
    warehouse: &mut Warehouse,
    answers: &[Answer],
    axioms: &TemperatureAxioms,
    seen: &mut std::collections::HashSet<(String, dwqa_common::Date)>,
) -> Result<FeedReport, WarehouseError> {
    let mut report = FeedReport::default();
    let mut rows = Vec::new();
    for answer in answers {
        if !report.urls.contains(&answer.url) {
            report.urls.push(answer.url.clone());
        }
        let AnswerValue::Temperature { raw, unit, .. } = answer.value else {
            report
                .rejected
                .push((answer.tuple_format(), "not a temperature answer".to_owned()));
            continue;
        };
        let celsius = match axioms.validate(raw, unit) {
            Ok(c) => c,
            Err(why) => {
                report.rejected.push((answer.tuple_format(), why));
                continue;
            }
        };
        let Some(date) = answer.context_date else {
            report.rejected.push((
                answer.tuple_format(),
                "no date could be associated with the reading".to_owned(),
            ));
            continue;
        };
        let Some(city) = answer.context_location.clone() else {
            report.rejected.push((
                answer.tuple_format(),
                "no city could be associated with the reading".to_owned(),
            ));
            continue;
        };
        if !seen.insert((dwqa_common::text::fold(&city), date)) {
            report.duplicates_skipped += 1;
            continue;
        }
        let mut b = FactRowBuilder::new();
        b.measure("temperature_c", Value::Float(celsius))
            .role_member("City", &[("City.city_name", Value::text(city))])
            .role_member("Date", &[("date", Value::Date(date))])
            .role_member("Source", &[("url", Value::text(&answer.url))]);
        rows.push(b.build());
        report.loaded += 1;
    }
    report.etl = warehouse.load("City Weather", rows)?;
    // ETL-level rejections demote previously counted loads.
    report.loaded = report.etl.inserted;
    for r in &report.etl.rejected {
        report
            .rejected
            .push((format!("row {}", r.row), r.reason.clone()));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::integrated_schema;
    use dwqa_common::Date;
    use dwqa_nlp::TempUnit;
    use dwqa_warehouse::{AggFn, CubeQuery};

    fn answer(celsius: f64, date: Option<Date>, city: Option<&str>, url: &str) -> Answer {
        Answer {
            value: AnswerValue::Temperature {
                celsius,
                raw: celsius,
                unit: TempUnit::Celsius,
            },
            score: 1.0,
            url: url.to_owned(),
            sentence: String::new(),
            context_date: date,
            context_location: city.map(str::to_owned),
        }
    }

    #[test]
    fn table_1_tuples_load_into_the_dw() {
        let mut wh = Warehouse::new(integrated_schema());
        let answers = vec![
            answer(8.0, Date::from_ymd(2004, 1, 31), Some("Barcelona"), "url1"),
            answer(7.0, Date::from_ymd(2004, 1, 30), Some("Barcelona"), "url1"),
        ];
        let report = feed_weather(&mut wh, &answers, &TemperatureAxioms::default()).unwrap();
        assert_eq!(report.loaded, 2);
        assert!(report.rejected.is_empty());
        assert_eq!(report.load_rate(), 1.0);
        // The DW can now answer the monthly average.
        let rs = CubeQuery::on("City Weather")
            .group_by("City", "City")
            .group_by("Date", "Month")
            .aggregate("temperature_c", AggFn::Avg)
            .run(&wh)
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.f64(0, "avg(temperature_c)"), Some(7.5));
    }

    #[test]
    fn incomplete_answers_are_rejected_but_urls_survive() {
        let mut wh = Warehouse::new(integrated_schema());
        let answers = vec![
            answer(8.0, None, Some("Barcelona"), "no-date-url"),
            answer(8.0, Date::from_ymd(2004, 1, 31), None, "no-city-url"),
        ];
        let report = feed_weather(&mut wh, &answers, &TemperatureAxioms::default()).unwrap();
        assert_eq!(report.loaded, 0);
        assert_eq!(report.rejected.len(), 2);
        // Robustness: both pages are still recorded for the analyst.
        assert!(report.urls.contains(&"no-date-url".to_owned()));
        assert!(report.urls.contains(&"no-city-url".to_owned()));
    }

    #[test]
    fn axiom_violations_are_rejected() {
        let mut wh = Warehouse::new(integrated_schema());
        let answers = vec![answer(
            900.0,
            Date::from_ymd(2004, 1, 31),
            Some("Barcelona"),
            "url",
        )];
        let report = feed_weather(&mut wh, &answers, &TemperatureAxioms::default()).unwrap();
        assert_eq!(report.loaded, 0);
        assert!(report.rejected[0].1.contains("plausible interval"));
    }

    #[test]
    fn fahrenheit_answers_are_normalised() {
        let mut wh = Warehouse::new(integrated_schema());
        let a = Answer {
            value: AnswerValue::Temperature {
                celsius: 8.0,
                raw: 46.4,
                unit: TempUnit::Fahrenheit,
            },
            score: 1.0,
            url: "u".into(),
            sentence: String::new(),
            context_date: Date::from_ymd(2004, 1, 31),
            context_location: Some("Barcelona".into()),
        };
        feed_weather(&mut wh, &[a], &TemperatureAxioms::default()).unwrap();
        let rs = CubeQuery::on("City Weather")
            .aggregate("temperature_c", AggFn::Avg)
            .run(&wh)
            .unwrap();
        assert!((rs.f64(0, "avg(temperature_c)").unwrap() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_points_are_skipped_across_batches() {
        let mut wh = Warehouse::new(integrated_schema());
        let mut seen = std::collections::HashSet::new();
        let a = answer(8.0, Date::from_ymd(2004, 1, 31), Some("Barcelona"), "url1");
        let r1 = crate::feedback::feed_weather_dedup(
            &mut wh,
            std::slice::from_ref(&a),
            &TemperatureAxioms::default(),
            &mut seen,
        )
        .unwrap();
        assert_eq!(r1.loaded, 1);
        // Same point from another question/url: skipped, not re-loaded.
        let b = answer(8.0, Date::from_ymd(2004, 1, 31), Some("barcelona"), "url2");
        let r2 = crate::feedback::feed_weather_dedup(
            &mut wh,
            &[b],
            &TemperatureAxioms::default(),
            &mut seen,
        )
        .unwrap();
        assert_eq!(r2.loaded, 0);
        assert_eq!(r2.duplicates_skipped, 1);
        assert_eq!(wh.fact("City Weather").unwrap().len(), 1);
    }

    #[test]
    fn absorb_merges_new_members_by_dimension() {
        // Regression: absorb used to drop `other.etl.new_members`, so
        // merged batch reports under-counted created dimension members.
        let mut wh = Warehouse::new(integrated_schema());
        let a = answer(8.0, Date::from_ymd(2004, 1, 31), Some("Barcelona"), "url1");
        let b = answer(7.0, Date::from_ymd(2004, 1, 30), Some("Madrid"), "url2");
        let mut merged = feed_weather(
            &mut wh,
            std::slice::from_ref(&a),
            &TemperatureAxioms::default(),
        )
        .unwrap();
        let second = feed_weather(
            &mut wh,
            std::slice::from_ref(&b),
            &TemperatureAxioms::default(),
        )
        .unwrap();
        assert!(!second.etl.new_members.is_empty());
        merged.absorb(second);
        // Both loads created City/Date/Source members; the merged report
        // must carry the *sum* per dimension, not just the first report's.
        for dim in ["City", "Date", "Source"] {
            let count = merged
                .etl
                .new_members
                .iter()
                .find(|(name, _)| name == dim)
                .map(|(_, n)| *n);
            assert_eq!(
                count,
                Some(2),
                "dimension {dim}: {:?}",
                merged.etl.new_members
            );
        }
        // Absorbing an empty report changes nothing.
        let before = merged.clone();
        merged.absorb(FeedReport::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn feed_errors_render_their_kind() {
        let missing: FeedError = WarehouseError::UnknownFact("City Weather".into()).into();
        assert_eq!(missing, FeedError::MissingFact("City Weather".into()));
        assert!(missing.to_string().contains("missing"));
        let etl: FeedError = WarehouseError::UnknownDimension("City".into()).into();
        assert!(matches!(etl, FeedError::Etl(_)));
        assert!(FeedError::Injected("half-load".into())
            .to_string()
            .contains("injected"));
        assert!(FeedError::RollbackFailed("io".into())
            .to_string()
            .contains("rollback"));
    }

    #[test]
    fn non_temperature_answers_are_rejected() {
        let mut wh = Warehouse::new(integrated_schema());
        let a = Answer {
            value: AnswerValue::Name("Barcelona".into()),
            score: 1.0,
            url: "u".into(),
            sentence: String::new(),
            context_date: None,
            context_location: None,
        };
        let report = feed_weather(&mut wh, &[a], &TemperatureAxioms::default()).unwrap();
        assert_eq!(report.loaded, 0);
        assert!(report.rejected[0].1.contains("not a temperature"));
    }
}
