//! `dwqa-core` — the paper's contribution: ontology-mediated integration
//! of a Data Warehouse with Question Answering.
//!
//! Ferrández & Peral (EDBT 2010) propose a five-step, semi-automatic
//! model. This crate wires the workspace's substrates into exactly those
//! steps:
//!
//! 1. **Schema → ontology** ([`dwqa_ontology::schema_to_ontology`]) — the
//!    DW's UML multidimensional model becomes the domain ontology;
//! 2. **Instance enrichment** ([`dwqa_ontology::enrich_from_warehouse`]) —
//!    the DW's contents become ontology instances;
//! 3. **Merge** ([`dwqa_ontology::merge_into_upper`]) — the domain
//!    ontology is merged into the QA system's upper ontology
//!    (mini-WordNet);
//! 4. **Tuning** ([`axioms`], [`dwqa_qa::temperature_pattern`]) — the QA
//!    system learns the new question family and the domain axioms
//!    (temperature = number + °C/F, plausible ranges, C↔F conversion);
//! 5. **Feedback** ([`feedback`]) — QA answers become structured rows
//!    (temperature – date – city – web page) loaded into the DW.
//!
//! [`pipeline::IntegrationPipeline`] orchestrates all five steps;
//! [`analysis`] runs the motivating BI query ("which temperature ranges
//! increase last-minute sales?"); [`evaluate`] scores answers against a
//! ground truth; [`tableprep`] and [`dwquery`] implement the paper's two
//! future-work items (table pre-processing for Figure-5 pages, and
//! DW-query → NL-question generation).

//! ```
//! use dwqa_core::{TemperatureAxioms, integrated_schema};
//! use dwqa_nlp::TempUnit;
//!
//! let axioms = TemperatureAxioms::default();            // Step 4
//! assert_eq!(axioms.validate(46.4, TempUnit::Fahrenheit), Ok(8.0));
//! assert!(integrated_schema().fact("City Weather").is_some()); // Step 5 target
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod analysis;
pub mod axioms;
pub mod durability;
pub mod dwquery;
pub mod error;
pub mod evaluate;
pub mod feedback;
pub mod pipeline;
pub mod prelude;
pub mod rollup;
pub mod schema;
pub mod tableprep;

pub use analysis::{sales_by_temperature_band, sales_by_temperature_band_with, TemperatureBand};
pub use axioms::TemperatureAxioms;
pub use durability::{DurableCheckpoint, LoggedTransaction, RecoveryReport};
pub use dwquery::{questions_for_missing_weather, questions_for_missing_weather_with};
pub use error::Error;
pub use evaluate::{evaluate_temperatures, ExtractionEval};
pub use feedback::{feed_weather, FeedError, FeedReport};
pub use pipeline::{
    FeedFault, IntegrationPipeline, PipelineOptions, PipelineOptionsBuilder, ReadPath,
};
pub use rollup::RollupCache;
pub use schema::integrated_schema;
pub use tableprep::preprocess_tables;
