//! The five-step integration pipeline.

use crate::axioms::TemperatureAxioms;
use crate::feedback::{feed_weather_dedup, FeedReport};
use std::collections::HashSet;
use dwqa_ir::DocumentStore;
use dwqa_ontology::{
    enrich_from_warehouse, merge_into_upper, schema_to_ontology, upper_ontology,
    EnrichmentReport, MergeOptions, MergeReport, Ontology,
};
use dwqa_qa::{temperature_pattern, AliQAn, AliQAnConfig, Answer, PipelineTrace};
use dwqa_warehouse::Warehouse;

/// Pipeline construction options.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Step-3 merge options.
    pub merge: MergeOptions,
    /// QA configuration (passage window etc.).
    pub qa: AliQAnConfig,
    /// Step-4 axioms.
    pub axioms: TemperatureAxioms,
    /// Skip Step 2 (ontology enrichment) — the E5 ablation.
    pub skip_enrichment: bool,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions {
            merge: MergeOptions::default(),
            qa: AliQAnConfig::default(),
            axioms: TemperatureAxioms::default(),
            skip_enrichment: false,
        }
    }
}

/// The integrated system: the DW, the tuned QA system over the merged
/// ontology, and the reports of Steps 1–4.
pub struct IntegrationPipeline {
    /// The data warehouse (Step 5 writes into it).
    pub warehouse: Warehouse,
    /// The tuned QA system over the merged ontology.
    pub qa: AliQAn,
    /// Step-2 report.
    pub enrichment: EnrichmentReport,
    /// Step-3 report.
    pub merge: MergeReport,
    axioms: TemperatureAxioms,
    /// (city, date) points already fed, so overlapping questions never
    /// load the same reading twice.
    fed_points: HashSet<(String, dwqa_common::Date)>,
}

impl IntegrationPipeline {
    /// Runs Steps 1–4 over an already-loaded warehouse and indexes the
    /// unstructured corpus.
    ///
    /// * Step 1 — the warehouse schema becomes the domain ontology;
    /// * Step 2 — DW members enrich it (unless ablated);
    /// * Step 3 — merge into the mini-WordNet upper ontology;
    /// * Step 4 — the temperature question pattern and axioms are tuned in;
    /// * the corpus is indexed so Step 5 can run via [`Self::ask_and_feed`].
    pub fn build(
        warehouse: Warehouse,
        corpus: DocumentStore,
        options: PipelineOptions,
    ) -> IntegrationPipeline {
        // Step 1.
        let mut domain: Ontology = schema_to_ontology(warehouse.schema());
        // Step 2.
        let enrichment = if options.skip_enrichment {
            EnrichmentReport::default()
        } else {
            enrich_from_warehouse(&mut domain, &warehouse)
        };
        // Step 3.
        let mut upper = upper_ontology();
        let merge = merge_into_upper(&domain, &mut upper, &options.merge);
        // Step 4.
        options.axioms.annotate(&mut upper);
        let mut qa = AliQAn::new(upper, options.qa);
        qa.tune(temperature_pattern());
        // Indexation phase.
        qa.index_corpus(corpus);
        IntegrationPipeline {
            warehouse,
            qa,
            enrichment,
            merge,
            axioms: options.axioms,
            fed_points: HashSet::new(),
        }
    }

    /// Asks the QA system one question (Steps 1–4 already in place).
    pub fn ask(&self, question: &str) -> Vec<Answer> {
        self.qa.answer(question)
    }

    /// Step 5 for one question: answers are validated and loaded into the
    /// `City Weather` star.
    pub fn ask_and_feed(&mut self, question: &str) -> (Vec<Answer>, FeedReport) {
        let answers = self.qa.answer(question);
        let report = feed_weather_dedup(
            &mut self.warehouse,
            &answers,
            &self.axioms,
            &mut self.fed_points,
        )
        .expect("the integrated schema has the City Weather fact");
        (answers, report)
    }

    /// Step 5 for a batch of questions; returns the merged feed report.
    pub fn feed_from_questions(&mut self, questions: &[String]) -> FeedReport {
        let mut merged = FeedReport::default();
        for q in questions {
            let (_, report) = self.ask_and_feed(q);
            merged.loaded += report.loaded;
            merged.rejected.extend(report.rejected);
            for url in report.urls {
                if !merged.urls.contains(&url) {
                    merged.urls.push(url);
                }
            }
            merged.duplicates_skipped += report.duplicates_skipped;
            merged.etl.inserted += report.etl.inserted;
            merged.etl.rejected.extend(report.etl.rejected);
        }
        merged
    }

    /// The Table-1 trace for a question.
    pub fn trace(&self, question: &str) -> PipelineTrace {
        self.qa.trace(question)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::sales_by_temperature_band;
    use crate::schema::integrated_schema;
    use dwqa_common::Month;
    use dwqa_corpus::{
        default_cities, generate_sales, generate_weather_corpus, SalesConfig, WeatherConfig,
    };
    use dwqa_qa::AnswerValue;

    fn built_pipeline(skip_enrichment: bool) -> (IntegrationPipeline, dwqa_corpus::GroundTruth) {
        let corpus =
            generate_weather_corpus(&WeatherConfig::new(42, 2004, Month::January), &default_cities());
        let mut wh = Warehouse::new(integrated_schema());
        let rows = generate_sales(&SalesConfig::default(), &default_cities(), &corpus.truth);
        wh.load("Last Minute Sales", rows).unwrap();
        let options = PipelineOptions {
            skip_enrichment,
            ..PipelineOptions::default()
        };
        let truth = corpus.truth.clone();
        (IntegrationPipeline::build(wh, corpus.store, options), truth)
    }

    #[test]
    fn steps_one_to_four_produce_reports() {
        let (p, _) = built_pipeline(false);
        assert!(p.enrichment.instances_added > 0);
        assert!(p.merge.count(dwqa_ontology::MatchKind::Exact) > 5);
        // The tuned ontology knows El Prat as an airport.
        let airport = p.qa.ontology().class_for("airport").unwrap();
        assert!(p
            .qa
            .ontology()
            .concepts_for("El Prat")
            .iter()
            .any(|&id| p.qa.ontology().is_a(id, airport)));
    }

    #[test]
    fn paper_question_end_to_end() {
        let (mut p, truth) = built_pipeline(false);
        let (answers, report) =
            p.ask_and_feed("What is the temperature in January of 2004 in El Prat?");
        assert!(!answers.is_empty());
        assert!(report.loaded > 0, "rejected: {:?}", report.rejected);
        // Every loaded tuple matches the generator's ground truth.
        for a in &answers {
            if let AnswerValue::Temperature { celsius, .. } = a.value {
                if let (Some(city), Some(date)) = (a.context_location.as_deref(), a.context_date) {
                    if let Some(t) = truth.temperature(city, date) {
                        assert!((t - celsius).abs() < 0.51, "{a:?} vs truth {t}");
                    }
                }
            }
        }
    }

    #[test]
    fn bi_analysis_becomes_answerable_after_feeding() {
        let (mut p, _) = built_pipeline(false);
        assert!(sales_by_temperature_band(&p.warehouse, 5.0)
            .unwrap()
            .is_empty());
        let questions: Vec<String> = default_cities()
            .iter()
            .map(|c| format!("What is the temperature in January of 2004 in {}?", c.city))
            .collect();
        let report = p.feed_from_questions(&questions);
        assert!(report.loaded > 0);
        let bands = sales_by_temperature_band(&p.warehouse, 5.0).unwrap();
        assert!(!bands.is_empty());
    }

    #[test]
    fn enrichment_ablation_changes_the_ontology() {
        let (with, _) = built_pipeline(false);
        let (without, _) = built_pipeline(true);
        assert_eq!(without.enrichment.instances_added, 0);
        // Without Step 2, El Prat never reaches the merged ontology.
        assert!(without.qa.ontology().concepts_for("El Prat").is_empty());
        assert!(!with.qa.ontology().concepts_for("El Prat").is_empty());
    }
}
