//! The five-step integration pipeline, split into an immutable **read
//! path** (question answering over shared state) and a serialized **write
//! path** (feedback ETL into the warehouse).
//!
//! The read path — question analysis, passage selection, answer
//! extraction — only touches the tuned QA system, whose index and
//! ontology are immutable after [`IntegrationPipeline::build`]. It is
//! exposed as [`ReadPath`], a cheaply cloneable `Send + Sync` handle that
//! many worker threads can drive concurrently (see the `dwqa-engine`
//! crate). The write path — Step 5, loading validated answers into the
//! `City Weather` star — needs `&mut` and stays on
//! [`IntegrationPipeline::apply_feedback`]. Every warehouse mutation bumps
//! a monotonically increasing *revision* that caches key off; a committed
//! feed additionally yields a typed append delta that live materialized
//! roll-ups absorb in place (see [`crate::rollup::RollupCache`]), so a
//! commit maintains cached analyses instead of discarding them.

use crate::axioms::TemperatureAxioms;
use crate::durability::{
    decode_checkpoint_payload, decode_transaction, encode_checkpoint_payload, encode_transaction,
    LoggedTransaction, RecoveryReport,
};
use crate::feedback::{feed_weather_dedup, FeedError, FeedReport};
use crate::rollup::RollupCache;
use dwqa_ir::DocumentStore;
use dwqa_ontology::{
    enrich_from_warehouse, merge_into_upper, schema_to_ontology, upper_ontology, EnrichmentReport,
    MergeOptions, MergeReport, Ontology,
};
use dwqa_qa::{temperature_pattern, AliQAn, AliQAnConfig, Answer, PipelineTrace};
use dwqa_store::{FeedbackStore, StoreConfig};
use dwqa_warehouse::{CubeQuery, ResultSet, Warehouse, WarehouseSnapshot};
use std::collections::HashSet;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Deterministic fault injection for feedback transactions (chaos
/// testing): with probability `rate`, a feed transaction aborts after
/// loading roughly half of its answer batches, leaving genuine partial
/// state for the rollback to undo. Decisions derive from `seed` and the
/// pipeline's transaction counter, so runs replay exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedFault {
    /// Seed of the failure stream.
    pub seed: u64,
    /// Probability in `[0, 1]` that any one transaction fails.
    pub rate: f64,
}

/// Everything needed to undo a feedback transaction: the warehouse
/// contents (via the snapshot machinery), the fed-point dedup set, and
/// the revision observed by caches.
struct FeedCheckpoint {
    warehouse: WarehouseSnapshot,
    fed_points: HashSet<(String, dwqa_common::Date)>,
    revision: u64,
}

/// SplitMix64, for the feed-fault decision stream.
fn mix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pipeline construction options.
///
/// Construct with [`PipelineOptions::builder`]; the struct is
/// `#[non_exhaustive]` so new knobs can be added without breaking
/// downstream crates.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct PipelineOptions {
    /// Step-3 merge options.
    pub merge: MergeOptions,
    /// QA configuration (passage window etc.).
    pub qa: AliQAnConfig,
    /// Step-4 axioms.
    pub axioms: TemperatureAxioms,
    /// Skip Step 2 (ontology enrichment) — the E5 ablation.
    pub skip_enrichment: bool,
}

impl PipelineOptions {
    /// Starts a builder pre-loaded with the defaults.
    pub fn builder() -> PipelineOptionsBuilder {
        PipelineOptionsBuilder {
            options: PipelineOptions::default(),
        }
    }
}

/// Builder for [`PipelineOptions`].
///
/// ```
/// use dwqa_core::PipelineOptions;
/// let options = PipelineOptions::builder()
///     .skip_enrichment(true)
///     .build()
///     .unwrap();
/// assert!(options.skip_enrichment);
/// ```
#[derive(Debug, Clone)]
pub struct PipelineOptionsBuilder {
    options: PipelineOptions,
}

impl PipelineOptionsBuilder {
    /// Sets the Step-3 merge options.
    pub fn merge(mut self, merge: MergeOptions) -> Self {
        self.options.merge = merge;
        self
    }

    /// Sets the QA configuration.
    pub fn qa(mut self, qa: AliQAnConfig) -> Self {
        self.options.qa = qa;
        self
    }

    /// Sets the Step-4 axioms.
    pub fn axioms(mut self, axioms: TemperatureAxioms) -> Self {
        self.options.axioms = axioms;
        self
    }

    /// Skips Step 2 (ontology enrichment) — the E5 ablation.
    pub fn skip_enrichment(mut self, skip: bool) -> Self {
        self.options.skip_enrichment = skip;
        self
    }

    /// Finishes the builder, validating every knob's range (currently
    /// the embedded QA configuration; the merge options and axioms have
    /// no invalid states).
    pub fn build(self) -> Result<PipelineOptions, dwqa_common::ConfigError> {
        self.options.qa.validate()?;
        Ok(self.options)
    }
}

/// The integrated system: the DW, the tuned QA system over the merged
/// ontology, and the reports of Steps 1–4.
pub struct IntegrationPipeline {
    /// The data warehouse (Step 5 writes into it). Prefer
    /// [`Self::apply_feedback`] for mutation; after mutating directly,
    /// call [`Self::mark_dirty`] so caches keyed on the revision drop
    /// their stale entries.
    pub warehouse: Warehouse,
    /// The tuned QA system over the merged ontology, shared with every
    /// [`ReadPath`] handle.
    pub qa: Arc<AliQAn>,
    /// Step-2 report.
    pub enrichment: EnrichmentReport,
    /// Step-3 report.
    pub merge: MergeReport,
    axioms: TemperatureAxioms,
    /// (city, date) points already fed, so overlapping questions never
    /// load the same reading twice.
    fed_points: HashSet<(String, dwqa_common::Date)>,
    /// Bumped on every warehouse mutation; shared with [`ReadPath`].
    revision: Arc<AtomicU64>,
    /// Deterministic chaos injection for feed transactions.
    feed_fault: Option<FeedFault>,
    /// Feed transactions attempted (drives the fault stream).
    feeds_attempted: u64,
    /// Feed transactions that failed and were rolled back.
    rollbacks: u64,
    /// Optional durability: committed feed transactions are logged here
    /// *before* the commit is acknowledged.
    store: Option<FeedbackStore>,
    /// Set when a failed rollback left the warehouse possibly holding a
    /// partial load; all feeds are rejected until a restore clears it.
    poisoned: Option<String>,
    /// Revision-tagged cache of roll-up results with live materialized
    /// state: committed feed transactions fold their append delta into
    /// every entry ([`RollupCache::apply_delta`]) instead of purging;
    /// only non-append mutations fall back to [`Self::mark_dirty`].
    rollups: RollupCache,
}

/// The immutable read path: a cheap, cloneable, `Send + Sync` handle over
/// the tuned QA system. Worker threads answer questions through it while
/// the owner of the [`IntegrationPipeline`] serializes feedback writes.
#[derive(Clone)]
pub struct ReadPath {
    qa: Arc<AliQAn>,
    revision: Arc<AtomicU64>,
}

impl ReadPath {
    /// The shared QA system (analysis, passage and extraction modules).
    pub fn qa(&self) -> &AliQAn {
        &self.qa
    }

    /// The full search phase for one question.
    pub fn answer(&self, question: &str) -> Vec<Answer> {
        self.qa.answer(question)
    }

    /// The Table-1 trace for a question.
    pub fn trace(&self, question: &str) -> PipelineTrace {
        self.qa.trace(question)
    }

    /// The warehouse revision this handle currently observes. Increases
    /// every time the write path mutates the warehouse; caches tag
    /// entries with it and drop them when it moves.
    pub fn revision(&self) -> u64 {
        self.revision.load(Ordering::Acquire)
    }
}

impl IntegrationPipeline {
    /// Runs Steps 1–4 over an already-loaded warehouse and indexes the
    /// unstructured corpus.
    ///
    /// * Step 1 — the warehouse schema becomes the domain ontology;
    /// * Step 2 — DW members enrich it (unless ablated);
    /// * Step 3 — merge into the mini-WordNet upper ontology;
    /// * Step 4 — the temperature question pattern and axioms are tuned in;
    /// * the corpus is indexed so Step 5 can run via
    ///   [`Self::apply_feedback`].
    pub fn build(
        warehouse: Warehouse,
        corpus: DocumentStore,
        options: PipelineOptions,
    ) -> IntegrationPipeline {
        // Step 1.
        let mut domain: Ontology = schema_to_ontology(warehouse.schema());
        // Step 2.
        let enrichment = if options.skip_enrichment {
            EnrichmentReport::default()
        } else {
            enrich_from_warehouse(&mut domain, &warehouse)
        };
        // Step 3.
        let mut upper = upper_ontology();
        let merge = merge_into_upper(&domain, &mut upper, &options.merge);
        // Step 4.
        options.axioms.annotate(&mut upper);
        let mut qa = AliQAn::new(upper, options.qa);
        qa.tune(temperature_pattern());
        // Indexation phase. After this point the QA state is immutable
        // and can be shared across threads.
        qa.index_corpus(corpus);
        IntegrationPipeline {
            warehouse,
            qa: Arc::new(qa),
            enrichment,
            merge,
            axioms: options.axioms,
            fed_points: HashSet::new(),
            revision: Arc::new(AtomicU64::new(0)),
            feed_fault: None,
            feeds_attempted: 0,
            rollbacks: 0,
            store: None,
            poisoned: None,
            rollups: RollupCache::default(),
        }
    }

    /// A cloneable `Send + Sync` handle over the immutable QA state, for
    /// concurrent question answering.
    pub fn read_path(&self) -> ReadPath {
        ReadPath {
            qa: Arc::clone(&self.qa),
            revision: Arc::clone(&self.revision),
        }
    }

    /// The current warehouse revision (see [`ReadPath::revision`]).
    pub fn revision(&self) -> u64 {
        self.revision.load(Ordering::Acquire)
    }

    /// Bumps the revision so caches drop entries computed against the
    /// previous warehouse state. [`Self::apply_feedback`] calls this
    /// automatically; call it yourself after mutating
    /// [`Self::warehouse`] directly.
    pub fn mark_dirty(&self) {
        let revision = self.revision.fetch_add(1, Ordering::AcqRel) + 1;
        // Eagerly drop result sets computed against older revisions;
        // lookups would skip them anyway, this just frees the memory.
        self.rollups.purge_stale(revision);
    }

    /// Runs a cube query against the warehouse through the revision-
    /// tagged result cache: repeated queries between feed commits are
    /// served without re-scanning the fact tables.
    pub fn rollup(&self, query: &CubeQuery) -> dwqa_warehouse::Result<ResultSet> {
        self.rollups.run(&self.warehouse, self.revision(), query)
    }

    /// The roll-up result cache (hit/miss statistics, manual purge).
    pub fn rollup_cache(&self) -> &RollupCache {
        &self.rollups
    }

    /// [`crate::questions_for_missing_weather`] routed through the
    /// result cache.
    pub fn missing_weather_questions(
        &self,
        year: i32,
        month: dwqa_common::Month,
    ) -> dwqa_warehouse::Result<Vec<String>> {
        crate::dwquery::questions_for_missing_weather_with(|q| self.rollup(q), year, month)
    }

    /// [`crate::sales_by_temperature_band`] routed through the result
    /// cache.
    pub fn sales_by_temperature_band(
        &self,
        band_width: f64,
    ) -> dwqa_warehouse::Result<Vec<crate::TemperatureBand>> {
        crate::analysis::sales_by_temperature_band_with(|q| self.rollup(q), band_width)
    }

    /// Enables (or disables, with `None`) deterministic feed-fault
    /// injection: each subsequent feed transaction fails with the given
    /// probability, mid-load, and is rolled back.
    pub fn set_feed_fault(&mut self, fault: Option<FeedFault>) {
        self.feed_fault = fault;
    }

    /// Feed transactions that failed and were rolled back all-or-nothing.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Captures everything a feed transaction can mutate.
    fn checkpoint(&self) -> FeedCheckpoint {
        FeedCheckpoint {
            warehouse: self.warehouse.snapshot(),
            fed_points: self.fed_points.clone(),
            revision: self.revision(),
        }
    }

    /// Restores a checkpoint, making a failed transaction all-or-nothing.
    /// The revision is *not* bumped: the restored state is exactly what
    /// caches already observed, so their entries stay valid.
    fn rollback(&mut self, checkpoint: FeedCheckpoint) -> Result<(), FeedError> {
        let restored = Warehouse::restore(&checkpoint.warehouse)
            .map_err(|e| FeedError::RollbackFailed(e.to_string()))?;
        self.warehouse = restored;
        self.fed_points = checkpoint.fed_points;
        debug_assert_eq!(self.revision(), checkpoint.revision);
        Ok(())
    }

    /// Rolls back, and on rollback failure **poisons** the pipeline:
    /// the warehouse may hold a partial load, so every subsequent feed
    /// is rejected with [`FeedError::Poisoned`] until a snapshot/WAL
    /// restore ([`Self::restore_warehouse`] / [`Self::attach_store_at`])
    /// replaces the state wholesale.
    fn rollback_or_poison(&mut self, checkpoint: FeedCheckpoint) -> Result<(), FeedError> {
        match self.rollback(checkpoint) {
            Ok(()) => {
                self.rollbacks += 1;
                Ok(())
            }
            Err(err) => {
                let reason = err.to_string();
                dwqa_obs::event!("poisoned");
                self.poisoned = Some(reason);
                Err(err)
            }
        }
    }

    /// Loads every batch, possibly aborting mid-way under an injected
    /// fault. Runs *inside* a transaction: the caller rolls back on error.
    fn feed_all(&mut self, batches: &[&[Answer]]) -> Result<FeedReport, FeedError> {
        let fail_after = match self.feed_fault {
            Some(FeedFault { seed, rate }) => {
                let roll = (mix(seed.wrapping_add(self.feeds_attempted)) >> 11) as f64
                    / (1u64 << 53) as f64;
                // Fail after loading half the batches (at least one when
                // there is anything to load) — genuine partial state.
                (roll < rate).then(|| (batches.len() / 2).max(1))
            }
            None => None,
        };
        let mut merged = FeedReport::default();
        for (i, answers) in batches.iter().enumerate() {
            if fail_after == Some(i) {
                return Err(FeedError::Injected(format!(
                    "transaction {} aborted after {i} of {} batches",
                    self.feeds_attempted,
                    batches.len()
                )));
            }
            let report = feed_weather_dedup(
                &mut self.warehouse,
                answers,
                &self.axioms,
                &mut self.fed_points,
            )?;
            merged.absorb(report);
        }
        // A fail point at (or past) the end still aborts: everything
        // loaded, nothing committed — the hardest case for the rollback.
        if fail_after.is_some_and(|n| n >= batches.len()) {
            return Err(FeedError::Injected(format!(
                "transaction {} aborted after all {} batches, before commit",
                self.feeds_attempted,
                batches.len()
            )));
        }
        Ok(merged)
    }

    /// Logs the transaction to the attached store, returning the error
    /// that must abort the commit when the durability write fails.
    fn log_transaction(&mut self, batches: &[&[Answer]]) -> Option<FeedError> {
        self.store.as_ref()?;
        let txn = LoggedTransaction {
            batches: batches.iter().map(|b| b.to_vec()).collect(),
        };
        let payload = match encode_transaction(&txn) {
            Ok(payload) => payload,
            Err(err) => return Some(err),
        };
        let store = self.store.as_mut()?;
        match store.append(&payload) {
            Ok(_seq) => None,
            Err(err) => Some(FeedError::Durability(err.to_string())),
        }
    }

    /// One all-or-nothing feed transaction over `batches`. On success the
    /// revision is bumped once (when rows actually loaded); on failure the
    /// warehouse, the dedup set and the revision are exactly as before.
    ///
    /// With a store attached, the transaction is appended to the
    /// write-ahead log **before** it is acknowledged: if the durability
    /// write fails, the load is rolled back and the call fails with
    /// [`FeedError::Durability`] — the caller never observes a commit
    /// that a crash could lose.
    fn feed_transaction(&mut self, batches: &[&[Answer]]) -> Result<FeedReport, FeedError> {
        if let Some(reason) = &self.poisoned {
            return Err(FeedError::Poisoned(reason.clone()));
        }
        let span = dwqa_obs::span!("feed_transaction", batches = batches.len());
        let checkpoint = self.checkpoint();
        self.feeds_attempted += 1;
        // Capture the pre-transaction table extents: on commit, the
        // difference is a typed append delta the live roll-ups absorb.
        let tracker = self.warehouse.delta_tracker();
        match self.feed_all(batches) {
            Ok(report) => {
                // Durability barrier: the WAL append must succeed
                // before the commit is acknowledged.
                if let Some(durability_err) = self.log_transaction(batches) {
                    self.rollback_or_poison(checkpoint)?;
                    dwqa_obs::event!("rollback");
                    span.record("committed", false);
                    return Err(durability_err);
                }
                match self.warehouse.delta_since(&tracker) {
                    Some(delta) if delta.fact_rows_added() > 0 => {
                        // Commit with new fact rows: bump the revision
                        // and fold the delta into every live roll-up
                        // instead of purging the cache.
                        let revision = self.revision.fetch_add(1, Ordering::AcqRel) + 1;
                        self.rollups.apply_delta(&self.warehouse, &delta, revision);
                    }
                    Some(delta) if delta.members_added() > 0 => {
                        // New members without fact rows change no
                        // result (no revision bump), but live masks and
                        // ordinal maps must track the new extents.
                        self.rollups
                            .apply_delta(&self.warehouse, &delta, self.revision());
                    }
                    Some(_) => {} // nothing appended: caches stay valid
                    None => {
                        // Not a pure append (shouldn't happen on the
                        // feed path): fall back to a full purge.
                        self.mark_dirty();
                    }
                }
                dwqa_obs::event!("commit", loaded = report.loaded);
                span.record("committed", true);
                // A due checkpoint is opportunistic: failing to write
                // one costs replay time on recovery, not durability
                // (the WAL already has the transaction).
                if self
                    .store
                    .as_ref()
                    .is_some_and(FeedbackStore::checkpoint_due)
                {
                    let _ = self.checkpoint_now();
                }
                Ok(report)
            }
            Err(err) => {
                self.rollback_or_poison(checkpoint)?;
                dwqa_obs::event!("rollback");
                span.record("committed", false);
                Err(err)
            }
        }
    }

    /// The write path (Step 5), fallible and transactional: validates
    /// answers against the Step-4 axioms and loads them into the `City
    /// Weather` star, deduplicating (city, date) points across calls.
    /// Bumps the revision once when rows were actually loaded; on error
    /// the warehouse is rolled back to its pre-call state and the
    /// revision — and therefore cached answers — is untouched.
    pub fn try_apply_feedback(&mut self, answers: &[Answer]) -> Result<FeedReport, FeedError> {
        self.feed_transaction(&[answers])
    }

    /// A whole batch of per-question answer sets as **one** transaction:
    /// either every batch loads (one revision bump) or none do.
    pub fn feed_batch(&mut self, batches: &[&[Answer]]) -> Result<FeedReport, FeedError> {
        self.feed_transaction(batches)
    }

    /// Infallible wrapper over [`Self::try_apply_feedback`]: a failed
    /// (rolled-back) transaction reports every answer as rejected with
    /// the error instead of panicking. Source URLs still survive, per the
    /// paper's robustness rule.
    pub fn apply_feedback(&mut self, answers: &[Answer]) -> FeedReport {
        match self.try_apply_feedback(answers) {
            Ok(report) => report,
            Err(err) => {
                let mut report = FeedReport::default();
                let reason = err.to_string();
                for answer in answers {
                    if !report.urls.contains(&answer.url) {
                        report.urls.push(answer.url.clone());
                    }
                    report
                        .rejected
                        .push((answer.tuple_format(), reason.clone()));
                }
                report
            }
        }
    }

    /// The Table-1 trace for a question.
    pub fn trace(&self, question: &str) -> PipelineTrace {
        self.qa.trace(question)
    }

    /// Attaches a durable feedback store at `dir` with the default
    /// [`StoreConfig`] (fsync on every append). See
    /// [`Self::attach_store_with`].
    pub fn attach_store_at(&mut self, dir: impl AsRef<Path>) -> Result<RecoveryReport, FeedError> {
        self.attach_store_with(dir, StoreConfig::default())
    }

    /// Attaches a durable feedback store at `dir`, running recovery
    /// first:
    ///
    /// * an existing checkpoint becomes the warehouse state (replacing
    ///   the in-memory contents) along with its `(city, date)` dedup
    ///   set;
    /// * the committed WAL suffix is replayed on top, transaction by
    ///   transaction, through the normal validated feed path;
    /// * a fresh store (no checkpoint yet) is seeded with a checkpoint
    ///   of the *current* in-memory state, so an attached store always
    ///   has a recovery base.
    ///
    /// Recovery is staged on a scratch warehouse: if anything fails
    /// (corrupt checkpoint payload, unreplayable record), the pipeline
    /// is left exactly as it was and no store is attached. On success
    /// the pipeline is un-poisoned — the restored state is trusted
    /// wholesale — and every subsequent committed feed transaction is
    /// WAL-logged before it is acknowledged.
    pub fn attach_store_with(
        &mut self,
        dir: impl AsRef<Path>,
        config: StoreConfig,
    ) -> Result<RecoveryReport, FeedError> {
        let (mut store, recovery) =
            FeedbackStore::open(dir, config).map_err(|e| FeedError::Durability(e.to_string()))?;
        let mut report = RecoveryReport {
            torn_bytes: recovery.torn_bytes,
            stale_skipped: recovery.stale_skipped,
            duplicates_skipped: recovery.duplicates_skipped,
            generation: recovery.generation,
            ..RecoveryReport::default()
        };
        // Stage the recovered state on the side so a failure leaves
        // `self` untouched.
        let (mut warehouse, mut fed_points) = match &recovery.checkpoint {
            Some(payload) => {
                let checkpoint = decode_checkpoint_payload(payload)?;
                let warehouse = Warehouse::restore(&checkpoint.warehouse)
                    .map_err(|e| FeedError::Durability(format!("checkpoint restore: {e}")))?;
                report.checkpoint_loaded = true;
                (warehouse, checkpoint.fed_points.into_iter().collect())
            }
            None => {
                let warehouse = Warehouse::restore(&self.warehouse.snapshot())
                    .map_err(|e| FeedError::Durability(format!("state clone: {e}")))?;
                (warehouse, self.fed_points.clone())
            }
        };
        for record in &recovery.records {
            let txn = decode_transaction(&record.payload)?;
            for batch in &txn.batches {
                let fed = feed_weather_dedup(&mut warehouse, batch, &self.axioms, &mut fed_points)
                    .map_err(|e| {
                        FeedError::Durability(format!(
                            "WAL replay failed at seq {}: {e}",
                            record.seq
                        ))
                    })?;
                report.rows_loaded += fed.loaded;
            }
            report.transactions_replayed += 1;
        }
        if recovery.checkpoint.is_none() {
            // Seed the base checkpoint so the store never depends on
            // state that exists only in this process.
            let payload = encode_checkpoint_payload(&warehouse, &fed_points)?;
            store
                .checkpoint(&payload)
                .map_err(|e| FeedError::Durability(format!("initial checkpoint: {e}")))?;
        }
        self.warehouse = warehouse;
        self.fed_points = fed_points;
        self.poisoned = None;
        self.store = Some(store);
        self.mark_dirty();
        Ok(report)
    }

    /// Detaches and returns the store (subsequent feeds are no longer
    /// logged). The in-memory state is untouched.
    pub fn detach_store(&mut self) -> Option<FeedbackStore> {
        self.store.take()
    }

    /// The attached feedback store, if any.
    pub fn store(&self) -> Option<&FeedbackStore> {
        self.store.as_ref()
    }

    /// Mutable access to the attached store (for fault injection and
    /// experiment harnesses).
    pub fn store_mut(&mut self) -> Option<&mut FeedbackStore> {
        self.store.as_mut()
    }

    /// True when feeds are durably logged before being acknowledged.
    pub fn is_durable(&self) -> bool {
        self.store.is_some()
    }

    /// Why the pipeline is poisoned (rejecting all feeds), if it is.
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Checkpoints the current state into the attached store now:
    /// serializes the warehouse + dedup set, makes it the recovery
    /// base, and truncates the WAL. Errors when no store is attached or
    /// the checkpoint write fails (in which case the previous
    /// checkpoint + WAL remain authoritative — nothing is lost).
    pub fn checkpoint_now(&mut self) -> Result<(), FeedError> {
        if self.store.is_none() {
            return Err(FeedError::Durability("no store attached".to_owned()));
        }
        let payload = encode_checkpoint_payload(&self.warehouse, &self.fed_points)?;
        match self.store.as_mut() {
            Some(store) => store
                .checkpoint(&payload)
                .map_err(|e| FeedError::Durability(e.to_string())),
            None => Err(FeedError::Durability("no store attached".to_owned())),
        }
    }

    /// Replaces the warehouse state wholesale from a snapshot,
    /// rebuilding the `(city, date)` dedup set from the restored `City
    /// Weather` fact, clearing any poison, and bumping the revision.
    /// This is the manual restore path; prefer
    /// [`Self::attach_store_at`] when a durable store exists.
    pub fn restore_warehouse(&mut self, snapshot: &WarehouseSnapshot) -> Result<(), FeedError> {
        let warehouse =
            Warehouse::restore(snapshot).map_err(|e| FeedError::Durability(e.to_string()))?;
        self.fed_points = crate::durability::fed_points_from(&warehouse);
        self.warehouse = warehouse;
        self.poisoned = None;
        self.mark_dirty();
        Ok(())
    }

    /// The replica apply path for one shipped WAL record: decodes the
    /// [`LoggedTransaction`] payload and feeds it through the normal
    /// transactional path. A standby therefore gets everything the
    /// primary's write path has — rollback on failure, `(city, date)`
    /// dedup, revision bump, roll-up delta folding, and (when its own
    /// store is attached) local durability, so a promoted standby is
    /// immediately crash-safe.
    pub fn apply_replicated_transaction(
        &mut self,
        payload: &[u8],
    ) -> Result<FeedReport, FeedError> {
        let txn = decode_transaction(payload)?;
        let batches: Vec<&[Answer]> = txn.batches.iter().map(Vec::as_slice).collect();
        self.feed_transaction(&batches)
    }

    /// The replica apply path for a shipped checkpoint frame (a full
    /// sync, sent when a standby subscribes from before the primary's
    /// WAL horizon): the checkpoint's warehouse snapshot and dedup set
    /// replace the local state wholesale, poison is cleared, and — when
    /// a local store is attached — the same payload becomes the local
    /// recovery base (truncating the now-superseded local WAL).
    pub fn apply_replicated_checkpoint(&mut self, payload: &[u8]) -> Result<(), FeedError> {
        let checkpoint = decode_checkpoint_payload(payload)?;
        let warehouse = Warehouse::restore(&checkpoint.warehouse)
            .map_err(|e| FeedError::Durability(format!("replicated checkpoint restore: {e}")))?;
        self.warehouse = warehouse;
        self.fed_points = checkpoint.fed_points.into_iter().collect();
        self.poisoned = None;
        if let Some(store) = self.store.as_mut() {
            store
                .checkpoint(payload)
                .map_err(|e| FeedError::Durability(format!("replicated checkpoint: {e}")))?;
        }
        self.mark_dirty();
        Ok(())
    }

    /// The promotion fence: raises the attached store's generation
    /// above both its local value and `floor` (the highest primary
    /// generation this replica has seen) and checkpoints the current
    /// state as the new recovery base. Frames a resurrected old
    /// primary still carries are stamped at or below `floor`, so the
    /// existing stale-generation logic rejects them everywhere.
    /// Without a store the fence is purely logical: the caller's
    /// advertised generation becomes `floor + 1`.
    pub fn promote_generation(&mut self, floor: u64) -> Result<u64, FeedError> {
        if self.store.is_none() {
            return Ok(floor + 1);
        }
        let payload = encode_checkpoint_payload(&self.warehouse, &self.fed_points)?;
        match self.store.as_mut() {
            Some(store) => store
                .promote(&payload, floor)
                .map_err(|e| FeedError::Durability(e.to_string())),
            None => Ok(floor + 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::sales_by_temperature_band;
    use crate::schema::integrated_schema;
    use dwqa_common::Month;
    use dwqa_corpus::{
        default_cities, generate_sales, generate_weather_corpus, SalesConfig, WeatherConfig,
    };
    use dwqa_qa::AnswerValue;

    fn built_pipeline(skip_enrichment: bool) -> (IntegrationPipeline, dwqa_corpus::GroundTruth) {
        let corpus = generate_weather_corpus(
            &WeatherConfig::new(42, 2004, Month::January),
            &default_cities(),
        );
        let mut wh = Warehouse::new(integrated_schema());
        let rows = generate_sales(&SalesConfig::default(), &default_cities(), &corpus.truth);
        wh.load("Last Minute Sales", rows).unwrap();
        let options = PipelineOptions::builder()
            .skip_enrichment(skip_enrichment)
            .build()
            .unwrap();
        let truth = corpus.truth.clone();
        (IntegrationPipeline::build(wh, corpus.store, options), truth)
    }

    #[test]
    fn steps_one_to_four_produce_reports() {
        let (p, _) = built_pipeline(false);
        assert!(p.enrichment.instances_added > 0);
        assert!(p.merge.count(dwqa_ontology::MatchKind::Exact) > 5);
        // The tuned ontology knows El Prat as an airport.
        let airport = p.qa.ontology().class_for("airport").unwrap();
        assert!(p
            .qa
            .ontology()
            .concepts_for("El Prat")
            .iter()
            .any(|&id| p.qa.ontology().is_a(id, airport)));
    }

    #[test]
    fn paper_question_end_to_end() {
        let (mut p, truth) = built_pipeline(false);
        let answers = p
            .read_path()
            .answer("What is the temperature in January of 2004 in El Prat?");
        let report = p.apply_feedback(&answers);
        assert!(!answers.is_empty());
        assert!(report.loaded > 0, "rejected: {:?}", report.rejected);
        // Every loaded tuple matches the generator's ground truth.
        for a in &answers {
            if let AnswerValue::Temperature { celsius, .. } = a.value {
                if let (Some(city), Some(date)) = (a.context_location.as_deref(), a.context_date) {
                    if let Some(t) = truth.temperature(city, date) {
                        assert!((t - celsius).abs() < 0.51, "{a:?} vs truth {t}");
                    }
                }
            }
        }
    }

    #[test]
    fn bi_analysis_becomes_answerable_after_feeding() {
        let (mut p, _) = built_pipeline(false);
        assert!(sales_by_temperature_band(&p.warehouse, 5.0)
            .unwrap()
            .is_empty());
        let questions: Vec<String> = default_cities()
            .iter()
            .map(|c| format!("What is the temperature in January of 2004 in {}?", c.city))
            .collect();
        let read = p.read_path();
        let mut merged = FeedReport::default();
        for q in &questions {
            let answers = read.answer(q);
            merged.absorb(p.apply_feedback(&answers));
        }
        assert!(merged.loaded > 0);
        let bands = sales_by_temperature_band(&p.warehouse, 5.0).unwrap();
        assert!(!bands.is_empty());
    }

    #[test]
    fn blessed_surface_replaces_the_retired_single_shot_wrappers() {
        // The sequence the deprecated `ask_and_feed` used to hide:
        // answer through the read path, load through the transactional
        // feedback API.
        let (mut p, _) = built_pipeline(false);
        let question = "What is the temperature in January of 2004 in El Prat?";
        let answers = p.read_path().answer(question);
        let report = p.apply_feedback(&answers);
        assert!(!answers.is_empty());
        assert!(report.loaded > 0);
        // A second feed of the same answers only skips duplicates.
        let report = p.apply_feedback(&answers);
        assert_eq!(report.loaded, 0);
        assert!(report.duplicates_skipped > 0);
    }

    #[test]
    fn builder_validates_the_embedded_qa_config() {
        let err = PipelineOptions::builder()
            .qa(dwqa_qa::AliQAnConfig::builder()
                .passage_window(4)
                .build()
                .map(|mut c| {
                    c.answers_k = 0; // corrupt a knob past the qa builder
                    c
                })
                .unwrap())
            .build()
            .unwrap_err();
        assert_eq!(err.field, "answers_k");
    }

    #[test]
    fn feedback_bumps_the_revision_and_read_paths_observe_it() {
        let (mut p, _) = built_pipeline(false);
        let read = p.read_path();
        assert_eq!(read.revision(), 0);
        let answers = read.answer("What is the temperature in January of 2004 in El Prat?");
        p.apply_feedback(&answers);
        assert_eq!(read.revision(), 1);
        assert_eq!(p.revision(), 1);
        p.mark_dirty();
        assert_eq!(read.revision(), 2);
        // Clones observe the same counter.
        assert_eq!(read.clone().revision(), 2);
    }

    #[test]
    fn read_path_is_send_sync_and_usable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ReadPath>();

        let (p, _) = built_pipeline(false);
        let read = p.read_path();
        let question = "What is the temperature in January of 2004 in El Prat?";
        let expected = read.answer(question);
        let from_threads = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let read = read.clone();
                    s.spawn(move || read.answer(question))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        for answers in from_threads {
            assert_eq!(answers, expected);
        }
    }

    #[test]
    fn injected_feed_fault_rolls_back_all_or_nothing() {
        let (mut p, _) = built_pipeline(false);
        let read = p.read_path();
        let questions: Vec<String> = default_cities()
            .iter()
            .map(|c| format!("What is the temperature in January of 2004 in {}?", c.city))
            .collect();
        let batches: Vec<Vec<_>> = questions.iter().map(|q| read.answer(q)).collect();
        let refs: Vec<&[_]> = batches.iter().map(Vec::as_slice).collect();

        // Certain failure: the transaction aborts mid-load and rolls back.
        p.set_feed_fault(Some(FeedFault { seed: 7, rate: 1.0 }));
        let before = p.warehouse.snapshot();
        let revision_before = p.revision();
        let err = p.feed_batch(&refs).unwrap_err();
        assert!(matches!(err, FeedError::Injected(_)), "{err}");
        assert_eq!(p.rollbacks(), 1);
        assert_eq!(p.revision(), revision_before, "no spurious cache bump");
        assert_eq!(p.warehouse.snapshot(), before, "warehouse fully restored");

        // Disabling the fault, the same transaction commits atomically.
        p.set_feed_fault(None);
        let report = p.feed_batch(&refs).unwrap();
        assert!(report.loaded > 0);
        assert_eq!(
            p.revision(),
            revision_before + 1,
            "one bump per transaction"
        );
        // A retry after commit only skips duplicates — the dedup set was
        // rolled back with the warehouse, not corrupted by the failure.
        let again = p.feed_batch(&refs).unwrap();
        assert_eq!(again.loaded, 0);
        assert!(again.duplicates_skipped > 0);
    }

    #[test]
    fn rollup_cache_serves_reads_and_commits_fold_deltas_in_place() {
        let (mut p, _) = built_pipeline(false);
        let read = p.read_path();
        let answers = read.answer(EL_PRAT);

        // Two identical analyses: the second is served from cache.
        let first = p.sales_by_temperature_band(5.0).unwrap();
        let second = p.sales_by_temperature_band(5.0).unwrap();
        assert_eq!(first, second);
        assert_eq!(p.rollup_cache().misses(), 2, "two roll-ups executed");
        assert_eq!(p.rollup_cache().hits(), 2, "both served from cache");

        // A *rolled-back* transaction must not invalidate: the state did
        // not change, so cached results stay valid and keep hitting.
        p.set_feed_fault(Some(FeedFault { seed: 7, rate: 1.0 }));
        assert!(p.try_apply_feedback(&answers).is_err());
        assert_eq!(p.rollbacks(), 1);
        let after_rollback = p.sales_by_temperature_band(5.0).unwrap();
        assert_eq!(after_rollback, first);
        assert_eq!(p.rollup_cache().hits(), 4, "rollback kept entries hot");
        assert_eq!(p.rollup_cache().misses(), 2);

        // A *committed* transaction folds its append delta into the live
        // materialized entries instead of purging: both entries survive
        // at the new revision, the next analysis is served from them —
        // already reflecting the fed weather — and nothing re-executes.
        p.set_feed_fault(None);
        assert!(p.try_apply_feedback(&answers).unwrap().loaded > 0);
        assert_eq!(p.rollup_cache().len(), 2, "commit maintained entries");
        let after_commit = p.sales_by_temperature_band(5.0).unwrap();
        assert_ne!(after_commit, first, "fed weather changed the analysis");
        assert_eq!(p.rollup_cache().misses(), 2, "no re-scan after commit");
        assert_eq!(p.rollup_cache().hits(), 6, "maintained entries hit");

        // The DW-query → question generation path shares the cache.
        let questions = p.missing_weather_questions(2004, Month::January).unwrap();
        let again = p.missing_weather_questions(2004, Month::January).unwrap();
        assert_eq!(questions, again);
        assert_eq!(p.rollup_cache().misses(), 4);
        assert_eq!(p.rollup_cache().hits(), 8);
    }

    #[test]
    fn apply_feedback_reports_instead_of_panicking_on_failure() {
        let (mut p, _) = built_pipeline(false);
        let answers = p
            .read_path()
            .answer("What is the temperature in January of 2004 in El Prat?");
        assert!(!answers.is_empty());
        p.set_feed_fault(Some(FeedFault { seed: 1, rate: 1.0 }));
        let report = p.apply_feedback(&answers);
        assert_eq!(report.loaded, 0);
        assert!(!report.rejected.is_empty());
        assert!(report.rejected[0].1.contains("injected"));
        assert!(!report.urls.is_empty(), "URLs survive rejection");
        assert_eq!(p.revision(), 0);
        // Without the fault the very same answers load fine.
        p.set_feed_fault(None);
        assert!(p.apply_feedback(&answers).loaded > 0);
    }

    #[test]
    fn feed_fault_rate_is_probabilistic_and_deterministic() {
        let (mut p, _) = built_pipeline(false);
        p.set_feed_fault(Some(FeedFault { seed: 3, rate: 0.5 }));
        let answers = p
            .read_path()
            .answer("What is the temperature in January of 2004 in El Prat?");
        let outcomes: Vec<bool> = (0..8)
            .map(|_| p.try_apply_feedback(&answers).is_ok())
            .collect();
        assert!(outcomes.iter().any(|ok| *ok), "some transactions commit");
        assert!(outcomes.iter().any(|ok| !*ok), "some transactions fail");
        // Replay on a fresh pipeline: identical outcome sequence.
        let (mut q, _) = built_pipeline(false);
        q.set_feed_fault(Some(FeedFault { seed: 3, rate: 0.5 }));
        let replayed: Vec<bool> = (0..8)
            .map(|_| q.try_apply_feedback(&answers).is_ok())
            .collect();
        assert_eq!(outcomes, replayed);
    }

    #[test]
    fn enrichment_ablation_changes_the_ontology() {
        let (with, _) = built_pipeline(false);
        let (without, _) = built_pipeline(true);
        assert_eq!(without.enrichment.instances_added, 0);
        // Without Step 2, El Prat never reaches the merged ontology.
        assert!(without.qa.ontology().concepts_for("El Prat").is_empty());
        assert!(!with.qa.ontology().concepts_for("El Prat").is_empty());
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("dwqa-pipeline-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const EL_PRAT: &str = "What is the temperature in January of 2004 in El Prat?";

    #[test]
    fn durable_feeds_survive_a_restart() {
        let dir = scratch("reopen");
        let (mut p, _) = built_pipeline(false);
        let report = p.attach_store_at(&dir).unwrap();
        assert!(!report.checkpoint_loaded, "fresh store has no base yet");
        assert!(p.is_durable());
        let answers = p.read_path().answer(EL_PRAT);
        assert!(p.apply_feedback(&answers).loaded > 0);
        assert_eq!(p.store().unwrap().wal_records(), 1);
        let expected = p.warehouse.to_json();

        // "Crash": a fresh process starting from the seed state
        // reattaches and recovers checkpoint + WAL suffix.
        let (mut q, _) = built_pipeline(false);
        let report = q.attach_store_at(&dir).unwrap();
        assert!(
            report.checkpoint_loaded,
            "attach seeded the base checkpoint"
        );
        assert_eq!(report.transactions_replayed, 1);
        assert!(report.rows_loaded > 0);
        assert_eq!(q.warehouse.to_json(), expected, "replay reproduces state");
        // The dedup set replayed too: re-feeding only skips duplicates.
        let again = q.apply_feedback(&answers);
        assert_eq!(again.loaded, 0);
        assert!(again.duplicates_skipped > 0);

        // An explicit checkpoint truncates the WAL; the next recovery
        // loads it with nothing left to replay.
        q.checkpoint_now().unwrap();
        assert_eq!(q.store().unwrap().wal_records(), 0);
        let (mut r, _) = built_pipeline(false);
        let report = r.attach_store_at(&dir).unwrap();
        assert!(report.checkpoint_loaded);
        assert_eq!(report.transactions_replayed, 0);
        assert_eq!(r.warehouse.to_json(), expected);
    }

    #[test]
    fn due_checkpoints_are_taken_opportunistically() {
        let dir = scratch("due");
        let (mut p, _) = built_pipeline(false);
        let config = dwqa_store::StoreConfig::builder()
            .checkpoint_every(Some(1))
            .build()
            .unwrap();
        p.attach_store_with(&dir, config).unwrap();
        let generation = p.store().unwrap().generation();
        let answers = p.read_path().answer(EL_PRAT);
        assert!(p.apply_feedback(&answers).loaded > 0);
        let store = p.store().unwrap();
        assert_eq!(store.wal_records(), 0, "commit triggered the checkpoint");
        assert!(store.generation() > generation);
    }

    #[test]
    fn torn_append_fails_the_feed_and_preserves_memory() {
        let dir = scratch("torn");
        let (mut p, _) = built_pipeline(false);
        p.attach_store_at(&dir).unwrap();
        p.store_mut()
            .unwrap()
            .set_torn(Some(dwqa_store::TornPlan::new(11).with_short_write(1.0)));
        let answers = p.read_path().answer(EL_PRAT);
        let before = p.warehouse.snapshot();
        let revision_before = p.revision();
        let err = p.try_apply_feedback(&answers).unwrap_err();
        assert!(matches!(err, FeedError::Durability(_)), "{err}");
        assert_eq!(p.rollbacks(), 1);
        assert_eq!(p.revision(), revision_before, "no spurious cache bump");
        assert_eq!(p.warehouse.snapshot(), before, "memory fully rolled back");
        assert!(p.poisoned().is_none(), "a clean rollback does not poison");
        assert!(p.store().unwrap().wedged());
        // The wedged store keeps refusing feeds until it is reopened.
        let err = p.try_apply_feedback(&answers).unwrap_err();
        assert!(matches!(err, FeedError::Durability(_)), "{err}");
        // Reattaching recovers: the torn tail is truncated and dropped.
        let report = p.attach_store_at(&dir).unwrap();
        assert!(report.torn_bytes > 0);
        assert_eq!(report.transactions_replayed, 0);
        assert!(p.try_apply_feedback(&answers).unwrap().loaded > 0);
    }

    #[test]
    fn poisoned_pipeline_rejects_feeds_until_a_restore() {
        let (mut p, _) = built_pipeline(false);
        let answers = p.read_path().answer(EL_PRAT);
        let clean = p.warehouse.snapshot();
        p.poisoned = Some("simulated failed rollback".to_owned());
        let err = p.try_apply_feedback(&answers).unwrap_err();
        assert!(matches!(err, FeedError::Poisoned(_)), "{err}");
        assert_eq!(p.poisoned(), Some("simulated failed rollback"));
        // A wholesale snapshot restore clears the poison.
        p.restore_warehouse(&clean).unwrap();
        assert!(p.poisoned().is_none());
        assert!(p.try_apply_feedback(&answers).unwrap().loaded > 0);
    }

    #[test]
    fn replicated_frames_reproduce_the_primary_and_promotion_fences_it() {
        use dwqa_store::{FrameKind, FrameStream, FrameTap};
        use std::sync::{Arc, Mutex};

        let dir = scratch("repl");
        let (mut primary, _) = built_pipeline(false);
        let (mut standby, _) = built_pipeline(false);
        primary.attach_store_at(&dir).unwrap();
        let shipped: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&shipped);
        primary
            .store_mut()
            .unwrap()
            .set_tap(Some(FrameTap::new(move |_seq, frame| {
                sink.lock().unwrap().push(frame.to_vec());
            })));

        let answers = primary.read_path().answer(EL_PRAT);
        assert!(primary.apply_feedback(&answers).loaded > 0);

        // Ship the tapped bytes through the wire decoder into the
        // standby, exactly as a follower thread would.
        let mut stream = FrameStream::new(16 << 20);
        for frame in shipped.lock().unwrap().iter() {
            stream.push(frame);
        }
        let mut applied = 0;
        while let Some(frame) = stream.next().unwrap() {
            match frame.kind {
                FrameKind::Record => {
                    standby
                        .apply_replicated_transaction(&frame.payload)
                        .unwrap();
                    applied += 1;
                }
                FrameKind::Checkpoint => {
                    standby.apply_replicated_checkpoint(&frame.payload).unwrap()
                }
                _ => {}
            }
        }
        assert_eq!(applied, 1);
        assert_eq!(standby.warehouse.to_json(), primary.warehouse.to_json());
        // The dedup set replicated too: re-feeding only skips.
        let again = standby.apply_feedback(&answers);
        assert_eq!(again.loaded, 0);
        assert!(again.duplicates_skipped > 0);

        // Promotion fences: with its own store attached, the promoted
        // standby's generation lands strictly above the floor (the old
        // primary's generation), so the old primary's frames are stale.
        let standby_dir = scratch("repl-standby");
        standby.attach_store_at(&standby_dir).unwrap();
        let old_gen = primary.store().unwrap().generation();
        let new_gen = standby.promote_generation(old_gen).unwrap();
        assert!(new_gen > old_gen);
        assert_eq!(standby.store().unwrap().generation(), new_gen);
        // Without a store the fence is logical: floor + 1.
        let (mut bare, _) = built_pipeline(false);
        assert_eq!(bare.promote_generation(7).unwrap(), 8);
    }

    #[test]
    fn restore_warehouse_rebuilds_the_dedup_set() {
        let (mut p, _) = built_pipeline(false);
        let answers = p.read_path().answer(EL_PRAT);
        assert!(p.apply_feedback(&answers).loaded > 0);
        let snap = p.warehouse.snapshot();
        // A pipeline restored from that snapshot treats the fed points
        // as already present.
        let (mut q, _) = built_pipeline(false);
        let revision = q.revision();
        q.restore_warehouse(&snap).unwrap();
        assert!(q.revision() > revision, "restore bumps the revision");
        let again = q.apply_feedback(&answers);
        assert_eq!(again.loaded, 0);
        assert!(again.duplicates_skipped > 0);
    }
}
