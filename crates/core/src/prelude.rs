//! The blessed entry points, in one `use`.
//!
//! ```
//! use dwqa_core::prelude::*;
//! ```
//!
//! This is the supported surface of the integrated system after the
//! single-shot wrappers (`ask` / `ask_and_feed` / `feed_from_questions`)
//! were retired: build an [`IntegrationPipeline`], answer through its
//! [`ReadPath`] (or, one crate up, through `dwqa_engine::QaSession` /
//! `submit_batch`, or over the wire through `dwqa-server`), and write
//! through the transactional feedback API.

pub use crate::analysis::{sales_by_temperature_band, TemperatureBand};
pub use crate::axioms::TemperatureAxioms;
pub use crate::dwquery::questions_for_missing_weather;
pub use crate::error::Error;
pub use crate::feedback::{FeedError, FeedReport};
pub use crate::pipeline::{
    FeedFault, IntegrationPipeline, PipelineOptions, PipelineOptionsBuilder, ReadPath,
};
pub use crate::schema::integrated_schema;
pub use dwqa_common::ConfigError;
pub use dwqa_qa::{AliQAn, AliQAnConfig, Answer, AnswerValue};
