//! Revision-invalidated registry of **live** roll-up results.
//!
//! The warehouse's plan cache (in `dwqa-warehouse`) avoids re-*compiling*
//! a query; this cache avoids re-*executing* it. Entries are tagged with
//! the pipeline revision they were computed against and — where the
//! query permits — retain a [`MaterializedRollup`]: the per-group
//! accumulator state alongside the result.
//!
//! That state is what makes commits cheap. A committed feed transaction
//! no longer purges the cache; it folds its typed [`WarehouseDelta`]
//! into every live entry ([`RollupCache::apply_delta`]) — appended fact
//! rows route through a tight scan over just the delta, new dimension
//! members extend the pass masks and key→ordinal maps — and re-tags the
//! entries with the new revision. Entries that cannot absorb a delta
//! (no materialized state, mismatched extents, group-table overflow)
//! are **demoted**: dropped and recomputed on next read, so incremental
//! maintenance is always an optimization, never a correctness risk. A
//! rolled-back transaction leaves the revision — and therefore every
//! cached result — untouched.

use dwqa_obs::names as obs;
use dwqa_warehouse::{
    CubeQuery, MaterializedRollup, Result, ResultSet, Warehouse, WarehouseDelta,
    DEFAULT_MATERIALIZED_GROUP_LIMIT,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Default number of cached result sets (the BI workloads reuse a
/// handful of query shapes per dashboard refresh).
pub const DEFAULT_ROLLUP_CAPACITY: usize = 64;

struct CachedResult {
    revision: u64,
    result: ResultSet,
    /// Live accumulator state, when the query shape supports
    /// incremental maintenance; `None` entries always demote on commit.
    materialized: Option<MaterializedRollup>,
    last_used: u64,
}

struct Inner {
    map: HashMap<String, CachedResult>,
    tick: u64,
}

/// An LRU cache of [`ResultSet`]s keyed by the query's canonical form,
/// invalidated by revision, and — for materializable queries — kept
/// consistent across commits by folding deltas instead of purging.
pub struct RollupCache {
    capacity: usize,
    /// Demotion threshold for materialized entries; tests shrink it to
    /// force the demote-and-rebuild path.
    group_limit: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for RollupCache {
    fn default() -> RollupCache {
        RollupCache::new(DEFAULT_ROLLUP_CAPACITY)
    }
}

impl std::fmt::Debug for RollupCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RollupCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl RollupCache {
    /// Creates a cache holding up to `capacity` result sets. Capacity 0
    /// disables caching (every run executes).
    pub fn new(capacity: usize) -> RollupCache {
        RollupCache::with_group_limit(capacity, DEFAULT_MATERIALIZED_GROUP_LIMIT)
    }

    /// Like [`RollupCache::new`] with an explicit bound on live groups
    /// per materialized entry; entries growing past it demote to
    /// recompute-on-next-read.
    pub fn with_group_limit(capacity: usize, group_limit: usize) -> RollupCache {
        RollupCache {
            capacity,
            group_limit,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn inner(&self) -> MutexGuard<'_, Inner> {
        // A poisoned lock only means another thread panicked mid-insert;
        // the map itself is always structurally sound.
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Runs `query` against `warehouse`, serving the result from cache
    /// when one was computed at the same `revision`. Misses build live
    /// accumulator state where the query shape permits, so later
    /// commits can maintain the entry in place. Errors are never cached
    /// (they are cheap to reproduce and carry no scan cost).
    pub fn run(
        &self,
        warehouse: &Warehouse,
        revision: u64,
        query: &CubeQuery,
    ) -> Result<ResultSet> {
        let Ok(key) = serde_json::to_string(query) else {
            return query.run(warehouse);
        };
        {
            let mut inner = self.inner();
            inner.tick += 1;
            let tick = inner.tick;
            match inner.map.get_mut(&key) {
                Some(entry) if entry.revision == revision => {
                    entry.last_used = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    dwqa_obs::counter_add(obs::WAREHOUSE_ROLLUP_HITS, 1);
                    return Ok(entry.result.clone());
                }
                Some(_) => {
                    inner.map.remove(&key);
                }
                None => {}
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        dwqa_obs::counter_add(obs::WAREHOUSE_ROLLUP_MISSES, 1);
        if self.capacity == 0 {
            return query.run(warehouse);
        }
        // Build validates exactly like `query.run` (both go through
        // plan compilation first), so error behaviour is identical on
        // either branch.
        let (result, materialized) =
            match MaterializedRollup::build(query, warehouse, self.group_limit)? {
                Some(mat) => (mat.result_set().clone(), Some(mat)),
                None => (query.run(warehouse)?, None),
            };
        {
            let mut inner = self.inner();
            inner.tick += 1;
            let tick = inner.tick;
            inner.map.insert(
                key,
                CachedResult {
                    revision,
                    result: result.clone(),
                    materialized,
                    last_used: tick,
                },
            );
            while inner.map.len() > self.capacity {
                let Some(oldest) = inner
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                else {
                    break;
                };
                inner.map.remove(&oldest);
            }
        }
        Ok(result)
    }

    /// Folds a committed transaction's pure-append delta into every
    /// live entry and re-tags survivors with `revision`; entries that
    /// cannot absorb it are demoted (dropped, recomputed on next read).
    ///
    /// `warehouse` must already be at the delta's after-extents — the
    /// pipeline calls this right after a successful commit, before any
    /// further mutation.
    pub fn apply_delta(&self, warehouse: &Warehouse, delta: &WarehouseDelta, revision: u64) {
        let rows_added = delta.fact_rows_added() as u64;
        let mut inner = self.inner();
        inner.map.retain(|_, entry| {
            let absorbed = entry
                .materialized
                .as_mut()
                .is_some_and(|mat| mat.apply_delta(warehouse, delta));
            if absorbed {
                if let Some(mat) = entry.materialized.as_ref() {
                    entry.result = mat.result_set().clone();
                }
                entry.revision = revision;
                dwqa_obs::counter_add(obs::WAREHOUSE_DELTA_APPLIED, 1);
                dwqa_obs::counter_add(obs::WAREHOUSE_DELTA_ROWS, rows_added);
            } else {
                dwqa_obs::counter_add(obs::WAREHOUSE_DELTA_DEMOTED, 1);
            }
            absorbed
        });
    }

    /// Drops every entry computed against a revision other than
    /// `revision`.
    pub fn purge_stale(&self, revision: u64) {
        self.inner().map.retain(|_, e| e.revision == revision);
    }

    /// Drops everything.
    pub fn clear(&self) {
        self.inner().map.clear();
    }

    /// Number of cached result sets.
    pub fn len(&self) -> usize {
        self.inner().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (queries actually executed) since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwqa_warehouse::{AggFn, FactRowBuilder, Value};

    fn sale(airport: &str, city: &str, day: u32, price: f64) -> dwqa_warehouse::FactRow {
        let mut b = FactRowBuilder::new();
        b.measure("price", Value::Float(price))
            .measure("miles", Value::Float(500.0))
            .measure("traveler_rate", Value::Float(0.5))
            .role_member("Origin", &[("airport_name", Value::text("Elsewhere"))])
            .role_member(
                "Destination",
                &[
                    ("airport_name", Value::text(airport)),
                    ("city_name", Value::text(city)),
                ],
            )
            .role_member("Customer", &[("customer_name", Value::text("Ann"))])
            .role_member("Date", &[("date", Value::date(2004, 1, day).unwrap())]);
        b.build()
    }

    fn loaded() -> Warehouse {
        let mut wh = Warehouse::new(crate::schema::integrated_schema());
        wh.load(
            "Last Minute Sales",
            vec![sale("El Prat", "Barcelona", 5, 100.0)],
        )
        .unwrap();
        wh
    }

    fn count_query() -> CubeQuery {
        CubeQuery::on("Last Minute Sales")
            .group_by("Destination", "City")
            .aggregate("price", AggFn::Count)
    }

    #[test]
    fn second_run_at_same_revision_is_a_hit() {
        let wh = loaded();
        let cache = RollupCache::new(8);
        let q = count_query();
        let a = cache.run(&wh, 0, &q).unwrap();
        let b = cache.run(&wh, 0, &q).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn revision_change_invalidates() {
        let wh = loaded();
        let cache = RollupCache::new(8);
        let q = count_query();
        cache.run(&wh, 0, &q).unwrap();
        cache.run(&wh, 1, &q).unwrap();
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
        // The stale entry was evicted on sight, not left behind.
        assert_eq!(cache.len(), 1);
        cache.purge_stale(1);
        assert_eq!(cache.len(), 1);
        cache.purge_stale(2);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let wh = loaded();
        let cache = RollupCache::new(2);
        let queries: Vec<CubeQuery> = [AggFn::Count, AggFn::Min, AggFn::Max]
            .iter()
            .map(|&f| {
                CubeQuery::on("Last Minute Sales")
                    .group_by("Destination", "City")
                    .aggregate("price", f)
            })
            .collect();
        cache.run(&wh, 0, &queries[0]).unwrap();
        cache.run(&wh, 0, &queries[1]).unwrap();
        // Touch the first so the second is the LRU victim.
        cache.run(&wh, 0, &queries[0]).unwrap();
        cache.run(&wh, 0, &queries[2]).unwrap();
        assert_eq!(cache.len(), 2);
        cache.run(&wh, 0, &queries[0]).unwrap();
        assert_eq!(cache.hits(), 2, "first query stayed cached");
        cache.run(&wh, 0, &queries[1]).unwrap();
        assert_eq!(cache.misses(), 4, "second query was evicted");
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let wh = loaded();
        let cache = RollupCache::new(0);
        let q = count_query();
        cache.run(&wh, 0, &q).unwrap();
        cache.run(&wh, 0, &q).unwrap();
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
        assert!(cache.is_empty());
    }

    #[test]
    fn errors_are_not_cached() {
        let wh = loaded();
        let cache = RollupCache::new(8);
        let q = CubeQuery::on("Ghost").aggregate("price", AggFn::Count);
        assert!(cache.run(&wh, 0, &q).is_err());
        assert!(cache.run(&wh, 0, &q).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn apply_delta_maintains_entries_in_place() {
        let mut wh = loaded();
        let cache = RollupCache::new(8);
        let q = count_query();
        let before = cache.run(&wh, 0, &q).unwrap();
        assert_eq!(cache.misses(), 1);

        // Commit two more sales, one to a brand-new city.
        let tracker = wh.delta_tracker();
        wh.load(
            "Last Minute Sales",
            vec![
                sale("El Prat", "Barcelona", 6, 140.0),
                sale("JFK", "New York", 7, 320.0),
            ],
        )
        .unwrap();
        let delta = wh.delta_since(&tracker).unwrap();
        cache.apply_delta(&wh, &delta, 1);

        // The entry survived the commit and serves the *new* answer as
        // a hit at the new revision, with no re-execution.
        assert_eq!(cache.len(), 1);
        let after = cache.run(&wh, 1, &q).unwrap();
        assert_eq!(cache.misses(), 1, "maintained entry needs no recompute");
        assert_eq!(cache.hits(), 1);
        assert_ne!(before, after);
        assert_eq!(after, q.execute_reference(&wh).unwrap());
    }

    #[test]
    fn unabsorbable_entries_demote_on_delta() {
        let mut wh = loaded();
        // Group limit 1: the two-city roll-up below outgrows it on
        // commit, so the entry must demote rather than absorb.
        let cache = RollupCache::with_group_limit(8, 1);
        let q = count_query();
        cache.run(&wh, 0, &q).unwrap();
        assert_eq!(cache.len(), 1);

        let tracker = wh.delta_tracker();
        wh.load("Last Minute Sales", vec![sale("JFK", "New York", 7, 320.0)])
            .unwrap();
        let delta = wh.delta_since(&tracker).unwrap();
        cache.apply_delta(&wh, &delta, 1);
        assert!(cache.is_empty(), "overgrown entry demoted, not kept stale");

        // The next read recomputes correctly.
        let fresh = cache.run(&wh, 1, &q).unwrap();
        assert_eq!(fresh, q.execute_reference(&wh).unwrap());
        assert_eq!(cache.misses(), 2);
    }
}
