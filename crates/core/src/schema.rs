//! The integrated warehouse schema: airline sales + fed-back weather.
//!
//! Step 5 loads "new data about temperature, date, city or airport …
//! from the Web page into the DW". The target star is a new fact class
//! `City Weather` with a semi-additive temperature measure, a city-level
//! geography dimension, the **conformed** `Date` dimension shared with
//! `Last Minute Sales`, and a `Source` dimension recording provenance
//! (the paper's robustness rule: "the web page is also added to the
//! generated database, in this way, the user can select the more useful
//! data").

use dwqa_mdmodel::{Additivity, DataType, Schema, SchemaBuilder};

/// The airline schema of Figure 1 extended with the weather star the
/// feedback ETL fills.
// The builder input is a compile-time constant, so validation cannot
// fail at runtime — a targeted allow, per the crate-level expect gate.
#[allow(clippy::expect_used)]
pub fn integrated_schema() -> Schema {
    SchemaBuilder::new("Airline DW (integrated)")
        // --- Figure 1, unchanged -----------------------------------------
        .dimension("Airport", |d| {
            d.level("Airport", |l| {
                l.descriptor("airport_name", DataType::Text)
                    .attribute("iata_code", DataType::Text)
            })
            .level("City", |l| {
                l.descriptor("city_name", DataType::Text)
                    .attribute("population", DataType::Int)
            })
            .level("State", |l| l.descriptor("state_name", DataType::Text))
            .level("Country", |l| l.descriptor("country_name", DataType::Text))
            .rolls_up("Airport", "City")
            .rolls_up("City", "State")
            .rolls_up("State", "Country")
        })
        .dimension("Customer", |d| {
            d.level("Customer", |l| {
                l.descriptor("customer_name", DataType::Text)
                    .attribute("frequent_flyer", DataType::Bool)
            })
            .level("Segment", |l| l.descriptor("segment_name", DataType::Text))
            .rolls_up("Customer", "Segment")
        })
        .dimension("Date", |d| {
            d.level("Date", |l| l.descriptor("date", DataType::Date))
                .level("Month", |l| l.descriptor("month", DataType::Text))
                .level("Quarter", |l| l.descriptor("quarter", DataType::Text))
                .level("Year", |l| l.descriptor("year", DataType::Int))
                .rolls_up("Date", "Month")
                .rolls_up("Month", "Quarter")
                .rolls_up("Quarter", "Year")
        })
        .fact("Last Minute Sales", |f| {
            f.measure("price", DataType::Float, Additivity::Sum)
                .measure("miles", DataType::Float, Additivity::Sum)
                .measure("traveler_rate", DataType::Float, Additivity::None)
                .uses_dimension("Origin", "Airport")
                .uses_dimension("Destination", "Airport")
                .uses_dimension("Customer", "Customer")
                .uses_dimension("Date", "Date")
        })
        // --- The fed-back weather star (Step 5) ----------------------------
        .dimension("City", |d| {
            d.level("City", |l| l.descriptor("city_name", DataType::Text))
                .level("State", |l| l.descriptor("state_name", DataType::Text))
                .level("Country", |l| l.descriptor("country_name", DataType::Text))
                .rolls_up("City", "State")
                .rolls_up("State", "Country")
        })
        .dimension("Source", |d| {
            d.level("Page", |l| {
                l.descriptor("url", DataType::Text)
                    .attribute("format", DataType::Text)
            })
        })
        .fact("City Weather", |f| {
            // Temperatures are semi-additive: AVG/MIN/MAX, never SUM.
            f.measure("temperature_c", DataType::Float, Additivity::Average)
                .uses_dimension("City", "City")
                .uses_dimension("Date", "Date")
                .uses_dimension("Source", "Source")
        })
        .build()
        .expect("the integrated schema is statically valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwqa_warehouse::{AggFn, CubeQuery, Warehouse};

    #[test]
    fn integrated_schema_extends_figure_1() {
        let s = integrated_schema();
        assert!(s.fact("Last Minute Sales").is_some());
        let (_, weather) = s.fact("City Weather").unwrap();
        assert_eq!(weather.measures[0].name, "temperature_c");
        assert_eq!(weather.measures[0].additivity, Additivity::Average);
        assert!(s.dimension("City").is_some());
        assert!(s.dimension("Source").is_some());
    }

    #[test]
    fn date_dimension_is_conformed() {
        let s = integrated_schema();
        let (_, sales) = s.fact("Last Minute Sales").unwrap();
        let (_, weather) = s.fact("City Weather").unwrap();
        let sales_date = sales.role("Date").unwrap().dimension;
        let weather_date = weather.role("Date").unwrap().dimension;
        assert_eq!(
            sales_date, weather_date,
            "both facts share one Date dimension"
        );
    }

    #[test]
    fn sales_and_weather_drill_across_on_date_and_city() {
        let s = integrated_schema();
        let coords = s
            .drill_across_coordinates("Last Minute Sales", "City Weather")
            .unwrap();
        // The shared Date dimension (by identity)…
        assert!(coords
            .iter()
            .any(|(a, b, d)| a == "Date" && b == "Date" && d == "Date"));
        // …and the Airport/City dimensions conformed at the City level.
        assert!(coords
            .iter()
            .any(|(a, b, d)| a == "Destination" && b == "City" && d.contains('≈')));
    }

    #[test]
    fn summing_temperatures_is_rejected() {
        let wh = Warehouse::new(integrated_schema());
        let err = CubeQuery::on("City Weather")
            .aggregate("temperature_c", AggFn::Sum)
            .run(&wh)
            .unwrap_err();
        assert!(matches!(
            err,
            dwqa_warehouse::WarehouseError::IllegalAggregate { .. }
        ));
    }
}
