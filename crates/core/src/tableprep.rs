//! Future-work extension: pre-processing tabular weather pages.
//!
//! The paper's Section 5: "As future projects, we will study the
//! pre-processing of web pages in order to handle tables correctly (such
//! as the table in Figure 5)." This module implements that project: it
//! detects Figure-5-style number grids, recovers the month/year/city
//! context from the page heading, and rewrites every row as a prose
//! sentence with explicit units — after which the unmodified QA pipeline
//! extracts from them as well as from prose pages (measured in E3).

use dwqa_common::{Date, Month};
use dwqa_ir::{DocFormat, Document, DocumentStore};

/// Parses the "<City …> <Month> <Year> …" heading of a table page.
fn heading_context(line: &str) -> Option<(String, Month, i32)> {
    let words: Vec<&str> = line.split_whitespace().collect();
    for (i, w) in words.iter().enumerate() {
        if let Some(month) = Month::parse(w) {
            let year: i32 = words.get(i + 1)?.parse().ok()?;
            if !(1000..=2999).contains(&year) || i == 0 {
                return None;
            }
            let city = words[..i].join(" ");
            return Some((city, month, year));
        }
    }
    None
}

/// A parsed table row: day + max/min/avg readings.
fn parse_row(line: &str) -> Option<(u32, f64, f64, f64)> {
    let nums: Vec<&str> = line.split_whitespace().collect();
    if nums.len() != 4 {
        return None;
    }
    let day: u32 = nums[0].parse().ok()?;
    let max: f64 = nums[1].parse().ok()?;
    let min: f64 = nums[2].parse().ok()?;
    let avg: f64 = nums[3].parse().ok()?;
    if !(1..=31).contains(&day) {
        return None;
    }
    Some((day, max, min, avg))
}

/// Rewrites one document if it is a Figure-5-style table page; returns
/// `None` if the document is not tabular.
pub fn preprocess_document(doc: &Document) -> Option<Document> {
    let mut lines = doc.text.lines();
    let heading = lines.next()?;
    let (city, month, year) = heading_context(heading)?;
    // Require the Day/Max/Min/Avg header somewhere near the top.
    let mut saw_header = false;
    let mut rows = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.split_whitespace().collect::<Vec<_>>() == ["Day", "Max", "Min", "Avg"] {
            saw_header = true;
            continue;
        }
        if let Some(row) = parse_row(line) {
            rows.push(row);
        }
    }
    if !saw_header || rows.is_empty() {
        return None;
    }
    let mut text = format!("{} Weather in {} {}\n\n", city, month.name(), year);
    for (day, max, min, avg) in rows {
        let Some(date) = Date::new(year, month, day) else {
            continue;
        };
        text.push_str(&format!("{}\n", date.long_format()));
        text.push_str(&format!(
            "{city} Weather: Temperature {avg}º C with a maximum of {max}º C and a minimum of {min}º C\n\n"
        ));
    }
    let mut rewritten = Document::new(&doc.url, DocFormat::Plain, &doc.title, &text);
    rewritten.location = doc.location.clone();
    rewritten.date = doc.date;
    Some(rewritten)
}

/// Pre-processes a whole store: tabular pages are rewritten, everything
/// else passes through unchanged.
pub fn preprocess_tables(store: &DocumentStore) -> (DocumentStore, usize) {
    let mut out = DocumentStore::new();
    let mut rewritten = 0usize;
    for (_, doc) in store.iter() {
        match preprocess_document(doc) {
            Some(new_doc) => {
                out.add(new_doc);
                rewritten += 1;
            }
            None => {
                out.add(doc.clone());
            }
        }
    }
    (out, rewritten)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_doc() -> Document {
        Document::new(
            "http://weather-archive.example.org/barcelona/january-table.html",
            DocFormat::Plain,
            "Barcelona weather table",
            "Barcelona January 2004 Daily Temperatures\n\nDay Max Min Avg\n30 11 3 7\n31 12 4 8\n",
        )
    }

    #[test]
    fn table_rows_become_dated_prose_with_units() {
        let out = preprocess_document(&table_doc()).expect("is a table page");
        assert!(out.text.contains("Saturday, January 31, 2004"));
        assert!(out.text.contains("Barcelona Weather: Temperature 8º C"));
        assert!(out.text.contains("maximum of 12º C"));
        assert!(out.text.contains("minimum of 4º C"));
        assert_eq!(out.url, table_doc().url);
    }

    #[test]
    fn prose_pages_pass_through() {
        let prose = Document::new(
            "u",
            DocFormat::Plain,
            "",
            "Saturday, January 31, 2004\nBarcelona Weather: Temperature 8º C today",
        );
        assert!(preprocess_document(&prose).is_none());
        let mut store = DocumentStore::new();
        store.add(prose.clone());
        store.add(table_doc());
        let (out, rewritten) = preprocess_tables(&store);
        assert_eq!(rewritten, 1);
        assert_eq!(out.len(), 2);
        assert_eq!(out.get(dwqa_ir::DocId(0)).text, prose.text);
        assert!(out.get(dwqa_ir::DocId(1)).text.contains("Temperature 8º C"));
    }

    #[test]
    fn heading_parsing() {
        assert_eq!(
            heading_context("Barcelona January 2004 Daily Temperatures"),
            Some(("Barcelona".to_owned(), Month::January, 2004))
        );
        assert_eq!(
            heading_context("New York July 1998 Daily Temperatures"),
            Some(("New York".to_owned(), Month::July, 1998))
        );
        assert_eq!(heading_context("No month here 2004"), None);
        assert_eq!(heading_context("January 2004"), None); // no city
    }

    #[test]
    fn malformed_rows_are_skipped_invalid_days_dropped() {
        let doc = Document::new(
            "u",
            DocFormat::Plain,
            "",
            "Madrid February 2004 Daily Temperatures\nDay Max Min Avg\nnot a row\n30 9 1 5\n31 9 1 5\n",
        );
        let out = preprocess_document(&doc).unwrap();
        // Feb 30/31 do not exist → no rows survive the date check except none.
        assert!(!out.text.contains("February 30"));
        assert!(!out.text.contains("February 31"));
    }

    #[test]
    fn generated_corpus_tables_are_recognised() {
        use dwqa_corpus::{default_cities, generate_weather_corpus, PageStyle, WeatherConfig};
        let corpus = generate_weather_corpus(
            &WeatherConfig::new(5, 2004, Month::January).with_styles(&[PageStyle::Table]),
            &default_cities(),
        );
        let (_, rewritten) = preprocess_tables(&corpus.store);
        assert_eq!(rewritten, corpus.store.len());
    }
}
