//! Per-city climate models.

use dwqa_common::Month;

/// A city with its airport and a simple monthly climate model.
#[derive(Debug, Clone, PartialEq)]
pub struct CityClimate {
    /// City name ("Barcelona").
    pub city: &'static str,
    /// The airport serving it ("El Prat").
    pub airport: &'static str,
    /// Administrative region.
    pub state: &'static str,
    /// Country.
    pub country: &'static str,
    /// Mean daily temperature (°C) per month, January first.
    pub monthly_mean: [f64; 12],
    /// Day-to-day standard deviation (°C).
    pub daily_sigma: f64,
}

impl CityClimate {
    /// Mean temperature for a month.
    pub fn mean_for(&self, month: Month) -> f64 {
        self.monthly_mean[(month.number() - 1) as usize]
    }
}

/// The default city set of the reproduction: the paper's examples
/// (Barcelona/El Prat, New York/JFK + La Guardia, Costa Mesa/John Wayne)
/// plus enough others to make retrieval non-trivial.
pub fn default_cities() -> Vec<CityClimate> {
    vec![
        CityClimate {
            city: "Barcelona",
            airport: "El Prat",
            state: "Catalonia",
            country: "Spain",
            monthly_mean: [
                9.0, 10.0, 12.0, 14.0, 17.5, 21.5, 24.5, 25.0, 22.0, 18.0, 13.0, 10.0,
            ],
            daily_sigma: 2.0,
        },
        CityClimate {
            city: "New York",
            airport: "JFK",
            state: "New York State",
            country: "United States",
            monthly_mean: [
                0.0, 1.5, 5.5, 11.5, 17.0, 22.0, 25.0, 24.5, 20.5, 14.5, 8.5, 3.0,
            ],
            daily_sigma: 3.5,
        },
        CityClimate {
            city: "New York",
            airport: "La Guardia",
            state: "New York State",
            country: "United States",
            monthly_mean: [
                0.5, 2.0, 6.0, 12.0, 17.5, 22.5, 25.5, 25.0, 21.0, 15.0, 9.0, 3.5,
            ],
            daily_sigma: 3.5,
        },
        CityClimate {
            city: "Costa Mesa",
            airport: "John Wayne",
            state: "California",
            country: "United States",
            monthly_mean: [
                14.0, 14.5, 15.5, 17.0, 18.5, 20.5, 22.5, 23.0, 22.0, 19.5, 16.5, 14.0,
            ],
            daily_sigma: 2.0,
        },
        CityClimate {
            city: "Madrid",
            airport: "Barajas",
            state: "Community of Madrid",
            country: "Spain",
            monthly_mean: [
                6.0, 7.5, 10.5, 13.0, 17.0, 22.5, 26.0, 25.5, 21.0, 15.0, 9.5, 6.5,
            ],
            daily_sigma: 3.0,
        },
        CityClimate {
            city: "Alicante",
            airport: "El Altet",
            state: "Valencian Community",
            country: "Spain",
            monthly_mean: [
                11.5, 12.0, 14.0, 16.0, 19.0, 23.0, 25.5, 26.0, 23.5, 19.5, 15.0, 12.0,
            ],
            daily_sigma: 2.0,
        },
        CityClimate {
            city: "Paris",
            airport: "Charles de Gaulle",
            state: "Ile-de-France",
            country: "France",
            monthly_mean: [
                4.5, 5.5, 8.5, 11.5, 15.0, 18.5, 20.5, 20.5, 17.0, 13.0, 8.0, 5.0,
            ],
            daily_sigma: 3.0,
        },
        CityClimate {
            city: "London",
            airport: "Heathrow",
            state: "Greater London",
            country: "United Kingdom",
            monthly_mean: [
                5.0, 5.5, 7.5, 9.5, 13.0, 16.0, 18.5, 18.0, 15.5, 12.0, 8.0, 5.5,
            ],
            daily_sigma: 2.5,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_set_covers_the_papers_airports() {
        let cities = default_cities();
        let airports: Vec<&str> = cities.iter().map(|c| c.airport).collect();
        for a in ["El Prat", "JFK", "La Guardia", "John Wayne"] {
            assert!(airports.contains(&a), "missing {a}");
        }
    }

    #[test]
    fn mean_for_picks_the_right_month() {
        let bcn = &default_cities()[0];
        assert_eq!(bcn.mean_for(Month::January), 9.0);
        assert_eq!(bcn.mean_for(Month::August), 25.0);
    }

    #[test]
    fn climates_are_plausible() {
        for c in default_cities() {
            for m in c.monthly_mean {
                assert!((-20.0..=40.0).contains(&m), "{}: {m}", c.city);
            }
            assert!(c.daily_sigma > 0.0);
        }
    }
}
