//! Distractor documents.
//!
//! Precision is only meaningful against a corpus that can fool the
//! system. These generators produce the ambiguity traps the paper
//! discusses — "JFK" the assassinated president, "La Guardia" the mayor,
//! "JFK" the Spanish musical group — plus airline promotions and news
//! pages whose numbers and dates *look* like answers but are not
//! temperatures.

use dwqa_common::Date;
use dwqa_ir::{DocFormat, Document};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn president_page(rng: &mut StdRng) -> (String, String) {
    let year = 1960 + rng.gen_range(0..4);
    (
        "history/jfk-president".to_owned(),
        format!(
            "President John F. Kennedy, widely known as JFK, won the election of {year}. \
             JFK was a politician and statesman. The political temperature in Washington \
             rose sharply during his term. JFK was assassinated in 1963. Historians still \
             study the president JFK and his decisions."
        ),
    )
}

fn mayor_page(rng: &mut StdRng) -> (String, String) {
    let terms = rng.gen_range(2..4);
    (
        "history/la-guardia-mayor".to_owned(),
        format!(
            "Fiorello La Guardia was the mayor of New York. La Guardia served {terms} terms \
             as a politician. The mayor La Guardia reformed the city government. People \
             remember La Guardia as a person of great energy."
        ),
    )
}

fn band_page(rng: &mut StdRng) -> (String, String) {
    let year = 1995 + rng.gen_range(0..10);
    (
        "music/jfk-band".to_owned(),
        format!(
            "The Spanish musical group JFK played a concert in Alicante in {year}. The band \
             JFK released a new record that the musicians presented on stage. Fans of the \
             group JFK filled the hall."
        ),
    )
}

fn promo_page(rng: &mut StdRng) -> (String, String) {
    let price = 29 + rng.gen_range(0..8) * 10;
    let city = ["Barcelona", "Madrid", "Paris", "London"][rng.gen_range(0..4usize)];
    (
        format!("promo/flights-{}", dwqa_common::text::fold(city)),
        format!(
            "Last minute flights to {city} from {price} euros. Book your ticket today and \
             travel tomorrow. The airline offers {price} euros fares for passengers who buy \
             in the last minutes before the flight."
        ),
    )
}

fn sports_page(rng: &mut StdRng) -> (String, String) {
    let goals = rng.gen_range(1..9);
    let day = rng.gen_range(1..29);
    let date = Date::from_ymd(2004, 1, day).expect("valid January day");
    (
        format!("sports/match-{day}"),
        format!(
            "On {}, the home team scored {goals} goals in {}. The match report mentioned \
             the crowd of 46.4 thousand people. It was a great event for the city.",
            date.long_format(),
            ["Barcelona", "Madrid", "London"][rng.gen_range(0..3usize)]
        ),
    )
}

fn database_page(rng: &mut StdRng) -> (String, String) {
    let n = rng.gen_range(100..999);
    (
        format!("tech/data-warehouse-{n}"),
        format!(
            "A data warehouse stores data extracted from operational databases. Business \
             intelligence applications analyze the information. Report {n} describes the \
             system and its {n} tables."
        ),
    )
}

/// A template: draws a (title, body) pair from the RNG.
type PageMaker = fn(&mut StdRng) -> (String, String);

/// Generates `count` distractor documents, cycling through the templates.
pub fn generate_distractors(seed: u64, count: usize) -> Vec<Document> {
    let mut rng = StdRng::seed_from_u64(seed);
    let makers: [PageMaker; 6] = [
        president_page,
        mayor_page,
        band_page,
        promo_page,
        sports_page,
        database_page,
    ];
    (0..count)
        .map(|i| {
            let (path, text) = makers[i % makers.len()](&mut rng);
            let format = [DocFormat::Plain, DocFormat::Html][i % 2];
            let raw = match format {
                DocFormat::Plain => text.clone(),
                _ => format!("<html><body><p>{text}</p></body></html>"),
            };
            Document::new(
                &format!("http://news.example.org/{path}-{i}"),
                format,
                &path,
                &raw,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distractors_cover_the_papers_ambiguities() {
        let docs = generate_distractors(9, 12);
        assert_eq!(docs.len(), 12);
        let all_text: String = docs.iter().map(|d| d.text.clone()).collect();
        assert!(all_text.contains("president"));
        assert!(all_text.contains("mayor of New York"));
        assert!(all_text.contains("musical group JFK"));
        assert!(all_text.contains("Last minute flights"));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_distractors(5, 8);
        let b = generate_distractors(5, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn no_distractor_contains_a_real_temperature_reading() {
        // Distractors may mention the word "temperature" (politically) and
        // numbers, but never a `<number>º C` reading that could pollute
        // extraction ground truth.
        for d in generate_distractors(17, 24) {
            assert!(!d.text.contains("º C"), "{}", d.url);
            assert!(!d.text.contains("° C"), "{}", d.url);
        }
    }

    #[test]
    fn urls_are_unique() {
        let docs = generate_distractors(3, 18);
        let mut urls: Vec<&str> = docs.iter().map(|d| d.url.as_str()).collect();
        urls.sort_unstable();
        let n = urls.len();
        urls.dedup();
        assert_eq!(urls.len(), n);
    }
}
