//! Ground truth behind the generated corpus.

use dwqa_common::Date;
use std::collections::HashMap;

/// The true temperatures the weather pages were generated from.
///
/// Keys are `(case-folded city, date)`. Having this record is what turns
/// the paper's narrated precision claims into measurable numbers: every
/// tuple the QA pipeline extracts can be checked against the value the
/// generator actually wrote.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroundTruth {
    temps: HashMap<(String, Date), f64>,
}

impl GroundTruth {
    /// Creates an empty record.
    pub fn new() -> GroundTruth {
        GroundTruth::default()
    }

    /// Records the true temperature (°C) for a city and date.
    pub fn record(&mut self, city: &str, date: Date, celsius: f64) {
        self.temps
            .insert((dwqa_common::text::fold(city), date), celsius);
    }

    /// The true temperature, if the generator produced one.
    pub fn temperature(&self, city: &str, date: Date) -> Option<f64> {
        self.temps
            .get(&(dwqa_common::text::fold(city), date))
            .copied()
    }

    /// Whether an extracted value is correct within `tolerance` °C.
    pub fn check(&self, city: &str, date: Date, celsius: f64, tolerance: f64) -> Option<bool> {
        self.temperature(city, date)
            .map(|truth| (truth - celsius).abs() <= tolerance)
    }

    /// Number of recorded (city, date) points.
    pub fn len(&self) -> usize {
        self.temps.len()
    }

    /// Whether nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.temps.is_empty()
    }

    /// Iterates `(city, date, celsius)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Date, f64)> {
        self.temps
            .iter()
            .map(|((city, date), t)| (city.as_str(), *date, *t))
    }

    /// Merges another record into this one.
    pub fn extend(&mut self, other: &GroundTruth) {
        for ((city, date), t) in &other.temps {
            self.temps.insert((city.clone(), *date), *t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(day: u32) -> Date {
        Date::from_ymd(2004, 1, day).unwrap()
    }

    #[test]
    fn record_and_lookup_fold_city_names() {
        let mut gt = GroundTruth::new();
        gt.record("Barcelona", d(31), 8.0);
        assert_eq!(gt.temperature("barcelona", d(31)), Some(8.0));
        assert_eq!(gt.temperature("BARCELONA", d(31)), Some(8.0));
        assert_eq!(gt.temperature("Madrid", d(31)), None);
        assert_eq!(gt.len(), 1);
    }

    #[test]
    fn check_applies_tolerance() {
        let mut gt = GroundTruth::new();
        gt.record("Barcelona", d(31), 8.0);
        assert_eq!(gt.check("Barcelona", d(31), 8.2, 0.5), Some(true));
        assert_eq!(gt.check("Barcelona", d(31), 10.0, 0.5), Some(false));
        assert_eq!(gt.check("Madrid", d(31), 8.0, 0.5), None);
    }

    #[test]
    fn extend_merges() {
        let mut a = GroundTruth::new();
        a.record("Barcelona", d(1), 9.0);
        let mut b = GroundTruth::new();
        b.record("Madrid", d(1), 5.0);
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.temperature("Madrid", d(1)), Some(5.0));
    }
}
