//! Company-internal unstructured sources.
//!
//! The paper stresses that useful unstructured data "comes from both
//! inside the company (e.g. the reports or emails from the company
//! personnel stored in the company intranet) and outside (e.g. the Webs
//! of the company competitors)". This module generates the inside half:
//! marketing reports and staff emails about last-minute promotions, with
//! extractable facts (promotion prices, route mentions) and the noisy
//! phrasing of real intranet mail.

use dwqa_common::{Date, Month};
use dwqa_ir::{DocFormat, Document};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated internal promotion (the ground truth of the intranet set).
#[derive(Debug, Clone, PartialEq)]
pub struct Promotion {
    /// Destination city.
    pub city: String,
    /// Promotional fare in euros.
    pub price_euros: u32,
    /// The date the promotion starts.
    pub starts: Date,
}

/// Generated intranet documents plus their promotion ground truth.
#[derive(Debug, Clone, Default)]
pub struct Intranet {
    /// The report/email documents.
    pub documents: Vec<Document>,
    /// The promotions the reports describe.
    pub promotions: Vec<Promotion>,
}

fn report(promo: &Promotion, author_id: usize) -> String {
    format!(
        "Internal marketing report {author_id}.\n\
         The marketing department approved a new promotion for flights to {city}.\n\
         Starting on {date}, last minute tickets to {city} will cost {price} euros.\n\
         The promotion targets customers who buy in the last minutes before the flight.\n\
         Staff should report weekly sales numbers for the {city} route.",
        city = promo.city,
        date = promo.starts.long_format(),
        price = promo.price_euros,
    )
}

fn email(promo: &Promotion, author_id: usize) -> String {
    format!(
        "From: analyst{author_id}@airline.example\n\
         Subject: {city} promotion question\n\
         Team, quick question about the {city} campaign.\n\
         I saw the fare of {price} euros for {city} and the numbers look great.\n\
         Can somebody confirm the start on {date}?\n\
         Thanks, Analyst {author_id}",
        city = promo.city,
        date = promo.starts.long_format(),
        price = promo.price_euros,
    )
}

/// Generates `per_city` report+email pairs for each city.
pub fn generate_intranet(seed: u64, cities: &[&str], year: i32, month: Month) -> Intranet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Intranet::default();
    for (ci, city) in cities.iter().enumerate() {
        let day = rng.gen_range(1..=month.days_in(year).min(28));
        let promo = Promotion {
            city: (*city).to_owned(),
            price_euros: 29 + rng.gen_range(0..10u32) * 10,
            starts: Date::new(year, month, day).expect("day clamped to month length"),
        };
        out.documents.push(Document::new(
            &format!(
                "intranet://reports/{}-promotion-{ci}",
                dwqa_common::text::fold(city)
            ),
            DocFormat::Plain,
            &format!("{city} promotion report"),
            &report(&promo, ci),
        ));
        out.documents.push(Document::new(
            &format!(
                "intranet://mail/{}-thread-{ci}",
                dwqa_common::text::fold(city)
            ),
            DocFormat::Plain,
            &format!("{city} promotion email"),
            &email(&promo, ci),
        ));
        out.promotions.push(promo);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cities() -> Vec<&'static str> {
        vec!["Barcelona", "Madrid", "Paris"]
    }

    #[test]
    fn every_city_gets_a_report_and_an_email() {
        let intranet = generate_intranet(3, &cities(), 2004, Month::January);
        assert_eq!(intranet.documents.len(), 6);
        assert_eq!(intranet.promotions.len(), 3);
        for promo in &intranet.promotions {
            let mentions = intranet
                .documents
                .iter()
                .filter(|d| d.text.contains(&promo.city))
                .count();
            assert!(mentions >= 2, "{} under-mentioned", promo.city);
        }
    }

    #[test]
    fn prices_and_dates_are_extractable() {
        let intranet = generate_intranet(3, &cities(), 2004, Month::January);
        let lexicon = dwqa_nlp::Lexicon::english();
        for (doc, promo) in intranet.documents.iter().zip(
            intranet
                .promotions
                .iter()
                .flat_map(|p| std::iter::repeat(p).take(2)),
        ) {
            let sentences = dwqa_nlp::analyze_text(&lexicon, &doc.text);
            let mut found_price = false;
            let mut found_date = false;
            for s in &sentences {
                for e in &s.entities {
                    match &e.kind {
                        dwqa_nlp::EntityKind::Money { amount, currency }
                            if *amount == f64::from(promo.price_euros) && currency == "euro" =>
                        {
                            found_price = true;
                        }
                        dwqa_nlp::EntityKind::FullDate(d) if *d == promo.starts => {
                            found_date = true;
                        }
                        _ => {}
                    }
                }
            }
            assert!(found_price, "price missing in {}", doc.url);
            assert!(found_date, "date missing in {}", doc.url);
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = generate_intranet(3, &cities(), 2004, Month::January);
        let b = generate_intranet(3, &cities(), 2004, Month::January);
        let c = generate_intranet(4, &cities(), 2004, Month::January);
        assert_eq!(a.promotions, b.promotions);
        assert_ne!(a.promotions, c.promotions);
    }

    #[test]
    fn urls_are_intranet_scoped() {
        let intranet = generate_intranet(3, &cities(), 2004, Month::January);
        for d in &intranet.documents {
            assert!(d.url.starts_with("intranet://"), "{}", d.url);
        }
    }
}
