//! Synthetic corpus generation: the reproduction's "Web".
//!
//! The paper's experiment runs AliQAn against live 2009 web pages
//! (barcelona-tourist-guide.com weather pages) and feeds an airline DW
//! from operational sources — neither of which can ship with a
//! reproduction. This crate builds deterministic, seeded equivalents that
//! exercise the same code paths *and* come with ground truth, so the
//! precision the paper only narrates becomes measurable:
//!
//! * [`climate`] — per-city monthly climate models;
//! * [`ground_truth`] — the generated (city, date) → temperature record;
//! * [`weather`] — weather pages in the paper's two shapes: **prose**
//!   pages (Figure 4: "Monday, January 31, 2004 — Barcelona Weather:
//!   Temperature 8º C around 46.4 F Clear skies today") and **table**
//!   pages (Figure 5: bare number grids where associating a measure with
//!   its unit is hard), in plain text, HTML or XML;
//! * [`distractors`] — non-weather documents, including the ambiguity
//!   traps the paper discusses (JFK the president, La Guardia the
//!   politician, JFK the Spanish musical group) and "political
//!   temperature" decoys;
//! * [`intranet`] — company-internal reports and emails (the paper's
//!   inside-the-company unstructured sources), with promotion ground
//!   truth;
//! * [`sales`] — the operational last-minute-sales source with a
//!   **planted** temperature → sales correlation, so the end-to-end BI
//!   analysis of Step 5 has a recoverable signal.

//! ```
//! use dwqa_corpus::{generate_weather_corpus, default_cities, WeatherConfig};
//! use dwqa_common::{Date, Month};
//!
//! let corpus = generate_weather_corpus(&WeatherConfig::new(42, 2004, Month::January),
//!                                      &default_cities());
//! let jan15 = Date::from_ymd(2004, 1, 15).unwrap();
//! assert!(corpus.truth.temperature("Barcelona", jan15).is_some());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod climate;
pub mod distractors;
pub mod ground_truth;
pub mod intranet;
pub mod sales;
pub mod weather;

pub use climate::{default_cities, CityClimate};
pub use distractors::generate_distractors;
pub use ground_truth::GroundTruth;
pub use intranet::{generate_intranet, Intranet, Promotion};
pub use sales::{generate_sales, SalesConfig, SWEET_RANGE_C};
pub use weather::{generate_weather_corpus, Corruption, PageStyle, WeatherConfig};

use dwqa_ir::DocumentStore;

/// A generated corpus: documents plus the ground truth they encode.
#[derive(Debug)]
pub struct Corpus {
    /// The document store ("the Web").
    pub store: DocumentStore,
    /// The true temperatures behind the weather pages.
    pub truth: GroundTruth,
    /// Failure-injected `(city, date, corruption)` lines (empty unless
    /// [`weather::WeatherConfig::with_noise`] was used).
    pub corrupted: Vec<(String, dwqa_common::Date, weather::Corruption)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwqa_common::Month;

    #[test]
    fn full_corpus_is_deterministic() {
        let cfg = WeatherConfig::new(7, 2004, Month::January);
        let a = generate_weather_corpus(&cfg, &default_cities());
        let b = generate_weather_corpus(&cfg, &default_cities());
        assert_eq!(a.store.len(), b.store.len());
        for ((_, da), (_, db)) in a.store.iter().zip(b.store.iter()) {
            assert_eq!(da, db);
        }
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_weather_corpus(
            &WeatherConfig::new(1, 2004, Month::January),
            &default_cities(),
        );
        let b = generate_weather_corpus(
            &WeatherConfig::new(2, 2004, Month::January),
            &default_cities(),
        );
        let ta = a.truth.temperature(
            "Barcelona",
            dwqa_common::Date::from_ymd(2004, 1, 15).unwrap(),
        );
        let tb = b.truth.temperature(
            "Barcelona",
            dwqa_common::Date::from_ymd(2004, 1, 15).unwrap(),
        );
        assert_ne!(ta, tb);
    }
}
