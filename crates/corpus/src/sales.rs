//! The operational last-minute-sales source, with a planted weather signal.
//!
//! The paper's motivating analysis: "the range of temperatures that lead
//! to increase the last minute sales to that city". The generator plants
//! exactly that effect — days whose destination-city temperature falls in
//! [`SWEET_RANGE_C`] receive a sales bonus — so the end-to-end experiment
//! (E7) can verify that the integrated pipeline *recovers* a known signal.

use crate::climate::CityClimate;
use crate::ground_truth::GroundTruth;
use dwqa_warehouse::{FactRow, FactRowBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The planted "pleasant weather" range (°C, inclusive).
pub const SWEET_RANGE_C: (f64, f64) = (15.0, 25.0);

/// Sales generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SalesConfig {
    /// RNG seed.
    pub seed: u64,
    /// Baseline sales per destination per day.
    pub base_daily_sales: usize,
    /// Extra sales on sweet-range days (the planted signal).
    pub sweet_bonus: usize,
    /// Number of distinct customers in the pool.
    pub customers: usize,
}

impl Default for SalesConfig {
    fn default() -> SalesConfig {
        SalesConfig {
            seed: 99,
            base_daily_sales: 2,
            sweet_bonus: 6,
            customers: 40,
        }
    }
}

/// Whether a temperature lies in the planted sweet range.
pub fn in_sweet_range(celsius: f64) -> bool {
    (SWEET_RANGE_C.0..=SWEET_RANGE_C.1).contains(&celsius)
}

/// Generates last-minute-sales fact rows for every `(city, date)` the
/// ground truth covers. Rows fit the `Last Minute Sales` fixture schema.
pub fn generate_sales(
    config: &SalesConfig,
    cities: &[CityClimate],
    truth: &GroundTruth,
) -> Vec<FactRow> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rows = Vec::new();
    // Deterministic iteration: sort the truth points.
    let mut points: Vec<(&str, dwqa_common::Date, f64)> = truth.iter().collect();
    points.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    for (city_name, date, temp) in points {
        // Every airport serving the city sells tickets to it.
        let destinations: Vec<&CityClimate> = cities
            .iter()
            .filter(|c| dwqa_common::text::fold(c.city) == city_name)
            .collect();
        for dest in destinations {
            let n = config.base_daily_sales
                + if in_sweet_range(temp) {
                    config.sweet_bonus
                } else {
                    0
                }
                + rng.gen_range(0..2usize);
            for _ in 0..n {
                let oi = rng.gen_range(0..cities.len());
                let origin = if cities[oi].airport == dest.airport {
                    cities[(oi + 1) % cities.len()].clone()
                } else {
                    cities[oi].clone()
                };
                let price = 60.0 + rng.gen_range(0..120) as f64;
                let miles = 300.0 + rng.gen_range(0..4000) as f64;
                let customer = format!("Customer {}", rng.gen_range(0..config.customers));
                let mut b = FactRowBuilder::new();
                b.measure("price", Value::Float(price))
                    .measure("miles", Value::Float(miles))
                    .measure("traveler_rate", Value::Float(rng.gen_range(0.1..1.0)))
                    .role_member(
                        "Origin",
                        &[
                            ("airport_name", Value::text(origin.airport)),
                            ("city_name", Value::text(origin.city)),
                            ("state_name", Value::text(origin.state)),
                            ("country_name", Value::text(origin.country)),
                        ],
                    )
                    .role_member(
                        "Destination",
                        &[
                            ("airport_name", Value::text(dest.airport)),
                            ("city_name", Value::text(dest.city)),
                            ("state_name", Value::text(dest.state)),
                            ("country_name", Value::text(dest.country)),
                        ],
                    )
                    .role_member("Customer", &[("customer_name", Value::text(&customer))])
                    .role_member("Date", &[("date", Value::Date(date))]);
                rows.push(b.build());
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::climate::default_cities;
    use crate::weather::{generate_weather_corpus, WeatherConfig};
    use dwqa_common::Month;
    use dwqa_mdmodel::last_minute_sales;
    use dwqa_warehouse::Warehouse;

    fn truth_for(month: Month) -> GroundTruth {
        generate_weather_corpus(&WeatherConfig::new(42, 2004, month), &default_cities()).truth
    }

    #[test]
    fn rows_load_cleanly_into_the_fixture_schema() {
        let truth = truth_for(Month::January);
        let rows = generate_sales(&SalesConfig::default(), &default_cities(), &truth);
        assert!(!rows.is_empty());
        let mut wh = Warehouse::new(last_minute_sales());
        let report = wh.load("Last Minute Sales", rows).unwrap();
        assert_eq!(report.rejected.len(), 0, "{:?}", report.rejected);
        assert!(report.inserted > 300);
    }

    #[test]
    fn sweet_range_days_sell_more() {
        // Use a summer month so Mediterranean cities hit the sweet range.
        let truth = truth_for(Month::June);
        let cities = default_cities();
        let rows = generate_sales(&SalesConfig::default(), &cities, &truth);
        // Count sales per (destination city, date), compare sweet vs not.
        use std::collections::HashMap;
        let mut per: HashMap<(String, String), usize> = HashMap::new();
        for row in &rows {
            let dest = row
                .roles
                .iter()
                .find(|(r, _)| r == "Destination")
                .and_then(|(_, spec)| {
                    spec.iter()
                        .find(|(n, _)| n == "city_name")
                        .and_then(|(_, v)| v.as_text().map(str::to_owned))
                })
                .unwrap();
            let date = row
                .roles
                .iter()
                .find(|(r, _)| r == "Date")
                .and_then(|(_, spec)| spec[0].1.as_date())
                .unwrap();
            *per.entry((dest, date.iso_format())).or_insert(0) += 1;
        }
        let mut sweet = Vec::new();
        let mut plain = Vec::new();
        for ((city, date), n) in per {
            let date = dwqa_common::Date::parse_iso(&date).unwrap();
            let t = truth.temperature(&city, date).unwrap();
            if in_sweet_range(t) {
                sweet.push(n);
            } else {
                plain.push(n);
            }
        }
        assert!(!sweet.is_empty() && !plain.is_empty());
        let avg = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len() as f64;
        assert!(
            avg(&sweet) > avg(&plain) * 2.0,
            "sweet {} vs plain {}",
            avg(&sweet),
            avg(&plain)
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let truth = truth_for(Month::January);
        let a = generate_sales(&SalesConfig::default(), &default_cities(), &truth);
        let b = generate_sales(&SalesConfig::default(), &default_cities(), &truth);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0], b[0]);
        assert_eq!(a[a.len() - 1], b[b.len() - 1]);
    }

    #[test]
    fn origins_differ_from_destinations() {
        let truth = truth_for(Month::January);
        let rows = generate_sales(&SalesConfig::default(), &default_cities(), &truth);
        for row in &rows {
            let airport = |role: &str| {
                row.roles
                    .iter()
                    .find(|(r, _)| r == role)
                    .and_then(|(_, spec)| {
                        spec.iter()
                            .find(|(n, _)| n == "airport_name")
                            .and_then(|(_, v)| v.as_text().map(str::to_owned))
                    })
                    .unwrap()
            };
            assert_ne!(airport("Origin"), airport("Destination"));
        }
    }

    #[test]
    fn sweet_range_predicate() {
        assert!(in_sweet_range(15.0));
        assert!(in_sweet_range(25.0));
        assert!(!in_sweet_range(14.9));
        assert!(!in_sweet_range(25.1));
    }
}
