//! Weather-page generation (Figures 4 and 5).

use crate::climate::CityClimate;
use crate::ground_truth::GroundTruth;
use crate::Corpus;
use dwqa_common::{Date, Month};
use dwqa_ir::{DocFormat, Document, DocumentStore};
use dwqa_nlp::TempUnit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The two page shapes the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageStyle {
    /// Figure 4: running prose, one dated heading + weather line per day.
    /// Temperatures carry explicit units ("8º C around 46.4 F").
    Prose,
    /// Figure 5: a bare number grid (Day/Max/Min/Avg) where "the task of
    /// associating the measure with its corresponding measure unit gets
    /// more difficult".
    Table,
}

/// How a noisy weather line is corrupted (failure injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corruption {
    /// The unit is dropped ("Temperature 8 today") — unextractable.
    MissingUnit,
    /// The value is multiplied by 100 ("Temperature 800º C") — extractable
    /// but rejected by the Step-4 range axiom.
    Implausible,
}

/// Configuration of a weather corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct WeatherConfig {
    /// RNG seed (everything downstream is deterministic in it).
    pub seed: u64,
    /// Year of the generated month.
    pub year: i32,
    /// The month each page covers.
    pub month: Month,
    /// Page styles generated per city.
    pub styles: Vec<PageStyle>,
    /// Rotate documents through these formats.
    pub formats: Vec<DocFormat>,
    /// Probability that a prose weather line is corrupted (0.0 = clean).
    pub noise: f64,
}

impl WeatherConfig {
    /// Default configuration: prose + table pages, mixed formats.
    pub fn new(seed: u64, year: i32, month: Month) -> WeatherConfig {
        WeatherConfig {
            seed,
            year,
            month,
            styles: vec![PageStyle::Prose, PageStyle::Table],
            formats: vec![DocFormat::Plain, DocFormat::Html, DocFormat::Xml],
            noise: 0.0,
        }
    }

    /// Restricts to one style.
    pub fn with_styles(mut self, styles: &[PageStyle]) -> WeatherConfig {
        self.styles = styles.to_vec();
        self
    }

    /// Injects corruption into a fraction of prose weather lines.
    pub fn with_noise(mut self, noise: f64) -> WeatherConfig {
        self.noise = noise.clamp(0.0, 1.0);
        self
    }
}

fn slug(city: &str) -> String {
    dwqa_common::text::fold(city).replace(' ', "-")
}

/// The URL a generated page gets (prose pages mirror the paper's
/// barcelona-tourist-guide.com shape).
pub fn page_url(city: &str, style: PageStyle, month: Month) -> String {
    let month = month.name().to_ascii_lowercase();
    match style {
        PageStyle::Prose => format!(
            "http://www.{}-tourist-guide.com/en/weather/weather-{month}.html",
            slug(city)
        ),
        PageStyle::Table => format!(
            "http://weather-archive.example.org/{}/{month}-table.html",
            slug(city)
        ),
    }
}

/// Standard normal sample via Box–Muller.
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn condition_for(temp: f64, rng: &mut StdRng) -> &'static str {
    let wet: &[&str] = &["Light rain", "Cloudy skies", "Morning fog", "Strong wind"];
    let dry: &[&str] = &["Clear skies", "Sunny spells", "Clear skies", "Cloudy skies"];
    let pool = if rng.gen_bool(0.35) { wet } else { dry };
    let i = rng.gen_range(0..pool.len());
    if temp < 2.0 && pool[i] == "Light rain" {
        "Light snow"
    } else {
        pool[i]
    }
}

/// Generates one city's daily temperatures for the configured month.
fn daily_temperatures(
    rng: &mut StdRng,
    city: &CityClimate,
    year: i32,
    month: Month,
) -> Vec<(Date, f64)> {
    Date::month_days(year, month)
        .map(|date| {
            let t = city.mean_for(month) + gauss(rng) * city.daily_sigma;
            (date, t.round())
        })
        .collect()
}

fn prose_body(
    city: &CityClimate,
    temps: &[(Date, f64)],
    rng: &mut StdRng,
    noise: f64,
    corrupted: &mut Vec<(String, Date, Corruption)>,
) -> String {
    let mut out = String::new();
    let month = temps[0].0.month();
    out.push_str(&format!(
        "{} Weather in {} {}\n\n",
        city.city,
        month.name(),
        temps[0].0.year()
    ));
    out.push_str(&format!(
        "Daily weather records for travellers flying to {} airport in {}.\n\n",
        city.airport, city.city
    ));
    for (date, t) in temps {
        let f = (TempUnit::Celsius.to_fahrenheit(*t) * 10.0).round() / 10.0;
        let condition = condition_for(*t, rng);
        out.push_str(&format!("{}\n", date.long_format()));
        let corruption = if noise > 0.0 && rng.gen_bool(noise) {
            Some(if rng.gen_bool(0.5) {
                Corruption::MissingUnit
            } else {
                Corruption::Implausible
            })
        } else {
            None
        };
        match corruption {
            None => out.push_str(&format!(
                "{} Weather: Temperature {}º C around {} F {} today\n\n",
                city.city, t, f, condition
            )),
            Some(Corruption::MissingUnit) => out.push_str(&format!(
                "{} Weather: Temperature {} around {} {} today\n\n",
                city.city, t, f, condition
            )),
            Some(Corruption::Implausible) => out.push_str(&format!(
                "{} Weather: Temperature {}º C around {} F {} today\n\n",
                city.city,
                t * 100.0,
                f * 100.0,
                condition
            )),
        }
        if let Some(c) = corruption {
            corrupted.push((city.city.to_owned(), *date, c));
        }
    }
    out
}

fn table_body(city: &CityClimate, temps: &[(Date, f64)], rng: &mut StdRng) -> String {
    let month = temps[0].0.month();
    let mut out = String::new();
    out.push_str(&format!(
        "{} {} {} Daily Temperatures\n\n",
        city.city,
        month.name(),
        temps[0].0.year()
    ));
    out.push_str("Day Max Min Avg\n");
    for (date, t) in temps {
        let spread_hi = rng.gen_range(2..6) as f64;
        let spread_lo = rng.gen_range(2..6) as f64;
        out.push_str(&format!(
            "{} {} {} {}\n",
            date.day(),
            t + spread_hi,
            t - spread_lo,
            t
        ));
    }
    out
}

fn wrap(format: DocFormat, title: &str, body: &str) -> String {
    match format {
        DocFormat::Plain => body.to_owned(),
        DocFormat::Html => {
            let paragraphs: String = body
                .split("\n\n")
                .map(|p| format!("<p>{}</p>", p.trim().replace('\n', "<br>")))
                .collect();
            format!("<html><head><title>{title}</title></head><body>{paragraphs}</body></html>")
        }
        DocFormat::Xml => {
            let rows: String = body
                .lines()
                .filter(|l| !l.trim().is_empty())
                .map(|l| format!("<row>{l}</row>"))
                .collect();
            format!("<page><title>{title}</title>{rows}</page>")
        }
    }
}

/// Generates weather pages (and their ground truth) for every city.
pub fn generate_weather_corpus(config: &WeatherConfig, cities: &[CityClimate]) -> Corpus {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut store = DocumentStore::new();
    let mut truth = GroundTruth::new();
    // One temperature series per *city name* per month: two airports of
    // the same city (JFK / La Guardia) must agree on the city's weather.
    let mut series: HashMap<String, Vec<(Date, f64)>> = HashMap::new();
    let mut corrupted: Vec<(String, Date, Corruption)> = Vec::new();
    let mut page_counter = 0usize;
    for city in cities {
        let temps = series
            .entry(slug(city.city))
            .or_insert_with(|| daily_temperatures(&mut rng, city, config.year, config.month))
            .clone();
        for (date, t) in &temps {
            truth.record(city.city, *date, *t);
        }
        for &style in &config.styles {
            // One page per (city, style); skip duplicate city entries.
            let url = page_url(city.city, style, config.month);
            if store.iter().any(|(_, d)| d.url == url) {
                continue;
            }
            let body = match style {
                PageStyle::Prose => {
                    prose_body(city, &temps, &mut rng, config.noise, &mut corrupted)
                }
                PageStyle::Table => table_body(city, &temps, &mut rng),
            };
            let format = config.formats[page_counter % config.formats.len().max(1)];
            page_counter += 1;
            let title = format!(
                "{} weather in {} {}",
                city.city,
                config.month.name(),
                config.year
            );
            let raw = wrap(format, &title, &body);
            let doc = Document::new(&url, format, &title, &raw)
                .with_location(city.city)
                .with_date(Date::new(config.year, config.month, 1).expect("day 1 valid"));
            store.add(doc);
        }
    }
    Corpus {
        store,
        truth,
        corrupted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::climate::default_cities;

    fn corpus() -> Corpus {
        generate_weather_corpus(
            &WeatherConfig::new(42, 2004, Month::January),
            &default_cities(),
        )
    }

    #[test]
    fn prose_pages_have_figure_4_shape() {
        let c = corpus();
        let (_, bcn) = c
            .store
            .iter()
            .find(|(_, d)| d.url.contains("barcelona-tourist-guide"))
            .expect("Barcelona prose page");
        assert!(bcn.text.contains("Barcelona Weather: Temperature"));
        assert!(bcn.text.contains("º C around"));
        assert!(bcn.text.contains("January"));
        // 31 days → 31 weather lines.
        let lines = bcn
            .text
            .lines()
            .filter(|l| l.contains("Temperature"))
            .count();
        assert_eq!(lines, 31);
    }

    #[test]
    fn prose_temperatures_match_ground_truth() {
        let c = corpus();
        let (_, bcn) = c
            .store
            .iter()
            .find(|(_, d)| d.url.contains("barcelona-tourist-guide"))
            .unwrap();
        // Parse day 15's line back and compare to the recorded truth.
        let date = Date::from_ymd(2004, 1, 15).unwrap();
        let needle = date.long_format();
        let mut lines = bcn.text.lines();
        lines
            .by_ref()
            .find(|l| l.contains(&needle))
            .expect("day heading");
        let weather_line = lines.next().expect("weather line after heading");
        let truth = c.truth.temperature("Barcelona", date).unwrap();
        assert!(
            weather_line.contains(&format!("Temperature {truth}º C")),
            "{weather_line} vs truth {truth}"
        );
    }

    #[test]
    fn table_pages_lack_units() {
        let c = corpus();
        let (_, table) = c
            .store
            .iter()
            .find(|(_, d)| d.url.contains("weather-archive"))
            .expect("table page");
        assert!(table.text.contains("Day Max Min Avg"));
        assert!(!table.text.contains("º"));
    }

    #[test]
    fn formats_rotate_and_extract() {
        let c = corpus();
        let formats: std::collections::HashSet<_> = c.store.iter().map(|(_, d)| d.format).collect();
        assert!(formats.len() >= 2, "expected mixed formats");
        // HTML/XML documents still expose clean text.
        for (_, d) in c.store.iter() {
            assert!(!d.text.contains('<'), "unstripped markup in {}", d.url);
        }
    }

    #[test]
    fn shared_city_weather_is_consistent() {
        // JFK and La Guardia both serve New York; the truth has a single
        // series for the city.
        let c = corpus();
        let date = Date::from_ymd(2004, 1, 10).unwrap();
        assert!(c.truth.temperature("New York", date).is_some());
        // One prose page per distinct city (7 cities, 8 entries).
        let prose_pages = c
            .store
            .iter()
            .filter(|(_, d)| d.url.contains("tourist-guide"))
            .count();
        assert_eq!(prose_pages, 7);
    }

    #[test]
    fn metadata_supports_the_mdir_baseline() {
        let c = corpus();
        for (_, d) in c.store.iter() {
            assert!(d.location.is_some());
            assert_eq!(d.date.unwrap().month(), Month::January);
        }
    }

    #[test]
    fn truth_covers_every_city_and_day() {
        let c = corpus();
        // 7 distinct cities × 31 days.
        assert_eq!(c.truth.len(), 7 * 31);
    }
}
