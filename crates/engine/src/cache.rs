//! The answer cache: a lock-striped LRU map keyed on *normalized*
//! question text, with every entry tagged by the warehouse revision it
//! was computed against. When the feedback ETL mutates the warehouse the
//! pipeline bumps its revision (see [`dwqa_core::ReadPath::revision`]);
//! stale entries are then dropped lazily on lookup or eagerly via
//! [`AnswerCache::purge_stale`].
//!
//! The map is split into [`DEFAULT_SHARDS`] independently-locked shards
//! selected by the key's hash, so concurrent workers answering different
//! questions rarely contend on the same mutex. Each shard keeps a relaxed
//! atomic count of its entries, which makes [`AnswerCache::len`] — and
//! therefore the REPL's `:stats` line and the service's `ServiceStats`
//! snapshot — entirely lock-free: observability never queues behind the
//! hot path. LRU order is tracked *per shard*; with more than one shard
//! eviction is approximate (each shard evicts its own least-recent entry
//! when its slice of the capacity overflows), which is the standard
//! striped-cache trade-off.

use dwqa_qa::Answer;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default number of lock stripes. Eight keeps contention negligible for
/// the service's worker pools (2–8 threads) while the per-shard memory
/// overhead stays trivial.
pub const DEFAULT_SHARDS: usize = 8;

/// Canonicalizes a question for cache keying: accent/case folding,
/// whitespace collapsing, and trailing punctuation removal, so
/// `"  What is   the Temperature?"` and `"what is the temperature"`
/// share an entry.
pub fn normalize_question(question: &str) -> String {
    let folded = dwqa_common::text::fold(question);
    folded
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .trim_end_matches(['?', '.', '!', ' '])
        .to_owned()
}

#[derive(Debug, Clone)]
struct Entry {
    revision: u64,
    answers: Vec<Answer>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Entry>,
    tick: u64,
}

#[derive(Debug, Default)]
struct Shard {
    inner: Mutex<Inner>,
    /// Mirror of `inner.map.len()`, maintained under the shard lock but
    /// readable without it.
    entries: AtomicUsize,
}

/// A bounded, lock-striped LRU answer cache, safe to share across worker
/// threads.
#[derive(Debug)]
pub struct AnswerCache {
    capacity: usize,
    /// Per-shard entry budget: `capacity` split evenly (rounded up), so
    /// the whole cache never exceeds `shard_capacity * shards` entries.
    shard_capacity: usize,
    shards: Vec<Shard>,
}

impl AnswerCache {
    /// Creates a cache holding at most `capacity` question entries,
    /// striped over [`DEFAULT_SHARDS`] locks. A zero capacity disables
    /// caching entirely.
    pub fn new(capacity: usize) -> AnswerCache {
        AnswerCache::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// Creates a cache with an explicit shard count (clamped to at least
    /// one). With one shard, eviction is exact global LRU; with more,
    /// each shard evicts its own least-recent entry independently.
    pub fn with_shards(capacity: usize, shards: usize) -> AnswerCache {
        let shards = shards.max(1);
        AnswerCache {
            capacity,
            shard_capacity: capacity.div_ceil(shards),
            shards: (0..shards).map(|_| Shard::default()).collect(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of lock stripes.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: &str) -> &Shard {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        let idx = (hasher.finish() as usize) % self.shards.len();
        &self.shards[idx]
    }

    /// Entries currently cached (fresh and stale alike). Lock-free: sums
    /// the per-shard atomic counters, so stats reads never contend with
    /// answering workers.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.entries.load(Ordering::Relaxed))
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a normalized key. Returns the cached answers only when
    /// the entry was computed against `revision`; a stale entry is
    /// removed and reported as a miss.
    pub fn lookup(&self, key: &str, revision: u64) -> Option<Vec<Answer>> {
        let shard = self.shard_of(key);
        let mut inner = shard.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) if entry.revision == revision => {
                entry.last_used = tick;
                Some(entry.answers.clone())
            }
            Some(_) => {
                inner.map.remove(key);
                shard.entries.fetch_sub(1, Ordering::Relaxed);
                None
            }
            None => None,
        }
    }

    /// Stores answers computed against `revision`, evicting the shard's
    /// least recently used entry when the shard is full.
    pub fn store(&self, key: String, revision: u64, answers: Vec<Answer>) {
        if self.capacity == 0 {
            return;
        }
        let shard = self.shard_of(&key);
        let mut inner = shard.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let replaced = inner.map.insert(
            key,
            Entry {
                revision,
                answers,
                last_used: tick,
            },
        );
        if replaced.is_none() {
            shard.entries.fetch_add(1, Ordering::Relaxed);
        }
        while inner.map.len() > self.shard_capacity {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match lru {
                Some(key) => {
                    inner.map.remove(&key);
                    shard.entries.fetch_sub(1, Ordering::Relaxed);
                }
                None => break,
            };
        }
    }

    /// Eagerly drops every entry not computed against `revision`,
    /// returning how many were removed.
    pub fn purge_stale(&self, revision: u64) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            let before = inner.map.len();
            inner.map.retain(|_, e| e.revision == revision);
            let removed = before - inner.map.len();
            if removed > 0 {
                shard.entries.fetch_sub(removed, Ordering::Relaxed);
            }
            dropped += removed;
        }
        dropped
    }

    /// Drops everything.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            inner.map.clear();
            shard.entries.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_folds_case_space_and_punctuation() {
        assert_eq!(
            normalize_question("  What is   the Temperature?"),
            "what is the temperature"
        );
        assert_eq!(
            normalize_question("what is the temperature"),
            "what is the temperature"
        );
        assert_eq!(normalize_question("¿Dónde está?"), "¿donde esta");
    }

    #[test]
    fn lookup_respects_revision() {
        let cache = AnswerCache::new(8);
        cache.store("q".into(), 0, vec![]);
        assert!(cache.lookup("q", 0).is_some());
        // Same key at a newer revision: stale, dropped.
        assert!(cache.lookup("q", 1).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn purge_drops_only_stale_entries() {
        let cache = AnswerCache::new(8);
        cache.store("old".into(), 0, vec![]);
        cache.store("new".into(), 3, vec![]);
        assert_eq!(cache.purge_stale(3), 1);
        assert!(cache.lookup("new", 3).is_some());
        assert!(cache.lookup("old", 3).is_none());
    }

    // The exact-LRU tests pin the eviction order down to single entries,
    // which only holds when all keys share one stripe: run them on a
    // single-shard cache.
    #[test]
    fn lru_eviction_keeps_recently_used_entries() {
        let cache = AnswerCache::with_shards(2, 1);
        cache.store("a".into(), 0, vec![]);
        cache.store("b".into(), 0, vec![]);
        // Touch "a" so "b" is the least recently used.
        assert!(cache.lookup("a", 0).is_some());
        cache.store("c".into(), 0, vec![]);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup("a", 0).is_some());
        assert!(cache.lookup("b", 0).is_none());
        assert!(cache.lookup("c", 0).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = AnswerCache::new(0);
        cache.store("q".into(), 0, vec![]);
        assert!(cache.lookup("q", 0).is_none());
    }

    #[test]
    fn eviction_follows_exact_lru_order() {
        let cache = AnswerCache::with_shards(3, 1);
        cache.store("a".into(), 0, vec![]);
        cache.store("b".into(), 0, vec![]);
        cache.store("c".into(), 0, vec![]);
        // Recency, oldest first, is now a < b < c. Touch "a", making
        // "b" the LRU entry; then each overflow must evict exactly the
        // current LRU, never insertion order.
        assert!(cache.lookup("a", 0).is_some()); // b < c < a
        cache.store("d".into(), 0, vec![]); // evicts b
        assert!(cache.lookup("b", 0).is_none()); // c < a < d
        cache.store("e".into(), 0, vec![]); // evicts c
        assert!(cache.lookup("c", 0).is_none());
        for key in ["a", "d", "e"] {
            assert!(cache.lookup(key, 0).is_some(), "{key} must survive");
        }
    }

    #[test]
    fn re_store_refreshes_recency_and_revision() {
        let cache = AnswerCache::with_shards(2, 1);
        cache.store("a".into(), 0, vec![]);
        cache.store("b".into(), 0, vec![]);
        // Re-storing "a" at a newer revision refreshes both its recency
        // (so "b" is evicted next) and its revision tag.
        cache.store("a".into(), 1, vec![]);
        cache.store("c".into(), 1, vec![]); // evicts b
        assert!(cache.lookup("b", 1).is_none());
        assert!(cache.lookup("a", 1).is_some());
        assert!(cache.lookup("a", 0).is_none(), "old revision is gone");
    }

    #[test]
    fn stale_lookup_removes_the_entry_without_touching_others() {
        let cache = AnswerCache::new(4);
        cache.store("old".into(), 0, vec![]);
        cache.store("fresh".into(), 2, vec![]);
        assert_eq!(cache.len(), 2);
        // A stale hit is dropped eagerly on lookup…
        assert!(cache.lookup("old", 2).is_none());
        assert_eq!(cache.len(), 1);
        // …and purging afterwards finds nothing left to remove.
        assert_eq!(cache.purge_stale(2), 0);
        assert!(cache.lookup("fresh", 2).is_some());
    }

    #[test]
    fn len_tracks_entries_across_shards() {
        // Capacity 320 over 8 shards → 40 per stripe, so 40 keys can
        // never overflow a stripe however skewed the hash is.
        let cache = AnswerCache::with_shards(320, 8);
        assert_eq!(cache.shards(), 8);
        for i in 0..40 {
            cache.store(format!("question {i}"), 0, vec![]);
        }
        assert_eq!(cache.len(), 40);
        // Re-storing existing keys must not double-count.
        for i in 0..40 {
            cache.store(format!("question {i}"), 0, vec![]);
        }
        assert_eq!(cache.len(), 40);
        // Lookups at a newer revision drop entries one by one.
        for i in 0..10 {
            assert!(cache.lookup(&format!("question {i}"), 1).is_none());
        }
        assert_eq!(cache.len(), 30);
        assert_eq!(cache.purge_stale(1), 30);
        assert!(cache.is_empty());
        cache.store("back".into(), 1, vec![]);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn sharded_capacity_is_respected_per_stripe() {
        // 16 entries over 4 shards → 4 per shard; total never exceeds
        // the configured capacity even under heavy overflow.
        let cache = AnswerCache::with_shards(16, 4);
        for i in 0..200 {
            cache.store(format!("q{i}"), 0, vec![]);
        }
        assert!(cache.len() <= 16, "len {} > capacity 16", cache.len());
        assert!(cache.len() >= 4, "every stripe should retain entries");
    }

    #[test]
    fn concurrent_store_lookup_and_len_stay_consistent() {
        let cache = std::sync::Arc::new(AnswerCache::with_shards(256, 8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let key = format!("thread {t} question {i}");
                        cache.store(key.clone(), 0, vec![]);
                        // Under contention another thread may already
                        // have evicted the key from a shared stripe, so
                        // only exercise the read path, don't assert a
                        // hit.
                        let _ = cache.lookup(&key, 0);
                        // len() must be callable concurrently without
                        // deadlock or panic.
                        let _ = cache.len();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Counter mirror and map agree after the dust settles: purging
        // with the live revision touches nothing, and a full clear
        // zeroes the counters.
        let before = cache.len();
        assert!(before <= 256);
        assert_eq!(cache.purge_stale(0), 0);
        assert_eq!(cache.len(), before);
        cache.clear();
        assert_eq!(cache.len(), 0);
    }
}
