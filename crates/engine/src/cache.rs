//! The answer cache: an LRU map keyed on *normalized* question text,
//! with every entry tagged by the warehouse revision it was computed
//! against. When the feedback ETL mutates the warehouse the pipeline
//! bumps its revision (see [`dwqa_core::ReadPath::revision`]); stale
//! entries are then dropped lazily on lookup or eagerly via
//! [`AnswerCache::purge_stale`].

use dwqa_qa::Answer;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Canonicalizes a question for cache keying: accent/case folding,
/// whitespace collapsing, and trailing punctuation removal, so
/// `"  What is   the Temperature?"` and `"what is the temperature"`
/// share an entry.
pub fn normalize_question(question: &str) -> String {
    let folded = dwqa_common::text::fold(question);
    folded
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .trim_end_matches(['?', '.', '!', ' '])
        .to_owned()
}

#[derive(Debug, Clone)]
struct Entry {
    revision: u64,
    answers: Vec<Answer>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Entry>,
    tick: u64,
}

/// A bounded LRU answer cache, safe to share across worker threads.
#[derive(Debug)]
pub struct AnswerCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl AnswerCache {
    /// Creates a cache holding at most `capacity` question entries.
    /// A zero capacity disables caching entirely.
    pub fn new(capacity: usize) -> AnswerCache {
        AnswerCache {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently cached (fresh and stale alike).
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a normalized key. Returns the cached answers only when
    /// the entry was computed against `revision`; a stale entry is
    /// removed and reported as a miss.
    pub fn lookup(&self, key: &str, revision: u64) -> Option<Vec<Answer>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) if entry.revision == revision => {
                entry.last_used = tick;
                Some(entry.answers.clone())
            }
            Some(_) => {
                inner.map.remove(key);
                None
            }
            None => None,
        }
    }

    /// Stores answers computed against `revision`, evicting the least
    /// recently used entry when full.
    pub fn store(&self, key: String, revision: u64, answers: Vec<Answer>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            key,
            Entry {
                revision,
                answers,
                last_used: tick,
            },
        );
        while inner.map.len() > self.capacity {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match lru {
                Some(key) => inner.map.remove(&key),
                None => break,
            };
        }
    }

    /// Eagerly drops every entry not computed against `revision`,
    /// returning how many were removed.
    pub fn purge_stale(&self, revision: u64) -> usize {
        let mut inner = self.inner.lock();
        let before = inner.map.len();
        inner.map.retain(|_, e| e.revision == revision);
        before - inner.map.len()
    }

    /// Drops everything.
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_folds_case_space_and_punctuation() {
        assert_eq!(
            normalize_question("  What is   the Temperature?"),
            "what is the temperature"
        );
        assert_eq!(
            normalize_question("what is the temperature"),
            "what is the temperature"
        );
        assert_eq!(normalize_question("¿Dónde está?"), "¿donde esta");
    }

    #[test]
    fn lookup_respects_revision() {
        let cache = AnswerCache::new(8);
        cache.store("q".into(), 0, vec![]);
        assert!(cache.lookup("q", 0).is_some());
        // Same key at a newer revision: stale, dropped.
        assert!(cache.lookup("q", 1).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn purge_drops_only_stale_entries() {
        let cache = AnswerCache::new(8);
        cache.store("old".into(), 0, vec![]);
        cache.store("new".into(), 3, vec![]);
        assert_eq!(cache.purge_stale(3), 1);
        assert!(cache.lookup("new", 3).is_some());
        assert!(cache.lookup("old", 3).is_none());
    }

    #[test]
    fn lru_eviction_keeps_recently_used_entries() {
        let cache = AnswerCache::new(2);
        cache.store("a".into(), 0, vec![]);
        cache.store("b".into(), 0, vec![]);
        // Touch "a" so "b" is the least recently used.
        assert!(cache.lookup("a", 0).is_some());
        cache.store("c".into(), 0, vec![]);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup("a", 0).is_some());
        assert!(cache.lookup("b", 0).is_none());
        assert!(cache.lookup("c", 0).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = AnswerCache::new(0);
        cache.store("q".into(), 0, vec![]);
        assert!(cache.lookup("q", 0).is_none());
    }

    #[test]
    fn eviction_follows_exact_lru_order() {
        let cache = AnswerCache::new(3);
        cache.store("a".into(), 0, vec![]);
        cache.store("b".into(), 0, vec![]);
        cache.store("c".into(), 0, vec![]);
        // Recency, oldest first, is now a < b < c. Touch "a", making
        // "b" the LRU entry; then each overflow must evict exactly the
        // current LRU, never insertion order.
        assert!(cache.lookup("a", 0).is_some()); // b < c < a
        cache.store("d".into(), 0, vec![]); // evicts b
        assert!(cache.lookup("b", 0).is_none()); // c < a < d
        cache.store("e".into(), 0, vec![]); // evicts c
        assert!(cache.lookup("c", 0).is_none());
        for key in ["a", "d", "e"] {
            assert!(cache.lookup(key, 0).is_some(), "{key} must survive");
        }
    }

    #[test]
    fn re_store_refreshes_recency_and_revision() {
        let cache = AnswerCache::new(2);
        cache.store("a".into(), 0, vec![]);
        cache.store("b".into(), 0, vec![]);
        // Re-storing "a" at a newer revision refreshes both its recency
        // (so "b" is evicted next) and its revision tag.
        cache.store("a".into(), 1, vec![]);
        cache.store("c".into(), 1, vec![]); // evicts b
        assert!(cache.lookup("b", 1).is_none());
        assert!(cache.lookup("a", 1).is_some());
        assert!(cache.lookup("a", 0).is_none(), "old revision is gone");
    }

    #[test]
    fn stale_lookup_removes_the_entry_without_touching_others() {
        let cache = AnswerCache::new(4);
        cache.store("old".into(), 0, vec![]);
        cache.store("fresh".into(), 2, vec![]);
        assert_eq!(cache.len(), 2);
        // A stale hit is dropped eagerly on lookup…
        assert!(cache.lookup("old", 2).is_none());
        assert_eq!(cache.len(), 1);
        // …and purging afterwards finds nothing left to remove.
        assert_eq!(cache.purge_stale(2), 0);
        assert!(cache.lookup("fresh", 2).is_some());
    }
}
