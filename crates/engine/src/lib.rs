//! `dwqa-engine` — the concurrent batch QA engine over the integration
//! pipeline.
//!
//! `dwqa-core` splits the integrated system into an immutable **read
//! path** (question analysis → passage selection → answer extraction,
//! over `Arc`-shared index and ontology) and a serialized **write path**
//! (the Step-5 feedback ETL). This crate builds the production machinery
//! on top of that split:
//!
//! * [`QaEngine`] — a worker-thread pool (crossbeam scoped threads) that
//!   answers question batches in parallel and merges results in input
//!   order, so reports are deterministic no matter how work interleaves;
//! * [`AnswerCache`] — a bounded LRU cache keyed on normalized question
//!   text, with entries tagged by the warehouse revision and invalidated
//!   when feedback ETL mutates the warehouse;
//! * [`EngineStats`] — lock-free per-stage counters and latency
//!   histograms, rendered by the REPL and the experiment binaries;
//! * [`QaSession`] — the session-oriented user API
//!   (`QaSession::new(&pipeline)`), and [`SubmitBatch`] which adds
//!   `pipeline.submit_batch(&questions) -> BatchReport`.
//!
//! ```no_run
//! use dwqa_engine::{QaSession, SubmitBatch};
//! # fn demo(mut pipeline: dwqa_core::IntegrationPipeline, questions: Vec<String>) {
//! let mut session = QaSession::new(&pipeline);
//! let answers = session.ask("What is the temperature in January of 2004 in El Prat?");
//! let report = pipeline.submit_batch(&questions); // concurrent read, serial feed
//! println!("{}", session.stats().render());
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod outcome;
pub mod session;
pub mod stats;

pub use cache::{normalize_question, AnswerCache};
pub use outcome::{AnswerOutcome, QuestionReport};
pub use session::{BatchReport, QaEngine, QaSession, SubmitBatch, DEFAULT_CACHE_CAPACITY};
pub use stats::{EngineStats, LatencyHistogram, StageStats};
