//! Degraded-answer taxonomy: how a question's answer attempt ended.

use dwqa_qa::Answer;
use std::any::Any;
use std::fmt;

/// How one question's answer attempt ended. Anything but
/// [`AnswerOutcome::Ok`] means the answers (possibly empty) were produced
/// under some failure and should be trusted accordingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnswerOutcome {
    /// The full pipeline ran cleanly; answers are first-class.
    Ok,
    /// Acquisition faults degraded the evidence (failed or corrupted
    /// fetches, dropped passages or answers); surviving answers were
    /// re-validated against the fetched bodies.
    Degraded,
    /// The per-question deadline expired before the pipeline finished.
    TimedOut,
    /// Every source document was unavailable; no extraction was possible.
    SourceUnavailable,
    /// The question's worker panicked; the panic was isolated and the
    /// worker pool survived.
    Panicked,
}

impl AnswerOutcome {
    /// Whether the attempt completed cleanly.
    pub fn is_ok(&self) -> bool {
        matches!(self, AnswerOutcome::Ok)
    }

    /// A short lowercase label (stable; used by reports and the REPL).
    pub fn label(&self) -> &'static str {
        match self {
            AnswerOutcome::Ok => "ok",
            AnswerOutcome::Degraded => "degraded",
            AnswerOutcome::TimedOut => "timed-out",
            AnswerOutcome::SourceUnavailable => "source-unavailable",
            AnswerOutcome::Panicked => "panicked",
        }
    }
}

impl fmt::Display for AnswerOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One question's answers plus how the attempt ended.
#[derive(Debug, Clone)]
pub struct QuestionReport {
    /// Extracted (and, under faults, re-validated) answers.
    pub answers: Vec<Answer>,
    /// How the attempt ended.
    pub outcome: AnswerOutcome,
    /// Human-readable failure/degradation detail, if any.
    pub detail: Option<String>,
}

impl QuestionReport {
    /// A clean result.
    pub fn ok(answers: Vec<Answer>) -> QuestionReport {
        QuestionReport {
            answers,
            outcome: AnswerOutcome::Ok,
            detail: None,
        }
    }

    /// A degraded result: answers survived re-validation but the
    /// evidence was faulty.
    pub fn degraded(answers: Vec<Answer>, detail: String) -> QuestionReport {
        QuestionReport {
            answers,
            outcome: AnswerOutcome::Degraded,
            detail: Some(detail),
        }
    }

    /// The per-question deadline expired.
    pub fn timed_out(detail: &str) -> QuestionReport {
        QuestionReport {
            answers: Vec::new(),
            outcome: AnswerOutcome::TimedOut,
            detail: Some(detail.to_owned()),
        }
    }

    /// Every source document was unavailable.
    pub fn source_unavailable(detail: String) -> QuestionReport {
        QuestionReport {
            answers: Vec::new(),
            outcome: AnswerOutcome::SourceUnavailable,
            detail: Some(detail),
        }
    }

    /// The worker panicked (isolated).
    pub fn panicked(detail: String) -> QuestionReport {
        QuestionReport {
            answers: Vec::new(),
            outcome: AnswerOutcome::Panicked,
            detail: Some(detail),
        }
    }
}

/// Extracts a readable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_display() {
        assert_eq!(AnswerOutcome::Ok.to_string(), "ok");
        assert_eq!(
            AnswerOutcome::SourceUnavailable.label(),
            "source-unavailable"
        );
        assert!(AnswerOutcome::Ok.is_ok());
        assert!(!AnswerOutcome::Degraded.is_ok());
    }

    #[test]
    fn constructors_set_outcome_and_detail() {
        assert_eq!(QuestionReport::ok(Vec::new()).outcome, AnswerOutcome::Ok);
        let r = QuestionReport::timed_out("after analysis");
        assert_eq!(r.outcome, AnswerOutcome::TimedOut);
        assert!(r.detail.unwrap().contains("analysis"));
        assert!(r.answers.is_empty());
    }

    #[test]
    fn panic_messages_are_extracted() {
        let payload: Box<dyn Any + Send> = Box::new("boom");
        assert_eq!(panic_message(payload.as_ref()), "boom");
        let payload: Box<dyn Any + Send> = Box::new(String::from("kaboom"));
        assert_eq!(panic_message(payload.as_ref()), "kaboom");
        let payload: Box<dyn Any + Send> = Box::new(42u8);
        assert!(panic_message(payload.as_ref()).contains("unknown"));
    }
}
