//! The concurrent batch engine and the session-oriented API.
//!
//! [`QaEngine`] drives the pipeline's immutable read path with a pool of
//! scoped worker threads and an LRU answer cache; [`QaSession`] wraps an
//! engine with per-session history; [`SubmitBatch`] puts
//! `pipeline.submit_batch(&questions)` on [`IntegrationPipeline`],
//! combining the concurrent read phase with the serialized write phase
//! into one deterministic [`BatchReport`].

use crate::cache::{normalize_question, AnswerCache};
use crate::outcome::{panic_message, AnswerOutcome, QuestionReport};
use crate::stats::EngineStats;
use dwqa_core::{FeedReport, IntegrationPipeline, ReadPath};
use dwqa_faults::{DocumentSource, Fetched, SourceHealth};
use dwqa_obs::{FlightRecorder, Trace, Tracer};
use dwqa_qa::{Answer, PipelineTrace};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default answer-cache capacity (questions).
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// Whether a deadline has passed.
fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Collapses all whitespace runs to single spaces, so sentence
/// containment is robust to the newline/trim normalisation the sentence
/// splitter applies.
fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// The concurrent QA engine: a worker pool over the pipeline's immutable
/// read path, an answer cache, and per-stage statistics. Shareable across
/// threads by reference; cheap to construct from any pipeline.
///
/// Optionally hardened: with a [`DocumentSource`] attached
/// ([`QaEngine::with_source`]) every cache miss re-acquires its passage
/// documents through the (possibly unreliable) source and re-validates
/// extracted answers against the fetched bodies; with a deadline
/// ([`QaEngine::with_deadline`]) each question gets a wall-clock budget.
/// Worker panics are always isolated to the offending question.
pub struct QaEngine {
    read: ReadPath,
    cache: AnswerCache,
    stats: EngineStats,
    tracer: Tracer,
    workers: usize,
    source: Option<Arc<dyn DocumentSource>>,
    deadline: Option<Duration>,
}

impl QaEngine {
    /// An engine over the pipeline's read path, with one worker per
    /// available core (at least one) and the default cache capacity.
    pub fn new(pipeline: &IntegrationPipeline) -> QaEngine {
        QaEngine::over(pipeline.read_path())
    }

    /// An engine over an explicit read path.
    pub fn over(read: ReadPath) -> QaEngine {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        QaEngine {
            read,
            cache: AnswerCache::new(DEFAULT_CACHE_CAPACITY),
            stats: EngineStats::default(),
            tracer: Tracer::default(),
            workers,
            source: None,
            deadline: None,
        }
    }

    /// Sets the worker-pool size (clamped to at least one).
    pub fn with_workers(mut self, workers: usize) -> QaEngine {
        self.workers = workers.max(1);
        self
    }

    /// Attaches a document source: every cache miss re-acquires its
    /// passage documents through it and re-validates extracted answers
    /// against the fetched bodies.
    pub fn with_source(mut self, source: Arc<dyn DocumentSource>) -> QaEngine {
        self.source = Some(source);
        self
    }

    /// Sets or clears the document source in place (the REPL's `:chaos`
    /// toggle).
    pub fn set_source(&mut self, source: Option<Arc<dyn DocumentSource>>) {
        self.source = source;
    }

    /// Gives every question a wall-clock budget; on expiry the question
    /// reports [`AnswerOutcome::TimedOut`] instead of running on.
    pub fn with_deadline(mut self, budget: Duration) -> QaEngine {
        self.deadline = Some(budget);
        self
    }

    /// Sets or clears the per-question deadline in place.
    pub fn set_deadline(&mut self, budget: Option<Duration>) {
        self.deadline = budget;
    }

    /// The attached document source, if any.
    pub fn source(&self) -> Option<&Arc<dyn DocumentSource>> {
        self.source.as_ref()
    }

    /// The per-question deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Cumulative health of the attached source stack.
    pub fn source_health(&self) -> Option<SourceHealth> {
        self.source.as_ref().map(|s| s.health())
    }

    /// Replaces the answer cache with one of the given capacity
    /// (0 disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> QaEngine {
        self.cache = AnswerCache::new(capacity);
        self
    }

    /// Replaces the answer cache with one of the given capacity and an
    /// explicit lock-stripe count (see [`AnswerCache::with_shards`]).
    /// One shard gives exact global LRU; more shards trade eviction
    /// precision for lower lock contention across workers.
    pub fn with_cache_sharding(mut self, capacity: usize, shards: usize) -> QaEngine {
        self.cache = AnswerCache::with_shards(capacity, shards);
        self
    }

    /// Turns per-question trace collection on or off. Tracing also
    /// defaults on when the `DWQA_TRACE` environment variable is set.
    pub fn with_tracing(self, on: bool) -> QaEngine {
        self.tracer.set_enabled(on);
        self
    }

    /// Replaces the flight recorder with one keeping the last
    /// `capacity` question traces, preserving the enabled switch.
    pub fn with_trace_capacity(mut self, capacity: usize) -> QaEngine {
        let enabled = self.tracer.enabled();
        self.tracer = Tracer::new(capacity);
        self.tracer.set_enabled(enabled || self.tracer.enabled());
        self
    }

    /// Toggles trace collection in place (the REPL's `:trace` switch).
    pub fn set_tracing(&self, on: bool) {
        self.tracer.set_enabled(on);
    }

    /// Whether per-question traces are currently being collected.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// The engine's tracer (switch + flight recorder).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The flight recorder holding the most recent question traces.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        self.tracer.recorder()
    }

    /// The worker-pool size used by [`QaEngine::answer_batch`].
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The engine's statistics (live; updated by every answer).
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The engine's answer cache.
    pub fn cache(&self) -> &AnswerCache {
        &self.cache
    }

    /// The underlying read path.
    pub fn read_path(&self) -> &ReadPath {
        &self.read
    }

    /// Answers one question, consulting the cache first. A cached entry
    /// is served only if it was computed against the current warehouse
    /// revision; feedback ETL therefore invalidates it.
    ///
    /// Shorthand for [`QaEngine::answer_checked`] when the outcome tag is
    /// not needed.
    pub fn answer(&self, question: &str) -> Vec<Answer> {
        self.answer_checked(question).answers
    }

    /// Answers one question with full hardening: panic isolation, the
    /// per-question deadline, and (when a source is attached) document
    /// re-acquisition with answer re-validation. Never panics; the
    /// outcome tag says how the attempt ended.
    pub fn answer_checked(&self, question: &str) -> QuestionReport {
        self.answer_observed(question, None, None)
    }

    /// [`QaEngine::answer_checked`] with an explicit wall-clock deadline
    /// for this one question, overriding the engine-wide budget. `None`
    /// falls back to the engine's [`QaEngine::with_deadline`] default.
    /// This is how a service front end propagates a per-request deadline
    /// down to the pipeline stages without reconfiguring the shared
    /// engine.
    pub fn answer_checked_by(&self, question: &str, deadline: Option<Instant>) -> QuestionReport {
        self.answer_observed(question, None, deadline)
    }

    /// [`QaEngine::answer_checked`] under an observation context: the
    /// engine's registry (and, when tracing is on, a fresh trace rooted
    /// at a `question` span) is installed for the duration of the
    /// question, so every layer below records without handle threading.
    fn answer_observed(
        &self,
        question: &str,
        batch_index: Option<usize>,
        deadline: Option<Instant>,
    ) -> QuestionReport {
        self.stats.record_question();
        let obs = dwqa_obs::observe(
            Some(Arc::clone(self.stats.registry())),
            Some(&self.tracer),
            "question",
            question,
        );
        if let Some(i) = batch_index {
            obs.root_field("batch_index", i);
        }
        let deadline = deadline.or_else(|| self.deadline.map(|budget| Instant::now() + budget));
        let report =
            match catch_unwind(AssertUnwindSafe(|| self.answer_guarded(question, deadline))) {
                Ok(report) => report,
                Err(payload) => QuestionReport::panicked(panic_message(payload.as_ref())),
            };
        self.stats.record_outcome(report.outcome);
        obs.root_field("outcome", report.outcome.label());
        obs.root_field("answers", report.answers.len());
        if let Some(detail) = &report.detail {
            obs.root_field("detail", detail.as_str());
        }
        if let Some(health) = self.source_health() {
            self.stats.sync_source_health(&health);
        }
        report
    }

    /// The guarded answer path (runs under `catch_unwind`).
    fn answer_guarded(&self, question: &str, deadline: Option<Instant>) -> QuestionReport {
        let key = normalize_question(question);
        let revision = self.read.revision();
        if let Some(hit) = self.cache.lookup(&key, revision) {
            self.stats.record_cache_hit();
            dwqa_obs::root_field("cache", "hit");
            return QuestionReport::ok(hit);
        }
        self.stats.record_cache_miss();
        dwqa_obs::root_field("cache", "miss");
        let qa = self.read.qa();
        let t = Instant::now();
        let analysis = {
            let _span = dwqa_obs::span!("analyze");
            qa.analyze(question)
        };
        self.stats.analyze.record(t.elapsed());
        if expired(deadline) {
            return QuestionReport::timed_out("deadline expired after question analysis");
        }
        let t = Instant::now();
        let mut passages = {
            let span = dwqa_obs::span!("passages");
            let passages = qa.passages(&analysis);
            span.record("returned", passages.len());
            passages
        };
        self.stats.passages.record(t.elapsed());
        if expired(deadline) {
            return QuestionReport::timed_out("deadline expired after passage selection");
        }

        // Acquisition phase: when a source is attached, re-fetch every
        // passage document through it. Failed documents drop their
        // passages; corrupted bodies force answer re-validation below.
        let mut fetched_by_url: HashMap<String, Fetched> = HashMap::new();
        let mut faults: Vec<String> = Vec::new();
        if let (Some(source), Some(store)) = (&self.source, qa.store()) {
            let span = dwqa_obs::span!("acquire");
            let mut urls: Vec<&str> = Vec::new();
            for p in &passages {
                let url = store.get(p.doc).url.as_str();
                if !urls.contains(&url) {
                    urls.push(url);
                }
            }
            span.record("urls", urls.len());
            for url in &urls {
                match source.fetch_by(url, deadline) {
                    Ok(fetched) => {
                        if !fetched.integrity.is_intact() {
                            faults.push(format!("{url}: body {:?}", fetched.integrity));
                        }
                        fetched_by_url.insert((*url).to_owned(), fetched);
                    }
                    Err(err) => faults.push(format!("{url}: {err}")),
                }
            }
            span.record("fetched", fetched_by_url.len());
            span.record("faults", faults.len());
            if !urls.is_empty() && fetched_by_url.is_empty() {
                return QuestionReport::source_unavailable(faults.join("; "));
            }
            passages.retain(|p| fetched_by_url.contains_key(&store.get(p.doc).url));
            if expired(deadline) {
                return QuestionReport::timed_out("deadline expired during document acquisition");
            }
        }

        let t = Instant::now();
        let mut answers = {
            let span = dwqa_obs::span!("extract", passages = passages.len());
            let answers = qa.extract(&analysis, &passages);
            span.record("answers", answers.len());
            answers
        };
        self.stats.extract.record(t.elapsed());

        // Re-validation: an answer extracted from a re-acquired document
        // survives only if the fetched body is intact or still contains
        // the answer sentence verbatim (modulo whitespace). Corruption
        // can therefore only *drop* answers, never alter their values.
        if self.source.is_some() {
            let span = dwqa_obs::span!("validate", answers = answers.len());
            let before = answers.len();
            answers.retain(|a| match fetched_by_url.get(&a.url) {
                Some(f) if f.integrity.is_intact() => true,
                Some(f) => normalize_ws(&f.doc.text).contains(&normalize_ws(&a.sentence)),
                None => false,
            });
            let dropped = before - answers.len();
            span.record("dropped", dropped);
            if dropped > 0 {
                faults.push(format!("{dropped} answer(s) failed body re-validation"));
            }
        }

        if !faults.is_empty() {
            // Degraded answers are not cached: a retry may fetch clean
            // copies and produce a first-class result.
            return QuestionReport::degraded(answers, faults.join("; "));
        }
        self.cache.store(key, revision, answers.clone());
        QuestionReport::ok(answers)
    }

    /// The Table-1 trace for a question (uncached).
    pub fn trace(&self, question: &str) -> PipelineTrace {
        self.read.trace(question)
    }

    /// Pre-seeds the cache by answering `questions` (on the calling
    /// thread), so a later batch over them is served from memory.
    pub fn warm(&self, questions: &[String]) {
        for q in questions {
            let _ = self.answer(q);
        }
    }

    /// Answers a batch concurrently on the worker pool. Results come
    /// back **in input order** regardless of which worker finished
    /// first, so merging is deterministic.
    pub fn answer_batch(&self, questions: &[String]) -> Vec<Vec<Answer>> {
        self.answer_batch_checked(questions)
            .into_iter()
            .map(|report| report.answers)
            .collect()
    }

    /// Like [`QaEngine::answer_batch`], returning the full per-question
    /// reports (answers + outcome tags), in input order. One poisoned
    /// question yields a [`AnswerOutcome::Panicked`] report for that
    /// question only — the worker pool survives.
    pub fn answer_batch_checked(&self, questions: &[String]) -> Vec<QuestionReport> {
        self.stats.record_batch();
        let n = questions.len();
        let workers = self.workers.min(n.max(1));
        if workers <= 1 {
            return questions
                .iter()
                .enumerate()
                .map(|(i, q)| self.answer_observed(q, Some(i), None))
                .collect();
        }
        let slots: Vec<Mutex<Option<QuestionReport>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let joined = crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    // Work stealing off a shared index: whichever worker
                    // is free takes the next question, but every report
                    // lands in its question's slot.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let report = self.answer_observed(&questions[i], Some(i), None);
                    *slots[i].lock() = Some(report);
                });
            }
        });
        if joined.is_err() {
            // answer_checked isolates panics, so a worker death here is
            // a bug — count it (the chaos harness asserts this stays 0)
            // and degrade the unfilled slots instead of poisoning the
            // whole batch.
            self.stats.record_worker_death();
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().unwrap_or_else(|| {
                    QuestionReport::panicked(
                        "batch worker died before filling this slot".to_owned(),
                    )
                })
            })
            .collect()
    }
}

/// A session over the integrated system: an engine plus the history of
/// questions asked through it. Sessions are the unit of interaction for
/// the REPL and the experiment binaries.
pub struct QaSession {
    engine: QaEngine,
    history: Vec<String>,
}

impl QaSession {
    /// Opens a session on a pipeline with a default engine.
    pub fn new(pipeline: &IntegrationPipeline) -> QaSession {
        QaSession::with_engine(QaEngine::new(pipeline))
    }

    /// Opens a session over a pre-configured engine.
    pub fn with_engine(engine: QaEngine) -> QaSession {
        QaSession {
            engine,
            history: Vec::new(),
        }
    }

    /// Asks one question (cached, recorded in the session history).
    pub fn ask(&mut self, question: &str) -> Vec<Answer> {
        self.ask_checked(question).answers
    }

    /// Asks one question, returning the full report (answers + outcome
    /// tag), recorded in the session history.
    pub fn ask_checked(&mut self, question: &str) -> QuestionReport {
        self.history.push(question.to_owned());
        self.engine.answer_checked(question)
    }

    /// Asks a batch concurrently (recorded in the session history).
    pub fn ask_batch(&mut self, questions: &[String]) -> Vec<Vec<Answer>> {
        self.history.extend(questions.iter().cloned());
        self.engine.answer_batch(questions)
    }

    /// The Table-1 trace for a question (not recorded).
    pub fn trace(&self, question: &str) -> PipelineTrace {
        self.engine.trace(question)
    }

    /// Every question asked through this session, in order.
    pub fn history(&self) -> &[String] {
        &self.history
    }

    /// The session's engine.
    pub fn engine(&self) -> &QaEngine {
        &self.engine
    }

    /// The session's engine, mutably (to toggle the source or deadline).
    pub fn engine_mut(&mut self) -> &mut QaEngine {
        &mut self.engine
    }

    /// The session's statistics.
    pub fn stats(&self) -> &EngineStats {
        self.engine.stats()
    }
}

/// The outcome of one batch submission: per-question answers and outcome
/// tags (input order), the merged feed report, and timing.
#[derive(Debug)]
pub struct BatchReport {
    /// Answers per question, aligned with the submitted slice.
    pub answers: Vec<Vec<Answer>>,
    /// How each question's attempt ended, aligned with the slice.
    pub outcomes: Vec<AnswerOutcome>,
    /// The merged Step-5 report over the whole batch. Empty when the
    /// feed transaction rolled back — Step 5 is all-or-nothing.
    pub feed: FeedReport,
    /// Whether the feed transaction failed and was rolled back.
    pub rolled_back: bool,
    /// The feed failure, when `rolled_back`.
    pub feed_error: Option<String>,
    /// True when the pipeline has a durable store attached, so a
    /// committed feed was WAL-logged before being acknowledged.
    pub durable: bool,
    /// Worker threads used for the read phase.
    pub workers: usize,
    /// Wall-clock time of the whole submission (read + write phase).
    pub wall: Duration,
    /// The worst-latency question trace of this batch, when the
    /// engine's tracer was enabled (`None` otherwise).
    pub worst_trace: Option<Trace>,
}

/// Batch submission over an [`IntegrationPipeline`]: answer concurrently,
/// feed serially, report deterministically.
pub trait SubmitBatch {
    /// Submits a batch with a default engine (no cache reuse across
    /// calls; use [`SubmitBatch::submit_batch_with`] to keep one).
    fn submit_batch(&mut self, questions: &[String]) -> BatchReport;

    /// Submits a batch through an existing engine, reusing its cache,
    /// worker configuration and statistics.
    fn submit_batch_with(&mut self, engine: &QaEngine, questions: &[String]) -> BatchReport;
}

impl SubmitBatch for IntegrationPipeline {
    fn submit_batch(&mut self, questions: &[String]) -> BatchReport {
        let engine = QaEngine::new(self);
        self.submit_batch_with(&engine, questions)
    }

    fn submit_batch_with(&mut self, engine: &QaEngine, questions: &[String]) -> BatchReport {
        let start = Instant::now();
        // Read phase: concurrent, order-preserving.
        let reports = engine.answer_batch_checked(questions);
        // Write phase: one all-or-nothing transaction, serialized in
        // input order, so on commit the warehouse ends in exactly the
        // state sequential ask-and-feed would produce — and on failure
        // it is untouched (no partial load, no spurious revision bump).
        let batches: Vec<&[Answer]> = reports.iter().map(|r| r.answers.as_slice()).collect();
        let t = Instant::now();
        // The write phase gets its own observation, so the feed
        // transaction's span and commit/rollback events land in the
        // flight recorder alongside the per-question traces.
        let feed_result = {
            let _obs = dwqa_obs::observe(
                Some(Arc::clone(engine.stats().registry())),
                Some(engine.tracer()),
                "feed",
                "batch feed",
            );
            self.feed_batch(&batches)
        };
        engine.stats().feed.record(t.elapsed());
        let (feed, rolled_back, feed_error) = match feed_result {
            Ok(feed) => (feed, false, None),
            Err(err) => {
                engine.stats().record_rollback();
                (FeedReport::default(), true, Some(err.to_string()))
            }
        };
        // Back-annotate the batch-level feed disposition onto the
        // question traces (plus the feed trace itself), then pick this
        // batch's worst-latency question trace for the report.
        let disposition = if rolled_back {
            "rolled-back"
        } else if feed.loaded > 0 {
            "committed"
        } else {
            "no-op"
        };
        let recorder = engine.flight_recorder();
        recorder.annotate_last(questions.len() + 1, "feed", disposition.into());
        let worst_trace = recorder
            .recent()
            .into_iter()
            .rev()
            .take(questions.len() + 1)
            .filter(|t| t.root().map(|r| r.name == "question").unwrap_or(false))
            .max_by_key(|t| t.root().map(|r| r.elapsed_us).unwrap_or(0));
        let outcomes = reports.iter().map(|r| r.outcome).collect();
        let answers = reports.into_iter().map(|r| r.answers).collect();
        BatchReport {
            answers,
            outcomes,
            feed,
            rolled_back,
            feed_error,
            durable: self.is_durable(),
            workers: engine.workers(),
            wall: start.elapsed(),
            worst_trace,
        }
    }
}
