//! The concurrent batch engine and the session-oriented API.
//!
//! [`QaEngine`] drives the pipeline's immutable read path with a pool of
//! scoped worker threads and an LRU answer cache; [`QaSession`] wraps an
//! engine with per-session history; [`SubmitBatch`] puts
//! `pipeline.submit_batch(&questions)` on [`IntegrationPipeline`],
//! combining the concurrent read phase with the serialized write phase
//! into one deterministic [`BatchReport`].

use crate::cache::{normalize_question, AnswerCache};
use crate::stats::EngineStats;
use dwqa_core::{FeedReport, IntegrationPipeline, ReadPath};
use dwqa_qa::{Answer, PipelineTrace};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Default answer-cache capacity (questions).
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// The concurrent QA engine: a worker pool over the pipeline's immutable
/// read path, an answer cache, and per-stage statistics. Shareable across
/// threads by reference; cheap to construct from any pipeline.
pub struct QaEngine {
    read: ReadPath,
    cache: AnswerCache,
    stats: EngineStats,
    workers: usize,
}

impl QaEngine {
    /// An engine over the pipeline's read path, with one worker per
    /// available core (at least one) and the default cache capacity.
    pub fn new(pipeline: &IntegrationPipeline) -> QaEngine {
        QaEngine::over(pipeline.read_path())
    }

    /// An engine over an explicit read path.
    pub fn over(read: ReadPath) -> QaEngine {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        QaEngine {
            read,
            cache: AnswerCache::new(DEFAULT_CACHE_CAPACITY),
            stats: EngineStats::default(),
            workers,
        }
    }

    /// Sets the worker-pool size (clamped to at least one).
    pub fn with_workers(mut self, workers: usize) -> QaEngine {
        self.workers = workers.max(1);
        self
    }

    /// Replaces the answer cache with one of the given capacity
    /// (0 disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> QaEngine {
        self.cache = AnswerCache::new(capacity);
        self
    }

    /// The worker-pool size used by [`QaEngine::answer_batch`].
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The engine's statistics (live; updated by every answer).
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The engine's answer cache.
    pub fn cache(&self) -> &AnswerCache {
        &self.cache
    }

    /// The underlying read path.
    pub fn read_path(&self) -> &ReadPath {
        &self.read
    }

    /// Answers one question, consulting the cache first. A cached entry
    /// is served only if it was computed against the current warehouse
    /// revision; feedback ETL therefore invalidates it.
    pub fn answer(&self, question: &str) -> Vec<Answer> {
        self.stats.record_question();
        let key = normalize_question(question);
        let revision = self.read.revision();
        if let Some(hit) = self.cache.lookup(&key, revision) {
            self.stats.record_cache_hit();
            return hit;
        }
        self.stats.record_cache_miss();
        let qa = self.read.qa();
        let t = Instant::now();
        let analysis = qa.analyze(question);
        self.stats.analyze.record(t.elapsed());
        let t = Instant::now();
        let passages = qa.passages(&analysis);
        self.stats.passages.record(t.elapsed());
        let t = Instant::now();
        let answers = qa.extract(&analysis, &passages);
        self.stats.extract.record(t.elapsed());
        self.cache.store(key, revision, answers.clone());
        answers
    }

    /// The Table-1 trace for a question (uncached).
    pub fn trace(&self, question: &str) -> PipelineTrace {
        self.read.trace(question)
    }

    /// Pre-seeds the cache by answering `questions` (on the calling
    /// thread), so a later batch over them is served from memory.
    pub fn warm(&self, questions: &[String]) {
        for q in questions {
            let _ = self.answer(q);
        }
    }

    /// Answers a batch concurrently on the worker pool. Results come
    /// back **in input order** regardless of which worker finished
    /// first, so merging is deterministic.
    pub fn answer_batch(&self, questions: &[String]) -> Vec<Vec<Answer>> {
        self.stats.record_batch();
        let n = questions.len();
        let workers = self.workers.min(n.max(1));
        if workers <= 1 {
            return questions.iter().map(|q| self.answer(q)).collect();
        }
        let slots: Vec<Mutex<Option<Vec<Answer>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    // Work stealing off a shared index: whichever worker
                    // is free takes the next question, but every answer
                    // lands in its question's slot.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let answers = self.answer(&questions[i]);
                    *slots[i].lock() = Some(answers);
                });
            }
        })
        .expect("a batch worker panicked");
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every slot was filled"))
            .collect()
    }
}

/// A session over the integrated system: an engine plus the history of
/// questions asked through it. Sessions are the unit of interaction for
/// the REPL and the experiment binaries.
pub struct QaSession {
    engine: QaEngine,
    history: Vec<String>,
}

impl QaSession {
    /// Opens a session on a pipeline with a default engine.
    pub fn new(pipeline: &IntegrationPipeline) -> QaSession {
        QaSession::with_engine(QaEngine::new(pipeline))
    }

    /// Opens a session over a pre-configured engine.
    pub fn with_engine(engine: QaEngine) -> QaSession {
        QaSession {
            engine,
            history: Vec::new(),
        }
    }

    /// Asks one question (cached, recorded in the session history).
    pub fn ask(&mut self, question: &str) -> Vec<Answer> {
        self.history.push(question.to_owned());
        self.engine.answer(question)
    }

    /// Asks a batch concurrently (recorded in the session history).
    pub fn ask_batch(&mut self, questions: &[String]) -> Vec<Vec<Answer>> {
        self.history.extend(questions.iter().cloned());
        self.engine.answer_batch(questions)
    }

    /// The Table-1 trace for a question (not recorded).
    pub fn trace(&self, question: &str) -> PipelineTrace {
        self.engine.trace(question)
    }

    /// Every question asked through this session, in order.
    pub fn history(&self) -> &[String] {
        &self.history
    }

    /// The session's engine.
    pub fn engine(&self) -> &QaEngine {
        &self.engine
    }

    /// The session's statistics.
    pub fn stats(&self) -> &EngineStats {
        self.engine.stats()
    }
}

/// The outcome of one batch submission: per-question answers (input
/// order), the merged feed report, and timing.
#[derive(Debug)]
pub struct BatchReport {
    /// Answers per question, aligned with the submitted slice.
    pub answers: Vec<Vec<Answer>>,
    /// The merged Step-5 report over the whole batch.
    pub feed: FeedReport,
    /// Worker threads used for the read phase.
    pub workers: usize,
    /// Wall-clock time of the whole submission (read + write phase).
    pub wall: Duration,
}

/// Batch submission over an [`IntegrationPipeline`]: answer concurrently,
/// feed serially, report deterministically.
pub trait SubmitBatch {
    /// Submits a batch with a default engine (no cache reuse across
    /// calls; use [`SubmitBatch::submit_batch_with`] to keep one).
    fn submit_batch(&mut self, questions: &[String]) -> BatchReport;

    /// Submits a batch through an existing engine, reusing its cache,
    /// worker configuration and statistics.
    fn submit_batch_with(&mut self, engine: &QaEngine, questions: &[String]) -> BatchReport;
}

impl SubmitBatch for IntegrationPipeline {
    fn submit_batch(&mut self, questions: &[String]) -> BatchReport {
        let engine = QaEngine::new(self);
        self.submit_batch_with(&engine, questions)
    }

    fn submit_batch_with(&mut self, engine: &QaEngine, questions: &[String]) -> BatchReport {
        let start = Instant::now();
        // Read phase: concurrent, order-preserving.
        let answers = engine.answer_batch(questions);
        // Write phase: serialized in input order, so the warehouse ends
        // in exactly the state sequential ask-and-feed would produce.
        let mut feed = FeedReport::default();
        for batch in &answers {
            let t = Instant::now();
            feed.absorb(self.apply_feedback(batch));
            engine.stats().feed.record(t.elapsed());
        }
        BatchReport {
            answers,
            feed,
            workers: engine.workers(),
            wall: start.elapsed(),
        }
    }
}
