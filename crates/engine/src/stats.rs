//! Per-stage counters and latency histograms for the batch engine.
//!
//! All state is atomic so worker threads record timings through a shared
//! reference without locking. Latencies land in logarithmic (power-of-two
//! microsecond) buckets, which keeps recording O(1) and still yields
//! usable p50/p95/max read-outs for the REPL and experiment binaries.

use crate::outcome::AnswerOutcome;
use dwqa_faults::SourceHealth;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^(i-1), 2^i)` µs, with bucket 0 holding sub-microsecond samples.
const BUCKETS: usize = 40;

/// A lock-free latency histogram with power-of-two microsecond buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    fn bucket_for(us: u64) -> usize {
        ((u64::BITS - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// The exclusive upper bound (µs) of a bucket.
    fn bucket_bound(bucket: usize) -> u64 {
        1u64 << bucket
    }

    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_for(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// An upper bound (µs) on the `q`-quantile latency (0.0 ..= 1.0).
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.samples();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_bound(i);
            }
        }
        Self::bucket_bound(BUCKETS - 1)
    }
}

/// Counters for one pipeline stage: how often it ran and for how long.
#[derive(Debug, Default)]
pub struct StageStats {
    calls: AtomicU64,
    total_us: AtomicU64,
    /// The latency distribution of the stage.
    pub histogram: LatencyHistogram,
}

impl StageStats {
    /// Records one timed execution of the stage.
    pub fn record(&self, latency: Duration) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(
            latency.as_micros().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
        self.histogram.record(latency);
    }

    /// How many times the stage ran.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> u64 {
        self.total_us
            .load(Ordering::Relaxed)
            .checked_div(self.calls())
            .unwrap_or(0)
    }
}

/// Aggregated engine statistics: the three search-phase stages, the
/// feedback write path, and the answer-cache outcome counters.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Module 1 — question analysis.
    pub analyze: StageStats,
    /// Module 2 — passage selection.
    pub passages: StageStats,
    /// Module 3 — answer extraction.
    pub extract: StageStats,
    /// Step 5 — feedback ETL (the serialized write path).
    pub feed: StageStats,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    questions: AtomicU64,
    batches: AtomicU64,
    // Degraded-answer taxonomy counters.
    outcome_ok: AtomicU64,
    outcome_degraded: AtomicU64,
    outcome_timed_out: AtomicU64,
    outcome_unavailable: AtomicU64,
    outcome_panicked: AtomicU64,
    // Resilience counters. Source counters mirror the *cumulative*
    // [`SourceHealth`] of the engine's source stack (set, not summed);
    // rollbacks and worker deaths are engine-local events.
    source_retries: AtomicU64,
    source_trips: AtomicU64,
    source_rejections: AtomicU64,
    source_failures: AtomicU64,
    rollbacks: AtomicU64,
    worker_deaths: AtomicU64,
    // Retrieval-pruning counters: how much of the corpus the sentence
    // postings let Module 2 skip, summed over all (cache-miss)
    // retrievals.
    retrievals: AtomicU64,
    retrieval_docs_total: AtomicU64,
    retrieval_docs_candidate: AtomicU64,
    retrieval_docs_pruned: AtomicU64,
    retrieval_windows_scored: AtomicU64,
}

impl EngineStats {
    pub(crate) fn record_question(&self) {
        self.questions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_outcome(&self, outcome: AnswerOutcome) {
        let counter = match outcome {
            AnswerOutcome::Ok => &self.outcome_ok,
            AnswerOutcome::Degraded => &self.outcome_degraded,
            AnswerOutcome::TimedOut => &self.outcome_timed_out,
            AnswerOutcome::SourceUnavailable => &self.outcome_unavailable,
            AnswerOutcome::Panicked => &self.outcome_panicked,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Mirrors the source stack's cumulative health counters (idempotent:
    /// stores the latest values rather than summing deltas).
    pub(crate) fn sync_source_health(&self, health: &SourceHealth) {
        self.source_retries.store(health.retries, Ordering::Relaxed);
        self.source_trips
            .store(health.breaker_trips, Ordering::Relaxed);
        self.source_rejections
            .store(health.breaker_rejections, Ordering::Relaxed);
        self.source_failures
            .store(health.failures, Ordering::Relaxed);
    }

    /// Accumulates the pruning counters of one passage retrieval.
    pub(crate) fn record_retrieval(&self, stats: dwqa_qa::RetrievalStats) {
        self.retrievals.fetch_add(1, Ordering::Relaxed);
        self.retrieval_docs_total
            .fetch_add(stats.docs_total as u64, Ordering::Relaxed);
        self.retrieval_docs_candidate
            .fetch_add(stats.docs_candidate as u64, Ordering::Relaxed);
        self.retrieval_docs_pruned
            .fetch_add(stats.docs_pruned as u64, Ordering::Relaxed);
        self.retrieval_windows_scored
            .fetch_add(stats.windows_scored as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_rollback(&self) {
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_worker_death(&self) {
        self.worker_deaths.fetch_add(1, Ordering::Relaxed);
    }

    /// Questions that completed cleanly.
    pub fn outcomes_ok(&self) -> u64 {
        self.outcome_ok.load(Ordering::Relaxed)
    }

    /// Questions answered under degraded evidence.
    pub fn outcomes_degraded(&self) -> u64 {
        self.outcome_degraded.load(Ordering::Relaxed)
    }

    /// Questions that hit their deadline.
    pub fn outcomes_timed_out(&self) -> u64 {
        self.outcome_timed_out.load(Ordering::Relaxed)
    }

    /// Questions whose source documents were all unavailable.
    pub fn outcomes_unavailable(&self) -> u64 {
        self.outcome_unavailable.load(Ordering::Relaxed)
    }

    /// Questions whose worker panicked (isolated).
    pub fn outcomes_panicked(&self) -> u64 {
        self.outcome_panicked.load(Ordering::Relaxed)
    }

    /// Source retries performed by the resilience layer.
    pub fn source_retries(&self) -> u64 {
        self.source_retries.load(Ordering::Relaxed)
    }

    /// Circuit-breaker trips in the source stack.
    pub fn breaker_trips(&self) -> u64 {
        self.source_trips.load(Ordering::Relaxed)
    }

    /// Fetches rejected outright by an open breaker.
    pub fn breaker_rejections(&self) -> u64 {
        self.source_rejections.load(Ordering::Relaxed)
    }

    /// Fetches that ultimately failed (after retries).
    pub fn source_failures(&self) -> u64 {
        self.source_failures.load(Ordering::Relaxed)
    }

    /// Feed transactions rolled back all-or-nothing.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks.load(Ordering::Relaxed)
    }

    /// Worker-pool threads lost to an unisolated panic (should stay 0).
    pub fn worker_deaths(&self) -> u64 {
        self.worker_deaths.load(Ordering::Relaxed)
    }

    /// Passage retrievals recorded (one per cache-miss question, two if
    /// the focus fallback fired).
    pub fn retrievals(&self) -> u64 {
        self.retrievals.load(Ordering::Relaxed)
    }

    /// Candidate documents scored, summed over all retrievals.
    pub fn retrieval_docs_candidate(&self) -> u64 {
        self.retrieval_docs_candidate.load(Ordering::Relaxed)
    }

    /// Documents skipped by index pruning, summed over all retrievals.
    pub fn retrieval_docs_pruned(&self) -> u64 {
        self.retrieval_docs_pruned.load(Ordering::Relaxed)
    }

    /// Candidate windows scored, summed over all retrievals.
    pub fn retrieval_windows_scored(&self) -> u64 {
        self.retrieval_windows_scored.load(Ordering::Relaxed)
    }

    /// Mean candidate-set size per retrieval.
    pub fn mean_candidate_docs(&self) -> f64 {
        let n = self.retrievals();
        if n == 0 {
            0.0
        } else {
            self.retrieval_docs_candidate() as f64 / n as f64
        }
    }

    /// Share of corpus documents pruned (never touched) per retrieval.
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.retrieval_docs_total.load(Ordering::Relaxed);
        if total == 0 {
            0.0
        } else {
            self.retrieval_docs_pruned() as f64 / total as f64
        }
    }

    /// Questions answered (cached or computed).
    pub fn questions(&self) -> u64 {
        self.questions.load(Ordering::Relaxed)
    }

    /// Batches submitted.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Answers served from the cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Answers computed because the cache had no (fresh) entry.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Cache hit rate over all answered questions.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits() + self.cache_misses();
        if total == 0 {
            0.0
        } else {
            self.cache_hits() as f64 / total as f64
        }
    }

    /// Renders the statistics as a fixed-width table.
    pub fn render(&self) -> String {
        fn us(v: u64) -> String {
            if v >= 10_000 {
                format!("{:.1} ms", v as f64 / 1e3)
            } else {
                format!("{v} µs")
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "questions: {}   batches: {}   cache: {} hits / {} misses ({:.0}% hit rate)\n",
            self.questions(),
            self.batches(),
            self.cache_hits(),
            self.cache_misses(),
            self.cache_hit_rate() * 100.0,
        ));
        out.push_str("stage     |  calls |    mean |    ≤p50 |    ≤p95 |     max\n");
        out.push_str("----------+--------+---------+---------+---------+--------\n");
        for (name, stage) in [
            ("analyze", &self.analyze),
            ("passages", &self.passages),
            ("extract", &self.extract),
            ("feed", &self.feed),
        ] {
            out.push_str(&format!(
                "{name:<9} | {:>6} | {:>7} | {:>7} | {:>7} | {:>7}\n",
                stage.calls(),
                us(stage.mean_us()),
                us(stage.histogram.quantile_us(0.50)),
                us(stage.histogram.quantile_us(0.95)),
                us(stage.histogram.quantile_us(1.0)),
            ));
        }
        out.push_str(&format!(
            "outcomes: {} ok / {} degraded / {} timed-out / {} source-unavailable / {} panicked\n",
            self.outcomes_ok(),
            self.outcomes_degraded(),
            self.outcomes_timed_out(),
            self.outcomes_unavailable(),
            self.outcomes_panicked(),
        ));
        out.push_str(&format!(
            "retrieval: {} retrievals   {:.1} candidate docs/query ({:.0}% of corpus pruned)   {} windows scored\n",
            self.retrievals(),
            self.mean_candidate_docs(),
            self.pruned_fraction() * 100.0,
            self.retrieval_windows_scored(),
        ));
        out.push_str(&format!(
            "resilience: {} retries   {} breaker trips   {} breaker rejections   {} source failures   {} rollbacks   {} worker deaths\n",
            self.source_retries(),
            self.breaker_trips(),
            self.breaker_rejections(),
            self.source_failures(),
            self.rollbacks(),
            self.worker_deaths(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for us in [1u64, 2, 3, 100, 100, 100, 100, 5000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.samples(), 8);
        // Half the samples sit at 100 µs, so p50 lands in its bucket
        // (64..128 µs → bound 128).
        assert_eq!(h.quantile_us(0.5), 128);
        assert!(h.quantile_us(1.0) >= 5000);
        assert_eq!(LatencyHistogram::default().quantile_us(0.5), 0);
    }

    #[test]
    fn stage_stats_mean() {
        let s = StageStats::default();
        s.record(Duration::from_micros(100));
        s.record(Duration::from_micros(300));
        assert_eq!(s.calls(), 2);
        assert_eq!(s.mean_us(), 200);
    }

    #[test]
    fn render_contains_all_stages() {
        let stats = EngineStats::default();
        stats.analyze.record(Duration::from_micros(42));
        stats.record_question();
        stats.record_cache_miss();
        let table = stats.render();
        for name in [
            "analyze",
            "passages",
            "extract",
            "feed",
            "hit rate",
            "outcomes",
            "retrieval",
            "resilience",
        ] {
            assert!(table.contains(name), "missing {name} in:\n{table}");
        }
    }

    #[test]
    fn retrieval_counters_accumulate() {
        let stats = EngineStats::default();
        stats.record_retrieval(dwqa_qa::RetrievalStats {
            docs_total: 100,
            docs_candidate: 4,
            docs_pruned: 96,
            windows_scored: 12,
        });
        stats.record_retrieval(dwqa_qa::RetrievalStats {
            docs_total: 100,
            docs_candidate: 6,
            docs_pruned: 94,
            windows_scored: 20,
        });
        assert_eq!(stats.retrievals(), 2);
        assert_eq!(stats.retrieval_docs_candidate(), 10);
        assert_eq!(stats.retrieval_docs_pruned(), 190);
        assert_eq!(stats.retrieval_windows_scored(), 32);
        assert!((stats.mean_candidate_docs() - 5.0).abs() < 1e-12);
        assert!((stats.pruned_fraction() - 0.95).abs() < 1e-12);
        let table = stats.render();
        assert!(table.contains("95% of corpus pruned"), "{table}");
    }

    #[test]
    fn outcome_and_resilience_counters_accumulate() {
        let stats = EngineStats::default();
        stats.record_outcome(AnswerOutcome::Ok);
        stats.record_outcome(AnswerOutcome::Ok);
        stats.record_outcome(AnswerOutcome::Degraded);
        stats.record_outcome(AnswerOutcome::TimedOut);
        stats.record_outcome(AnswerOutcome::SourceUnavailable);
        stats.record_outcome(AnswerOutcome::Panicked);
        assert_eq!(stats.outcomes_ok(), 2);
        assert_eq!(stats.outcomes_degraded(), 1);
        assert_eq!(stats.outcomes_timed_out(), 1);
        assert_eq!(stats.outcomes_unavailable(), 1);
        assert_eq!(stats.outcomes_panicked(), 1);
        stats.record_rollback();
        assert_eq!(stats.rollbacks(), 1);
        assert_eq!(stats.worker_deaths(), 0);
        // Source health mirrors cumulative counters idempotently.
        let health = SourceHealth {
            retries: 7,
            breaker_trips: 2,
            breaker_rejections: 3,
            failures: 4,
            ..SourceHealth::default()
        };
        stats.sync_source_health(&health);
        stats.sync_source_health(&health);
        assert_eq!(stats.source_retries(), 7);
        assert_eq!(stats.breaker_trips(), 2);
        assert_eq!(stats.breaker_rejections(), 3);
        assert_eq!(stats.source_failures(), 4);
    }
}
