//! Per-stage counters and latency histograms for the batch engine — a
//! *view* over a [`dwqa_obs::MetricsRegistry`].
//!
//! The engine owns one registry per instance and installs it into each
//! worker's thread-local observation context for the duration of a
//! question (see [`dwqa_obs::observe`]), so the lower crates — `dwqa-ir`
//! retrieval, the fault layer — record against the same names
//! ([`dwqa_obs::names`]) without any handle threading. `EngineStats`
//! caches `Arc` handles to the hot counters and histograms, keeping the
//! record path lock-free, and renders the whole registry as the familiar
//! fixed-width table for the REPL and experiment binaries.

use crate::outcome::AnswerOutcome;
use dwqa_faults::SourceHealth;
use dwqa_obs::{names, Counter, Gauge, MetricsRegistry};
use std::sync::Arc;
use std::time::Duration;

/// The latency histogram used for stage timings: power-of-two
/// microsecond buckets, lock-free recording. Re-exported from
/// `dwqa-obs`, where it also carries an exact running sum (so means no
/// longer need a separate total counter) and a full-width
/// [`merge`](dwqa_obs::Histogram::absorb) that keeps every bucket of
/// both operands regardless of their observed ranges.
pub type LatencyHistogram = dwqa_obs::Histogram;

/// Counters for one pipeline stage: how often it ran and for how long.
/// A thin handle over the stage's registry histogram.
#[derive(Debug, Clone)]
pub struct StageStats {
    histogram: Arc<LatencyHistogram>,
}

impl StageStats {
    fn over(registry: &MetricsRegistry, name: &str) -> StageStats {
        StageStats {
            histogram: registry.histogram(name),
        }
    }

    /// Records one timed execution of the stage.
    pub fn record(&self, latency: Duration) {
        self.histogram.record(latency);
    }

    /// How many times the stage ran.
    pub fn calls(&self) -> u64 {
        self.histogram.samples()
    }

    /// Mean latency in microseconds (exact: the histogram keeps a
    /// running sum alongside its buckets).
    pub fn mean_us(&self) -> u64 {
        self.histogram.mean_us()
    }

    /// The latency distribution of the stage.
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.histogram
    }
}

/// Aggregated engine statistics: the three search-phase stages, the
/// feedback write path, the answer-cache and outcome counters — all
/// living in one [`MetricsRegistry`] shared with the instrumented
/// lower layers.
#[derive(Debug)]
pub struct EngineStats {
    registry: Arc<MetricsRegistry>,
    /// Module 1 — question analysis.
    pub analyze: StageStats,
    /// Module 2 — passage selection.
    pub passages: StageStats,
    /// Module 3 — answer extraction.
    pub extract: StageStats,
    /// Step 5 — feedback ETL (the serialized write path).
    pub feed: StageStats,
    questions: Arc<Counter>,
    batches: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    // Degraded-answer taxonomy counters.
    outcome_ok: Arc<Counter>,
    outcome_degraded: Arc<Counter>,
    outcome_timed_out: Arc<Counter>,
    outcome_unavailable: Arc<Counter>,
    outcome_panicked: Arc<Counter>,
    // Resilience gauges: mirror the *cumulative* [`SourceHealth`] of the
    // engine's source stack (set, not summed); rollbacks and worker
    // deaths are engine-local event counters.
    source_retries: Arc<Gauge>,
    source_trips: Arc<Gauge>,
    source_rejections: Arc<Gauge>,
    source_failures: Arc<Gauge>,
    rollbacks: Arc<Counter>,
    worker_deaths: Arc<Counter>,
}

impl Default for EngineStats {
    fn default() -> EngineStats {
        EngineStats::new(Arc::new(MetricsRegistry::new()))
    }
}

fn outcome_name(outcome: AnswerOutcome) -> String {
    format!("{}{}", names::OUTCOME_PREFIX, outcome.label())
}

impl EngineStats {
    /// A stats view over an existing registry (handles to the hot
    /// counters are resolved once, here).
    pub fn new(registry: Arc<MetricsRegistry>) -> EngineStats {
        EngineStats {
            analyze: StageStats::over(&registry, names::STAGE_ANALYZE),
            passages: StageStats::over(&registry, names::STAGE_PASSAGES),
            extract: StageStats::over(&registry, names::STAGE_EXTRACT),
            feed: StageStats::over(&registry, names::STAGE_FEED),
            questions: registry.counter(names::QUESTIONS),
            batches: registry.counter(names::BATCHES),
            cache_hits: registry.counter(names::CACHE_HITS),
            cache_misses: registry.counter(names::CACHE_MISSES),
            outcome_ok: registry.counter(&outcome_name(AnswerOutcome::Ok)),
            outcome_degraded: registry.counter(&outcome_name(AnswerOutcome::Degraded)),
            outcome_timed_out: registry.counter(&outcome_name(AnswerOutcome::TimedOut)),
            outcome_unavailable: registry.counter(&outcome_name(AnswerOutcome::SourceUnavailable)),
            outcome_panicked: registry.counter(&outcome_name(AnswerOutcome::Panicked)),
            source_retries: registry.gauge(names::SOURCE_RETRIES),
            source_trips: registry.gauge(names::SOURCE_BREAKER_TRIPS),
            source_rejections: registry.gauge(names::SOURCE_BREAKER_REJECTIONS),
            source_failures: registry.gauge(names::SOURCE_FAILURES),
            rollbacks: registry.counter(names::ROLLBACKS),
            worker_deaths: registry.counter(names::WORKER_DEATHS),
            registry,
        }
    }

    /// The underlying registry — what the engine installs into each
    /// worker's observation context so retrieval and fault counters land
    /// next to the stage histograms.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Merges another stats object into this one: counters and every
    /// histogram bucket are added (full-width — disjoint latency ranges
    /// lose nothing); gauges are summed, which is only meaningful when
    /// the two engines watched *different* source stacks.
    pub fn absorb(&self, other: &EngineStats) {
        self.registry.absorb(&other.registry);
    }

    pub(crate) fn record_question(&self) {
        self.questions.inc();
    }

    pub(crate) fn record_batch(&self) {
        self.batches.inc();
    }

    pub(crate) fn record_cache_hit(&self) {
        self.cache_hits.inc();
    }

    pub(crate) fn record_cache_miss(&self) {
        self.cache_misses.inc();
    }

    pub(crate) fn record_outcome(&self, outcome: AnswerOutcome) {
        let counter = match outcome {
            AnswerOutcome::Ok => &self.outcome_ok,
            AnswerOutcome::Degraded => &self.outcome_degraded,
            AnswerOutcome::TimedOut => &self.outcome_timed_out,
            AnswerOutcome::SourceUnavailable => &self.outcome_unavailable,
            AnswerOutcome::Panicked => &self.outcome_panicked,
        };
        counter.inc();
    }

    /// Mirrors the source stack's cumulative health counters (idempotent:
    /// stores the latest values rather than summing deltas).
    pub(crate) fn sync_source_health(&self, health: &SourceHealth) {
        self.source_retries.set(health.retries);
        self.source_trips.set(health.breaker_trips);
        self.source_rejections.set(health.breaker_rejections);
        self.source_failures.set(health.failures);
    }

    pub(crate) fn record_rollback(&self) {
        self.rollbacks.inc();
    }

    pub(crate) fn record_worker_death(&self) {
        self.worker_deaths.inc();
    }

    /// Questions that completed cleanly.
    pub fn outcomes_ok(&self) -> u64 {
        self.outcome_ok.value()
    }

    /// Questions answered under degraded evidence.
    pub fn outcomes_degraded(&self) -> u64 {
        self.outcome_degraded.value()
    }

    /// Questions that hit their deadline.
    pub fn outcomes_timed_out(&self) -> u64 {
        self.outcome_timed_out.value()
    }

    /// Questions whose source documents were all unavailable.
    pub fn outcomes_unavailable(&self) -> u64 {
        self.outcome_unavailable.value()
    }

    /// Questions whose worker panicked (isolated).
    pub fn outcomes_panicked(&self) -> u64 {
        self.outcome_panicked.value()
    }

    /// Source retries performed by the resilience layer.
    pub fn source_retries(&self) -> u64 {
        self.source_retries.value()
    }

    /// Circuit-breaker trips in the source stack.
    pub fn breaker_trips(&self) -> u64 {
        self.source_trips.value()
    }

    /// Fetches rejected outright by an open breaker.
    pub fn breaker_rejections(&self) -> u64 {
        self.source_rejections.value()
    }

    /// Fetches that ultimately failed (after retries).
    pub fn source_failures(&self) -> u64 {
        self.source_failures.value()
    }

    /// Feed transactions rolled back all-or-nothing.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks.value()
    }

    /// Worker-pool threads lost to an unisolated panic (should stay 0).
    pub fn worker_deaths(&self) -> u64 {
        self.worker_deaths.value()
    }

    /// Passage retrievals recorded (one per cache-miss question, two if
    /// the focus fallback fired). Written by `dwqa-ir` through the
    /// observation context.
    pub fn retrievals(&self) -> u64 {
        self.registry.counter_value(names::RETRIEVAL_COUNT)
    }

    /// Candidate documents scored, summed over all retrievals.
    pub fn retrieval_docs_candidate(&self) -> u64 {
        self.registry.counter_value(names::RETRIEVAL_DOCS_CANDIDATE)
    }

    /// Documents skipped by index pruning, summed over all retrievals.
    pub fn retrieval_docs_pruned(&self) -> u64 {
        self.registry.counter_value(names::RETRIEVAL_DOCS_PRUNED)
    }

    /// Candidate windows scored, summed over all retrievals.
    pub fn retrieval_windows_scored(&self) -> u64 {
        self.registry.counter_value(names::RETRIEVAL_WINDOWS_SCORED)
    }

    /// Mean candidate-set size per retrieval.
    pub fn mean_candidate_docs(&self) -> f64 {
        let n = self.retrievals();
        if n == 0 {
            0.0
        } else {
            self.retrieval_docs_candidate() as f64 / n as f64
        }
    }

    /// Share of corpus documents pruned (never touched) per retrieval.
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.registry.counter_value(names::RETRIEVAL_DOCS_TOTAL);
        if total == 0 {
            0.0
        } else {
            self.retrieval_docs_pruned() as f64 / total as f64
        }
    }

    /// Questions answered (cached or computed).
    pub fn questions(&self) -> u64 {
        self.questions.value()
    }

    /// Batches submitted.
    pub fn batches(&self) -> u64 {
        self.batches.value()
    }

    /// Answers served from the cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.value()
    }

    /// Answers computed because the cache had no (fresh) entry.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.value()
    }

    /// Cache hit rate over all answered questions.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits() + self.cache_misses();
        if total == 0 {
            0.0
        } else {
            self.cache_hits() as f64 / total as f64
        }
    }

    /// Roll-up plans compiled against a fresh warehouse revision.
    pub fn warehouse_plans_compiled(&self) -> u64 {
        self.registry.counter_value(names::WAREHOUSE_PLANS_COMPILED)
    }

    /// Roll-up plans served from the warehouse plan cache.
    pub fn warehouse_plans_reused(&self) -> u64 {
        self.registry.counter_value(names::WAREHOUSE_PLANS_REUSED)
    }

    /// Fact rows walked by compiled roll-up scans (summed).
    pub fn warehouse_rows_scanned(&self) -> u64 {
        self.registry.counter_value(names::WAREHOUSE_ROWS_SCANNED)
    }

    /// Roll-up result-cache hits recorded by the pipeline.
    pub fn warehouse_rollup_hits(&self) -> u64 {
        self.registry.counter_value(names::WAREHOUSE_ROLLUP_HITS)
    }

    /// Roll-up result-cache misses (queries actually executed).
    pub fn warehouse_rollup_misses(&self) -> u64 {
        self.registry.counter_value(names::WAREHOUSE_ROLLUP_MISSES)
    }

    /// Materialized roll-up entries that absorbed a commit's delta in
    /// place (incremental maintenance).
    pub fn warehouse_deltas_applied(&self) -> u64 {
        self.registry.counter_value(names::WAREHOUSE_DELTA_APPLIED)
    }

    /// Materialized entries demoted to recompute-on-next-read because a
    /// delta could not be absorbed.
    pub fn warehouse_deltas_demoted(&self) -> u64 {
        self.registry.counter_value(names::WAREHOUSE_DELTA_DEMOTED)
    }

    /// Fact rows folded incrementally into live materialized roll-ups
    /// (summed over entries).
    pub fn warehouse_delta_rows(&self) -> u64 {
        self.registry.counter_value(names::WAREHOUSE_DELTA_ROWS)
    }

    /// Renders the statistics as a fixed-width table.
    pub fn render(&self) -> String {
        fn us(v: u64) -> String {
            if v >= 10_000 {
                format!("{:.1} ms", v as f64 / 1e3)
            } else {
                format!("{v} µs")
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "questions: {}   batches: {}   cache: {} hits / {} misses ({:.0}% hit rate)\n",
            self.questions(),
            self.batches(),
            self.cache_hits(),
            self.cache_misses(),
            self.cache_hit_rate() * 100.0,
        ));
        out.push_str("stage     |  calls |    mean |    ≤p50 |    ≤p95 |     max\n");
        out.push_str("----------+--------+---------+---------+---------+--------\n");
        for (name, stage) in [
            ("analyze", &self.analyze),
            ("passages", &self.passages),
            ("extract", &self.extract),
            ("feed", &self.feed),
        ] {
            out.push_str(&format!(
                "{name:<9} | {:>6} | {:>7} | {:>7} | {:>7} | {:>7}\n",
                stage.calls(),
                us(stage.mean_us()),
                us(stage.histogram().quantile_us(0.50)),
                us(stage.histogram().quantile_us(0.95)),
                us(stage.histogram().quantile_us(1.0)),
            ));
        }
        out.push_str(&format!(
            "outcomes: {} ok / {} degraded / {} timed-out / {} source-unavailable / {} panicked\n",
            self.outcomes_ok(),
            self.outcomes_degraded(),
            self.outcomes_timed_out(),
            self.outcomes_unavailable(),
            self.outcomes_panicked(),
        ));
        out.push_str(&format!(
            "retrieval: {} retrievals   {:.1} candidate docs/query ({:.0}% of corpus pruned)   {} windows scored\n",
            self.retrievals(),
            self.mean_candidate_docs(),
            self.pruned_fraction() * 100.0,
            self.retrieval_windows_scored(),
        ));
        out.push_str(&format!(
            "warehouse: {} plans compiled / {} reused   {} rows scanned   rollup cache: {} hits / {} misses   deltas: {} applied / {} demoted ({} rows folded)\n",
            self.warehouse_plans_compiled(),
            self.warehouse_plans_reused(),
            self.warehouse_rows_scanned(),
            self.warehouse_rollup_hits(),
            self.warehouse_rollup_misses(),
            self.warehouse_deltas_applied(),
            self.warehouse_deltas_demoted(),
            self.warehouse_delta_rows(),
        ));
        out.push_str(&format!(
            "resilience: {} retries   {} breaker trips   {} breaker rejections   {} source failures   {} rollbacks   {} worker deaths\n",
            self.source_retries(),
            self.breaker_trips(),
            self.breaker_rejections(),
            self.source_failures(),
            self.rollbacks(),
            self.worker_deaths(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::new();
        for us in [1u64, 2, 3, 100, 100, 100, 100, 5000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.samples(), 8);
        // Half the samples sit at 100 µs, so p50 lands in its bucket
        // (64..128 µs → bound 128).
        assert_eq!(h.quantile_us(0.5), 128);
        assert!(h.quantile_us(1.0) >= 5000);
        assert_eq!(LatencyHistogram::new().quantile_us(0.5), 0);
    }

    #[test]
    fn stage_stats_mean() {
        let s = EngineStats::default();
        s.analyze.record(Duration::from_micros(100));
        s.analyze.record(Duration::from_micros(300));
        assert_eq!(s.analyze.calls(), 2);
        assert_eq!(s.analyze.mean_us(), 200);
    }

    #[test]
    fn render_contains_all_stages() {
        let stats = EngineStats::default();
        stats.analyze.record(Duration::from_micros(42));
        stats.record_question();
        stats.record_cache_miss();
        let table = stats.render();
        for name in [
            "analyze",
            "passages",
            "extract",
            "feed",
            "hit rate",
            "outcomes",
            "retrieval",
            "warehouse",
            "resilience",
        ] {
            assert!(table.contains(name), "missing {name} in:\n{table}");
        }
    }

    /// The retrieval getters read the registry counters that `dwqa-ir`
    /// writes through the observation context; here we write them
    /// directly, as an installed context would.
    #[test]
    fn retrieval_counters_read_the_shared_registry() {
        let stats = EngineStats::default();
        let reg = Arc::clone(stats.registry());
        for (candidate, pruned, windows) in [(4u64, 96u64, 12u64), (6, 94, 20)] {
            reg.counter(names::RETRIEVAL_COUNT).inc();
            reg.counter(names::RETRIEVAL_DOCS_TOTAL).add(100);
            reg.counter(names::RETRIEVAL_DOCS_CANDIDATE).add(candidate);
            reg.counter(names::RETRIEVAL_DOCS_PRUNED).add(pruned);
            reg.counter(names::RETRIEVAL_WINDOWS_SCORED).add(windows);
        }
        assert_eq!(stats.retrievals(), 2);
        assert_eq!(stats.retrieval_docs_candidate(), 10);
        assert_eq!(stats.retrieval_docs_pruned(), 190);
        assert_eq!(stats.retrieval_windows_scored(), 32);
        assert!((stats.mean_candidate_docs() - 5.0).abs() < 1e-12);
        assert!((stats.pruned_fraction() - 0.95).abs() < 1e-12);
        let table = stats.render();
        assert!(table.contains("95% of corpus pruned"), "{table}");
    }

    /// The warehouse getters read the counters that `dwqa-warehouse` and
    /// the pipeline's rollup cache write through the observation context.
    #[test]
    fn warehouse_counters_read_the_shared_registry() {
        let stats = EngineStats::default();
        let reg = Arc::clone(stats.registry());
        reg.counter(names::WAREHOUSE_PLANS_COMPILED).add(2);
        reg.counter(names::WAREHOUSE_PLANS_REUSED).add(5);
        reg.counter(names::WAREHOUSE_ROWS_SCANNED).add(1000);
        reg.counter(names::WAREHOUSE_ROLLUP_HITS).add(3);
        reg.counter(names::WAREHOUSE_ROLLUP_MISSES).add(4);
        reg.counter(names::WAREHOUSE_DELTA_APPLIED).add(6);
        reg.counter(names::WAREHOUSE_DELTA_DEMOTED).inc();
        reg.counter(names::WAREHOUSE_DELTA_ROWS).add(42);
        assert_eq!(stats.warehouse_plans_compiled(), 2);
        assert_eq!(stats.warehouse_plans_reused(), 5);
        assert_eq!(stats.warehouse_rows_scanned(), 1000);
        assert_eq!(stats.warehouse_rollup_hits(), 3);
        assert_eq!(stats.warehouse_rollup_misses(), 4);
        assert_eq!(stats.warehouse_deltas_applied(), 6);
        assert_eq!(stats.warehouse_deltas_demoted(), 1);
        assert_eq!(stats.warehouse_delta_rows(), 42);
        let table = stats.render();
        assert!(table.contains("2 plans compiled / 5 reused"), "{table}");
        assert!(table.contains("3 hits / 4 misses"), "{table}");
        assert!(
            table.contains("6 applied / 1 demoted (42 rows folded)"),
            "{table}"
        );
    }

    #[test]
    fn outcome_and_resilience_counters_accumulate() {
        let stats = EngineStats::default();
        stats.record_outcome(AnswerOutcome::Ok);
        stats.record_outcome(AnswerOutcome::Ok);
        stats.record_outcome(AnswerOutcome::Degraded);
        stats.record_outcome(AnswerOutcome::TimedOut);
        stats.record_outcome(AnswerOutcome::SourceUnavailable);
        stats.record_outcome(AnswerOutcome::Panicked);
        assert_eq!(stats.outcomes_ok(), 2);
        assert_eq!(stats.outcomes_degraded(), 1);
        assert_eq!(stats.outcomes_timed_out(), 1);
        assert_eq!(stats.outcomes_unavailable(), 1);
        assert_eq!(stats.outcomes_panicked(), 1);
        stats.record_rollback();
        assert_eq!(stats.rollbacks(), 1);
        assert_eq!(stats.worker_deaths(), 0);
        // Source health mirrors cumulative counters idempotently.
        let health = SourceHealth {
            retries: 7,
            breaker_trips: 2,
            breaker_rejections: 3,
            failures: 4,
            ..SourceHealth::default()
        };
        stats.sync_source_health(&health);
        stats.sync_source_health(&health);
        assert_eq!(stats.source_retries(), 7);
        assert_eq!(stats.breaker_trips(), 2);
        assert_eq!(stats.breaker_rejections(), 3);
        assert_eq!(stats.source_failures(), 4);
    }

    /// Regression: the old per-stage merge was bounded by the
    /// destination's highest observed bucket, silently dropping the
    /// source's tail counts when the two histograms covered different
    /// latency ranges. The registry absorb is full-width.
    #[test]
    fn absorb_merges_disjoint_histogram_ranges_without_loss() {
        let a = EngineStats::default();
        let b = EngineStats::default();
        // `a` only ever saw microsecond-scale analyze calls; `b` only
        // multi-second ones — completely disjoint bucket ranges.
        for _ in 0..10 {
            a.analyze.record(Duration::from_micros(3));
        }
        for _ in 0..4 {
            b.analyze.record(Duration::from_secs(2));
        }
        b.record_question();
        b.record_cache_hit();
        a.absorb(&b);
        assert_eq!(a.analyze.calls(), 14, "tail buckets must survive");
        assert!(a.analyze.histogram().quantile_us(1.0) >= 2_000_000);
        assert_eq!(a.analyze.histogram().sum_us(), 30 + 8_000_000);
        assert_eq!(a.questions(), 1);
        assert_eq!(a.cache_hits(), 1);
        // `b` is untouched.
        assert_eq!(b.analyze.calls(), 4);
    }
}
