//! Concurrency tests for the batch engine: batch submission must be
//! indistinguishable from a sequential answer-then-feed loop over the
//! read path — same answers, same warehouse — for any subset and order
//! of questions, and the answer cache must invalidate when feedback
//! mutates the warehouse.

use dwqa_bench::{build_fixture, daily_questions, monthly_question, FixtureConfig};
use dwqa_common::{Date, Month};
use dwqa_core::IntegrationPipeline;
use dwqa_corpus::PageStyle;
use dwqa_engine::{QaEngine, QaSession, SubmitBatch};
use dwqa_warehouse::{AggFn, CubeQuery};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeMap;

fn small_fixture() -> IntegrationPipeline {
    build_fixture(FixtureConfig {
        styles: vec![PageStyle::Prose],
        distractors: 4,
        ..FixtureConfig::default()
    })
    .pipeline
}

/// The pool of questions the properties draw from: per-day and monthly
/// questions over three cities, plus duplicates in different spellings
/// to exercise the cache key normalization.
fn question_pool() -> Vec<String> {
    let mut pool = Vec::new();
    for city in ["Barcelona", "Madrid", "New York"] {
        pool.extend(
            daily_questions(city, 2004, Month::January)
                .into_iter()
                .take(4),
        );
        pool.push(monthly_question(city, 2004, Month::January));
    }
    pool.push("what is the weather like in january of 2004 in barcelona".to_owned());
    pool
}

/// A seeded permutation of `0..n` (Fisher–Yates).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// The warehouse's observable weather state: (city, date) → mean °C,
/// order-independent. City names are case-folded: the dedup key already
/// folds them, so "Barcelona" and "barcelona" are one point — but the
/// *display* member stored is whichever spelling fed first, which is the
/// one piece of state that legitimately depends on feed order.
fn weather_state(pipeline: &IntegrationPipeline) -> BTreeMap<(String, Date), i64> {
    let rs = CubeQuery::on("City Weather")
        .group_by("City", "City")
        .group_by("Date", "Date")
        .aggregate("temperature_c", AggFn::Avg)
        .run(&pipeline.warehouse)
        .unwrap();
    rs.rows
        .iter()
        .map(|row| {
            let city = dwqa_common::text::fold(row[0].as_text().unwrap());
            let date = row[1].as_date().unwrap();
            // Scaled-integer key so float representation can't differ.
            let c = (row[2].as_f64().unwrap() * 100.0).round() as i64;
            ((city, date), c)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `submit_batch(qs)` leaves the warehouse in the same state and
    /// returns the same answers as the sequential answer-then-feed loop
    /// over the read path, for any subset of the pool and any order.
    #[test]
    fn submit_batch_equals_sequential_answer_then_feed(
        subset in proptest::sample::subsequence(question_pool(), 1..=8),
        seed in 0u64..1_000_000,
    ) {
        let order = permutation(subset.len(), seed);
        let batch: Vec<String> = order.iter().map(|&i| subset[i].clone()).collect();

        // Concurrent path: 4 workers over the read path, serialized feed.
        let mut concurrent = small_fixture();
        let engine = QaEngine::new(&concurrent).with_workers(4);
        let report = concurrent.submit_batch_with(&engine, &batch);

        // Sequential reference path: one question at a time through the
        // read path, each answer set fed before the next question runs.
        let mut sequential = small_fixture();
        let read = sequential.read_path();
        let expected: Vec<Vec<dwqa_qa::Answer>> = batch
            .iter()
            .map(|q| {
                let answers = read.answer(q);
                sequential.apply_feedback(&answers);
                answers
            })
            .collect();

        prop_assert_eq!(&report.answers, &expected);
        prop_assert_eq!(weather_state(&concurrent), weather_state(&sequential));
        prop_assert_eq!(
            concurrent.warehouse.fact("City Weather").unwrap().len(),
            sequential.warehouse.fact("City Weather").unwrap().len()
        );
    }

    /// The warehouse state is permutation-invariant: feeding the same
    /// batch in two different orders converges to the same weather star.
    #[test]
    fn warehouse_state_is_permutation_invariant(
        seed in 0u64..1_000_000,
    ) {
        let pool = question_pool();
        let forward: Vec<String> = pool.clone();
        let shuffled: Vec<String> = permutation(pool.len(), seed)
            .into_iter()
            .map(|i| pool[i].clone())
            .collect();

        let mut a = small_fixture();
        a.submit_batch(&forward);
        let mut b = small_fixture();
        b.submit_batch(&shuffled);
        prop_assert_eq!(weather_state(&a), weather_state(&b));
    }
}

#[test]
fn batch_answers_are_input_ordered_and_worker_count_independent() {
    let pipeline = small_fixture();
    let questions = question_pool();
    let single = QaEngine::new(&pipeline)
        .with_workers(1)
        .with_cache_capacity(0);
    let pooled = QaEngine::new(&pipeline)
        .with_workers(4)
        .with_cache_capacity(0);
    let expected: Vec<_> = questions.iter().map(|q| single.answer(q)).collect();
    assert_eq!(single.answer_batch(&questions), expected);
    assert_eq!(pooled.answer_batch(&questions), expected);
}

#[test]
fn cache_serves_repeats_and_feedback_invalidates() {
    let mut pipeline = small_fixture();
    let engine = QaEngine::new(&pipeline);
    let q = monthly_question("Barcelona", 2004, Month::January);

    let first = engine.answer(&q);
    assert_eq!(engine.stats().cache_misses(), 1);
    assert_eq!(engine.stats().cache_hits(), 0);

    // Identical answers from the cache — including for a differently
    // spelled variant of the same question.
    assert_eq!(engine.answer(&q), first);
    assert_eq!(
        engine.answer("what is the WEATHER like in January of 2004 in Barcelona"),
        first
    );
    assert_eq!(engine.stats().cache_hits(), 2);

    // Feedback ETL mutates the warehouse: the revision moves and the
    // cached entry must not be served any more.
    let revision_before = engine.read_path().revision();
    pipeline.apply_feedback(&first);
    assert!(engine.read_path().revision() > revision_before);
    assert_eq!(engine.answer(&q), first); // recomputed, same pure answers
    assert_eq!(engine.stats().cache_misses(), 2);

    // A feed that only skips duplicates loads nothing, so it must NOT
    // invalidate: the freshly recomputed entry keeps serving hits.
    let revision_before = engine.read_path().revision();
    let report = pipeline.apply_feedback(&first);
    assert_eq!(report.loaded, 0);
    assert_eq!(engine.read_path().revision(), revision_before);
    assert_eq!(engine.answer(&q), first);
    assert_eq!(engine.stats().cache_misses(), 2); // still 2 — that was a hit

    // The stale entry is also purgeable eagerly.
    engine.answer(&q);
    let cached = engine.cache().len();
    assert!(cached > 0);
    assert_eq!(engine.cache().purge_stale(u64::MAX), cached);
    assert!(engine.cache().is_empty());
}

#[test]
fn submitting_through_one_engine_reuses_the_cache_within_a_batch() {
    let mut pipeline = small_fixture();
    let engine = QaEngine::new(&pipeline).with_workers(2);
    let q = monthly_question("Madrid", 2004, Month::January);
    // The same question four times: one miss, three hits, one answer set.
    let batch = vec![q.clone(), q.clone(), q.clone(), q];
    let report = pipeline.submit_batch_with(&engine, &batch);
    // Two workers may race to a benign double-miss on the same key, but
    // never more, and every question is accounted for.
    let misses = engine.stats().cache_misses();
    assert!((1..=2).contains(&misses), "misses: {misses}");
    assert_eq!(engine.stats().cache_hits() + misses, 4);
    assert!(report.answers.windows(2).all(|w| w[0] == w[1]));
    // Feeding the duplicates loaded each (city, date) point exactly once;
    // the repeats only skipped duplicates.
    assert!(report.feed.loaded > 0);
    assert!(report.feed.duplicates_skipped >= report.feed.loaded);
    assert_eq!(
        pipeline.warehouse.fact("City Weather").unwrap().len(),
        report.feed.loaded
    );
}

#[test]
fn session_records_history_and_renders_stats() {
    let pipeline = small_fixture();
    let mut session = QaSession::new(&pipeline);
    let q1 = monthly_question("Barcelona", 2004, Month::January);
    let answers = session.ask(&q1);
    assert!(!answers.is_empty());
    let batch = daily_questions("Madrid", 2004, Month::January)[..3].to_vec();
    session.ask_batch(&batch);
    assert_eq!(session.history().len(), 4);
    assert_eq!(session.stats().questions(), 4);
    let rendered = session.stats().render();
    assert!(rendered.contains("analyze"));
    assert!(rendered.contains("hit rate"));
}
