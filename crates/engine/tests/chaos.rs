//! Fault-injection (chaos) tests: the engine must degrade gracefully —
//! never hang, never lose a worker, never partially load the warehouse —
//! for *any* fault seed and rate.
//!
//! CI runs this suite with two fixed seeds plus one derived from the run
//! number via `DWQA_CHAOS_SEED` (printed below for reproducibility).

use dwqa_bench::{build_fixture, daily_questions, monthly_question, FixtureConfig};
use dwqa_common::Month;
use dwqa_core::{FeedFault, IntegrationPipeline};
use dwqa_corpus::PageStyle;
use dwqa_engine::{AnswerOutcome, QaEngine, SubmitBatch};
use dwqa_faults::{
    CorpusSource, DocumentSource, FaultInjector, FaultPlan, ResilientSource, RetryPolicy,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn small_fixture() -> IntegrationPipeline {
    build_fixture(FixtureConfig {
        styles: vec![PageStyle::Prose],
        distractors: 4,
        ..FixtureConfig::default()
    })
    .pipeline
}

/// The chaos seed: fixed by default, overridden by `DWQA_CHAOS_SEED` in
/// CI so every run exercises a fresh fault sequence reproducibly.
fn chaos_seed() -> u64 {
    match std::env::var("DWQA_CHAOS_SEED") {
        Ok(v) => v.parse().unwrap_or(0xC4A05),
        Err(_) => 0xC4A05,
    }
}

fn question_pool() -> Vec<String> {
    let mut pool = Vec::new();
    for city in ["Barcelona", "Madrid", "New York"] {
        pool.extend(
            daily_questions(city, 2004, Month::January)
                .into_iter()
                .take(3),
        );
        pool.push(monthly_question(city, 2004, Month::January));
    }
    pool
}

/// A resilient chaos source over the pipeline's own corpus.
fn chaos_source(pipeline: &IntegrationPipeline, plan: FaultPlan) -> Arc<dyn DocumentSource> {
    let store = pipeline.qa.store().expect("pipeline indexes a corpus");
    Arc::new(ResilientSource::new(
        FaultInjector::new(CorpusSource::new(store), plan),
        RetryPolicy::default(),
    ))
}

/// A fast retry policy so failure-heavy tests don't sleep through real
/// backoff schedules.
fn fast_policy() -> RetryPolicy {
    RetryPolicy::builder()
        .base_backoff(Duration::from_micros(50))
        .max_backoff(Duration::from_millis(1))
        .breaker_cooldown(Duration::from_millis(5))
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For any fault seed and rate, `submit_batch` under injection
    /// returns exactly one outcome per question, in input order: the
    /// answers of question `i` are always a (re-validated) subset of the
    /// fault-free answers of the same question — faults can drop
    /// answers, never corrupt or reorder them — and the worker pool
    /// survives.
    #[test]
    fn one_outcome_per_question_in_input_order(
        seed in 0u64..1_000_000,
        rate in 0.0f64..0.8,
    ) {
        let questions = question_pool();

        // Fault-free reference answers, question by question.
        let clean_pipeline = small_fixture();
        let clean_engine = QaEngine::new(&clean_pipeline).with_cache_capacity(0);
        let clean: Vec<Vec<dwqa_qa::Answer>> =
            questions.iter().map(|q| clean_engine.answer(q)).collect();

        let mut pipeline = small_fixture();
        let source = {
            let store = pipeline.qa.store().expect("pipeline indexes a corpus");
            Arc::new(ResilientSource::new(
                FaultInjector::new(CorpusSource::new(store), FaultPlan::chaos(seed, rate)),
                fast_policy(),
            )) as Arc<dyn DocumentSource>
        };
        let engine = QaEngine::new(&pipeline)
            .with_workers(4)
            .with_source(source)
            .with_deadline(Duration::from_secs(10));
        let report = pipeline.submit_batch_with(&engine, &questions);

        prop_assert_eq!(report.outcomes.len(), questions.len());
        prop_assert_eq!(report.answers.len(), questions.len());
        for (i, answers) in report.answers.iter().enumerate() {
            for a in answers {
                prop_assert!(
                    clean[i].contains(a),
                    "question {i}: answer {a:?} not among its fault-free answers"
                );
            }
        }
        prop_assert_eq!(engine.stats().worker_deaths(), 0);
        prop_assert_eq!(engine.stats().outcomes_panicked(), 0);
    }

    /// A rolled-back feed leaves the warehouse fact counts and the cache
    /// revision identical to the pre-feed snapshot, for any fault seed.
    #[test]
    fn rolled_back_feed_restores_the_snapshot(seed in 0u64..1_000_000) {
        let mut pipeline = small_fixture();
        let engine = QaEngine::new(&pipeline).with_workers(2);
        let questions = question_pool();

        pipeline.set_feed_fault(Some(FeedFault { seed, rate: 1.0 }));
        let snapshot_before = pipeline.warehouse.snapshot();
        let facts_before = pipeline
            .warehouse
            .fact("City Weather")
            .expect("schema has the weather star")
            .len();
        let revision_before = pipeline.revision();

        let report = pipeline.submit_batch_with(&engine, &questions);
        prop_assert!(report.rolled_back);
        prop_assert!(report.feed_error.is_some());
        prop_assert_eq!(report.feed.loaded, 0, "a rolled-back feed reports no loads");
        prop_assert_eq!(
            pipeline.warehouse.fact("City Weather").expect("weather star").len(),
            facts_before
        );
        prop_assert_eq!(pipeline.revision(), revision_before, "no spurious cache bump");
        prop_assert_eq!(pipeline.warehouse.snapshot(), snapshot_before);
        prop_assert_eq!(engine.stats().rollbacks(), 1);

        // The same batch commits once the fault lifts: nothing was
        // corrupted by the failed attempt.
        pipeline.set_feed_fault(None);
        let report = pipeline.submit_batch_with(&engine, &questions);
        prop_assert!(!report.rolled_back);
        prop_assert!(report.feed.loaded > 0);
        prop_assert_eq!(pipeline.revision(), revision_before + 1);
    }
}

#[test]
fn permanent_failure_yields_source_unavailable_within_deadline() {
    let seed = chaos_seed();
    println!("chaos seed: {seed}");
    let mut pipeline = small_fixture();
    let deadline = Duration::from_secs(5);
    let source = chaos_source(&pipeline, FaultPlan::new(seed).with_not_found(1.0));
    let engine = QaEngine::new(&pipeline)
        .with_workers(4)
        .with_source(source)
        .with_deadline(deadline);
    let questions = question_pool();
    let start = Instant::now();
    let report = pipeline.submit_batch_with(&engine, &questions);
    let wall = start.elapsed();
    for (i, outcome) in report.outcomes.iter().enumerate() {
        assert_eq!(
            *outcome,
            AnswerOutcome::SourceUnavailable,
            "question {i}: {:?}",
            report.answers[i]
        );
        assert!(report.answers[i].is_empty());
    }
    // No hang: 404s are non-retryable, so the whole batch resolves well
    // inside one per-question deadline per worker.
    assert!(
        wall < deadline * (questions.len() as u32),
        "batch took {wall:?}"
    );
    assert_eq!(engine.stats().worker_deaths(), 0);
    assert!(!report.rolled_back);
    assert_eq!(report.feed.loaded, 0, "nothing to load from empty answers");
}

#[test]
fn injected_panics_are_isolated_to_their_question() {
    let seed = chaos_seed();
    println!("chaos seed: {seed}");
    let pipeline = small_fixture();
    let source = chaos_source(&pipeline, FaultPlan::new(seed).with_panic(1.0));
    let engine = QaEngine::new(&pipeline).with_workers(4).with_source(source);
    let questions = question_pool();
    let reports = engine.answer_batch_checked(&questions);
    assert_eq!(reports.len(), questions.len());
    // Every question that reached acquisition hit the poisoned fetch;
    // each failure stayed inside its own question.
    let panicked = reports
        .iter()
        .filter(|r| r.outcome == AnswerOutcome::Panicked)
        .count();
    assert!(panicked > 0, "outcomes: {:?}", engine.stats().render());
    for r in &reports {
        if r.outcome == AnswerOutcome::Panicked {
            assert!(r.answers.is_empty());
            assert!(
                r.detail.as_deref().unwrap_or("").contains("injected panic"),
                "{:?}",
                r.detail
            );
        }
    }
    // The pool survived: every slot was filled by a live worker.
    assert_eq!(engine.stats().worker_deaths(), 0);
    assert_eq!(engine.stats().outcomes_panicked(), panicked as u64);
}

#[test]
fn zero_deadline_times_out_instead_of_hanging() {
    let pipeline = small_fixture();
    let engine = QaEngine::new(&pipeline)
        .with_workers(2)
        .with_deadline(Duration::ZERO);
    let questions = question_pool()[..4].to_vec();
    let reports = engine.answer_batch_checked(&questions);
    for r in &reports {
        assert_eq!(r.outcome, AnswerOutcome::TimedOut);
        assert!(r.answers.is_empty());
    }
    assert_eq!(engine.stats().outcomes_timed_out(), 4);
}

#[test]
fn corrupted_bodies_degrade_but_never_alter_answers() {
    let seed = chaos_seed();
    println!("chaos seed: {seed}");
    let pipeline = small_fixture();
    let clean_engine = QaEngine::new(&pipeline).with_cache_capacity(0);
    let q = monthly_question("Barcelona", 2004, Month::January);
    let clean = clean_engine.answer(&q);
    assert!(!clean.is_empty());

    // Truncate every body: extraction still runs, but any answer whose
    // sentence fell off the truncated tail is dropped, never mangled.
    let source = chaos_source(&pipeline, FaultPlan::new(seed).with_truncate(1.0));
    let engine = QaEngine::new(&pipeline).with_source(source);
    let report = engine.answer_checked(&q);
    assert_eq!(report.outcome, AnswerOutcome::Degraded);
    for a in &report.answers {
        assert!(clean.contains(a), "degraded run invented {a:?}");
    }

    // Degraded results are not cached: the engine reports a miss again.
    let misses_before = engine.stats().cache_misses();
    let again = engine.answer_checked(&q);
    assert_eq!(again.outcome, AnswerOutcome::Degraded);
    assert_eq!(engine.stats().cache_misses(), misses_before + 1);
}

#[test]
fn fault_free_source_preserves_clean_behaviour() {
    let mut pipeline = small_fixture();
    let questions = question_pool();
    let clean_pipeline = small_fixture();
    let clean_engine = QaEngine::new(&clean_pipeline).with_cache_capacity(0);
    let clean: Vec<Vec<dwqa_qa::Answer>> =
        questions.iter().map(|q| clean_engine.answer(q)).collect();

    // A perfect source behind the full resilience stack changes nothing.
    let source = chaos_source(&pipeline, FaultPlan::new(1));
    let engine = QaEngine::new(&pipeline)
        .with_workers(4)
        .with_source(source)
        .with_deadline(Duration::from_secs(10));
    let report = pipeline.submit_batch_with(&engine, &questions);
    assert_eq!(report.answers, clean);
    assert!(report.outcomes.iter().all(|o| o.is_ok()));
    assert!(!report.rolled_back);
    assert!(report.feed.loaded > 0);
    assert_eq!(engine.stats().source_retries(), 0);
    assert_eq!(engine.stats().breaker_trips(), 0);
}
