//! Golden-trace snapshots: the span-tree *shape* (names, nesting,
//! field names, event names — never timings) of three canonical
//! questions is pinned against checked-in snapshots under
//! `tests/golden/`. Regenerate with `DWQA_BLESS=1 cargo test -p
//! dwqa-engine --test golden_trace`.

use dwqa_bench::{build_fixture, FixtureConfig};
use dwqa_corpus::PageStyle;
use dwqa_engine::QaEngine;
use dwqa_faults::{CorpusSource, FaultInjector, FaultPlan, ResilientSource, RetryPolicy};
use dwqa_obs::Trace;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const QUESTION: &str = "What is the temperature on January 15, 2004 in Barcelona?";

/// Renders the structural shape of a trace: one line per span,
/// depth-indented, with sorted field names and in-order event names.
/// Timings, values and labels are omitted — they vary run to run.
fn shape(trace: &Trace) -> String {
    fn walk(trace: &Trace, idx: usize, depth: usize, out: &mut String) {
        let span = &trace.spans[idx];
        let mut fields: Vec<&str> = span.fields.iter().map(|(k, _)| *k).collect();
        fields.sort_unstable();
        fields.dedup();
        let events: Vec<&str> = span.events.iter().map(|e| e.name).collect();
        out.push_str(&format!(
            "{}{} fields=[{}] events=[{}]\n",
            "  ".repeat(depth),
            span.name,
            fields.join(","),
            events.join(","),
        ));
        for (i, s) in trace.spans.iter().enumerate() {
            if s.parent == Some(idx) {
                walk(trace, i, depth + 1, out);
            }
        }
    }
    let mut out = String::new();
    if !trace.spans.is_empty() {
        walk(trace, 0, 0, &mut out);
    }
    out
}

fn snap_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.snap"))
}

fn check(name: &str, trace: &Trace) {
    let got = shape(trace);
    let path = snap_path(name);
    if std::env::var("DWQA_BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(path.parent().expect("snap dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, &got).expect("write blessed snapshot");
        eprintln!("blessed {name}: {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); run with DWQA_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "span-tree shape of {name:?} drifted from {} — \
         intentional? re-bless with DWQA_BLESS=1",
        path.display()
    );
}

#[test]
fn golden_trace_shapes() {
    let fx = build_fixture(FixtureConfig {
        styles: vec![PageStyle::Prose],
        ..FixtureConfig::default()
    });

    // 1. A cache hit: second ask of the same question — the trace is a
    //    bare root stamped `cache=hit`, proving hits skip every stage.
    let engine = QaEngine::new(&fx.pipeline)
        .with_workers(1)
        .with_tracing(true);
    let first = engine.answer_checked(QUESTION);
    assert!(first.outcome.is_ok(), "fixture answers the question");
    let _ = engine.answer_checked(QUESTION);
    let cached = engine.flight_recorder().last().expect("trace recorded");
    assert_eq!(
        cached.root_field("cache").and_then(|v| v.as_str()),
        Some("hit")
    );
    check("cached", &cached);

    // 2. Degraded by a fault: every fetched body is garbled, so
    //    acquisition succeeds but re-validation drops the answers. The
    //    trace shows the full pipeline plus the fault-layer spans.
    let store = fx.pipeline.qa.store().expect("fixture indexes a corpus");
    let source = Arc::new(ResilientSource::new(
        FaultInjector::new(CorpusSource::new(store), FaultPlan::new(7).with_garble(1.0)),
        RetryPolicy::default(),
    ));
    let engine = QaEngine::new(&fx.pipeline)
        .with_workers(1)
        .with_tracing(true)
        .with_source(source);
    let report = engine.answer_checked(QUESTION);
    assert_eq!(report.outcome, dwqa_engine::AnswerOutcome::Degraded);
    let degraded = engine.flight_recorder().last().expect("trace recorded");
    assert_eq!(
        degraded.root_field("outcome").and_then(|v| v.as_str()),
        Some("degraded")
    );
    check("degraded", &degraded);

    // 3. Timed out: a zero deadline expires right after analysis.
    let engine = QaEngine::new(&fx.pipeline)
        .with_workers(1)
        .with_tracing(true)
        .with_deadline(Duration::ZERO);
    let report = engine.answer_checked(QUESTION);
    assert_eq!(report.outcome, dwqa_engine::AnswerOutcome::TimedOut);
    let timed_out = engine.flight_recorder().last().expect("trace recorded");
    check("timed_out", &timed_out);
}
