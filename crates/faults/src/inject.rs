//! Deterministic, seed-driven fault injection over any [`DocumentSource`].

use crate::source::{DocumentSource, Fetched, Integrity, SourceError, SourceHealth};
use crate::{hash_str, mix, unit_float};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Fault rates and knobs for a [`FaultInjector`]. All rates are
/// probabilities in `[0, 1]`, evaluated deterministically from the seed,
/// the URL, and the per-URL attempt number — so a retry of the same URL
/// rolls fresh transient/corruption faults (as a real network would),
/// while `not_found` is rolled from the URL alone and is therefore
/// *permanent*: no number of retries ever makes a 404 succeed.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed all decisions derive from.
    pub seed: u64,
    /// Transient fetch failure rate (connection reset / 5xx).
    pub transient: f64,
    /// Fraction of URLs that permanently 404.
    pub not_found: f64,
    /// Latency-spike rate (the fetch sleeps for [`FaultPlan::spike`]).
    pub latency_spike: f64,
    /// Duration of one injected latency spike.
    pub spike: Duration,
    /// Rate of truncated bodies (tail lost in transit).
    pub truncate: f64,
    /// Rate of garbled bodies (a middle span corrupted).
    pub garble: f64,
    /// Rate of duplicated bodies (content delivered twice).
    pub duplicate: f64,
    /// Rate of injected panics — a poisoned response that crashes a naive
    /// consumer; exercises the engine's panic isolation.
    pub panic: f64,
}

impl FaultPlan {
    /// A fault-free plan with the given seed (every rate zero).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            transient: 0.0,
            not_found: 0.0,
            latency_spike: 0.0,
            spike: Duration::from_millis(1),
            truncate: 0.0,
            garble: 0.0,
            duplicate: 0.0,
            panic: 0.0,
        }
    }

    /// The standard chaos mix at a headline `rate`: transient errors at
    /// `rate`, truncation and garbling at `rate/4` each, duplication at
    /// `rate/8`, latency spikes at `rate/4`. Permanent 404s and panics
    /// stay at zero — enable them explicitly.
    pub fn chaos(seed: u64, rate: f64) -> FaultPlan {
        let rate = rate.clamp(0.0, 1.0);
        FaultPlan {
            transient: rate,
            truncate: rate / 4.0,
            garble: rate / 4.0,
            duplicate: rate / 8.0,
            latency_spike: rate / 4.0,
            ..FaultPlan::new(seed)
        }
    }

    /// Sets the transient-error rate.
    pub fn with_transient(mut self, rate: f64) -> FaultPlan {
        self.transient = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the permanent-404 rate.
    pub fn with_not_found(mut self, rate: f64) -> FaultPlan {
        self.not_found = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the latency-spike rate and duration.
    pub fn with_latency_spikes(mut self, rate: f64, spike: Duration) -> FaultPlan {
        self.latency_spike = rate.clamp(0.0, 1.0);
        self.spike = spike;
        self
    }

    /// Sets the truncation rate.
    pub fn with_truncate(mut self, rate: f64) -> FaultPlan {
        self.truncate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the garbling rate.
    pub fn with_garble(mut self, rate: f64) -> FaultPlan {
        self.garble = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the duplication rate.
    pub fn with_duplicate(mut self, rate: f64) -> FaultPlan {
        self.duplicate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the injected-panic rate.
    pub fn with_panic(mut self, rate: f64) -> FaultPlan {
        self.panic = rate.clamp(0.0, 1.0);
        self
    }
}

/// A deterministic chaos wrapper: injects the faults of a [`FaultPlan`]
/// into every fetch of the wrapped source. Identical seeds produce
/// identical fault sequences, so every chaos experiment is replayable.
pub struct FaultInjector<S> {
    inner: S,
    plan: FaultPlan,
    attempts: Mutex<HashMap<String, u64>>,
    injected: AtomicU64,
}

impl<S: DocumentSource> FaultInjector<S> {
    /// Wraps a source with a fault plan.
    pub fn new(inner: S, plan: FaultPlan) -> FaultInjector<S> {
        FaultInjector {
            inner,
            plan,
            attempts: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// A uniform roll in `[0,1)` for (url, attempt, salt).
    fn roll(&self, url: &str, attempt: u64, salt: u64) -> f64 {
        unit_float(mix(self
            .plan
            .seed
            .wrapping_add(hash_str(url))
            .wrapping_add(attempt.wrapping_mul(0x9E37_79B9))
            .wrapping_add(salt.wrapping_mul(0x85EB_CA6B))))
    }

    fn inject(&self, kind: &'static str) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        dwqa_obs::event!("fault", kind);
    }
}

/// Truncates `text` to its first half (on a char boundary).
fn truncate_body(text: &str) -> String {
    let cut = text.len() / 2;
    let mut end = cut;
    while end > 0 && !text.is_char_boundary(end) {
        end -= 1;
    }
    text[..end].to_owned()
}

/// Corrupts the middle third of `text`: alphanumeric characters in the
/// span are replaced so any sentence crossing it no longer matches the
/// canonical copy.
fn garble_body(text: &str) -> String {
    let n = text.chars().count();
    let (from, to) = (n / 3, 2 * n / 3);
    text.chars()
        .enumerate()
        .map(|(i, c)| {
            if i >= from && i < to && c.is_alphanumeric() {
                '¿'
            } else {
                c
            }
        })
        .collect()
}

impl<S: DocumentSource> DocumentSource for FaultInjector<S> {
    fn fetch(&self, url: &str) -> Result<Fetched, SourceError> {
        self.fetch_by(url, None)
    }

    fn fetch_by(&self, url: &str, deadline: Option<Instant>) -> Result<Fetched, SourceError> {
        // Permanent 404: decided from the URL alone, attempt-independent.
        if unit_float(mix(self.plan.seed ^ hash_str(url) ^ 0x404)) < self.plan.not_found {
            self.inject("not_found");
            return Err(SourceError::NotFound(url.to_owned()));
        }
        let attempt = {
            let mut attempts = self.attempts.lock();
            let counter = attempts.entry(url.to_owned()).or_insert(0);
            *counter += 1;
            *counter
        };
        if self.roll(url, attempt, 1) < self.plan.panic {
            self.inject("panic");
            panic!("injected panic while fetching {url} (attempt {attempt})");
        }
        if self.roll(url, attempt, 2) < self.plan.latency_spike {
            self.inject("latency_spike");
            std::thread::sleep(self.plan.spike);
        }
        if self.roll(url, attempt, 3) < self.plan.transient {
            self.inject("transient");
            return Err(SourceError::Transient(format!(
                "connection reset fetching {url} (attempt {attempt})"
            )));
        }
        let mut fetched = self.inner.fetch_by(url, deadline)?;
        if self.roll(url, attempt, 4) < self.plan.truncate {
            self.inject("truncate");
            fetched.doc.text = truncate_body(&fetched.doc.text);
            fetched.integrity = Integrity::Truncated;
        } else if self.roll(url, attempt, 5) < self.plan.garble {
            self.inject("garble");
            fetched.doc.text = garble_body(&fetched.doc.text);
            fetched.integrity = Integrity::Garbled;
        } else if self.roll(url, attempt, 6) < self.plan.duplicate {
            self.inject("duplicate");
            fetched.doc.text = format!("{0}\n{0}", fetched.doc.text);
            fetched.integrity = Integrity::Duplicated;
        }
        Ok(fetched)
    }

    fn urls(&self) -> Vec<String> {
        self.inner.urls()
    }

    fn health(&self) -> SourceHealth {
        let mut h = self.inner.health();
        h.faults_injected += self.injected();
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::CorpusSource;
    use dwqa_ir::{DocFormat, Document, DocumentStore};

    fn store() -> DocumentStore {
        let mut s = DocumentStore::new();
        for i in 0..20 {
            s.add(Document::new(
                &format!("http://w/{i}"),
                DocFormat::Plain,
                "",
                "The temperature in Barcelona was 8º C. Clear skies all day long today.",
            ));
        }
        s
    }

    fn outcomes(seed: u64, plan: FaultPlan) -> Vec<String> {
        let inj = FaultInjector::new(CorpusSource::new(&store()), FaultPlan { seed, ..plan });
        (0..20)
            .map(|i| match inj.fetch(&format!("http://w/{i}")) {
                Ok(f) => format!("{:?}:{}", f.integrity, f.doc.text.len()),
                Err(e) => format!("{e}"),
            })
            .collect()
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let plan = FaultPlan::chaos(0, 0.5);
        assert_eq!(outcomes(7, plan.clone()), outcomes(7, plan.clone()));
        assert_ne!(outcomes(7, plan.clone()), outcomes(8, plan));
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let inj = FaultInjector::new(CorpusSource::new(&store()), FaultPlan::new(1));
        for i in 0..20 {
            let f = inj.fetch(&format!("http://w/{i}")).unwrap();
            assert!(f.integrity.is_intact());
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn transient_rate_one_fails_every_fetch_but_attempts_differ() {
        let inj = FaultInjector::new(
            CorpusSource::new(&store()),
            FaultPlan::new(1).with_transient(1.0),
        );
        let a = inj.fetch("http://w/0").unwrap_err();
        let b = inj.fetch("http://w/0").unwrap_err();
        assert!(a.is_retryable() && b.is_retryable());
        assert_ne!(a, b, "attempt number is part of the error");
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn not_found_is_permanent_across_retries() {
        let inj = FaultInjector::new(
            CorpusSource::new(&store()),
            FaultPlan::new(1).with_not_found(1.0),
        );
        for _ in 0..3 {
            assert!(matches!(
                inj.fetch("http://w/0"),
                Err(SourceError::NotFound(_))
            ));
        }
    }

    #[test]
    fn truncation_halves_and_garbling_corrupts() {
        let text = "abcdefghij klmnopqrst uvwxyz0123";
        let cut = truncate_body(text);
        assert!(cut.len() <= text.len() / 2);
        assert!(text.starts_with(&cut));
        let garbled = garble_body(text);
        assert_eq!(garbled.chars().count(), text.chars().count());
        assert_ne!(garbled, text);
        assert!(garbled.contains('¿'));
        // The first third survives.
        assert!(garbled.starts_with("abcdefghij"));
    }

    #[test]
    fn corruption_sets_the_integrity_verdict() {
        let inj = FaultInjector::new(
            CorpusSource::new(&store()),
            FaultPlan::new(1).with_truncate(1.0),
        );
        let f = inj.fetch("http://w/0").unwrap();
        assert_eq!(f.integrity, Integrity::Truncated);
        let inj = FaultInjector::new(
            CorpusSource::new(&store()),
            FaultPlan::new(1).with_duplicate(1.0),
        );
        let f = inj.fetch("http://w/0").unwrap();
        assert_eq!(f.integrity, Integrity::Duplicated);
        assert!(f.doc.text.len() > 100);
    }

    #[test]
    fn injected_panics_panic() {
        let inj = FaultInjector::new(
            CorpusSource::new(&store()),
            FaultPlan::new(1).with_panic(1.0),
        );
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = inj.fetch("http://w/0");
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected panic"), "{msg}");
    }

    #[test]
    fn health_reports_injected_faults() {
        let inj = FaultInjector::new(
            CorpusSource::new(&store()),
            FaultPlan::new(1).with_transient(1.0),
        );
        let _ = inj.fetch("http://w/0");
        assert_eq!(inj.health().faults_injected, 1);
        assert_eq!(inj.urls().len(), 20);
        assert!(inj.plan().transient > 0.99);
    }
}
