//! `dwqa-faults` — the unreliable-source abstraction and the resilience
//! layer around it.
//!
//! The paper's Step 5 feeds the warehouse from *open* sources — the Web
//! and intranet reports — which in production are partially available,
//! slow, and occasionally corrupt. This crate models that reality over
//! the reproduction's in-memory corpus:
//!
//! * [`DocumentSource`] — the acquisition trait: fetch a document by URL,
//!   with an optional deadline. [`CorpusSource`] is the perfect oracle
//!   over a [`dwqa_ir::DocumentStore`].
//! * [`FaultInjector`] — a deterministic, seed-driven wrapper producing
//!   transient errors, latency spikes, truncated/garbled/duplicated
//!   bodies, permanent 404s, and (optionally) panics, at configurable
//!   [`FaultPlan`] rates. The same seed always produces the same fault
//!   sequence, so chaos runs are reproducible.
//! * [`ResilientSource`] — bounded retries with exponential backoff and
//!   seeded jitter, plus a per-URL circuit breaker (open after N
//!   consecutive failures, half-open probe after a cooldown). All knobs
//!   live on the [`RetryPolicy`] builder.
//! * [`LinkFault`] — the same seeded-chaos discipline for the
//!   *replication link*: drops, delays, torn frames, duplicated frames
//!   and half-open connections at [`LinkPlan`] rates, so the WAL
//!   shipping protocol can prove it survives an unreliable network.
//!
//! ```
//! use dwqa_faults::{CorpusSource, DocumentSource, FaultInjector, FaultPlan,
//!                   ResilientSource, RetryPolicy};
//! use dwqa_ir::{DocFormat, Document, DocumentStore};
//!
//! let mut store = DocumentStore::new();
//! store.add(Document::new("http://w/1", DocFormat::Plain, "", "Temperature 8º C"));
//! let flaky = FaultInjector::new(CorpusSource::new(&store), FaultPlan::chaos(42, 0.2));
//! let source = ResilientSource::new(flaky, RetryPolicy::default());
//! let fetched = source.fetch("http://w/1").unwrap();
//! assert!(fetched.doc.text.contains("8º C") || !fetched.integrity.is_intact());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod inject;
pub mod link;
pub mod retry;
pub mod source;

pub use inject::{FaultInjector, FaultPlan};
pub use link::{LinkAction, LinkDecision, LinkFault, LinkPlan};
pub use retry::{BreakerState, ResilientSource, RetryPolicy, RetryPolicyBuilder};
pub use source::{CorpusSource, DocumentSource, Fetched, Integrity, SourceError, SourceHealth};

/// SplitMix64 — the workspace's standard deterministic hash/stream mixer
/// (also used by the vendored `rand`). All fault and jitter decisions
/// derive from it so runs are reproducible from their seeds alone.
pub(crate) fn mix(mut state: u64) -> u64 {
    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic hash of a string (FNV-1a), for keying fault decisions
/// off URLs without depending on `std`'s randomized hasher.
pub(crate) fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Maps a 64-bit hash to a uniform float in `[0, 1)`.
pub(crate) fn unit_float(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix(42), mix(42));
        assert_ne!(mix(42), mix(43));
    }

    #[test]
    fn unit_float_is_in_range() {
        for i in 0..1000 {
            let f = unit_float(mix(i));
            assert!((0.0..1.0).contains(&f), "{f}");
        }
    }

    #[test]
    fn hash_str_distinguishes_urls() {
        assert_ne!(hash_str("http://a"), hash_str("http://b"));
        assert_eq!(hash_str("http://a"), hash_str("http://a"));
    }
}
