//! Seeded chaos for the replication link.
//!
//! Where [`crate::FaultInjector`] abuses the *acquisition* path and
//! `dwqa-store`'s `TornWriter` abuses the *disk*, [`LinkFault`] abuses
//! the TCP link a primary ships WAL frames over: frames are dropped,
//! delayed, torn mid-frame, duplicated, or the connection goes
//! half-open (silent, then dead). Every decision derives from a seed
//! and a monotonically increasing event counter, so a chaos run
//! replays exactly — but, unlike the disk layer, *retries of the same
//! frame get fresh rolls*: a dropped frame is not doomed forever, and
//! a follower that keeps resubscribing eventually drains the backlog.
//!
//! The replication protocol must survive all of this via offset
//! negotiation (resubscribe from the last applied sequence) and
//! dedup by frame sequence number; `exp_failover` (E18) proves it.

use crate::{mix, unit_float};
use std::time::Duration;

const SALT_DROP: u64 = 0x4452; // "DR"
const SALT_TEAR: u64 = 0x5452; // "TR"
const SALT_DUP: u64 = 0x4450; // "DP"
const SALT_HALF: u64 = 0x484F; // "HO"
const SALT_DELAY: u64 = 0x444C; // "DL"
const SALT_POINT: u64 = 0x5054; // "PT"

/// Per-event fault rates for a replication link. All rates are
/// clamped to `[0, 1]`; a zero plan (from [`LinkPlan::new`]) delivers
/// everything untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkPlan {
    /// Seed every decision derives from.
    pub seed: u64,
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability a frame is torn: a proper prefix is written, then
    /// the connection is closed.
    pub tear: f64,
    /// Probability a frame is written twice back-to-back.
    pub duplicate: f64,
    /// Probability the connection goes half-open: the sender falls
    /// silent (no frames, no heartbeats) before the socket dies.
    pub half_open: f64,
    /// Probability a frame is delayed before being written.
    pub delay: f64,
    /// Upper bound on an injected delay.
    pub max_delay: Duration,
}

impl LinkPlan {
    /// A plan that never faults: every frame is delivered promptly.
    pub fn new(seed: u64) -> LinkPlan {
        LinkPlan {
            seed,
            drop: 0.0,
            tear: 0.0,
            duplicate: 0.0,
            half_open: 0.0,
            delay: 0.0,
            max_delay: Duration::from_millis(5),
        }
    }

    /// A balanced chaos mix at overall `rate`: 30% drops, 20% tears,
    /// 15% duplicates, 10% half-open stalls, 25% delays.
    pub fn chaos(seed: u64, rate: f64) -> LinkPlan {
        let rate = rate.clamp(0.0, 1.0);
        LinkPlan {
            seed,
            drop: rate * 0.30,
            tear: rate * 0.20,
            duplicate: rate * 0.15,
            half_open: rate * 0.10,
            delay: rate * 0.25,
            max_delay: Duration::from_millis(5),
        }
    }

    /// Sets the drop rate (clamped to `[0, 1]`).
    pub fn with_drop(mut self, rate: f64) -> LinkPlan {
        self.drop = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the tear rate (clamped to `[0, 1]`).
    pub fn with_tear(mut self, rate: f64) -> LinkPlan {
        self.tear = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the duplicate rate (clamped to `[0, 1]`).
    pub fn with_duplicate(mut self, rate: f64) -> LinkPlan {
        self.duplicate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the half-open rate (clamped to `[0, 1]`).
    pub fn with_half_open(mut self, rate: f64) -> LinkPlan {
        self.half_open = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the delay rate (clamped to `[0, 1]`).
    pub fn with_delay(mut self, rate: f64) -> LinkPlan {
        self.delay = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the upper bound on injected delays.
    pub fn with_max_delay(mut self, max: Duration) -> LinkPlan {
        self.max_delay = max;
        self
    }

    fn unit(&self, event: u64, salt: u64) -> f64 {
        unit_float(mix(
            self.seed ^ mix(event.wrapping_mul(0x9E37).wrapping_add(salt))
        ))
    }

    fn point(&self, event: u64, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        mix(self.seed ^ mix(event.wrapping_add(SALT_POINT))) % bound
    }
}

/// What happens to the frame itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkAction {
    /// The frame is written whole.
    Deliver,
    /// The frame never leaves the sender.
    Drop,
    /// Only the first `n` bytes are written, then the connection is
    /// closed — the receiver sees a torn frame at its stream offset.
    Tear(usize),
    /// The sender falls silent without writing, then the connection
    /// dies: the receiver must detect the stall by heartbeat timeout.
    HalfOpen,
}

/// One link-chaos decision: the action, whether to write the frame a
/// second time, and an optional pre-write delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDecision {
    /// What happens to the frame.
    pub action: LinkAction,
    /// Write the frame twice (only meaningful with
    /// [`LinkAction::Deliver`]).
    pub duplicate: bool,
    /// Sleep this long before writing.
    pub delay: Option<Duration>,
}

impl LinkDecision {
    /// A clean decision: deliver once, promptly.
    pub fn deliver() -> LinkDecision {
        LinkDecision {
            action: LinkAction::Deliver,
            duplicate: false,
            delay: None,
        }
    }
}

/// The stateful chaos layer a replication sender threads every frame
/// through. The event counter advances on every call, so the decision
/// stream is deterministic per `(seed, call sequence)` while retries
/// of the *same* frame still get fresh rolls.
#[derive(Debug, Clone)]
pub struct LinkFault {
    plan: LinkPlan,
    events: u64,
}

impl LinkFault {
    /// A fault layer over `plan`, starting at event zero.
    pub fn new(plan: LinkPlan) -> LinkFault {
        LinkFault { plan, events: 0 }
    }

    /// The plan this layer rolls against.
    pub fn plan(&self) -> &LinkPlan {
        &self.plan
    }

    /// How many decisions have been made so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Decides the fate of the next frame of `frame_len` bytes.
    /// Exactly one of drop / tear / half-open fires per event (first
    /// match wins); duplication and delay are rolled independently and
    /// only apply to delivered frames.
    pub fn decide(&mut self, frame_len: usize) -> LinkDecision {
        let event = self.events;
        self.events += 1;
        let plan = &self.plan;
        if plan.unit(event, SALT_DROP) < plan.drop {
            return LinkDecision {
                action: LinkAction::Drop,
                duplicate: false,
                delay: None,
            };
        }
        if frame_len > 1 && plan.unit(event, SALT_TEAR) < plan.tear {
            let keep = 1 + plan.point(event, frame_len as u64 - 1) as usize;
            return LinkDecision {
                action: LinkAction::Tear(keep),
                duplicate: false,
                delay: None,
            };
        }
        if plan.unit(event, SALT_HALF) < plan.half_open {
            return LinkDecision {
                action: LinkAction::HalfOpen,
                duplicate: false,
                delay: None,
            };
        }
        let duplicate = plan.unit(event, SALT_DUP) < plan.duplicate;
        let delay = if plan.unit(event, SALT_DELAY) < plan.delay {
            let nanos = plan.max_delay.as_nanos() as u64;
            Some(Duration::from_nanos(plan.point(event, nanos.max(1))))
        } else {
            None
        };
        LinkDecision {
            action: LinkAction::Deliver,
            duplicate,
            delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_always_delivers() {
        let mut link = LinkFault::new(LinkPlan::new(7));
        for _ in 0..500 {
            assert_eq!(link.decide(64), LinkDecision::deliver());
        }
        assert_eq!(link.events(), 500);
    }

    #[test]
    fn decisions_replay_from_the_seed() {
        let mut a = LinkFault::new(LinkPlan::chaos(42, 0.5));
        let mut b = LinkFault::new(LinkPlan::chaos(42, 0.5));
        for _ in 0..200 {
            assert_eq!(a.decide(128), b.decide(128));
        }
    }

    #[test]
    fn retries_get_fresh_rolls() {
        // With a certain drop rate every event drops, but the *counter*
        // still advances — so a plan that drops only sometimes lets a
        // retried frame through eventually.
        let mut link = LinkFault::new(LinkPlan::new(3).with_drop(0.5));
        let delivered = (0..200)
            .filter(|_| link.decide(64) == LinkDecision::deliver())
            .count();
        assert!(delivered > 50, "only {delivered} of 200 delivered");
        assert!(delivered < 150, "suspiciously many delivered: {delivered}");
    }

    #[test]
    fn certain_rates_always_fire() {
        let mut drops = LinkFault::new(LinkPlan::new(1).with_drop(1.0));
        assert_eq!(drops.decide(64).action, LinkAction::Drop);

        let mut tears = LinkFault::new(LinkPlan::new(1).with_tear(1.0));
        match tears.decide(64).action {
            LinkAction::Tear(keep) => assert!((1..64).contains(&keep)),
            other => panic!("expected tear, got {other:?}"),
        }
        // A 1-byte frame cannot be torn into a proper prefix: the roll
        // falls through to half-open/deliver instead.
        assert_ne!(
            LinkFault::new(LinkPlan::new(1).with_tear(1.0))
                .decide(1)
                .action,
            LinkAction::Drop
        );

        let mut half = LinkFault::new(LinkPlan::new(1).with_half_open(1.0));
        assert_eq!(half.decide(64).action, LinkAction::HalfOpen);

        let mut dups = LinkFault::new(LinkPlan::new(1).with_duplicate(1.0));
        let d = dups.decide(64);
        assert_eq!(d.action, LinkAction::Deliver);
        assert!(d.duplicate);

        let mut slow = LinkFault::new(LinkPlan::new(1).with_delay(1.0));
        let d = slow.decide(64);
        assert!(d.delay.is_some());
        assert!(d.delay.unwrap_or_default() <= Duration::from_millis(5));
    }

    #[test]
    fn rates_are_clamped() {
        let plan = LinkPlan::chaos(9, 7.0)
            .with_drop(-1.0)
            .with_tear(2.0)
            .with_duplicate(2.0)
            .with_half_open(-0.5)
            .with_delay(3.0);
        assert_eq!(plan.drop, 0.0);
        assert_eq!(plan.tear, 1.0);
        assert_eq!(plan.duplicate, 1.0);
        assert_eq!(plan.half_open, 0.0);
        assert_eq!(plan.delay, 1.0);
    }
}
