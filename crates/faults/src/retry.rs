//! Bounded retries with exponential backoff + seeded jitter, and a
//! per-URL circuit breaker.

use crate::source::{DocumentSource, Fetched, SourceError, SourceHealth};
use crate::{hash_str, mix, unit_float};
use dwqa_common::ConfigError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Retry and circuit-breaker policy for a [`ResilientSource`].
///
/// Defaults: 4 attempts, 1 ms base backoff doubling to a 50 ms cap with
/// ±50% seeded jitter; breaker opens after 5 consecutive failures and
/// half-opens after a 100 ms cooldown. Tune via [`RetryPolicy::builder`];
/// ranges are validated at `build()` (the workspace builder convention).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per fetch (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Cap on any single backoff sleep.
    pub max_backoff: Duration,
    /// Multiplier applied to the backoff after each retry.
    pub multiplier: f64,
    /// Jitter fraction in `[0, 1]`: each sleep is scaled by a factor
    /// drawn uniformly from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
    /// Consecutive failures on one URL that trip its breaker open.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects fetches before half-opening.
    pub breaker_cooldown: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            multiplier: 2.0,
            jitter: 0.5,
            jitter_seed: 0x5eed,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// Starts a builder from the defaults.
    pub fn builder() -> RetryPolicyBuilder {
        RetryPolicyBuilder {
            policy: RetryPolicy::default(),
        }
    }

    /// Checks every knob's range (the workspace builder convention:
    /// validation happens once at `build()`, not at first use).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_attempts == 0 {
            return Err(ConfigError::new(
                "max_attempts",
                "must attempt at least once (got 0)",
            ));
        }
        if self.multiplier < 1.0 || !self.multiplier.is_finite() {
            return Err(ConfigError::new(
                "multiplier",
                format!(
                    "backoff growth must be a finite factor >= 1.0 (got {})",
                    self.multiplier
                ),
            ));
        }
        if !(0.0..=1.0).contains(&self.jitter) {
            return Err(ConfigError::new(
                "jitter",
                format!("jitter fraction must lie in [0, 1] (got {})", self.jitter),
            ));
        }
        if self.max_backoff < self.base_backoff {
            return Err(ConfigError::new(
                "max_backoff",
                format!(
                    "cap ({:?}) must be at least the base backoff ({:?})",
                    self.max_backoff, self.base_backoff
                ),
            ));
        }
        if self.breaker_threshold == 0 {
            return Err(ConfigError::new(
                "breaker_threshold",
                "must tolerate at least 1 failure before tripping (got 0)",
            ));
        }
        Ok(())
    }

    /// The backoff before retry number `retry` (1-based), jittered and
    /// capped. Deterministic in (seed, url, retry).
    fn backoff(&self, url: &str, retry: u32) -> Duration {
        let exp = self.multiplier.powi(retry.saturating_sub(1) as i32);
        let raw = self.base_backoff.as_secs_f64() * exp;
        let capped = raw.min(self.max_backoff.as_secs_f64());
        let roll = unit_float(mix(self
            .jitter_seed
            .wrapping_add(hash_str(url))
            .wrapping_add(u64::from(retry).wrapping_mul(0xC2B2_AE35))));
        let factor = 1.0 + self.jitter.clamp(0.0, 1.0) * (2.0 * roll - 1.0);
        Duration::from_secs_f64((capped * factor).max(0.0))
    }
}

/// Fluent builder for [`RetryPolicy`].
#[derive(Debug, Clone)]
pub struct RetryPolicyBuilder {
    policy: RetryPolicy,
}

impl RetryPolicyBuilder {
    /// Total attempts per fetch (must be at least 1).
    pub fn max_attempts(mut self, n: u32) -> Self {
        self.policy.max_attempts = n;
        self
    }

    /// Backoff before the first retry.
    pub fn base_backoff(mut self, d: Duration) -> Self {
        self.policy.base_backoff = d;
        self
    }

    /// Cap on any single backoff sleep.
    pub fn max_backoff(mut self, d: Duration) -> Self {
        self.policy.max_backoff = d;
        self
    }

    /// Backoff growth factor (must be at least 1.0).
    pub fn multiplier(mut self, m: f64) -> Self {
        self.policy.multiplier = m;
        self
    }

    /// Jitter fraction in `[0, 1]` and the seed of its stream.
    pub fn jitter(mut self, fraction: f64, seed: u64) -> Self {
        self.policy.jitter = fraction;
        self.policy.jitter_seed = seed;
        self
    }

    /// Consecutive failures that trip a URL's breaker open (must be at
    /// least 1).
    pub fn breaker_threshold(mut self, n: u32) -> Self {
        self.policy.breaker_threshold = n;
        self
    }

    /// Cooldown before an open breaker half-opens.
    pub fn breaker_cooldown(mut self, d: Duration) -> Self {
        self.policy.breaker_cooldown = d;
        self
    }

    /// Finishes the build, validating every knob's range.
    pub fn build(self) -> Result<RetryPolicy, ConfigError> {
        self.policy.validate()?;
        Ok(self.policy)
    }
}

/// Lifecycle of one URL's circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: fetches flow through.
    Closed,
    /// Tripped: fetches are rejected until the cooldown expires.
    Open,
    /// Cooled down: exactly one probe fetch is allowed through.
    HalfOpen,
}

#[derive(Debug, Clone, Copy)]
struct Breaker {
    consecutive: u32,
    state: BreakerLife,
}

#[derive(Debug, Clone, Copy)]
enum BreakerLife {
    Closed,
    Open { until: Instant },
    HalfOpen,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            consecutive: 0,
            state: BreakerLife::Closed,
        }
    }
}

/// A resilience wrapper: bounded retries with exponential backoff and
/// seeded jitter, plus a per-URL circuit breaker. Deadline-aware — it
/// stops retrying (and never sleeps past) a [`DocumentSource::fetch_by`]
/// deadline.
pub struct ResilientSource<S> {
    inner: S,
    policy: RetryPolicy,
    breakers: Mutex<HashMap<String, Breaker>>,
    fetches: AtomicU64,
    retries: AtomicU64,
    trips: AtomicU64,
    rejections: AtomicU64,
    failures: AtomicU64,
}

impl<S: DocumentSource> ResilientSource<S> {
    /// Wraps a source with a retry/breaker policy.
    pub fn new(inner: S, policy: RetryPolicy) -> ResilientSource<S> {
        ResilientSource {
            inner,
            policy,
            breakers: Mutex::new(HashMap::new()),
            fetches: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            trips: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The breaker state of one URL right now.
    pub fn breaker_state(&self, url: &str) -> BreakerState {
        let breakers = self.breakers.lock();
        match breakers.get(url).map(|b| b.state) {
            None | Some(BreakerLife::Closed) => BreakerState::Closed,
            Some(BreakerLife::HalfOpen) => BreakerState::HalfOpen,
            Some(BreakerLife::Open { until }) => {
                if Instant::now() >= until {
                    BreakerState::HalfOpen
                } else {
                    BreakerState::Open
                }
            }
        }
    }

    /// Checks the URL's breaker; returns `Err(CircuitOpen)` if it is
    /// rejecting, otherwise notes a (possibly half-open) pass-through.
    fn admit(&self, url: &str) -> Result<(), SourceError> {
        let mut breakers = self.breakers.lock();
        let breaker = breakers.entry(url.to_owned()).or_insert_with(Breaker::new);
        match breaker.state {
            BreakerLife::Closed | BreakerLife::HalfOpen => Ok(()),
            BreakerLife::Open { until } => {
                if Instant::now() >= until {
                    breaker.state = BreakerLife::HalfOpen;
                    dwqa_obs::event!("breaker.half_open");
                    Ok(())
                } else {
                    self.rejections.fetch_add(1, Ordering::Relaxed);
                    dwqa_obs::event!("breaker.rejected");
                    Err(SourceError::CircuitOpen(url.to_owned()))
                }
            }
        }
    }

    fn record_success(&self, url: &str) {
        let mut breakers = self.breakers.lock();
        if let Some(b) = breakers.get_mut(url) {
            b.consecutive = 0;
            b.state = BreakerLife::Closed;
        }
    }

    fn record_failure(&self, url: &str) {
        let mut breakers = self.breakers.lock();
        let breaker = breakers.entry(url.to_owned()).or_insert_with(Breaker::new);
        breaker.consecutive = breaker.consecutive.saturating_add(1);
        let reopen = matches!(breaker.state, BreakerLife::HalfOpen);
        if reopen || breaker.consecutive >= self.policy.breaker_threshold {
            if !matches!(breaker.state, BreakerLife::Open { .. }) {
                self.trips.fetch_add(1, Ordering::Relaxed);
                dwqa_obs::event!("breaker.open", reopen);
            }
            breaker.state = BreakerLife::Open {
                until: Instant::now() + self.policy.breaker_cooldown,
            };
        }
    }
}

impl<S: DocumentSource> DocumentSource for ResilientSource<S> {
    fn fetch(&self, url: &str) -> Result<Fetched, SourceError> {
        self.fetch_by(url, None)
    }

    fn fetch_by(&self, url: &str, deadline: Option<Instant>) -> Result<Fetched, SourceError> {
        let span = dwqa_obs::span!("fetch", url);
        self.admit(url)?;
        let mut last = None;
        for attempt in 1..=self.policy.max_attempts {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    self.failures.fetch_add(1, Ordering::Relaxed);
                    self.record_failure(url);
                    span.record("ok", false);
                    return Err(SourceError::Timeout(format!(
                        "deadline hit before attempt {attempt} on {url}"
                    )));
                }
            }
            self.fetches.fetch_add(1, Ordering::Relaxed);
            match self.inner.fetch_by(url, deadline) {
                Ok(fetched) => {
                    self.record_success(url);
                    span.record("attempts", attempt);
                    span.record("ok", true);
                    return Ok(fetched);
                }
                Err(err) => {
                    let retryable = err.is_retryable();
                    last = Some(err);
                    if !retryable || attempt == self.policy.max_attempts {
                        break;
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    let mut sleep = self.policy.backoff(url, attempt);
                    if let Some(d) = deadline {
                        let left = d.saturating_duration_since(Instant::now());
                        sleep = sleep.min(left);
                    }
                    dwqa_obs::event!(
                        "retry",
                        attempt,
                        backoff_us = sleep.as_micros().min(u128::from(u64::MAX)) as u64
                    );
                    if !sleep.is_zero() {
                        std::thread::sleep(sleep);
                    }
                }
            }
        }
        self.failures.fetch_add(1, Ordering::Relaxed);
        self.record_failure(url);
        span.record("ok", false);
        Err(last.unwrap_or_else(|| SourceError::Transient(format!("no attempts made on {url}"))))
    }

    fn urls(&self) -> Vec<String> {
        self.inner.urls()
    }

    fn health(&self) -> SourceHealth {
        let mut h = self.inner.health();
        h.fetches += self.fetches.load(Ordering::Relaxed);
        h.retries += self.retries.load(Ordering::Relaxed);
        h.breaker_trips += self.trips.load(Ordering::Relaxed);
        h.breaker_rejections += self.rejections.load(Ordering::Relaxed);
        h.failures += self.failures.load(Ordering::Relaxed);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Integrity;
    use dwqa_ir::{DocFormat, Document};
    use std::sync::atomic::AtomicU32;

    /// Fails the first `fail_first` fetches of every URL, then succeeds.
    struct Flaky {
        fail_first: u32,
        calls: AtomicU32,
    }

    impl Flaky {
        fn new(fail_first: u32) -> Flaky {
            Flaky {
                fail_first,
                calls: AtomicU32::new(0),
            }
        }
    }

    impl DocumentSource for Flaky {
        fn fetch(&self, url: &str) -> Result<Fetched, SourceError> {
            let n = self.calls.fetch_add(1, Ordering::Relaxed);
            if n < self.fail_first {
                Err(SourceError::Transient(format!("flake {n} on {url}")))
            } else {
                Ok(Fetched {
                    doc: Document::new(url, DocFormat::Plain, "", "body"),
                    integrity: Integrity::Intact,
                })
            }
        }

        fn urls(&self) -> Vec<String> {
            vec!["http://flaky".into()]
        }
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy::builder()
            .max_attempts(4)
            .base_backoff(Duration::ZERO)
            .max_backoff(Duration::ZERO)
            .breaker_threshold(2)
            .breaker_cooldown(Duration::from_millis(20))
            .build()
            .unwrap()
    }

    #[test]
    fn retries_until_success_and_counts() {
        let src = ResilientSource::new(Flaky::new(2), fast_policy());
        let f = src.fetch("http://flaky").unwrap();
        assert_eq!(f.doc.text, "body");
        let h = src.health();
        assert_eq!(h.fetches, 3);
        assert_eq!(h.retries, 2);
        assert_eq!(h.failures, 0);
        assert_eq!(src.breaker_state("http://flaky"), BreakerState::Closed);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let src = ResilientSource::new(Flaky::new(100), fast_policy());
        let err = src.fetch("http://flaky").unwrap_err();
        assert!(err.is_retryable(), "last error is surfaced: {err}");
        let h = src.health();
        assert_eq!(h.fetches, 4);
        assert_eq!(h.retries, 3);
        assert_eq!(h.failures, 1);
    }

    #[test]
    fn not_found_is_never_retried() {
        struct Gone;
        impl DocumentSource for Gone {
            fn fetch(&self, url: &str) -> Result<Fetched, SourceError> {
                Err(SourceError::NotFound(url.to_owned()))
            }
            fn urls(&self) -> Vec<String> {
                Vec::new()
            }
        }
        let src = ResilientSource::new(Gone, fast_policy());
        assert!(matches!(
            src.fetch("http://gone"),
            Err(SourceError::NotFound(_))
        ));
        assert_eq!(src.health().fetches, 1);
        assert_eq!(src.health().retries, 0);
    }

    #[test]
    fn breaker_opens_rejects_then_half_opens_and_recovers() {
        let src = ResilientSource::new(Flaky::new(8), fast_policy());
        // Two failed fetches (threshold 2) trip the breaker.
        assert!(src.fetch("http://flaky").is_err());
        assert!(src.fetch("http://flaky").is_err());
        assert_eq!(src.breaker_state("http://flaky"), BreakerState::Open);
        assert!(matches!(
            src.fetch("http://flaky"),
            Err(SourceError::CircuitOpen(_))
        ));
        let h = src.health();
        assert!(h.breaker_trips >= 1, "tripped: {h:?}");
        assert_eq!(h.breaker_rejections, 1);
        // After the cooldown the half-open probe succeeds (8 flakes are
        // spent) and the breaker closes again.
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(src.breaker_state("http://flaky"), BreakerState::HalfOpen);
        assert!(src.fetch("http://flaky").is_ok());
        assert_eq!(src.breaker_state("http://flaky"), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_failure_retrips_immediately_with_fresh_cooldown() {
        // Flaky::new(100) never succeeds, so the half-open probe fails.
        let src = ResilientSource::new(Flaky::new(100), fast_policy());
        assert!(src.fetch("http://flaky").is_err());
        assert!(src.fetch("http://flaky").is_err()); // threshold 2 → open
        assert_eq!(src.breaker_state("http://flaky"), BreakerState::Open);
        let trips_after_first_open = src.health().breaker_trips;

        // Cool down into half-open, then let the single probe fail: the
        // breaker must re-trip on that ONE failure (no second grace
        // period of `threshold` failures) and must count a fresh trip.
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(src.breaker_state("http://flaky"), BreakerState::HalfOpen);
        let probe_started = Instant::now();
        assert!(src.fetch("http://flaky").is_err());
        assert_eq!(
            src.breaker_state("http://flaky"),
            BreakerState::Open,
            "one failed half-open probe re-trips the breaker"
        );
        assert_eq!(src.health().breaker_trips, trips_after_first_open + 1);

        // The re-trip starts a FULL cooldown from the probe failure:
        // still rejecting well before the 20 ms cooldown elapses...
        assert!(matches!(
            src.fetch("http://flaky"),
            Err(SourceError::CircuitOpen(_))
        ));
        assert!(
            probe_started.elapsed() < Duration::from_millis(20),
            "rejection observed inside the fresh cooldown window"
        );
        // ...and half-open again only after it has fully elapsed.
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(src.breaker_state("http://flaky"), BreakerState::HalfOpen);
    }

    #[test]
    fn fetch_spans_carry_retry_and_breaker_events() {
        let tracer = dwqa_obs::Tracer::new(4);
        tracer.set_enabled(true);
        let src = ResilientSource::new(Flaky::new(100), fast_policy());
        {
            let _obs = dwqa_obs::observe(None, Some(&tracer), "question", "q");
            let _ = src.fetch("http://flaky"); // 4 attempts, 3 retries
            let _ = src.fetch("http://flaky"); // trips the breaker
            let _ = src.fetch("http://flaky"); // rejected while open
        }
        let trace = tracer.recorder().last().unwrap_or_default();
        let fetches = trace.find_all("fetch");
        assert_eq!(fetches.len(), 3, "one fetch span per source call");
        assert_eq!(
            fetches[0].field("url").and_then(|v| v.as_str()),
            Some("http://flaky")
        );
        let retries: Vec<_> = fetches[0]
            .events
            .iter()
            .filter(|e| e.name == "retry")
            .collect();
        assert_eq!(retries.len(), 3);
        assert!(fetches[1].events.iter().any(|e| e.name == "breaker.open"));
        assert!(fetches[2]
            .events
            .iter()
            .any(|e| e.name == "breaker.rejected"));
    }

    #[test]
    fn deadline_caps_retries_with_timeout() {
        struct Slow;
        impl DocumentSource for Slow {
            fn fetch(&self, url: &str) -> Result<Fetched, SourceError> {
                std::thread::sleep(Duration::from_millis(5));
                Err(SourceError::Transient(format!("slow {url}")))
            }
            fn urls(&self) -> Vec<String> {
                Vec::new()
            }
        }
        let policy = RetryPolicy::builder()
            .max_attempts(1000)
            .base_backoff(Duration::from_millis(1))
            .build()
            .unwrap();
        let src = ResilientSource::new(Slow, policy);
        let deadline = Instant::now() + Duration::from_millis(30);
        let start = Instant::now();
        let err = src.fetch_by("http://slow", Some(deadline)).unwrap_err();
        assert!(
            matches!(err, SourceError::Timeout(_)),
            "deadline surfaces as Timeout: {err}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "no runaway retrying"
        );
    }

    #[test]
    fn backoff_grows_is_jittered_and_capped() {
        let policy = RetryPolicy::builder()
            .base_backoff(Duration::from_millis(4))
            .max_backoff(Duration::from_millis(20))
            .multiplier(2.0)
            .jitter(0.5, 99)
            .build()
            .unwrap();
        let b1 = policy.backoff("u", 1);
        let b2 = policy.backoff("u", 2);
        let b5 = policy.backoff("u", 5);
        // Jitter keeps each sleep within ±50% of the nominal value.
        assert!(b1 >= Duration::from_millis(2) && b1 <= Duration::from_millis(6));
        assert!(b2 >= Duration::from_millis(4) && b2 <= Duration::from_millis(12));
        assert!(b5 <= Duration::from_millis(30), "capped at max_backoff×1.5");
        // Deterministic per (seed, url, retry); different across URLs.
        assert_eq!(policy.backoff("u", 1), b1);
        assert_ne!(policy.backoff("v", 1), b1);
    }

    #[test]
    fn builder_rejects_degenerate_knobs_at_build() {
        let cases: Vec<(&str, Result<RetryPolicy, dwqa_common::ConfigError>)> = vec![
            (
                "max_attempts",
                RetryPolicy::builder().max_attempts(0).build(),
            ),
            ("multiplier", RetryPolicy::builder().multiplier(0.1).build()),
            ("jitter", RetryPolicy::builder().jitter(7.0, 1).build()),
            (
                "breaker_threshold",
                RetryPolicy::builder().breaker_threshold(0).build(),
            ),
            (
                "max_backoff",
                RetryPolicy::builder()
                    .base_backoff(Duration::from_millis(100))
                    .max_backoff(Duration::from_millis(1))
                    .build(),
            ),
        ];
        for (field, result) in cases {
            let err = result.expect_err(field);
            assert_eq!(err.field, field, "{err}");
        }
        // The defaults themselves pass validation.
        assert!(RetryPolicy::default().validate().is_ok());
        assert!(RetryPolicy::builder().build().is_ok());
    }
}
