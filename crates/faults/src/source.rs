//! The document-acquisition trait and the perfect in-memory source.

use dwqa_ir::{Document, DocumentStore};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// Why an acquisition attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// A transient failure (connection reset, 5xx, …) — worth retrying.
    Transient(String),
    /// The document permanently does not exist (404) — retrying is futile.
    NotFound(String),
    /// The deadline expired before the fetch (or its retries) completed.
    Timeout(String),
    /// The per-source circuit breaker is open and rejected the fetch.
    CircuitOpen(String),
}

impl SourceError {
    /// Whether a retry could plausibly succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, SourceError::Transient(_))
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Transient(why) => write!(f, "transient source error: {why}"),
            SourceError::NotFound(url) => write!(f, "document not found (404): {url}"),
            SourceError::Timeout(why) => write!(f, "acquisition deadline exceeded: {why}"),
            SourceError::CircuitOpen(url) => write!(f, "circuit breaker open for {url}"),
        }
    }
}

impl std::error::Error for SourceError {}

/// How intact a fetched body is relative to the origin's canonical copy.
///
/// A real acquisition layer knows this from checksums or `Content-Length`;
/// the fault injector reports it directly. The engine treats any
/// non-intact body as grounds for a degraded answer, and re-validates
/// extracted answers against the fetched bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Integrity {
    /// The body matches the canonical document.
    Intact,
    /// The tail of the body was lost in transit.
    Truncated,
    /// A span of the body was corrupted.
    Garbled,
    /// The body was delivered twice (duplicated content).
    Duplicated,
}

impl Integrity {
    /// Whether the body is byte-identical to the canonical document.
    pub fn is_intact(&self) -> bool {
        matches!(self, Integrity::Intact)
    }
}

/// A successfully fetched document plus its integrity verdict.
#[derive(Debug, Clone)]
pub struct Fetched {
    /// The acquired document (text possibly degraded — see `integrity`).
    pub doc: Document,
    /// Integrity of the acquired body.
    pub integrity: Integrity,
}

/// Cumulative counters describing a source stack's behaviour. Wrappers
/// add their own contributions to the wrapped source's counters, so the
/// outermost `health()` describes the whole stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceHealth {
    /// Fetches attempted against the underlying source (retries included).
    pub fetches: u64,
    /// Faults injected by a [`crate::FaultInjector`] in the stack.
    pub faults_injected: u64,
    /// Retries performed by a [`crate::ResilientSource`] in the stack.
    pub retries: u64,
    /// Times a circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Fetches rejected outright by an open breaker.
    pub breaker_rejections: u64,
    /// Fetches that ultimately failed (after retries, if any).
    pub failures: u64,
}

impl SourceHealth {
    /// Counter-wise difference `self - earlier` (saturating), for taking
    /// per-question deltas of a shared source's counters.
    pub fn since(&self, earlier: &SourceHealth) -> SourceHealth {
        SourceHealth {
            fetches: self.fetches.saturating_sub(earlier.fetches),
            faults_injected: self.faults_injected.saturating_sub(earlier.faults_injected),
            retries: self.retries.saturating_sub(earlier.retries),
            breaker_trips: self.breaker_trips.saturating_sub(earlier.breaker_trips),
            breaker_rejections: self
                .breaker_rejections
                .saturating_sub(earlier.breaker_rejections),
            failures: self.failures.saturating_sub(earlier.failures),
        }
    }
}

/// Document acquisition: the boundary between the QA engine and the open,
/// unreliable world the paper's Step 5 reads from.
pub trait DocumentSource: Send + Sync {
    /// Fetches the document at `url`.
    fn fetch(&self, url: &str) -> Result<Fetched, SourceError>;

    /// Like [`DocumentSource::fetch`], bounded by a deadline. Resilient
    /// wrappers stop retrying (and cap backoff sleeps) at the deadline;
    /// plain sources ignore it.
    fn fetch_by(&self, url: &str, deadline: Option<Instant>) -> Result<Fetched, SourceError> {
        let _ = deadline;
        self.fetch(url)
    }

    /// Every URL this source can serve (for probing and warm-up).
    fn urls(&self) -> Vec<String>;

    /// Cumulative behaviour counters for the whole source stack.
    fn health(&self) -> SourceHealth {
        SourceHealth::default()
    }
}

/// The perfect oracle: an in-memory source over a corpus snapshot. Every
/// known URL is always available, instantly, intact.
#[derive(Debug, Clone)]
pub struct CorpusSource {
    by_url: HashMap<String, Document>,
    urls: Vec<String>,
}

impl CorpusSource {
    /// Builds a source over the documents of a store (cloned; later URLs
    /// win when the store holds duplicates).
    pub fn new(store: &DocumentStore) -> CorpusSource {
        let mut by_url = HashMap::with_capacity(store.len());
        let mut urls = Vec::with_capacity(store.len());
        for (_, doc) in store.iter() {
            if !by_url.contains_key(&doc.url) {
                urls.push(doc.url.clone());
            }
            by_url.insert(doc.url.clone(), doc.clone());
        }
        CorpusSource { by_url, urls }
    }

    /// Number of distinct URLs served.
    pub fn len(&self) -> usize {
        self.urls.len()
    }

    /// Whether the source serves no documents at all.
    pub fn is_empty(&self) -> bool {
        self.urls.is_empty()
    }
}

impl DocumentSource for CorpusSource {
    fn fetch(&self, url: &str) -> Result<Fetched, SourceError> {
        match self.by_url.get(url) {
            Some(doc) => Ok(Fetched {
                doc: doc.clone(),
                integrity: Integrity::Intact,
            }),
            None => Err(SourceError::NotFound(url.to_owned())),
        }
    }

    fn urls(&self) -> Vec<String> {
        self.urls.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwqa_ir::DocFormat;

    fn store() -> DocumentStore {
        let mut s = DocumentStore::new();
        s.add(Document::new("http://a", DocFormat::Plain, "", "alpha"));
        s.add(Document::new("http://b", DocFormat::Plain, "", "beta"));
        s
    }

    #[test]
    fn corpus_source_serves_known_urls_intact() {
        let src = CorpusSource::new(&store());
        assert_eq!(src.len(), 2);
        let f = src.fetch("http://a").unwrap();
        assert_eq!(f.doc.text, "alpha");
        assert!(f.integrity.is_intact());
        assert_eq!(src.urls().len(), 2);
        assert_eq!(src.health(), SourceHealth::default());
    }

    #[test]
    fn unknown_urls_are_permanent_404s() {
        let src = CorpusSource::new(&store());
        let err = src.fetch("http://ghost").unwrap_err();
        assert_eq!(err, SourceError::NotFound("http://ghost".to_owned()));
        assert!(!err.is_retryable());
        assert!(SourceError::Transient("reset".into()).is_retryable());
    }

    #[test]
    fn health_delta_is_saturating_and_counterwise() {
        let a = SourceHealth {
            fetches: 10,
            retries: 3,
            ..SourceHealth::default()
        };
        let b = SourceHealth {
            fetches: 4,
            retries: 5,
            ..SourceHealth::default()
        };
        let d = a.since(&b);
        assert_eq!(d.fetches, 6);
        assert_eq!(d.retries, 0); // saturates rather than wrapping
    }

    #[test]
    fn errors_render_their_kind() {
        assert!(SourceError::NotFound("u".into())
            .to_string()
            .contains("404"));
        assert!(SourceError::CircuitOpen("u".into())
            .to_string()
            .contains("breaker"));
        assert!(SourceError::Timeout("t".into())
            .to_string()
            .contains("deadline"));
    }
}
