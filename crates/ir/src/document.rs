//! Documents and the document store.

use dwqa_common::Date;
use serde::{Deserialize, Serialize};

/// Identifier of a document within its store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DocId(pub u32);

impl DocId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Source format of an unstructured document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DocFormat {
    /// Plain text.
    Plain,
    /// HTML markup (tags stripped on ingestion).
    Html,
    /// XML markup (tags stripped on ingestion).
    Xml,
}

/// An unstructured document (a "web page" of the reproduction corpus).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// Source URL (provenance recorded into the DW by Step 5).
    pub url: String,
    /// Original markup format.
    pub format: DocFormat,
    /// Title (already plain text).
    pub title: String,
    /// Extracted plain text.
    pub text: String,
    /// Optional location metadata (used by the multidimensional-IR
    /// baseline's category dimensions).
    pub location: Option<String>,
    /// Optional date metadata (same).
    pub date: Option<Date>,
}

impl Document {
    /// Builds a document, extracting plain text from markup if needed.
    pub fn new(url: &str, format: DocFormat, title: &str, raw: &str) -> Document {
        let text = match format {
            DocFormat::Plain => raw.to_owned(),
            DocFormat::Html | DocFormat::Xml => extract_text(raw),
        };
        Document {
            url: url.to_owned(),
            format,
            title: title.to_owned(),
            text,
            location: None,
            date: None,
        }
    }

    /// Sets the location metadata.
    pub fn with_location(mut self, location: &str) -> Document {
        self.location = Some(location.to_owned());
        self
    }

    /// Sets the date metadata.
    pub fn with_date(mut self, date: Date) -> Document {
        self.date = Some(date);
        self
    }
}

/// Strips markup tags and resolves the handful of HTML entities the corpus
/// generator emits, normalising tag boundaries to line breaks so sentence
/// splitting still sees block structure.
pub fn extract_text(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '<' => {
                // Consume the tag; block-level closers become newlines.
                let mut tag = String::new();
                for t in chars.by_ref() {
                    if t == '>' {
                        break;
                    }
                    tag.push(t);
                }
                let name = tag
                    .trim_start_matches('/')
                    .split_whitespace()
                    .next()
                    .unwrap_or("")
                    .to_ascii_lowercase();
                match name.as_str() {
                    "p" | "div" | "br" | "tr" | "h1" | "h2" | "h3" | "li" | "table" | "row"
                    | "entry" | "day" | "title" => out.push('\n'),
                    "td" | "th" | "cell" | "field" => out.push(' '),
                    _ => {}
                }
            }
            '&' => {
                let mut entity = String::new();
                let mut terminated = false;
                while let Some(&n) = chars.peek() {
                    if n == ';' {
                        chars.next();
                        terminated = true;
                        break;
                    }
                    if entity.len() > 8 || n.is_whitespace() {
                        break;
                    }
                    entity.push(n);
                    chars.next();
                }
                if terminated {
                    match entity.as_str() {
                        "amp" => out.push('&'),
                        "lt" => out.push('<'),
                        "gt" => out.push('>'),
                        "quot" => out.push('"'),
                        "nbsp" => out.push(' '),
                        "deg" => out.push('º'),
                        _ => {}
                    }
                } else {
                    out.push('&');
                    out.push_str(&entity);
                }
            }
            _ => out.push(c),
        }
    }
    // Collapse runs of blank lines and of spaces left by tag stripping.
    let mut cleaned = String::with_capacity(out.len());
    for line in out.lines() {
        let words: Vec<&str> = line.split_whitespace().collect();
        if !words.is_empty() {
            if !cleaned.is_empty() {
                cleaned.push('\n');
            }
            cleaned.push_str(&words.join(" "));
        }
    }
    cleaned
}

/// An append-only collection of documents.
#[derive(Debug, Clone, Default)]
pub struct DocumentStore {
    docs: Vec<Document>,
}

impl DocumentStore {
    /// Creates an empty store.
    pub fn new() -> DocumentStore {
        DocumentStore::default()
    }

    /// Adds a document, returning its id.
    pub fn add(&mut self, doc: Document) -> DocId {
        let id = DocId(u32::try_from(self.docs.len()).expect("document store overflow"));
        self.docs.push(doc);
        id
    }

    /// Resolves a document id.
    pub fn get(&self, id: DocId) -> &Document {
        &self.docs[id.index()]
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Iterates `(id, document)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &Document)> {
        self.docs
            .iter()
            .enumerate()
            .map(|(i, d)| (DocId(i as u32), d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_documents_keep_text() {
        let d = Document::new("u", DocFormat::Plain, "t", "Hello world.");
        assert_eq!(d.text, "Hello world.");
    }

    #[test]
    fn html_tags_are_stripped_with_block_breaks() {
        let d = Document::new(
            "u",
            DocFormat::Html,
            "t",
            "<html><body><h1>Weather</h1><p>Temperature 8&deg; C</p></body></html>",
        );
        assert_eq!(d.text, "Weather\nTemperature 8º C");
    }

    #[test]
    fn xml_cells_become_spaces() {
        let d = Document::new(
            "u",
            DocFormat::Xml,
            "t",
            "<row><cell>8</cell><cell>46.4</cell></row>",
        );
        assert_eq!(d.text, "8 46.4");
    }

    #[test]
    fn entities_resolve() {
        assert_eq!(extract_text("a &amp; b &lt;c&gt;"), "a & b <c>");
        assert_eq!(extract_text("8&deg;C"), "8ºC");
        // Unterminated entity survives literally.
        assert_eq!(extract_text("AT&T works"), "AT&T works");
    }

    #[test]
    fn store_assigns_sequential_ids() {
        let mut s = DocumentStore::new();
        let a = s.add(Document::new("a", DocFormat::Plain, "", "x"));
        let b = s.add(Document::new("b", DocFormat::Plain, "", "y"));
        assert_eq!(a, DocId(0));
        assert_eq!(b, DocId(1));
        assert_eq!(s.get(b).url, "b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn metadata_builders() {
        let d = Document::new("u", DocFormat::Plain, "", "x")
            .with_location("Barcelona")
            .with_date(Date::from_ymd(2004, 1, 31).unwrap());
        assert_eq!(d.location.as_deref(), Some("Barcelona"));
        assert_eq!(d.date, Date::from_ymd(2004, 1, 31));
    }
}
