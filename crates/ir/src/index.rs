//! The inverted index.

use crate::document::{DocId, DocumentStore};
use dwqa_common::{Interner, Symbol};
use dwqa_nlp::{is_stopword, lemmatize_with, tag_sentence, tokenize, Lexicon};
use std::collections::HashMap;

/// One posting: a document and the term's frequency in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// The document.
    pub doc: DocId,
    /// Term frequency.
    pub tf: u32,
}

/// An inverted index over lemmatised, stop-word-filtered terms.
///
/// This is the "second indexation … used for the IR tool that filters the
/// quantity of text on which the QA process is applied" of the paper's
/// Figure 3. Unlike the QA-side linguistic index, it deliberately discards
/// stop words (difference (1) between IR and QA in the introduction).
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    vocabulary: Interner,
    postings: HashMap<Symbol, Vec<Posting>>,
    doc_lengths: Vec<u32>,
    total_len: u64,
}

/// Normalises raw text into index terms: tokenize → tag (for lemmas) →
/// case-fold → drop stop words and punctuation.
pub fn index_terms(lexicon: &Lexicon, text: &str) -> Vec<String> {
    let mut terms = Vec::new();
    for sentence in dwqa_nlp::split_sentences(text) {
        for t in tag_sentence(lexicon, &tokenize(&sentence)) {
            if matches!(
                t.pos,
                dwqa_nlp::Pos::PUNCT | dwqa_nlp::Pos::SENT | dwqa_nlp::Pos::SYM
            ) {
                continue;
            }
            // The tagged token is owned, so the lemma moves out for free;
            // only the lemmatizer fallback builds a fresh string.
            let lemma = if t.lemma.is_empty() {
                lemmatize_with(lexicon, &t.token.text, t.pos)
            } else {
                t.lemma
            };
            if is_stopword(&lemma) {
                continue;
            }
            terms.push(lemma);
        }
    }
    terms
}

impl InvertedIndex {
    /// Builds the index over a document store, sequentially.
    pub fn build(lexicon: &Lexicon, store: &DocumentStore) -> InvertedIndex {
        let per_doc: Vec<Vec<String>> = store
            .iter()
            .map(|(_, d)| index_terms(lexicon, &d.text))
            .collect();
        Self::assemble(per_doc)
    }

    /// Builds the index using `threads` worker threads (crossbeam scoped
    /// threads; document analysis dominates build time and is
    /// embarrassingly parallel).
    pub fn build_parallel(
        lexicon: &Lexicon,
        store: &DocumentStore,
        threads: usize,
    ) -> InvertedIndex {
        let threads = threads.max(1);
        let docs: Vec<&str> = store.iter().map(|(_, d)| d.text.as_str()).collect();
        let chunk = docs.len().div_ceil(threads).max(1);
        // Each worker returns its chunk through its join handle; joining
        // in spawn order reassembles the per-doc results lock-free.
        let per_doc = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = docs
                .chunks(chunk)
                .map(|chunk_docs| {
                    scope.spawn(move |_| {
                        chunk_docs
                            .iter()
                            .map(|text| index_terms(lexicon, text))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut per_doc: Vec<Vec<String>> = Vec::with_capacity(docs.len());
            for handle in handles {
                per_doc.extend(handle.join().expect("index worker thread panicked"));
            }
            per_doc
        })
        .expect("index worker thread panicked");
        Self::assemble(per_doc)
    }

    fn assemble(per_doc: Vec<Vec<String>>) -> InvertedIndex {
        let mut vocabulary = Interner::new();
        let mut postings: HashMap<Symbol, Vec<Posting>> = HashMap::new();
        let mut doc_lengths = Vec::with_capacity(per_doc.len());
        let mut total_len = 0u64;
        for (i, terms) in per_doc.into_iter().enumerate() {
            let doc = DocId(i as u32);
            doc_lengths.push(terms.len() as u32);
            total_len += terms.len() as u64;
            let mut counts: HashMap<Symbol, u32> = HashMap::new();
            for term in &terms {
                *counts.entry(vocabulary.intern(term)).or_insert(0) += 1;
            }
            let mut counts: Vec<(Symbol, u32)> = counts.into_iter().collect();
            counts.sort_unstable();
            for (sym, tf) in counts {
                postings.entry(sym).or_default().push(Posting { doc, tf });
            }
        }
        InvertedIndex {
            vocabulary,
            postings,
            doc_lengths,
            total_len,
        }
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.doc_lengths.len()
    }

    /// Vocabulary size (distinct terms).
    pub fn num_terms(&self) -> usize {
        self.vocabulary.len()
    }

    /// The postings list of a term, if indexed. Already-folded terms
    /// (index lemmas, compiled query terms) are looked up without
    /// allocating.
    pub fn postings(&self, term: &str) -> Option<&[Posting]> {
        let sym = self.vocabulary.get(&dwqa_common::text::fold_cow(term))?;
        self.postings.get(&sym).map(Vec::as_slice)
    }

    /// Document frequency of a term.
    pub fn df(&self, term: &str) -> usize {
        self.postings(term).map_or(0, <[Posting]>::len)
    }

    /// Length (in index terms) of a document.
    pub fn doc_len(&self, doc: DocId) -> u32 {
        self.doc_lengths[doc.index()]
    }

    /// Mean document length.
    pub fn avg_doc_len(&self) -> f64 {
        if self.doc_lengths.is_empty() {
            0.0
        } else {
            self.total_len as f64 / self.doc_lengths.len() as f64
        }
    }

    /// Smoothed inverse document frequency (BM25 formulation).
    pub fn idf(&self, term: &str) -> f64 {
        let n = self.num_docs() as f64;
        let df = self.df(term) as f64;
        ((n - df + 0.5) / (df + 0.5) + 1.0).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{DocFormat, Document};

    fn store(texts: &[&str]) -> DocumentStore {
        let mut s = DocumentStore::new();
        for (i, t) in texts.iter().enumerate() {
            s.add(Document::new(&format!("doc{i}"), DocFormat::Plain, "", t));
        }
        s
    }

    #[test]
    fn terms_are_lemmatised_and_stopped() {
        let lx = Lexicon::english();
        let terms = index_terms(&lx, "The temperatures in the skies were rising.");
        assert_eq!(terms, ["temperature", "sky", "rise"]);
    }

    #[test]
    fn postings_record_frequencies() {
        let lx = Lexicon::english();
        let idx = InvertedIndex::build(
            &lx,
            &store(&[
                "temperature temperature weather",
                "weather in Barcelona",
                "sales of tickets",
            ]),
        );
        let postings = idx.postings("temperature").unwrap();
        assert_eq!(
            postings,
            &[Posting {
                doc: DocId(0),
                tf: 2
            }]
        );
        assert_eq!(idx.df("weather"), 2);
        assert_eq!(idx.df("barcelona"), 1);
        assert_eq!(idx.df("unseen"), 0);
        assert_eq!(idx.num_docs(), 3);
    }

    #[test]
    fn idf_orders_rare_above_common() {
        let lx = Lexicon::english();
        let idx = InvertedIndex::build(
            &lx,
            &store(&["weather weather", "weather Barcelona", "weather cold"]),
        );
        assert!(idx.idf("barcelona") > idx.idf("weather"));
    }

    #[test]
    fn doc_lengths_and_average() {
        let lx = Lexicon::english();
        let idx = InvertedIndex::build(&lx, &store(&["temperature weather", "Barcelona"]));
        assert_eq!(idx.doc_len(DocId(0)), 2);
        assert_eq!(idx.doc_len(DocId(1)), 1);
        assert!((idx.avg_doc_len() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let lx = Lexicon::english();
        let texts: Vec<String> = (0..40)
            .map(|i| format!("weather in city number {i} with temperature {i} degrees"))
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let s = store(&refs);
        let seq = InvertedIndex::build(&lx, &s);
        let par = InvertedIndex::build_parallel(&lx, &s, 4);
        assert_eq!(seq.num_docs(), par.num_docs());
        assert_eq!(seq.num_terms(), par.num_terms());
        for term in ["weather", "city", "temperature", "degree"] {
            assert_eq!(seq.postings(term), par.postings(term), "term {term}");
        }
    }

    #[test]
    fn empty_store_yields_empty_index() {
        let lx = Lexicon::english();
        let idx = InvertedIndex::build(&lx, &DocumentStore::new());
        assert_eq!(idx.num_docs(), 0);
        assert_eq!(idx.avg_doc_len(), 0.0);
    }
}
