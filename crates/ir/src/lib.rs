//! The information-retrieval substrate.
//!
//! The paper runs IR "as a first filtering phase, and QA works on IR
//! output". AliQAn specifically uses **IR-n** (Llopis, Vicedo & Ferrández,
//! CLEF 2002), a *passage retrieval* system where each passage is a window
//! of `n` consecutive sentences (the paper's footnote 6: eight sentences).
//! This crate implements that substrate from scratch:
//!
//! * [`document`] — the document model (URL, format, text) with HTML/XML
//!   text extraction ("our approach handles any kind of unstructured data
//!   (e.g. XML, HTML or PDF)") and an append-only [`document::DocumentStore`];
//! * [`index`] — an inverted index over case-folded, stopped, lemmatised
//!   terms, with optional parallel construction (crossbeam scoped threads);
//! * [`search`] — ranked document retrieval (Okapi BM25 and TF-IDF cosine);
//! * [`passage`] — the IR-n passage retrieval used by AliQAn's Module 2,
//!   driven by interned sentence-level postings: queries compile once into
//!   a [`passage::PassageQuery`], candidate documents come from the
//!   postings, and documents without query terms are never scored
//!   ([`passage::RetrievalStats`] reports the pruning);
//! * [`mdir`] — the multidimensional-IR **baseline** of McCabe et al.
//!   (SIGIR 2000, the paper's reference [11]): documents categorised along
//!   location × time dimensions, filtered OLAP-style before term search.

//! ```
//! use dwqa_ir::{Document, DocumentStore, DocFormat, InvertedIndex, PassageRetriever};
//! use dwqa_nlp::Lexicon;
//!
//! let lexicon = Lexicon::english();
//! let mut store = DocumentStore::new();
//! store.add(Document::new("u", DocFormat::Plain, "", "The temperature in Barcelona was mild."));
//! let index = InvertedIndex::build(&lexicon, &store);
//! let retriever = PassageRetriever::build(&lexicon, &store, 8);
//! let passages = retriever.retrieve_text(&index, &lexicon, "Barcelona temperature", 1);
//! assert_eq!(passages.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod document;
pub mod index;
pub mod mdir;
pub mod passage;
pub mod search;

pub use document::{DocFormat, DocId, Document, DocumentStore};
pub use index::InvertedIndex;
pub use mdir::{CubeSlice, MultidimensionalIndex};
pub use passage::{Passage, PassageQuery, PassageRetriever, RetrievalStats};
pub use search::{SearchHit, Similarity};
