//! Multidimensional IR baseline (McCabe et al., SIGIR 2000 — ref. [11]).
//!
//! The related-work system the paper contrasts with: an IR index whose
//! documents are *categorised by location and time* so OLAP-style
//! operations (slice to a city, drill from a year to a month) restrict the
//! candidate set before term matching. It improves filtering but still
//! returns documents — not answers — which is exactly the limitation the
//! paper's QA integration removes. We implement it as a baseline for the
//! comparison experiments.

use crate::document::{DocId, DocumentStore};
use crate::index::InvertedIndex;
use crate::search::{search_terms, SearchHit, Similarity};
use dwqa_common::{Date, Month};
use std::collections::HashMap;

/// A slice of the document cube along the location × time dimensions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CubeSlice {
    /// Keep only documents with this location (case-folded match).
    pub location: Option<String>,
    /// Keep only documents within this year.
    pub year: Option<i32>,
    /// Keep only documents within this month (requires `year`).
    pub month: Option<Month>,
}

impl CubeSlice {
    /// No restriction.
    pub fn all() -> CubeSlice {
        CubeSlice::default()
    }

    /// Restricts to a location.
    pub fn location(mut self, location: &str) -> CubeSlice {
        self.location = Some(dwqa_common::text::fold(location));
        self
    }

    /// Restricts to a year (roll-up level "year").
    pub fn year(mut self, year: i32) -> CubeSlice {
        self.year = Some(year);
        self
    }

    /// Drills down to a month within the year.
    pub fn month(mut self, year: i32, month: Month) -> CubeSlice {
        self.year = Some(year);
        self.month = Some(month);
        self
    }

    fn admits(&self, location: Option<&str>, date: Option<Date>) -> bool {
        if let Some(want) = &self.location {
            match location {
                Some(loc) if dwqa_common::text::fold(loc) == *want => {}
                _ => return false,
            }
        }
        if let Some(want_year) = self.year {
            match date {
                Some(d) if d.year() == want_year => {}
                _ => return false,
            }
        }
        if let Some(want_month) = self.month {
            match date {
                Some(d) if d.month() == want_month => {}
                _ => return false,
            }
        }
        true
    }
}

/// An IR index with location × time document categories.
#[derive(Debug, Clone)]
pub struct MultidimensionalIndex {
    /// Per document: (location, date) categories.
    categories: Vec<(Option<String>, Option<Date>)>,
    /// Documents per folded location (for category statistics).
    by_location: HashMap<String, Vec<DocId>>,
}

impl MultidimensionalIndex {
    /// Builds the category structure from document metadata.
    pub fn build(store: &DocumentStore) -> MultidimensionalIndex {
        let mut categories = Vec::with_capacity(store.len());
        let mut by_location: HashMap<String, Vec<DocId>> = HashMap::new();
        for (id, doc) in store.iter() {
            if let Some(loc) = &doc.location {
                by_location
                    .entry(dwqa_common::text::fold(loc))
                    .or_default()
                    .push(id);
            }
            categories.push((doc.location.clone(), doc.date));
        }
        MultidimensionalIndex {
            categories,
            by_location,
        }
    }

    /// Documents admitted by a slice.
    pub fn slice(&self, slice: &CubeSlice) -> Vec<DocId> {
        self.categories
            .iter()
            .enumerate()
            .filter(|(_, (loc, date))| slice.admits(loc.as_deref(), *date))
            .map(|(i, _)| DocId(i as u32))
            .collect()
    }

    /// Number of documents categorised under a location.
    pub fn location_count(&self, location: &str) -> usize {
        self.by_location
            .get(&dwqa_common::text::fold(location))
            .map_or(0, Vec::len)
    }

    /// OLAP-filtered term search: slice the cube, then rank only the
    /// admitted documents.
    pub fn search(
        &self,
        index: &InvertedIndex,
        terms: &[String],
        slice: &CubeSlice,
        k: usize,
    ) -> Vec<SearchHit> {
        let admitted: std::collections::HashSet<DocId> = self.slice(slice).into_iter().collect();
        search_terms(index, terms, Similarity::Bm25, usize::MAX)
            .into_iter()
            .filter(|h| admitted.contains(&h.doc))
            .take(k)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{DocFormat, Document};
    use dwqa_nlp::Lexicon;

    fn store() -> DocumentStore {
        let mut s = DocumentStore::new();
        let mk = |url: &str, text: &str, loc: &str, y: i32, m: u32, d: u32| {
            Document::new(url, DocFormat::Plain, "", text)
                .with_location(loc)
                .with_date(Date::from_ymd(y, m, d).unwrap())
        };
        s.add(mk(
            "a",
            "financial crisis in the markets",
            "New York",
            1998,
            2,
            10,
        ));
        s.add(mk(
            "b",
            "financial crisis deepens further",
            "New York",
            1998,
            7,
            3,
        ));
        s.add(mk(
            "c",
            "financial news from the exchange",
            "London",
            1998,
            2,
            5,
        ));
        s.add(mk(
            "d",
            "weather report with temperatures",
            "Barcelona",
            2004,
            1,
            31,
        ));
        s
    }

    #[test]
    fn slice_by_location_and_time() {
        let md = MultidimensionalIndex::build(&store());
        // The paper's example from [11]: documents about "financial crisis"
        // published during the first quarter of 1998 in New York…
        let q1_ny = md.slice(
            &CubeSlice::all()
                .location("New York")
                .month(1998, Month::February),
        );
        assert_eq!(q1_ny, vec![DocId(0)]);
        // …then drilling down to July 1998.
        let jul_ny = md.slice(
            &CubeSlice::all()
                .location("New York")
                .month(1998, Month::July),
        );
        assert_eq!(jul_ny, vec![DocId(1)]);
    }

    #[test]
    fn year_rollup() {
        let md = MultidimensionalIndex::build(&store());
        assert_eq!(md.slice(&CubeSlice::all().year(1998)).len(), 3);
        assert_eq!(md.slice(&CubeSlice::all().year(2004)).len(), 1);
    }

    #[test]
    fn unrestricted_slice_admits_everything() {
        let md = MultidimensionalIndex::build(&store());
        assert_eq!(md.slice(&CubeSlice::all()).len(), 4);
    }

    #[test]
    fn location_counts() {
        let md = MultidimensionalIndex::build(&store());
        assert_eq!(md.location_count("new york"), 2);
        assert_eq!(md.location_count("Barcelona"), 1);
        assert_eq!(md.location_count("Madrid"), 0);
    }

    #[test]
    fn search_respects_the_slice() {
        let s = store();
        let lx = Lexicon::english();
        let idx = InvertedIndex::build(&lx, &s);
        let md = MultidimensionalIndex::build(&s);
        let terms = vec!["financial".to_owned(), "crisis".to_owned()];
        let everywhere = md.search(&idx, &terms, &CubeSlice::all(), 10);
        assert_eq!(everywhere.len(), 3);
        let ny_only = md.search(&idx, &terms, &CubeSlice::all().location("New York"), 10);
        assert_eq!(ny_only.len(), 2);
        assert!(ny_only
            .iter()
            .all(|h| h.doc == DocId(0) || h.doc == DocId(1)));
    }
}
