//! IR-n passage retrieval.
//!
//! IR-n (the paper's reference [9], AliQAn's Module 2 back end) ranks
//! *passages* — windows of `n` consecutive sentences — instead of whole
//! documents, so the QA extractor works on a small, dense piece of text.
//! The paper's footnote 6 fixes `n = 8` for its experiment; the window
//! size is a parameter here (and is swept in the benchmark suite).
//!
//! ## Index-driven candidate pruning
//!
//! Retrieval is driven by **sentence-level postings** (`Symbol →
//! (document, sentence)` pairs, built once at index time), in the spirit
//! of classic inverted-file query evaluation: a query is compiled once
//! into interned symbols with IDF-scaled weights ([`PassageQuery`]), the
//! candidate document set is gathered from the postings of the query's
//! terms, and only windows around matching sentences of candidate
//! documents are ever scored. Documents containing no query term are
//! never touched, so per-query cost is proportional to the number of
//! *matching* sentences, not to corpus size. The pre-postings exhaustive
//! scan is kept as [`PassageRetriever::retrieve_weighted_exhaustive`] —
//! the reference implementation the equivalence proptests and the
//! `benches/retrieval.rs` baseline run against.

use crate::document::{DocId, DocumentStore};
use crate::index::{index_terms, InvertedIndex};
use dwqa_common::{Interner, Symbol};
use dwqa_nlp::Lexicon;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// A retrieved passage.
#[derive(Debug, Clone, PartialEq)]
pub struct Passage {
    /// The source document.
    pub doc: DocId,
    /// Index of the first sentence of the window.
    pub first_sentence: usize,
    /// The sentences of the window.
    pub sentences: Vec<String>,
    /// Retrieval score.
    pub score: f64,
}

impl Passage {
    /// The passage text (sentences joined). Allocates; callers that only
    /// need to scan sentences should iterate [`Passage::sentences`] or
    /// use [`Passage::contains_folded`] instead.
    pub fn text(&self) -> String {
        self.sentences.join(" ")
    }

    /// Whether any sentence of the passage contains `needle` after case
    /// folding — without materialising the joined passage text.
    pub fn contains_folded(&self, needle: &str) -> bool {
        let needle = dwqa_common::text::fold(needle);
        self.sentences
            .iter()
            .any(|s| dwqa_common::text::fold(s).contains(&needle))
    }
}

/// One sentence-level posting: a document and a sentence inside it that
/// contains the term. Sorted by `(doc, sentence)` construction order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SentPosting {
    doc: u32,
    sent: u32,
}

/// A query compiled against a retriever's vocabulary: distinct terms
/// resolved to symbols (first-occurrence order, duplicate weights merged
/// by max) with the term's IDF baked into the weight. Terms outside the
/// vocabulary occur in no sentence and are dropped at compile time.
///
/// Compiling interns nothing and clones no strings — the query side of
/// retrieval is allocation-free per term.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PassageQuery {
    /// `(symbol, weight × idf)` in first-occurrence order.
    terms: Vec<(Symbol, f64)>,
}

impl PassageQuery {
    /// Number of distinct in-vocabulary terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether no query term is in the retriever's vocabulary.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// Counters from one pruned retrieval: how much of the corpus the
/// postings allowed the scorer to skip. Rendered by the engine's
/// `:stats` as the candidate-set / pruning read-out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetrievalStats {
    /// Documents in the corpus.
    pub docs_total: usize,
    /// Documents containing at least one query term (scored).
    pub docs_candidate: usize,
    /// Documents never touched (`docs_total - docs_candidate`).
    pub docs_pruned: usize,
    /// Candidate windows actually scored.
    pub windows_scored: usize,
}

/// A candidate window ranked for top-k selection. The ordering is the
/// total order the final ranking uses: score descending, then document
/// ascending, then start ascending — `a > b` means `a` ranks better.
#[derive(Debug, Clone, Copy)]
struct Ranked {
    score: f64,
    doc: u32,
    start: u32,
    len: u32,
}

impl PartialEq for Ranked {
    fn eq(&self, other: &Ranked) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Ranked {}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Ranked) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ranked {
    fn cmp(&self, other: &Ranked) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.doc.cmp(&self.doc))
            .then_with(|| other.start.cmp(&self.start))
    }
}

/// Precomputed sentence structure for passage retrieval.
#[derive(Debug, Clone)]
pub struct PassageRetriever {
    /// The term vocabulary (index-term strings → symbols).
    vocabulary: Interner,
    /// Per document: the sentence list.
    sentences: Vec<Vec<String>>,
    /// Per document, per sentence: the sorted, distinct index-term
    /// symbols (the exhaustive reference scans these).
    sentence_terms: Vec<Vec<Vec<Symbol>>>,
    /// Per symbol (by index): the sentence-level postings list.
    postings: Vec<Vec<SentPosting>>,
    /// Window size in sentences (the paper uses 8).
    window: usize,
}

impl PassageRetriever {
    /// Default window size (paper footnote 6).
    pub const DEFAULT_WINDOW: usize = 8;

    /// Up to this many non-overlapping windows may come from one
    /// document (a month-long weather page has several relevant spots).
    const PER_DOC: usize = 3;

    /// Builds the retriever over a document store, sequentially.
    pub fn build(lexicon: &Lexicon, store: &DocumentStore, window: usize) -> PassageRetriever {
        let per_doc: Vec<_> = store
            .iter()
            .map(|(_, doc)| Self::analyze_doc(lexicon, &doc.text))
            .collect();
        Self::assemble(per_doc, window)
    }

    /// Builds the retriever using `threads` worker threads. Sentence
    /// analysis dominates build time and is embarrassingly parallel;
    /// assembly (interning + postings) is sequential and cheap. Produces
    /// exactly the same structure as [`PassageRetriever::build`].
    pub fn build_parallel(
        lexicon: &Lexicon,
        store: &DocumentStore,
        window: usize,
        threads: usize,
    ) -> PassageRetriever {
        let threads = threads.max(1);
        let docs: Vec<&str> = store.iter().map(|(_, d)| d.text.as_str()).collect();
        let chunk = docs.len().div_ceil(threads).max(1);
        let per_doc = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = docs
                .chunks(chunk)
                .map(|chunk_docs| {
                    scope.spawn(move |_| {
                        chunk_docs
                            .iter()
                            .map(|text| Self::analyze_doc(lexicon, text))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut per_doc = Vec::with_capacity(docs.len());
            for handle in handles {
                per_doc.extend(handle.join().expect("passage worker thread panicked"));
            }
            per_doc
        })
        .expect("passage worker thread panicked");
        Self::assemble(per_doc, window)
    }

    /// Splits one document into sentences and their index terms.
    fn analyze_doc(lexicon: &Lexicon, text: &str) -> (Vec<String>, Vec<Vec<String>>) {
        let sents = dwqa_nlp::split_sentences(text);
        let terms: Vec<Vec<String>> = sents.iter().map(|s| index_terms(lexicon, s)).collect();
        (sents, terms)
    }

    /// Interns every sentence's terms and builds the postings lists.
    fn assemble(per_doc: Vec<(Vec<String>, Vec<Vec<String>>)>, window: usize) -> PassageRetriever {
        let mut vocabulary = Interner::new();
        let mut sentences = Vec::with_capacity(per_doc.len());
        let mut sentence_terms = Vec::with_capacity(per_doc.len());
        let mut postings: Vec<Vec<SentPosting>> = Vec::new();
        for (doc, (sents, term_lists)) in per_doc.into_iter().enumerate() {
            let mut doc_terms = Vec::with_capacity(term_lists.len());
            for (sent, terms) in term_lists.into_iter().enumerate() {
                let mut syms: Vec<Symbol> = terms.iter().map(|t| vocabulary.intern(t)).collect();
                syms.sort_unstable();
                syms.dedup();
                postings.resize(vocabulary.len(), Vec::new());
                for &sym in &syms {
                    postings[sym.index()].push(SentPosting {
                        doc: doc as u32,
                        sent: sent as u32,
                    });
                }
                doc_terms.push(syms);
            }
            sentences.push(sents);
            sentence_terms.push(doc_terms);
        }
        PassageRetriever {
            vocabulary,
            sentences,
            sentence_terms,
            postings,
            window: window.max(1),
        }
    }

    /// The configured window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.sentences.len()
    }

    /// Vocabulary size (distinct sentence-level index terms).
    pub fn num_terms(&self) -> usize {
        self.vocabulary.len()
    }

    /// Compiles a weighted term sequence into a [`PassageQuery`]:
    /// duplicates are merged (max weight, first-occurrence order kept),
    /// out-of-vocabulary terms are dropped, and each surviving term's
    /// weight is scaled by its IDF from `index`. No strings are cloned
    /// or interned — terms are resolved against the existing vocabulary.
    pub fn compile_query<'a, I>(&self, index: &InvertedIndex, terms: I) -> PassageQuery
    where
        I: IntoIterator<Item = (&'a str, f64)>,
    {
        let mut distinct: Vec<(Symbol, f64)> = Vec::new();
        let mut slot: HashMap<Symbol, usize> = HashMap::new();
        for (term, weight) in terms {
            let Some(sym) = self.vocabulary.get(term) else {
                continue; // occurs in no sentence: contributes 0 everywhere
            };
            match slot.get(&sym) {
                Some(&i) => distinct[i].1 = distinct[i].1.max(weight),
                None => {
                    slot.insert(sym, distinct.len());
                    distinct.push((sym, weight));
                }
            }
        }
        for (sym, weight) in &mut distinct {
            *weight *= index.idf(self.vocabulary.resolve(*sym));
        }
        PassageQuery { terms: distinct }
    }

    /// Retrieves the best passage of each matching document, ranked by
    /// score; at most `k` passages. Scores are sums of the IDF (from
    /// `index`) of the distinct query terms present in the window, so rare
    /// terms ("barcelona") dominate frequent ones.
    pub fn retrieve(&self, index: &InvertedIndex, terms: &[String], k: usize) -> Vec<Passage> {
        let query = self.compile_query(index, terms.iter().map(|t| (t.as_str(), 1.0)));
        self.retrieve_query(&query, k).0
    }

    /// Like [`PassageRetriever::retrieve`], with a per-term weight
    /// multiplying the term's IDF. The QA side uses this to make the
    /// question's *date* terms dominate window selection.
    pub fn retrieve_weighted(
        &self,
        index: &InvertedIndex,
        terms: &[(String, f64)],
        k: usize,
    ) -> Vec<Passage> {
        let query = self.compile_query(index, terms.iter().map(|(t, w)| (t.as_str(), *w)));
        self.retrieve_query(&query, k).0
    }

    /// The pruned retrieval core: gathers the candidate document set from
    /// the sentence postings, scores only windows around matching
    /// sentences, and selects the global top `k` with a bounded heap.
    /// Returns the ranked passages plus the pruning counters.
    ///
    /// Rank- and score-identical to
    /// [`PassageRetriever::retrieve_weighted_exhaustive`] (the proptests
    /// in this module prove byte-identical output).
    pub fn retrieve_query(&self, query: &PassageQuery, k: usize) -> (Vec<Passage>, RetrievalStats) {
        let span = dwqa_obs::span!("retrieve", k);
        let (passages, stats) = self.retrieve_query_core(query, k);
        span.record("docs_total", stats.docs_total);
        span.record("docs_candidate", stats.docs_candidate);
        span.record("docs_pruned", stats.docs_pruned);
        span.record("windows_scored", stats.windows_scored);
        span.record("returned", passages.len());
        dwqa_obs::counter_add(dwqa_obs::names::RETRIEVAL_COUNT, 1);
        dwqa_obs::counter_add(
            dwqa_obs::names::RETRIEVAL_DOCS_TOTAL,
            stats.docs_total as u64,
        );
        dwqa_obs::counter_add(
            dwqa_obs::names::RETRIEVAL_DOCS_CANDIDATE,
            stats.docs_candidate as u64,
        );
        dwqa_obs::counter_add(
            dwqa_obs::names::RETRIEVAL_DOCS_PRUNED,
            stats.docs_pruned as u64,
        );
        dwqa_obs::counter_add(
            dwqa_obs::names::RETRIEVAL_WINDOWS_SCORED,
            stats.windows_scored as u64,
        );
        (passages, stats)
    }

    /// The uninstrumented retrieval core behind
    /// [`PassageRetriever::retrieve_query`].
    fn retrieve_query_core(
        &self,
        query: &PassageQuery,
        k: usize,
    ) -> (Vec<Passage>, RetrievalStats) {
        let mut stats = RetrievalStats {
            docs_total: self.sentences.len(),
            docs_pruned: self.sentences.len(),
            ..RetrievalStats::default()
        };
        if query.terms.is_empty() || k == 0 {
            return (Vec::new(), stats);
        }

        // Candidate documents: any document holding ≥ 1 query term.
        let mut candidates: Vec<u32> = Vec::new();
        for &(sym, _) in &query.terms {
            candidates.extend(self.postings[sym.index()].iter().map(|p| p.doc));
        }
        candidates.sort_unstable();
        candidates.dedup();
        stats.docs_candidate = candidates.len();
        stats.docs_pruned = stats.docs_total - candidates.len();

        // Per-term cursor into its postings list; candidate docs ascend,
        // so each postings list is traversed once across all documents.
        let mut cursors: Vec<usize> = vec![0; query.terms.len()];
        // Scratch, reused across documents.
        let mut ranges: Vec<(usize, usize)> = vec![(0, 0); query.terms.len()];
        let mut matched: Vec<u32> = Vec::new();
        let mut hits: Vec<f64> = Vec::new();
        let mut windows: Vec<Ranked> = Vec::new();
        // Bounded min-heap: the worst of the current top-k on top.
        let mut top: BinaryHeap<std::cmp::Reverse<Ranked>> = BinaryHeap::with_capacity(k + 1);

        for &doc in &candidates {
            let n = self.sentences[doc as usize].len();
            if n == 0 {
                continue;
            }
            // This document's sentence range inside each term's postings.
            for (ti, &(sym, _)) in query.terms.iter().enumerate() {
                let plist = &self.postings[sym.index()];
                let mut c = cursors[ti];
                while c < plist.len() && plist[c].doc < doc {
                    c += 1;
                }
                let start = c;
                while c < plist.len() && plist[c].doc == doc {
                    c += 1;
                }
                cursors[ti] = c;
                ranges[ti] = (start, c);
            }
            // Matching sentences (sorted, distinct) and their per-sentence
            // hit weights, accumulated in query-term order so floating-
            // point sums match the exhaustive reference bit for bit.
            matched.clear();
            for (ti, _) in query.terms.iter().enumerate() {
                let (lo, hi) = ranges[ti];
                matched.extend(
                    self.postings[query.terms[ti].0.index()][lo..hi]
                        .iter()
                        .map(|p| p.sent),
                );
            }
            matched.sort_unstable();
            matched.dedup();
            hits.clear();
            hits.resize(matched.len(), 0.0);
            for (ti, &(sym, weight)) in query.terms.iter().enumerate() {
                let (lo, hi) = ranges[ti];
                for p in &self.postings[sym.index()][lo..hi] {
                    let mi = matched
                        .binary_search(&p.sent)
                        .expect("matched holds every posted sentence");
                    hits[mi] += weight;
                }
            }

            let starts_count = if n > self.window {
                n - self.window + 1
            } else {
                1
            };
            // Candidate starts: union of the start ranges around each
            // matching sentence, walked in ascending order.
            windows.clear();
            let mut per_term_ptr: Vec<usize> = ranges.iter().map(|&(lo, _)| lo).collect();
            let mut matched_ptr = 0usize;
            let mut next_start = 0usize;
            for &sent in &matched {
                let sent = sent as usize;
                let lo = (sent + 1).saturating_sub(self.window).max(next_start);
                let hi = sent.min(starts_count - 1);
                if lo > hi {
                    continue;
                }
                for start in lo..=hi {
                    let end = (start + self.window).min(n);
                    // Term presence via the per-term sentence cursors:
                    // summed in query order (float-identical to the
                    // exhaustive scan).
                    let mut score = 0.0;
                    for (ti, &(sym, weight)) in query.terms.iter().enumerate() {
                        let plist = &self.postings[sym.index()];
                        let (_, hi_t) = ranges[ti];
                        let mut p = per_term_ptr[ti];
                        while p < hi_t && (plist[p].sent as usize) < start {
                            p += 1;
                        }
                        per_term_ptr[ti] = p;
                        if p < hi_t && (plist[p].sent as usize) < end {
                            score += weight;
                        }
                    }
                    stats.windows_scored += 1;
                    if score <= 0.0 {
                        continue;
                    }
                    // Proximity bonus: query terms co-occurring in one
                    // sentence are worth more than the same terms
                    // scattered over the window (this is what pins a
                    // dated question to the right day of a month-long
                    // weather page).
                    while matched_ptr < matched.len() && (matched[matched_ptr] as usize) < start {
                        matched_ptr += 1;
                    }
                    let mut best_sentence = 0.0f64;
                    let mut best_pos = 0usize;
                    let mut mi = matched_ptr;
                    while mi < matched.len() && (matched[mi] as usize) < end {
                        if hits[mi] > best_sentence {
                            best_sentence = hits[mi];
                            best_pos = matched[mi] as usize - start;
                        }
                        mi += 1;
                    }
                    score += 0.5 * best_sentence;
                    // Positional tie-break: among windows containing the
                    // same best-matching sentence, prefer the one where it
                    // appears early, so the sentences *after* it (where
                    // the answer to a dated heading lives) stay inside
                    // the window.
                    let len = (end - start).max(1) as f64;
                    score += 0.01 * best_sentence * (1.0 - best_pos as f64 / len);
                    windows.push(Ranked {
                        score,
                        doc,
                        start: start as u32,
                        len: (end - start) as u32,
                    });
                }
                next_start = hi + 1;
            }
            // Greedy non-overlapping selection of the doc's best windows.
            windows.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(Ordering::Equal)
                    .then(a.start.cmp(&b.start))
            });
            let mut taken: Vec<(u32, u32)> = Vec::new();
            for &w in &windows {
                if taken.len() == Self::PER_DOC {
                    break;
                }
                let overlaps = taken
                    .iter()
                    .any(|&(s, l)| w.start < s + l && s < w.start + w.len);
                if overlaps {
                    continue;
                }
                taken.push((w.start, w.len));
                if top.len() < k {
                    top.push(std::cmp::Reverse(w));
                } else if let Some(&std::cmp::Reverse(worst)) = top.peek() {
                    if w > worst {
                        top.pop();
                        top.push(std::cmp::Reverse(w));
                    }
                }
            }
        }

        // Materialise the survivors best-first; sentence strings are
        // cloned only for the k passages actually returned.
        let mut best: Vec<Ranked> = top.into_iter().map(|r| r.0).collect();
        best.sort_by(|a, b| b.cmp(a));
        let passages = best
            .into_iter()
            .map(|r| {
                let start = r.start as usize;
                let len = r.len as usize;
                Passage {
                    doc: DocId(r.doc),
                    first_sentence: start,
                    sentences: self.sentences[r.doc as usize][start..start + len].to_vec(),
                    score: r.score,
                }
            })
            .collect();
        (passages, stats)
    }

    /// The pre-postings exhaustive scan: slides a window over **every
    /// sentence of every document** and scores each position. Kept as the
    /// reference implementation — the equivalence proptests and
    /// `benches/retrieval.rs` compare the pruned path against it; it is
    /// not part of the serving path.
    pub fn retrieve_weighted_exhaustive(
        &self,
        index: &InvertedIndex,
        terms: &[(String, f64)],
        k: usize,
    ) -> Vec<Passage> {
        // The original O(q²) first-occurrence dedup, then symbols
        // resolved for membership tests (out-of-vocabulary terms keep a
        // slot and simply never match, exactly like the old string sets).
        let query: Vec<(Option<Symbol>, f64)> = {
            let mut distinct: Vec<(&str, f64)> = Vec::new();
            for (t, w) in terms {
                match distinct.iter_mut().find(|(d, _)| *d == t) {
                    Some(entry) => entry.1 = entry.1.max(*w),
                    None => distinct.push((t.as_str(), *w)),
                }
            }
            distinct
                .into_iter()
                .map(|(t, w)| (self.vocabulary.get(t), w * index.idf(t)))
                .collect()
        };
        let contains = |doc: usize, sent: usize, sym: Option<Symbol>| -> bool {
            sym.is_some_and(|s| self.sentence_terms[doc][sent].binary_search(&s).is_ok())
        };
        let mut best: Vec<Passage> = Vec::new();
        for (doc_idx, sents) in self.sentences.iter().enumerate() {
            let mut candidates: Vec<(f64, usize, usize)> = Vec::new(); // (score, start, len)
            let n = sents.len();
            if n == 0 {
                continue;
            }
            let starts = if n > self.window {
                n - self.window + 1
            } else {
                1
            };
            for start in 0..starts {
                let end = (start + self.window).min(n);
                let mut score = 0.0;
                for &(sym, idf) in &query {
                    if (start..end).any(|s| contains(doc_idx, s, sym)) {
                        score += idf;
                    }
                }
                if score <= 0.0 {
                    continue;
                }
                let mut best_sentence = 0.0f64;
                let mut best_pos = 0usize;
                for (pos, s) in (start..end).enumerate() {
                    let hit: f64 = query
                        .iter()
                        .filter(|&&(sym, _)| contains(doc_idx, s, sym))
                        .map(|&(_, idf)| idf)
                        .sum();
                    if hit > best_sentence {
                        best_sentence = hit;
                        best_pos = pos;
                    }
                }
                score += 0.5 * best_sentence;
                let len = (end - start).max(1) as f64;
                score += 0.01 * best_sentence * (1.0 - best_pos as f64 / len);
                candidates.push((score, start, end - start));
            }
            candidates.sort_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .unwrap_or(Ordering::Equal)
                    .then(a.1.cmp(&b.1))
            });
            let mut taken: Vec<(usize, usize)> = Vec::new();
            for (score, start, len) in candidates {
                if taken.len() == Self::PER_DOC {
                    break;
                }
                let overlaps = taken.iter().any(|&(s, l)| start < s + l && s < start + len);
                if overlaps {
                    continue;
                }
                taken.push((start, len));
                best.push(Passage {
                    doc: DocId(doc_idx as u32),
                    first_sentence: start,
                    sentences: sents[start..start + len].to_vec(),
                    score,
                });
            }
        }
        best.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        best.truncate(k);
        best
    }

    /// Convenience: analyse a free-text query with the lexicon, then
    /// retrieve.
    pub fn retrieve_text(
        &self,
        index: &InvertedIndex,
        lexicon: &Lexicon,
        query: &str,
        k: usize,
    ) -> Vec<Passage> {
        self.retrieve(index, &index_terms(lexicon, query), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{DocFormat, Document};
    use proptest::prelude::*;

    fn setup(texts: &[&str], window: usize) -> (PassageRetriever, InvertedIndex, Lexicon) {
        let lx = Lexicon::english();
        let mut s = DocumentStore::new();
        for (i, t) in texts.iter().enumerate() {
            s.add(Document::new(&format!("doc{i}"), DocFormat::Plain, "", t));
        }
        let idx = InvertedIndex::build(&lx, &s);
        (PassageRetriever::build(&lx, &s, window), idx, lx)
    }

    #[test]
    fn finds_the_dense_window() {
        let long_doc = "Filler sentence one. Filler sentence two. Filler sentence three. \
            Filler sentence four. The temperature in Barcelona was 8 degrees. \
            January readings were mild. Filler sentence five. Filler sentence six. \
            Filler sentence seven. Filler sentence eight. Filler sentence nine.";
        let (pr, idx, lx) = setup(&[long_doc], 2);
        let passages = pr.retrieve_text(&idx, &lx, "temperature Barcelona January", 3);
        assert_eq!(passages.len(), 1);
        let text = passages[0].text();
        assert!(text.contains("Barcelona"));
        assert!(text.contains("January"));
        assert_eq!(passages[0].sentences.len(), 2);
    }

    #[test]
    fn window_never_exceeds_document() {
        let (pr, idx, lx) = setup(&["Only one sentence about weather."], 8);
        let passages = pr.retrieve_text(&idx, &lx, "weather", 3);
        assert_eq!(passages.len(), 1);
        assert_eq!(passages[0].sentences.len(), 1);
        assert_eq!(passages[0].first_sentence, 0);
    }

    #[test]
    fn one_passage_per_document_ranked_across_documents() {
        let (pr, idx, lx) = setup(
            &[
                "The weather is nice. Nothing else here.",
                "Barcelona weather today. The temperature in Barcelona is 8 degrees.",
                "Completely unrelated text about databases.",
            ],
            8,
        );
        let passages = pr.retrieve_text(&idx, &lx, "temperature Barcelona weather", 5);
        assert_eq!(passages.len(), 2);
        assert_eq!(passages[0].doc, DocId(1));
        assert!(passages[0].score > passages[1].score);
    }

    #[test]
    fn no_matching_terms_no_passages() {
        let (pr, idx, lx) = setup(&["The weather is nice."], 8);
        assert!(pr.retrieve_text(&idx, &lx, "volcano", 3).is_empty());
    }

    #[test]
    fn duplicate_query_terms_do_not_double_count() {
        let (pr, idx, _) = setup(&["weather here. weather there."], 1);
        let a = pr.retrieve(&idx, &["weather".to_owned()], 1);
        let b = pr.retrieve(&idx, &["weather".to_owned(), "weather".to_owned()], 1);
        assert_eq!(a[0].score, b[0].score);
    }

    #[test]
    fn default_window_is_paper_setting() {
        assert_eq!(PassageRetriever::DEFAULT_WINDOW, 8);
    }

    #[test]
    fn pruning_counters_report_untouched_documents() {
        let (pr, idx, _) = setup(
            &[
                "Barcelona weather today.",
                "Completely unrelated text about databases.",
                "More unrelated filler about engines.",
            ],
            4,
        );
        let query = pr.compile_query(&idx, [("barcelona", 1.0)]);
        let (passages, stats) = pr.retrieve_query(&query, 5);
        assert_eq!(passages.len(), 1);
        assert_eq!(stats.docs_total, 3);
        assert_eq!(stats.docs_candidate, 1);
        assert_eq!(stats.docs_pruned, 2);
        assert!(stats.windows_scored >= 1);
    }

    #[test]
    fn compiled_query_drops_unknown_terms_and_merges_duplicates() {
        let (pr, idx, _) = setup(&["weather here. weather there."], 1);
        let query = pr.compile_query(&idx, [("weather", 1.0), ("volcano", 9.0), ("weather", 3.0)]);
        assert_eq!(query.len(), 1);
        let empty = pr.compile_query(&idx, [("volcano", 1.0)]);
        assert!(empty.is_empty());
        assert!(pr.retrieve_query(&empty, 5).0.is_empty());
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let lx = Lexicon::english();
        let mut s = DocumentStore::new();
        for i in 0..24 {
            s.add(Document::new(
                &format!("d{i}"),
                DocFormat::Plain,
                "",
                &format!("weather in city number {i}. temperature {i} degrees. filler text."),
            ));
        }
        let idx = InvertedIndex::build(&lx, &s);
        let seq = PassageRetriever::build(&lx, &s, 4);
        let par = PassageRetriever::build_parallel(&lx, &s, 4, 4);
        assert_eq!(seq.num_docs(), par.num_docs());
        assert_eq!(seq.num_terms(), par.num_terms());
        let terms = vec![("weather".to_owned(), 1.0), ("temperature".to_owned(), 2.0)];
        assert_eq!(
            seq.retrieve_weighted(&idx, &terms, 10),
            par.retrieve_weighted(&idx, &terms, 10)
        );
    }

    // --- exhaustive-equivalence property tests -------------------------

    /// Words the generated corpora and queries draw from. A mix of
    /// content words that survive the stop list plus a couple of terms
    /// that never appear in any corpus ("volcano"-style misses).
    const POOL: &[&str] = &[
        "temperature",
        "weather",
        "barcelona",
        "sky",
        "rain",
        "ticket",
        "airport",
        "sale",
        "volcano",
        "quasar",
    ];

    fn word() -> impl Strategy<Value = String> {
        (0usize..POOL.len()).prop_map(|i| POOL[i].to_owned())
    }

    fn corpus() -> impl Strategy<Value = Vec<String>> {
        // Up to 6 documents of up to 7 sentences of up to 5 pool words.
        proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(word(), 1..5), 0..7).prop_map(
                |sents| {
                    sents
                        .iter()
                        .map(|words| format!("{}.", words.join(" ")))
                        .collect::<Vec<_>>()
                        .join(" ")
                },
            ),
            0..6,
        )
    }

    /// `(word, weight)` pairs; the weight cycles over zero, the plain and
    /// boosted paper values, and a fractional one.
    fn weighted_term() -> impl Strategy<Value = (String, f64)> {
        const WEIGHTS: &[f64] = &[0.0, 1.0, 3.0, 0.75];
        (0usize..POOL.len() * WEIGHTS.len())
            .prop_map(|i| (POOL[i % POOL.len()].to_owned(), WEIGHTS[i / POOL.len()]))
    }

    fn weighted_query() -> impl Strategy<Value = Vec<(String, f64)>> {
        proptest::collection::vec(weighted_term(), 0..6)
    }

    fn equivalent(texts: &[String], terms: &[(String, f64)], window: usize, k: usize) {
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (pr, idx, _) = setup(&refs, window);
        let pruned = pr.retrieve_weighted(&idx, terms, k);
        let exhaustive = pr.retrieve_weighted_exhaustive(&idx, terms, k);
        assert_eq!(pruned, exhaustive, "window={window} k={k} terms={terms:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_pruned_matches_exhaustive(
            texts in corpus(),
            terms in weighted_query(),
            window in 1usize..5,
            k in 0usize..10,
        ) {
            equivalent(&texts, &terms, window, k);
        }

        #[test]
        fn prop_unweighted_retrieve_matches_exhaustive(
            texts in corpus(),
            words in proptest::collection::vec(word(), 0..5),
            window in 1usize..4,
        ) {
            let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
            let (pr, idx, _) = setup(&refs, window);
            let weighted: Vec<(String, f64)> =
                words.iter().map(|w| (w.clone(), 1.0)).collect();
            prop_assert_eq!(
                pr.retrieve(&idx, &words, 5),
                pr.retrieve_weighted_exhaustive(&idx, &weighted, 5)
            );
        }
    }

    #[test]
    fn equivalence_edge_cases() {
        let texts: Vec<String> = vec![
            "temperature in barcelona. rain all day. sky clear.".to_owned(),
            "ticket sale at the airport.".to_owned(),
            String::new(),
        ];
        // Empty query.
        equivalent(&texts, &[], 3, 5);
        // k = 0 and k far beyond the number of matches.
        let q = vec![("temperature".to_owned(), 2.0), ("sale".to_owned(), 1.0)];
        equivalent(&texts, &q, 2, 0);
        equivalent(&texts, &q, 2, 100);
        // Only out-of-vocabulary terms.
        equivalent(&texts, &[("volcano".to_owned(), 5.0)], 2, 3);
        // Zero-weight terms must not promote windows.
        equivalent(&texts, &[("rain".to_owned(), 0.0)], 2, 3);
    }
}
