//! IR-n passage retrieval.
//!
//! IR-n (the paper's reference [9], AliQAn's Module 2 back end) ranks
//! *passages* — windows of `n` consecutive sentences — instead of whole
//! documents, so the QA extractor works on a small, dense piece of text.
//! The paper's footnote 6 fixes `n = 8` for its experiment; the window
//! size is a parameter here (and is swept in the benchmark suite).

use crate::document::{DocId, DocumentStore};
use crate::index::{index_terms, InvertedIndex};
use dwqa_nlp::Lexicon;
use std::collections::HashSet;

/// A retrieved passage.
#[derive(Debug, Clone, PartialEq)]
pub struct Passage {
    /// The source document.
    pub doc: DocId,
    /// Index of the first sentence of the window.
    pub first_sentence: usize,
    /// The sentences of the window.
    pub sentences: Vec<String>,
    /// Retrieval score.
    pub score: f64,
}

impl Passage {
    /// The passage text (sentences joined).
    pub fn text(&self) -> String {
        self.sentences.join(" ")
    }
}

/// Precomputed sentence structure for passage retrieval.
#[derive(Debug, Clone)]
pub struct PassageRetriever {
    /// Per document: the sentence list.
    sentences: Vec<Vec<String>>,
    /// Per document, per sentence: the set of index terms.
    terms: Vec<Vec<HashSet<String>>>,
    /// Window size in sentences (the paper uses 8).
    window: usize,
}

impl PassageRetriever {
    /// Default window size (paper footnote 6).
    pub const DEFAULT_WINDOW: usize = 8;

    /// Builds the retriever over a document store.
    pub fn build(lexicon: &Lexicon, store: &DocumentStore, window: usize) -> PassageRetriever {
        let mut sentences = Vec::with_capacity(store.len());
        let mut terms = Vec::with_capacity(store.len());
        for (_, doc) in store.iter() {
            let sents = dwqa_nlp::split_sentences(&doc.text);
            let term_sets: Vec<HashSet<String>> = sents
                .iter()
                .map(|s| index_terms(lexicon, s).into_iter().collect())
                .collect();
            sentences.push(sents);
            terms.push(term_sets);
        }
        PassageRetriever {
            sentences,
            terms,
            window: window.max(1),
        }
    }

    /// The configured window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Retrieves the best passage of each matching document, ranked by
    /// score; at most `k` passages. Scores are sums of the IDF (from
    /// `index`) of the distinct query terms present in the window, so rare
    /// terms ("barcelona") dominate frequent ones.
    pub fn retrieve(&self, index: &InvertedIndex, terms: &[String], k: usize) -> Vec<Passage> {
        let weighted: Vec<(String, f64)> = terms.iter().map(|t| (t.clone(), 1.0)).collect();
        self.retrieve_weighted(index, &weighted, k)
    }

    /// Like [`PassageRetriever::retrieve`], with a per-term weight
    /// multiplying the term's IDF. The QA side uses this to make the
    /// question's *date* terms dominate window selection.
    pub fn retrieve_weighted(
        &self,
        index: &InvertedIndex,
        terms: &[(String, f64)],
        k: usize,
    ) -> Vec<Passage> {
        let query: Vec<(&str, f64)> = {
            let mut distinct: Vec<(&str, f64)> = Vec::new();
            for (t, w) in terms {
                match distinct.iter_mut().find(|(d, _)| d == t) {
                    Some(entry) => entry.1 = entry.1.max(*w),
                    None => distinct.push((t.as_str(), *w)),
                }
            }
            distinct
                .into_iter()
                .map(|(t, w)| (t, w * index.idf(t)))
                .collect()
        };
        // Up to this many non-overlapping windows may come from one
        // document (a month-long weather page has several relevant spots).
        const PER_DOC: usize = 3;
        let mut best: Vec<Passage> = Vec::new();
        for (doc_idx, sents) in self.sentences.iter().enumerate() {
            let term_sets = &self.terms[doc_idx];
            let mut candidates: Vec<(f64, usize, usize)> = Vec::new(); // (score, start, len)
            let n = sents.len();
            if n == 0 {
                continue;
            }
            let starts = if n > self.window {
                n - self.window + 1
            } else {
                1
            };
            for start in 0..starts {
                let end = (start + self.window).min(n);
                let mut score = 0.0;
                for (term, idf) in &query {
                    if term_sets[start..end].iter().any(|s| s.contains(*term)) {
                        score += idf;
                    }
                }
                if score <= 0.0 {
                    continue;
                }
                // Proximity bonus: query terms co-occurring in one sentence
                // are worth more than the same terms scattered over the
                // window (this is what pins a dated question to the right
                // day of a month-long weather page).
                let mut best_sentence = 0.0f64;
                let mut best_pos = 0usize;
                for (pos, s) in term_sets[start..end].iter().enumerate() {
                    let hit: f64 = query
                        .iter()
                        .filter(|(t, _)| s.contains(*t))
                        .map(|(_, idf)| idf)
                        .sum();
                    if hit > best_sentence {
                        best_sentence = hit;
                        best_pos = pos;
                    }
                }
                score += 0.5 * best_sentence;
                // Positional tie-break: among windows containing the same
                // best-matching sentence, prefer the one where it appears
                // early, so the sentences *after* it (where the answer to
                // a dated heading lives) stay inside the window.
                let len = (end - start).max(1) as f64;
                score += 0.01 * best_sentence * (1.0 - best_pos as f64 / len);
                candidates.push((score, start, end - start));
            }
            // Greedy non-overlapping selection of the doc's best windows.
            candidates.sort_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.1.cmp(&b.1))
            });
            let mut taken: Vec<(usize, usize)> = Vec::new();
            for (score, start, len) in candidates {
                if taken.len() == PER_DOC {
                    break;
                }
                let overlaps = taken.iter().any(|&(s, l)| start < s + l && s < start + len);
                if overlaps {
                    continue;
                }
                taken.push((start, len));
                best.push(Passage {
                    doc: DocId(doc_idx as u32),
                    first_sentence: start,
                    sentences: sents[start..start + len].to_vec(),
                    score,
                });
            }
        }
        best.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        best.truncate(k);
        best
    }

    /// Convenience: analyse a free-text query with the lexicon, then
    /// retrieve.
    pub fn retrieve_text(
        &self,
        index: &InvertedIndex,
        lexicon: &Lexicon,
        query: &str,
        k: usize,
    ) -> Vec<Passage> {
        self.retrieve(index, &index_terms(lexicon, query), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{DocFormat, Document};

    fn setup(texts: &[&str], window: usize) -> (PassageRetriever, InvertedIndex, Lexicon) {
        let lx = Lexicon::english();
        let mut s = DocumentStore::new();
        for (i, t) in texts.iter().enumerate() {
            s.add(Document::new(&format!("doc{i}"), DocFormat::Plain, "", t));
        }
        let idx = InvertedIndex::build(&lx, &s);
        (PassageRetriever::build(&lx, &s, window), idx, lx)
    }

    #[test]
    fn finds_the_dense_window() {
        let long_doc = "Filler sentence one. Filler sentence two. Filler sentence three. \
            Filler sentence four. The temperature in Barcelona was 8 degrees. \
            January readings were mild. Filler sentence five. Filler sentence six. \
            Filler sentence seven. Filler sentence eight. Filler sentence nine.";
        let (pr, idx, lx) = setup(&[long_doc], 2);
        let passages = pr.retrieve_text(&idx, &lx, "temperature Barcelona January", 3);
        assert_eq!(passages.len(), 1);
        let text = passages[0].text();
        assert!(text.contains("Barcelona"));
        assert!(text.contains("January"));
        assert_eq!(passages[0].sentences.len(), 2);
    }

    #[test]
    fn window_never_exceeds_document() {
        let (pr, idx, lx) = setup(&["Only one sentence about weather."], 8);
        let passages = pr.retrieve_text(&idx, &lx, "weather", 3);
        assert_eq!(passages.len(), 1);
        assert_eq!(passages[0].sentences.len(), 1);
        assert_eq!(passages[0].first_sentence, 0);
    }

    #[test]
    fn one_passage_per_document_ranked_across_documents() {
        let (pr, idx, lx) = setup(
            &[
                "The weather is nice. Nothing else here.",
                "Barcelona weather today. The temperature in Barcelona is 8 degrees.",
                "Completely unrelated text about databases.",
            ],
            8,
        );
        let passages = pr.retrieve_text(&idx, &lx, "temperature Barcelona weather", 5);
        assert_eq!(passages.len(), 2);
        assert_eq!(passages[0].doc, DocId(1));
        assert!(passages[0].score > passages[1].score);
    }

    #[test]
    fn no_matching_terms_no_passages() {
        let (pr, idx, lx) = setup(&["The weather is nice."], 8);
        assert!(pr.retrieve_text(&idx, &lx, "volcano", 3).is_empty());
    }

    #[test]
    fn duplicate_query_terms_do_not_double_count() {
        let (pr, idx, _) = setup(&["weather here. weather there."], 1);
        let a = pr.retrieve(&idx, &["weather".to_owned()], 1);
        let b = pr.retrieve(&idx, &["weather".to_owned(), "weather".to_owned()], 1);
        assert_eq!(a[0].score, b[0].score);
    }

    #[test]
    fn default_window_is_paper_setting() {
        assert_eq!(PassageRetriever::DEFAULT_WINDOW, 8);
    }
}
