//! Ranked document retrieval.

use crate::document::DocId;
use crate::index::InvertedIndex;
use dwqa_nlp::Lexicon;
use std::collections::HashMap;

/// The similarity function used for ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Similarity {
    /// Okapi BM25 (k1 = 1.2, b = 0.75).
    Bm25,
    /// TF-IDF with cosine-style length normalisation.
    TfIdf,
}

/// One ranked search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// The matching document.
    pub doc: DocId,
    /// The similarity score (higher is better).
    pub score: f64,
}

const BM25_K1: f64 = 1.2;
const BM25_B: f64 = 0.75;

/// Scores all documents matching any query term, returning the top `k` in
/// descending score order (ties broken by ascending doc id, so results are
/// deterministic).
pub fn search(
    index: &InvertedIndex,
    lexicon: &Lexicon,
    query: &str,
    similarity: Similarity,
    k: usize,
) -> Vec<SearchHit> {
    let terms = crate::index::index_terms(lexicon, query);
    search_terms(index, &terms, similarity, k)
}

/// Like [`search`], for a pre-normalised term list (the QA side passes the
/// lemmas of the question's main Syntactic Blocks directly).
pub fn search_terms(
    index: &InvertedIndex,
    terms: &[String],
    similarity: Similarity,
    k: usize,
) -> Vec<SearchHit> {
    let mut scores: HashMap<DocId, f64> = HashMap::new();
    let avgdl = index.avg_doc_len().max(1e-9);
    // Duplicate query terms add weight, as in standard bag-of-words.
    for term in terms {
        let idf = index.idf(term);
        let Some(postings) = index.postings(term) else {
            continue;
        };
        for p in postings {
            let tf = f64::from(p.tf);
            let dl = f64::from(index.doc_len(p.doc));
            let contribution = match similarity {
                Similarity::Bm25 => {
                    let denom = tf + BM25_K1 * (1.0 - BM25_B + BM25_B * dl / avgdl);
                    idf * tf * (BM25_K1 + 1.0) / denom
                }
                Similarity::TfIdf => (1.0 + tf.ln()) * idf / dl.max(1.0).sqrt(),
            };
            *scores.entry(p.doc).or_insert(0.0) += contribution;
        }
    }
    let mut hits: Vec<SearchHit> = scores
        .into_iter()
        .map(|(doc, score)| SearchHit { doc, score })
        .collect();
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.doc.cmp(&b.doc))
    });
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{DocFormat, Document, DocumentStore};

    fn index(texts: &[&str]) -> (InvertedIndex, Lexicon) {
        let lx = Lexicon::english();
        let mut s = DocumentStore::new();
        for (i, t) in texts.iter().enumerate() {
            s.add(Document::new(&format!("doc{i}"), DocFormat::Plain, "", t));
        }
        (InvertedIndex::build(&lx, &s), lx)
    }

    #[test]
    fn relevant_documents_rank_first() {
        let (idx, lx) = index(&[
            "The weather in Barcelona with temperature readings for January.",
            "Ticket sales increased in the last minutes before a flight.",
            "Barcelona temperature in January was mild.",
        ]);
        for sim in [Similarity::Bm25, Similarity::TfIdf] {
            let hits = search(&idx, &lx, "temperature in January in Barcelona", sim, 3);
            assert!(!hits.is_empty());
            // Both weather documents outrank the sales document.
            let rank_of = |d: u32| hits.iter().position(|h| h.doc == DocId(d));
            let sales = rank_of(1);
            assert!(sales.is_none() || sales > rank_of(0).max(rank_of(2)));
        }
    }

    #[test]
    fn no_match_means_no_hits() {
        let (idx, lx) = index(&["weather in Barcelona"]);
        assert!(search(&idx, &lx, "volcano eruptions", Similarity::Bm25, 5).is_empty());
    }

    #[test]
    fn k_truncates_results() {
        let (idx, lx) = index(&["weather one", "weather two", "weather three"]);
        let hits = search(&idx, &lx, "weather", Similarity::Bm25, 2);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn scores_are_descending_and_deterministic() {
        let (idx, lx) = index(&["weather weather weather", "weather", "weather weather"]);
        let hits = search(&idx, &lx, "weather", Similarity::Bm25, 10);
        for pair in hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
        let again = search(&idx, &lx, "weather", Similarity::Bm25, 10);
        assert_eq!(hits, again);
    }

    #[test]
    fn rare_terms_dominate_ranking() {
        let (idx, lx) = index(&["weather weather weather weather", "weather Barcelona"]);
        let hits = search(&idx, &lx, "Barcelona weather", Similarity::Bm25, 2);
        assert_eq!(hits[0].doc, DocId(1));
    }

    #[test]
    fn empty_query_returns_nothing() {
        let (idx, lx) = index(&["weather in Barcelona"]);
        assert!(search(&idx, &lx, "", Similarity::Bm25, 5).is_empty());
        assert!(search(&idx, &lx, "the of and", Similarity::Bm25, 5).is_empty());
    }

    #[test]
    fn bm25_and_tfidf_agree_on_the_obvious_winner() {
        let (idx, lx) = index(&[
            "temperature temperature temperature Barcelona weather",
            "unrelated text about databases and reports",
        ]);
        for sim in [Similarity::Bm25, Similarity::TfIdf] {
            let hits = search(&idx, &lx, "temperature Barcelona", sim, 2);
            assert_eq!(hits[0].doc, DocId(0), "{sim:?}");
        }
    }

    #[test]
    fn search_terms_accepts_preanalysed_lemmas() {
        let (idx, _) = index(&["the temperature in Barcelona"]);
        let hits = search_terms(
            &idx,
            &["temperature".to_owned(), "barcelona".to_owned()],
            Similarity::Bm25,
            5,
        );
        assert_eq!(hits.len(), 1);
    }
}
