//! Fluent builders with validation for multidimensional schemas.

use crate::error::{ModelError, Result};
use crate::schema::{
    Attribute, Dimension, DimensionId, DimensionRole, Fact, Level, Measure, Schema,
};
use crate::types::{Additivity, DataType};
use std::collections::{HashMap, HashSet};

/// Builds one hierarchy level.
#[derive(Debug, Default)]
pub struct LevelBuilder {
    descriptor: Option<Attribute>,
    attributes: Vec<Attribute>,
}

impl LevelBuilder {
    /// Declares the descriptor (`«D»`) attribute identifying level members.
    pub fn descriptor(mut self, name: &str, data_type: DataType) -> Self {
        self.descriptor = Some(Attribute {
            name: name.to_owned(),
            data_type,
        });
        self
    }

    /// Adds a dimension attribute (`«DA»`).
    pub fn attribute(mut self, name: &str, data_type: DataType) -> Self {
        self.attributes.push(Attribute {
            name: name.to_owned(),
            data_type,
        });
        self
    }
}

/// Builds one dimension with its roll-up hierarchy.
#[derive(Debug)]
pub struct DimensionBuilder {
    name: String,
    levels: Vec<(String, LevelBuilder)>,
    rollups: Vec<(String, String)>,
}

impl DimensionBuilder {
    fn new(name: &str) -> Self {
        DimensionBuilder {
            name: name.to_owned(),
            levels: Vec::new(),
            rollups: Vec::new(),
        }
    }

    /// Declares a level (`«Base»` class). The first declared level is not
    /// necessarily the base level: the base is inferred from the roll-up
    /// chain (a single level is trivially the base).
    pub fn level(mut self, name: &str, f: impl FnOnce(LevelBuilder) -> LevelBuilder) -> Self {
        self.levels
            .push((name.to_owned(), f(LevelBuilder::default())));
        self
    }

    /// Declares that `child` rolls up to `parent` (`«Rolls-upTo»`).
    pub fn rolls_up(mut self, child: &str, parent: &str) -> Self {
        self.rollups.push((child.to_owned(), parent.to_owned()));
        self
    }

    fn build(self) -> Result<Dimension> {
        let dim_name = self.name.clone();
        if self.levels.is_empty() {
            return Err(ModelError::EmptyDimension {
                dimension: dim_name,
            });
        }
        let mut seen = HashSet::new();
        for (name, _) in &self.levels {
            if !seen.insert(name.clone()) {
                return Err(ModelError::DuplicateName {
                    kind: "level",
                    name: name.clone(),
                });
            }
        }
        // Resolve roll-ups into a parent map, enforcing a linear chain.
        let mut parent: HashMap<&str, &str> = HashMap::new();
        let mut has_child: HashSet<&str> = HashSet::new();
        for (child, par) in &self.rollups {
            for endpoint in [child, par] {
                if !seen.contains(endpoint.as_str()) {
                    return Err(ModelError::UnknownLevel {
                        dimension: dim_name,
                        level: endpoint.clone(),
                    });
                }
            }
            if parent.insert(child, par).is_some() {
                return Err(ModelError::MultipleParents {
                    dimension: dim_name,
                    level: child.clone(),
                });
            }
            if !has_child.insert(par.as_str()) {
                // Two children rolling into the same parent would make the
                // hierarchy a tree, not a chain; the profile we implement
                // (like the paper's Figure 1) uses linear hierarchies.
                return Err(ModelError::DisconnectedHierarchy {
                    dimension: dim_name,
                });
            }
        }
        // Find the base: the unique level that is nobody's parent.
        let bases: Vec<&str> = self
            .levels
            .iter()
            .map(|(n, _)| n.as_str())
            .filter(|n| !has_child.contains(n))
            .collect();
        if bases.len() != 1 {
            return Err(ModelError::DisconnectedHierarchy {
                dimension: dim_name,
            });
        }
        // Walk the chain base → top, detecting cycles / disconnection.
        let mut order: Vec<&str> = Vec::with_capacity(self.levels.len());
        let mut cursor = Some(bases[0]);
        let mut visited = HashSet::new();
        while let Some(level) = cursor {
            if !visited.insert(level) {
                return Err(ModelError::CyclicHierarchy {
                    dimension: dim_name,
                });
            }
            order.push(level);
            cursor = parent.get(level).copied();
        }
        if order.len() != self.levels.len() {
            return Err(ModelError::DisconnectedHierarchy {
                dimension: dim_name,
            });
        }
        // Materialise levels in base-first order.
        let order: Vec<String> = order.into_iter().map(str::to_owned).collect();
        let mut by_name: HashMap<String, LevelBuilder> = self.levels.into_iter().collect();
        let mut levels = Vec::with_capacity(order.len());
        for name in &order {
            let lb = by_name.remove(name).expect("level exists by construction");
            let descriptor = lb.descriptor.ok_or_else(|| ModelError::MissingDescriptor {
                dimension: self.name.clone(),
                level: name.to_owned(),
            })?;
            levels.push(Level {
                name: name.to_owned(),
                descriptor,
                attributes: lb.attributes,
            });
        }
        Ok(Dimension {
            name: self.name,
            levels,
        })
    }
}

/// Builds one fact class.
#[derive(Debug)]
pub struct FactBuilder {
    name: String,
    measures: Vec<Measure>,
    roles: Vec<(String, String)>,
}

impl FactBuilder {
    fn new(name: &str) -> Self {
        FactBuilder {
            name: name.to_owned(),
            measures: Vec::new(),
            roles: Vec::new(),
        }
    }

    /// Adds a measure (`«FA»`).
    pub fn measure(mut self, name: &str, data_type: DataType, additivity: Additivity) -> Self {
        self.measures.push(Measure {
            name: name.to_owned(),
            data_type,
            additivity,
        });
        self
    }

    /// Links the fact to a dimension under a role name.
    pub fn uses_dimension(mut self, role: &str, dimension: &str) -> Self {
        self.roles.push((role.to_owned(), dimension.to_owned()));
        self
    }
}

/// Builds and validates a complete [`Schema`].
#[derive(Debug)]
pub struct SchemaBuilder {
    name: String,
    dimensions: Vec<DimensionBuilder>,
    facts: Vec<FactBuilder>,
}

impl SchemaBuilder {
    /// Starts a schema with the given name.
    pub fn new(name: &str) -> Self {
        SchemaBuilder {
            name: name.to_owned(),
            dimensions: Vec::new(),
            facts: Vec::new(),
        }
    }

    /// Declares a dimension.
    pub fn dimension(
        mut self,
        name: &str,
        f: impl FnOnce(DimensionBuilder) -> DimensionBuilder,
    ) -> Self {
        self.dimensions.push(f(DimensionBuilder::new(name)));
        self
    }

    /// Declares a fact.
    pub fn fact(mut self, name: &str, f: impl FnOnce(FactBuilder) -> FactBuilder) -> Self {
        self.facts.push(f(FactBuilder::new(name)));
        self
    }

    /// Validates everything and produces the immutable [`Schema`].
    pub fn build(self) -> Result<Schema> {
        let mut dim_names = HashSet::new();
        let mut dimensions = Vec::with_capacity(self.dimensions.len());
        for db in self.dimensions {
            if !dim_names.insert(db.name.clone()) {
                return Err(ModelError::DuplicateName {
                    kind: "dimension",
                    name: db.name,
                });
            }
            dimensions.push(db.build()?);
        }

        let dim_index: HashMap<&str, DimensionId> = dimensions
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.as_str(), DimensionId(i)))
            .collect();

        let mut fact_names = HashSet::new();
        let mut facts = Vec::with_capacity(self.facts.len());
        for fb in self.facts {
            if !fact_names.insert(fb.name.clone()) {
                return Err(ModelError::DuplicateName {
                    kind: "fact",
                    name: fb.name,
                });
            }
            for m in &fb.measures {
                if !m.data_type.is_numeric() {
                    return Err(ModelError::NonNumericMeasure {
                        fact: fb.name.clone(),
                        measure: m.name.clone(),
                    });
                }
            }
            if fb.roles.is_empty() {
                return Err(ModelError::FactWithoutDimensions { fact: fb.name });
            }
            let mut role_names = HashSet::new();
            let mut roles = Vec::with_capacity(fb.roles.len());
            for (role, dim) in fb.roles {
                if !role_names.insert(role.clone()) {
                    return Err(ModelError::DuplicateRole {
                        fact: fb.name.clone(),
                        role,
                    });
                }
                let dimension =
                    *dim_index
                        .get(dim.as_str())
                        .ok_or_else(|| ModelError::UnknownDimension {
                            fact: fb.name.clone(),
                            dimension: dim.clone(),
                        })?;
                roles.push(DimensionRole { role, dimension });
            }
            facts.push(Fact {
                name: fb.name,
                measures: fb.measures,
                roles,
            });
        }

        Ok(Schema {
            name: self.name,
            dimensions,
            facts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_level(d: DimensionBuilder) -> DimensionBuilder {
        d.level("Only", |l| l.descriptor("id", DataType::Text))
    }

    #[test]
    fn minimal_schema_builds() {
        let s = SchemaBuilder::new("S")
            .dimension("D", one_level)
            .fact("F", |f| {
                f.measure("m", DataType::Float, Additivity::Sum)
                    .uses_dimension("d", "D")
            })
            .build()
            .unwrap();
        assert_eq!(s.name(), "S");
        assert_eq!(s.dimensions().len(), 1);
    }

    #[test]
    fn levels_are_ordered_base_first_regardless_of_declaration_order() {
        let s = SchemaBuilder::new("S")
            .dimension("Geo", |d| {
                d.level("Country", |l| l.descriptor("name", DataType::Text))
                    .level("City", |l| l.descriptor("name", DataType::Text))
                    .level("State", |l| l.descriptor("name", DataType::Text))
                    .rolls_up("City", "State")
                    .rolls_up("State", "Country")
            })
            .dimension("D", one_level)
            .fact("F", |f| {
                f.measure("m", DataType::Int, Additivity::Sum)
                    .uses_dimension("d", "D")
            })
            .build()
            .unwrap();
        let (_, geo) = s.dimension("Geo").unwrap();
        let names: Vec<&str> = geo.levels.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, ["City", "State", "Country"]);
    }

    #[test]
    fn duplicate_dimension_rejected() {
        let err = SchemaBuilder::new("S")
            .dimension("D", one_level)
            .dimension("D", one_level)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::DuplicateName {
                kind: "dimension",
                ..
            }
        ));
    }

    #[test]
    fn unknown_dimension_in_fact_rejected() {
        let err = SchemaBuilder::new("S")
            .dimension("D", one_level)
            .fact("F", |f| {
                f.measure("m", DataType::Int, Additivity::Sum)
                    .uses_dimension("x", "Ghost")
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownDimension { .. }));
    }

    #[test]
    fn cyclic_hierarchy_rejected() {
        let err = SchemaBuilder::new("S")
            .dimension("D", |d| {
                d.level("A", |l| l.descriptor("a", DataType::Text))
                    .level("B", |l| l.descriptor("b", DataType::Text))
                    .rolls_up("A", "B")
                    .rolls_up("B", "A")
            })
            .build()
            .unwrap_err();
        // A cycle leaves no base level, reported as disconnection.
        assert!(matches!(
            err,
            ModelError::DisconnectedHierarchy { .. } | ModelError::CyclicHierarchy { .. }
        ));
    }

    #[test]
    fn multiple_parents_rejected() {
        let err = SchemaBuilder::new("S")
            .dimension("D", |d| {
                d.level("A", |l| l.descriptor("a", DataType::Text))
                    .level("B", |l| l.descriptor("b", DataType::Text))
                    .level("C", |l| l.descriptor("c", DataType::Text))
                    .rolls_up("A", "B")
                    .rolls_up("A", "C")
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::MultipleParents { .. }));
    }

    #[test]
    fn disconnected_levels_rejected() {
        let err = SchemaBuilder::new("S")
            .dimension("D", |d| {
                d.level("A", |l| l.descriptor("a", DataType::Text))
                    .level("B", |l| l.descriptor("b", DataType::Text))
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::DisconnectedHierarchy { .. }));
    }

    #[test]
    fn non_numeric_measure_rejected() {
        let err = SchemaBuilder::new("S")
            .dimension("D", one_level)
            .fact("F", |f| {
                f.measure("label", DataType::Text, Additivity::None)
                    .uses_dimension("d", "D")
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::NonNumericMeasure { .. }));
    }

    #[test]
    fn fact_without_dimensions_rejected() {
        let err = SchemaBuilder::new("S")
            .dimension("D", one_level)
            .fact("F", |f| f.measure("m", DataType::Int, Additivity::Sum))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::FactWithoutDimensions { .. }));
    }

    #[test]
    fn duplicate_role_rejected() {
        let err = SchemaBuilder::new("S")
            .dimension("D", one_level)
            .fact("F", |f| {
                f.measure("m", DataType::Int, Additivity::Sum)
                    .uses_dimension("r", "D")
                    .uses_dimension("r", "D")
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateRole { .. }));
    }

    #[test]
    fn missing_descriptor_rejected() {
        let err = SchemaBuilder::new("S")
            .dimension("D", |d| d.level("A", |l| l.attribute("x", DataType::Int)))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::MissingDescriptor { .. }));
    }

    #[test]
    fn unknown_level_in_rollup_rejected() {
        let err = SchemaBuilder::new("S")
            .dimension("D", |d| {
                d.level("A", |l| l.descriptor("a", DataType::Text))
                    .rolls_up("A", "Ghost")
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownLevel { .. }));
    }
}
