//! Validation errors for multidimensional schemas.

use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ModelError>;

/// A structural error detected while building or validating a [`crate::Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Two facts or two dimensions share a name.
    DuplicateName {
        /// The kind of element ("fact", "dimension", "level", …).
        kind: &'static str,
        /// The clashing name.
        name: String,
    },
    /// A fact references a dimension that does not exist.
    UnknownDimension {
        /// The referencing fact.
        fact: String,
        /// The missing dimension name.
        dimension: String,
    },
    /// A roll-up names a level that does not exist in the dimension.
    UnknownLevel {
        /// The dimension being built.
        dimension: String,
        /// The missing level name.
        level: String,
    },
    /// A level would roll up to more than one parent (hierarchies must be
    /// linear paths in this profile).
    MultipleParents {
        /// The dimension.
        dimension: String,
        /// The child level with two parents.
        level: String,
    },
    /// The roll-up relation contains a cycle.
    CyclicHierarchy {
        /// The dimension with a cyclic roll-up graph.
        dimension: String,
    },
    /// A dimension has no levels.
    EmptyDimension {
        /// The empty dimension.
        dimension: String,
    },
    /// A dimension's levels do not form a single connected chain.
    DisconnectedHierarchy {
        /// The dimension.
        dimension: String,
    },
    /// A measure was declared with a non-numeric type.
    NonNumericMeasure {
        /// The fact holding the measure.
        fact: String,
        /// The offending measure.
        measure: String,
    },
    /// A fact has no dimension references at all.
    FactWithoutDimensions {
        /// The isolated fact.
        fact: String,
    },
    /// Two dimension roles on one fact share a role name.
    DuplicateRole {
        /// The fact.
        fact: String,
        /// The duplicated role name.
        role: String,
    },
    /// A level was declared without a descriptor attribute.
    MissingDescriptor {
        /// The dimension.
        dimension: String,
        /// The level lacking a `«D»` descriptor.
        level: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateName { kind, name } => {
                write!(f, "duplicate {kind} name: {name:?}")
            }
            ModelError::UnknownDimension { fact, dimension } => {
                write!(
                    f,
                    "fact {fact:?} references unknown dimension {dimension:?}"
                )
            }
            ModelError::UnknownLevel { dimension, level } => {
                write!(f, "dimension {dimension:?} has no level {level:?}")
            }
            ModelError::MultipleParents { dimension, level } => write!(
                f,
                "level {level:?} of dimension {dimension:?} rolls up to more than one parent"
            ),
            ModelError::CyclicHierarchy { dimension } => {
                write!(f, "dimension {dimension:?} has a cyclic roll-up hierarchy")
            }
            ModelError::EmptyDimension { dimension } => {
                write!(f, "dimension {dimension:?} declares no levels")
            }
            ModelError::DisconnectedHierarchy { dimension } => write!(
                f,
                "the levels of dimension {dimension:?} do not form one roll-up chain"
            ),
            ModelError::NonNumericMeasure { fact, measure } => write!(
                f,
                "measure {measure:?} of fact {fact:?} must be numeric (int or float)"
            ),
            ModelError::FactWithoutDimensions { fact } => {
                write!(f, "fact {fact:?} is not linked to any dimension")
            }
            ModelError::DuplicateRole { fact, role } => {
                write!(f, "fact {fact:?} uses role name {role:?} twice")
            }
            ModelError::MissingDescriptor { dimension, level } => write!(
                f,
                "level {level:?} of dimension {dimension:?} has no descriptor attribute"
            ),
        }
    }
}

impl std::error::Error for ModelError {}
