//! Canonical example schemas.
//!
//! [`last_minute_sales`] is the paper's running example (Figure 1); the
//! whole workspace — warehouse tests, the ontology transform, the corpus
//! generator and the experiment harness — builds on it, so it lives here as
//! the single authoritative definition.

use crate::builder::SchemaBuilder;
use crate::schema::Schema;
use crate::types::{Additivity, DataType};

/// The paper's Figure 1: the **Last Minute Sales** multidimensional model of
/// an airline's marketing department.
///
/// * Fact `Last Minute Sales` with measures `price` (additive), `miles`
///   (additive) and `traveler_rate` (non-additive) — tickets bought in the
///   last minutes before a flight.
/// * Dimension `Airport` with hierarchy Airport → City → State → Country,
///   referenced under the roles `Origin` and `Destination`.
/// * Dimension `Customer` (Customer → Segment).
/// * Dimension `Date` (Date → Month → Quarter → Year).
pub fn last_minute_sales() -> Schema {
    SchemaBuilder::new("Airline DW")
        .dimension("Airport", |d| {
            d.level("Airport", |l| {
                l.descriptor("airport_name", DataType::Text)
                    .attribute("iata_code", DataType::Text)
            })
            .level("City", |l| {
                l.descriptor("city_name", DataType::Text)
                    .attribute("population", DataType::Int)
            })
            .level("State", |l| l.descriptor("state_name", DataType::Text))
            .level("Country", |l| l.descriptor("country_name", DataType::Text))
            .rolls_up("Airport", "City")
            .rolls_up("City", "State")
            .rolls_up("State", "Country")
        })
        .dimension("Customer", |d| {
            d.level("Customer", |l| {
                l.descriptor("customer_name", DataType::Text)
                    .attribute("frequent_flyer", DataType::Bool)
            })
            .level("Segment", |l| l.descriptor("segment_name", DataType::Text))
            .rolls_up("Customer", "Segment")
        })
        .dimension("Date", |d| {
            d.level("Date", |l| l.descriptor("date", DataType::Date))
                .level("Month", |l| l.descriptor("month", DataType::Text))
                .level("Quarter", |l| l.descriptor("quarter", DataType::Text))
                .level("Year", |l| l.descriptor("year", DataType::Int))
                .rolls_up("Date", "Month")
                .rolls_up("Month", "Quarter")
                .rolls_up("Quarter", "Year")
        })
        .fact("Last Minute Sales", |f| {
            f.measure("price", DataType::Float, Additivity::Sum)
                .measure("miles", DataType::Float, Additivity::Sum)
                .measure("traveler_rate", DataType::Float, Additivity::None)
                .uses_dimension("Origin", "Airport")
                .uses_dimension("Destination", "Airport")
                .uses_dimension("Customer", "Customer")
                .uses_dimension("Date", "Date")
        })
        .build()
        .expect("the Last Minute Sales fixture is statically valid")
}

/// A second, unrelated schema — "treatments of patients", the other fact
/// example the paper's Section 3 mentions — used to test that nothing in
/// the pipeline is hard-wired to the airline domain.
pub fn patient_treatments() -> Schema {
    SchemaBuilder::new("Hospital DW")
        .dimension("Patient", |d| {
            d.level("Patient", |l| {
                l.descriptor("patient_name", DataType::Text)
                    .attribute("age", DataType::Int)
            })
            .level("AgeGroup", |l| l.descriptor("age_group", DataType::Text))
            .rolls_up("Patient", "AgeGroup")
        })
        .dimension("Treatment", |d| {
            d.level("Treatment", |l| {
                l.descriptor("treatment_name", DataType::Text)
            })
            .level("Specialty", |l| {
                l.descriptor("specialty_name", DataType::Text)
            })
            .rolls_up("Treatment", "Specialty")
        })
        .dimension("Date", |d| {
            d.level("Date", |l| l.descriptor("date", DataType::Date))
                .level("Month", |l| l.descriptor("month", DataType::Text))
                .level("Year", |l| l.descriptor("year", DataType::Int))
                .rolls_up("Date", "Month")
                .rolls_up("Month", "Year")
        })
        .fact("Treatments", |f| {
            f.measure("cost", DataType::Float, Additivity::Sum)
                .measure("duration_days", DataType::Int, Additivity::Average)
                .uses_dimension("Patient", "Patient")
                .uses_dimension("Treatment", "Treatment")
                .uses_dimension("Date", "Date")
        })
        .build()
        .expect("the patient treatments fixture is statically valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_minute_sales_shape_matches_figure_1() {
        let s = last_minute_sales();
        assert_eq!(s.facts().len(), 1);
        assert_eq!(s.dimensions().len(), 3);
        let (_, fact) = s.fact("Last Minute Sales").unwrap();
        assert_eq!(fact.measures.len(), 3);
        assert_eq!(fact.roles.len(), 4);
        let (_, airport) = s.dimension("Airport").unwrap();
        assert_eq!(airport.depth(), 4);
        let (_, date) = s.dimension("Date").unwrap();
        assert_eq!(date.depth(), 4);
    }

    #[test]
    fn patient_treatments_is_valid_and_distinct() {
        let s = patient_treatments();
        assert_eq!(s.facts().len(), 1);
        assert!(s.dimension("Patient").is_some());
        assert!(s.dimension("Airport").is_none());
    }
}
