//! Multidimensional modelling for the `dwqa` data warehouse.
//!
//! This crate implements the conceptual layer the paper builds on: the UML
//! profile for multidimensional modelling of Luján-Mora, Trujillo & Song
//! (Data & Knowledge Engineering 59(3), 2006) — the reference the paper's
//! Figure 1 ("Excerpt of the multidimensional model for our example on Last
//! Minute Sales") is drawn with.
//!
//! A [`Schema`] contains:
//!
//! * **fact classes** (`«Fact»`) with **measures** (`«FA»`, fact
//!   attributes) — events of interest such as a last-minute ticket sale
//!   with its `Price` and `Miles`;
//! * **dimension classes** (`«Dimension»`) whose **hierarchies of levels**
//!   (`«Base»` classes connected by `«Rolls-upTo»` associations) let BI
//!   queries aggregate at different granularities (Airport → City → State →
//!   Country; Date → Month → Quarter → Year);
//! * **role-named associations** between facts and dimensions (the same
//!   `Airport` dimension plays both the `Origin` and `Destination` roles).
//!
//! The schema is the single source of truth for the rest of the system:
//! `dwqa-warehouse` materialises it as tables, and `dwqa-ontology`
//! transforms it into the domain ontology (Step 1 of the paper's model).
//!
//! ```
//! use dwqa_mdmodel::{SchemaBuilder, DataType, Additivity};
//!
//! let schema = SchemaBuilder::new("Tiny")
//!     .dimension("Date", |d| {
//!         d.level("Day", |l| l.descriptor("date", DataType::Date))
//!          .level("Month", |l| l.descriptor("month", DataType::Text))
//!          .rolls_up("Day", "Month")
//!     })
//!     .fact("Sales", |f| {
//!         f.measure("price", DataType::Float, Additivity::Sum)
//!          .uses_dimension("Date", "Date")
//!     })
//!     .build()
//!     .unwrap();
//! assert_eq!(schema.facts().len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod error;
mod fixtures;
mod schema;
mod types;
mod uml;

pub use builder::{DimensionBuilder, FactBuilder, LevelBuilder, SchemaBuilder};
pub use error::{ModelError, Result};
pub use fixtures::{last_minute_sales, patient_treatments};
pub use schema::{
    Attribute, Dimension, DimensionId, DimensionRole, Fact, FactId, Level, LevelId, Measure, Schema,
};
pub use types::{Additivity, DataType};
pub use uml::{render_uml, Stereotype};
