//! The validated multidimensional schema model.

use crate::types::{Additivity, DataType};
use serde::{Deserialize, Serialize};

/// Index of a fact class within its schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FactId(pub(crate) usize);

/// Index of a dimension within its schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DimensionId(pub(crate) usize);

/// Index of a level within its dimension (0 = finest / base level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LevelId(pub(crate) usize);

impl FactId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}
impl DimensionId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}
impl LevelId {
    /// The raw index (0 is the base level).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A non-descriptor attribute of a level (`«DA»` dimension attribute).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name, e.g. `population`.
    pub name: String,
    /// Scalar type.
    pub data_type: DataType,
}

/// A level (`«Base»` class) of a dimension hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Level {
    /// Level name, e.g. `Airport`, `City`.
    pub name: String,
    /// The descriptor (`«D»`): the attribute that identifies members of the
    /// level ("JFK", "Barcelona").
    pub descriptor: Attribute,
    /// Additional attributes.
    pub attributes: Vec<Attribute>,
}

/// A dimension class with its linear hierarchy of levels.
///
/// Levels are stored base-first: `levels[0]` is the finest granularity and
/// `levels[i]` rolls up to `levels[i + 1]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dimension {
    /// Dimension name, e.g. `Airport`.
    pub name: String,
    /// Levels, base level first.
    pub levels: Vec<Level>,
}

impl Dimension {
    /// The finest-granularity level.
    pub fn base_level(&self) -> &Level {
        &self.levels[0]
    }

    /// Looks up a level by name (case-sensitive).
    pub fn level(&self, name: &str) -> Option<(LevelId, &Level)> {
        self.levels
            .iter()
            .position(|l| l.name == name)
            .map(|i| (LevelId(i), &self.levels[i]))
    }

    /// The parent (`Rolls-upTo` target) of a level, if any.
    pub fn parent_of(&self, level: LevelId) -> Option<(LevelId, &Level)> {
        let next = level.0 + 1;
        self.levels.get(next).map(|l| (LevelId(next), l))
    }

    /// Iterates `(child, parent)` roll-up pairs base-first.
    pub fn rollups(&self) -> impl Iterator<Item = (&Level, &Level)> {
        self.levels.windows(2).map(|w| (&w[0], &w[1]))
    }

    /// Depth of the hierarchy (number of levels).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The levels this dimension shares with `other` as a common *upper*
    /// (coarse) chain — the granularities at which facts over the two
    /// dimensions can be drilled across (Kimball's conformed dimensions).
    /// Levels match when both name and descriptor agree. Returned
    /// fine-first, like [`Dimension::levels`].
    pub fn conformed_levels<'a>(&'a self, other: &Dimension) -> Vec<&'a Level> {
        let mut shared = Vec::new();
        for (a, b) in self.levels.iter().rev().zip(other.levels.iter().rev()) {
            if a.name == b.name && a.descriptor == b.descriptor {
                shared.push(a);
            } else {
                break;
            }
        }
        shared.reverse();
        shared
    }
}

/// A measure (`«FA»` fact attribute) of a fact class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Measure {
    /// Measure name, e.g. `price`.
    pub name: String,
    /// Numeric type.
    pub data_type: DataType,
    /// How the measure may be aggregated.
    pub additivity: Additivity,
}

/// A role-named reference from a fact to a dimension.
///
/// The Last Minute Sales fact references the `Airport` dimension twice,
/// under the roles `Origin` and `Destination`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DimensionRole {
    /// Role name unique within the fact (e.g. `Destination`).
    pub role: String,
    /// The referenced dimension.
    pub dimension: DimensionId,
}

/// A fact class (`«Fact»`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fact {
    /// Fact name, e.g. `Last Minute Sales`.
    pub name: String,
    /// Measures of the fact.
    pub measures: Vec<Measure>,
    /// Dimension references with role names.
    pub roles: Vec<DimensionRole>,
}

impl Fact {
    /// Looks up a measure by name.
    pub fn measure(&self, name: &str) -> Option<&Measure> {
        self.measures.iter().find(|m| m.name == name)
    }

    /// Looks up a dimension role by role name.
    pub fn role(&self, role: &str) -> Option<&DimensionRole> {
        self.roles.iter().find(|r| r.role == role)
    }
}

/// A validated multidimensional schema: the star/snowflake-shaped model of
/// the data warehouse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    pub(crate) name: String,
    pub(crate) dimensions: Vec<Dimension>,
    pub(crate) facts: Vec<Fact>,
}

impl Schema {
    /// The schema name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All dimensions.
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dimensions
    }

    /// All facts.
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// Looks up a dimension by name.
    pub fn dimension(&self, name: &str) -> Option<(DimensionId, &Dimension)> {
        self.dimensions
            .iter()
            .position(|d| d.name == name)
            .map(|i| (DimensionId(i), &self.dimensions[i]))
    }

    /// Resolves a dimension id.
    pub fn dimension_by_id(&self, id: DimensionId) -> &Dimension {
        &self.dimensions[id.0]
    }

    /// Looks up a fact by name.
    pub fn fact(&self, name: &str) -> Option<(FactId, &Fact)> {
        self.facts
            .iter()
            .position(|f| f.name == name)
            .map(|i| (FactId(i), &self.facts[i]))
    }

    /// Resolves a fact id.
    pub fn fact_by_id(&self, id: FactId) -> &Fact {
        &self.facts[id.0]
    }

    /// The dimension coordinates two facts share, as
    /// `(role_a, role_b, dimension name)` triples: either literally the
    /// same dimension (conformed by identity, like the integrated schema's
    /// `Date`) or two dimensions with a non-empty conformed upper chain.
    pub fn drill_across_coordinates(
        &self,
        fact_a: &str,
        fact_b: &str,
    ) -> Option<Vec<(String, String, String)>> {
        let (_, fa) = self.fact(fact_a)?;
        let (_, fb) = self.fact(fact_b)?;
        let mut out = Vec::new();
        for ra in &fa.roles {
            for rb in &fb.roles {
                if ra.dimension == rb.dimension {
                    out.push((
                        ra.role.clone(),
                        rb.role.clone(),
                        self.dimension_by_id(ra.dimension).name.clone(),
                    ));
                    continue;
                }
                let da = self.dimension_by_id(ra.dimension);
                let db = self.dimension_by_id(rb.dimension);
                if !da.conformed_levels(db).is_empty() {
                    out.push((
                        ra.role.clone(),
                        rb.role.clone(),
                        format!("{}≈{}", da.name, db.name),
                    ));
                }
            }
        }
        Some(out)
    }

    /// Every class name in the schema (facts, dimensions, levels), in a
    /// deterministic order. This is the concept inventory Step 1 of the
    /// paper turns into an ontology.
    pub fn class_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for f in &self.facts {
            names.push(&f.name);
        }
        for d in &self.dimensions {
            names.push(&d.name);
            for l in &d.levels {
                if l.name != d.name {
                    names.push(&l.name);
                }
            }
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;

    fn schema() -> Schema {
        crate::fixtures::last_minute_sales()
    }

    #[test]
    fn lookup_by_name() {
        let s = schema();
        assert!(s.fact("Last Minute Sales").is_some());
        let (_, airport) = s.dimension("Airport").unwrap();
        assert_eq!(airport.base_level().name, "Airport");
        assert!(s.dimension("Nope").is_none());
    }

    #[test]
    fn rollups_follow_level_order() {
        let s = schema();
        let (_, airport) = s.dimension("Airport").unwrap();
        let pairs: Vec<(&str, &str)> = airport
            .rollups()
            .map(|(c, p)| (c.name.as_str(), p.name.as_str()))
            .collect();
        assert_eq!(
            pairs,
            [("Airport", "City"), ("City", "State"), ("State", "Country")]
        );
    }

    #[test]
    fn role_playing_dimensions_are_distinct_roles() {
        let s = schema();
        let (_, fact) = s.fact("Last Minute Sales").unwrap();
        let origin = fact.role("Origin").unwrap();
        let dest = fact.role("Destination").unwrap();
        assert_eq!(origin.dimension, dest.dimension);
        assert_ne!(origin.role, dest.role);
    }

    #[test]
    fn class_names_cover_facts_dimensions_levels() {
        let s = schema();
        let names = s.class_names();
        for expected in [
            "Last Minute Sales",
            "Airport",
            "City",
            "State",
            "Country",
            "Customer",
            "Date",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn serde_round_trip() {
        let s = schema();
        let json = serde_json::to_string(&s).unwrap();
        let back: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn parent_of_walks_up_and_stops_at_top() {
        let s = SchemaBuilder::new("T")
            .dimension("D", |d| {
                d.level("A", |l| l.descriptor("a", DataType::Text))
                    .level("B", |l| l.descriptor("b", DataType::Text))
                    .rolls_up("A", "B")
            })
            .fact("F", |f| {
                f.measure("m", DataType::Int, Additivity::Sum)
                    .uses_dimension("d", "D")
            })
            .build()
            .unwrap();
        let (_, d) = s.dimension("D").unwrap();
        let (a_id, _) = d.level("A").unwrap();
        let (b_id, b) = d.parent_of(a_id).unwrap();
        assert_eq!(b.name, "B");
        assert!(d.parent_of(b_id).is_none());
    }

    use crate::types::{Additivity, DataType};

    #[test]
    fn conformed_levels_find_the_shared_upper_chain() {
        let s = SchemaBuilder::new("T")
            .dimension("Airport", |d| {
                d.level("Airport", |l| l.descriptor("airport_name", DataType::Text))
                    .level("City", |l| l.descriptor("city_name", DataType::Text))
                    .level("Country", |l| l.descriptor("country_name", DataType::Text))
                    .rolls_up("Airport", "City")
                    .rolls_up("City", "Country")
            })
            .dimension("City", |d| {
                d.level("City", |l| l.descriptor("city_name", DataType::Text))
                    .level("Country", |l| l.descriptor("country_name", DataType::Text))
                    .rolls_up("City", "Country")
            })
            .dimension("Customer", |d| {
                d.level("Customer", |l| {
                    l.descriptor("customer_name", DataType::Text)
                })
            })
            .fact("A", |f| {
                f.measure("m", DataType::Int, Additivity::Sum)
                    .uses_dimension("Where", "Airport")
            })
            .fact("B", |f| {
                f.measure("n", DataType::Int, Additivity::Sum)
                    .uses_dimension("City", "City")
                    .uses_dimension("Customer", "Customer")
            })
            .build()
            .unwrap();
        let (_, airport) = s.dimension("Airport").unwrap();
        let (_, city) = s.dimension("City").unwrap();
        let (_, customer) = s.dimension("Customer").unwrap();
        let shared: Vec<&str> = airport
            .conformed_levels(city)
            .iter()
            .map(|l| l.name.as_str())
            .collect();
        assert_eq!(shared, ["City", "Country"]);
        assert!(airport.conformed_levels(customer).is_empty());
        // Drill-across coordinates between the facts.
        let coords = s.drill_across_coordinates("A", "B").unwrap();
        assert_eq!(coords.len(), 1);
        assert_eq!(coords[0].0, "Where");
        assert_eq!(coords[0].1, "City");
        assert!(coords[0].2.contains('≈'));
    }
}
