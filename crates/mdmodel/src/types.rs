//! Scalar data types and measure additivity.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The scalar type of an attribute or measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text (dictionary-encoded in the warehouse).
    Text,
    /// Calendar date.
    Date,
    /// Boolean flag.
    Bool,
}

impl DataType {
    /// Whether values of this type can be summed/averaged.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// Short lowercase name ("int", "float", …) used in renderings.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Text => "text",
            DataType::Date => "date",
            DataType::Bool => "bool",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a measure may be aggregated along dimensions.
///
/// The UML profile annotates fact attributes with their additivity so BI
/// tools know which roll-ups are meaningful (summing prices is fine;
/// summing temperatures is not — they are semi-additive and only AVG/MIN/
/// MAX make sense, which matters once Step 5 feeds weather facts back).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Additivity {
    /// Fully additive: SUM along every dimension (e.g. `Price`).
    Sum,
    /// Semi-additive: only AVG/MIN/MAX are meaningful (e.g. `Temperature`).
    Average,
    /// Non-additive: only COUNT/derived stats (e.g. rates).
    None,
}

impl Additivity {
    /// Whether SUM is a legal aggregate for this measure.
    pub fn allows_sum(self) -> bool {
        matches!(self, Additivity::Sum)
    }

    /// Whether AVG is a legal aggregate for this measure.
    pub fn allows_avg(self) -> bool {
        matches!(self, Additivity::Sum | Additivity::Average)
    }
}

impl fmt::Display for Additivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Additivity::Sum => "additive",
            Additivity::Average => "semi-additive",
            Additivity::None => "non-additive",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_types() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Text.is_numeric());
        assert!(!DataType::Date.is_numeric());
        assert!(!DataType::Bool.is_numeric());
    }

    #[test]
    fn additivity_rules() {
        assert!(Additivity::Sum.allows_sum());
        assert!(Additivity::Sum.allows_avg());
        assert!(!Additivity::Average.allows_sum());
        assert!(Additivity::Average.allows_avg());
        assert!(!Additivity::None.allows_sum());
        assert!(!Additivity::None.allows_avg());
    }

    #[test]
    fn display_names() {
        assert_eq!(DataType::Date.to_string(), "date");
        assert_eq!(Additivity::Average.to_string(), "semi-additive");
    }
}
