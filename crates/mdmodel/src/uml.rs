//! Textual rendering of the UML profile (regenerates Figure 1).
//!
//! The paper's Figure 1 is a class diagram in the Luján-Mora/Trujillo/Song
//! profile. We render the same information as stereotyped text, which is
//! what the `exp_fig1_fig2_models` experiment binary prints.

use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fmt::Write as _;

/// Stereotypes of the multidimensional UML profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stereotype {
    /// `«Fact»` — a fact class.
    Fact,
    /// `«Dimension»` — a dimension class.
    Dimension,
    /// `«Base»` — a hierarchy level class.
    Base,
    /// `«FA»` — fact attribute (measure).
    FactAttribute,
    /// `«D»` — descriptor attribute of a level.
    Descriptor,
    /// `«DA»` — dimension attribute of a level.
    DimensionAttribute,
    /// `«Rolls-upTo»` — association between levels.
    RollsUpTo,
}

impl Stereotype {
    /// The guillemet-quoted label used in the profile.
    pub fn label(self) -> &'static str {
        match self {
            Stereotype::Fact => "«Fact»",
            Stereotype::Dimension => "«Dimension»",
            Stereotype::Base => "«Base»",
            Stereotype::FactAttribute => "«FA»",
            Stereotype::Descriptor => "«D»",
            Stereotype::DimensionAttribute => "«DA»",
            Stereotype::RollsUpTo => "«Rolls-upTo»",
        }
    }
}

impl fmt::Display for Stereotype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Renders the schema as a stereotyped textual class diagram.
pub fn render_uml(schema: &Schema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "model {} {{", schema.name());
    for fact in schema.facts() {
        let _ = writeln!(out, "  {} {} {{", Stereotype::Fact, fact.name);
        for m in &fact.measures {
            let _ = writeln!(
                out,
                "    {} {}: {} [{}]",
                Stereotype::FactAttribute,
                m.name,
                m.data_type,
                m.additivity
            );
        }
        for r in &fact.roles {
            let dim = schema.dimension_by_id(r.dimension);
            let _ = writeln!(out, "    role {} -> {}", r.role, dim.name);
        }
        let _ = writeln!(out, "  }}");
    }
    for dim in schema.dimensions() {
        let _ = writeln!(out, "  {} {} {{", Stereotype::Dimension, dim.name);
        for level in &dim.levels {
            let _ = writeln!(out, "    {} {} {{", Stereotype::Base, level.name);
            let _ = writeln!(
                out,
                "      {} {}: {}",
                Stereotype::Descriptor,
                level.descriptor.name,
                level.descriptor.data_type
            );
            for a in &level.attributes {
                let _ = writeln!(
                    out,
                    "      {} {}: {}",
                    Stereotype::DimensionAttribute,
                    a.name,
                    a.data_type
                );
            }
            let _ = writeln!(out, "    }}");
        }
        for (child, parent) in dim.rollups() {
            let _ = writeln!(
                out,
                "    {} {} -> {}",
                Stereotype::RollsUpTo,
                child.name,
                parent.name
            );
        }
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::last_minute_sales;

    #[test]
    fn rendering_mentions_every_class_and_stereotype() {
        let text = render_uml(&last_minute_sales());
        for needle in [
            "«Fact» Last Minute Sales",
            "«FA» price: float [additive]",
            "«FA» traveler_rate: float [non-additive]",
            "«Dimension» Airport",
            "«Base» City",
            "«D» city_name: text",
            "«DA» iata_code: text",
            "«Rolls-upTo» Airport -> City",
            "role Destination -> Airport",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(
            render_uml(&last_minute_sales()),
            render_uml(&last_minute_sales())
        );
    }
}
