//! The shallow parser: Syntactic Blocks (SBs).
//!
//! AliQAn's modules operate on SBs elicited by the SUPAR shallow parser:
//! noun phrases (`NP`), prepositional phrases (`PP`) and verbal heads
//! (`VBC`), annotated with features (`comun`, `properNoun`, `date`,
//! `numeral`, `day`) and grammatical roles (`subject`, `compl`). This
//! module reproduces that layer, including the paper's textual annotation
//! format (Table 1):
//!
//! ```text
//! <@NP,compl,comun,,> the DT the weather NN weather <@/NP,compl,comun,,>
//! ```

use crate::lexicon::Pos;
use crate::tagger::TaggedToken;
use dwqa_common::{Month, Weekday};

/// The kind of a syntactic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SbKind {
    /// Noun phrase.
    Np,
    /// Prepositional phrase (preposition + NP child).
    Pp,
    /// Verbal head (verb chain).
    Vbc,
}

/// Semantic feature of an NP, as annotated in the paper's traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NpFeature {
    /// Common-noun phrase ("the weather").
    Comun,
    /// Proper-noun phrase ("El Prat", "8º C" — contains a proper token).
    ProperNoun,
    /// A calendar date phrase ("January of 2004", "January 31, 2004").
    Date,
    /// A weekday phrase ("Monday, January 31, 2004").
    Day,
    /// A bare numeral ("2004").
    Numeral,
}

impl NpFeature {
    /// The label used in annotations.
    pub fn label(self) -> &'static str {
        match self {
            NpFeature::Comun => "comun",
            NpFeature::ProperNoun => "properNoun",
            NpFeature::Date => "date",
            NpFeature::Day => "day",
            NpFeature::Numeral => "numeral",
        }
    }
}

/// Grammatical role of an NP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SbRole {
    /// Subject position.
    Subject,
    /// Complement position.
    Compl,
    /// Unassigned.
    None,
}

impl SbRole {
    /// The label used in annotations (empty for [`SbRole::None`]).
    pub fn label(self) -> &'static str {
        match self {
            SbRole::Subject => "subject",
            SbRole::Compl => "compl",
            SbRole::None => "",
        }
    }
}

/// A syntactic block over a token range `[start, end)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntacticBlock {
    /// Block kind.
    pub kind: SbKind,
    /// First token index (inclusive).
    pub start: usize,
    /// One past the last token index.
    pub end: usize,
    /// NP feature (NPs only).
    pub feature: Option<NpFeature>,
    /// Grammatical role (NPs only).
    pub role: SbRole,
    /// Nested blocks (a PP's NP; a day-NP's date-NP).
    pub children: Vec<SyntacticBlock>,
}

impl SyntacticBlock {
    /// The surface text of the block.
    pub fn text(&self, tokens: &[TaggedToken]) -> String {
        tokens[self.start..self.end]
            .iter()
            .map(|t| t.token.text.as_str())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The lemmas of the block's word/number tokens.
    pub fn lemmas(&self, tokens: &[TaggedToken]) -> Vec<String> {
        tokens[self.start..self.end]
            .iter()
            .filter(|t| !matches!(t.pos, Pos::PUNCT | Pos::SENT))
            .map(|t| t.lemma.clone())
            .collect()
    }

    /// The head lemma: the last nominal token's lemma (skipping numbers and
    /// symbols), e.g. "sales" → `sale` in "Last Minute Sales".
    pub fn head_lemma(&self, tokens: &[TaggedToken]) -> Option<String> {
        tokens[self.start..self.end]
            .iter()
            .rev()
            .find(|t| t.pos.is_noun())
            .map(|t| t.lemma.clone())
    }

    /// Depth-first iteration over this block and its descendants.
    pub fn walk(&self) -> Vec<&SyntacticBlock> {
        let mut out = vec![self];
        for c in &self.children {
            out.extend(c.walk());
        }
        out
    }
}

fn is_month_lemma(lemma: &str) -> bool {
    Month::parse(lemma).is_some()
}

fn is_weekday_lemma(lemma: &str) -> bool {
    Weekday::parse(lemma).is_some()
}

fn np_feature(tokens: &[TaggedToken], start: usize, end: usize) -> NpFeature {
    let slice = &tokens[start..end];
    if slice.iter().any(|t| is_weekday_lemma(&t.lemma)) {
        return NpFeature::Day;
    }
    if slice.iter().any(|t| is_month_lemma(&t.lemma)) {
        return NpFeature::Date;
    }
    let content: Vec<&TaggedToken> = slice
        .iter()
        .filter(|t| !matches!(t.pos, Pos::PUNCT | Pos::SENT))
        .collect();
    if !content.is_empty() && content.iter().all(|t| matches!(t.pos, Pos::CD | Pos::SYM)) {
        return NpFeature::Numeral;
    }
    if content
        .iter()
        .any(|t| t.pos == Pos::NP && !is_month_lemma(&t.lemma) && !is_weekday_lemma(&t.lemma))
    {
        return NpFeature::ProperNoun;
    }
    NpFeature::Comun
}

/// Parses one NP starting at `i`; returns `(block, next index)` or `None`.
fn parse_np(tokens: &[TaggedToken], mut i: usize) -> Option<(SyntacticBlock, usize)> {
    let start = i;
    // Optional determiner.
    if matches!(tokens.get(i).map(|t| t.pos), Some(Pos::DT)) {
        i += 1;
    }
    // Adjectives.
    while matches!(tokens.get(i).map(|t| t.pos), Some(Pos::JJ) | Some(Pos::JJS)) {
        i += 1;
    }
    // Core: nouns, numbers, symbols. A number right after a common noun
    // starts a *new* chunk ("Temperature | 8º C"), matching the paper's
    // segmentation.
    let core_start = i;
    while let Some(t) = tokens.get(i) {
        match t.pos {
            Pos::NN | Pos::NNS | Pos::NP => {
                // A noun directly after a number starts a new chunk
                // ("2004 | Barcelona Weather") — unless a symbol sits in
                // between ("8 º C" stays one block).
                if i > core_start && tokens[i - 1].pos == Pos::CD {
                    break;
                }
                i += 1;
            }
            Pos::CD => {
                let prev_is_common =
                    i > core_start && matches!(tokens[i - 1].pos, Pos::NN | Pos::NNS);
                if prev_is_common {
                    break;
                }
                i += 1;
            }
            Pos::SYM if i > core_start => i += 1,
            _ => break,
        }
    }
    if i == core_start {
        return None; // no core: not an NP after all
    }
    Some((
        SyntacticBlock {
            kind: SbKind::Np,
            start,
            end: i,
            feature: Some(np_feature(tokens, start, i)),
            role: SbRole::None,
            children: Vec::new(),
        },
        i,
    ))
}

/// Base chunking pass: VBCs, PPs (with NP child) and NPs.
fn base_chunks(tokens: &[TaggedToken]) -> Vec<SyntacticBlock> {
    let mut blocks = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let pos = tokens[i].pos;
        // Verb chain (including "will not rain").
        if pos.is_verb() {
            let start = i;
            while i < tokens.len()
                && (tokens[i].pos.is_verb()
                    || (tokens[i].pos == Pos::RB && tokens[i].lemma == "not"))
            {
                i += 1;
            }
            blocks.push(SyntacticBlock {
                kind: SbKind::Vbc,
                start,
                end: i,
                feature: None,
                role: SbRole::None,
                children: Vec::new(),
            });
            continue;
        }
        // Prepositional phrase.
        if pos.is_preposition() {
            if let Some((np, next)) = parse_np(tokens, i + 1) {
                blocks.push(SyntacticBlock {
                    kind: SbKind::Pp,
                    start: i,
                    end: next,
                    feature: np.feature,
                    role: SbRole::None,
                    children: vec![np],
                });
                i = next;
                continue;
            }
            i += 1;
            continue;
        }
        // Noun phrase.
        if matches!(
            pos,
            Pos::DT | Pos::JJ | Pos::JJS | Pos::NN | Pos::NNS | Pos::NP | Pos::CD
        ) {
            if let Some((np, next)) = parse_np(tokens, i) {
                blocks.push(np);
                i = next;
                continue;
            }
        }
        i += 1;
    }
    blocks
}

/// Whether exactly one comma separates token ranges `a_end..b_start`.
fn comma_between(tokens: &[TaggedToken], a_end: usize, b_start: usize) -> bool {
    b_start == a_end + 1
        && matches!(tokens.get(a_end), Some(t) if t.pos == Pos::PUNCT && t.token.text == ",")
}

fn looks_like_year(tokens: &[TaggedToken], b: &SyntacticBlock) -> bool {
    let content: Vec<&TaggedToken> = tokens[b.start..b.end]
        .iter()
        .filter(|t| t.pos != Pos::PUNCT)
        .collect();
    content.len() == 1
        && content[0].pos == Pos::CD
        && content[0].lemma.len() == 4
        && content[0].lemma.chars().all(|c| c.is_ascii_digit())
}

/// Merge pass: "January 31" + "," + "2004" → one date NP; "Monday" + "," +
/// date NP → a day NP nesting the date NP (the paper's nested annotation).
fn merge_dates(tokens: &[TaggedToken], blocks: Vec<SyntacticBlock>) -> Vec<SyntacticBlock> {
    // Year absorption.
    let mut merged: Vec<SyntacticBlock> = Vec::with_capacity(blocks.len());
    for b in blocks {
        if let Some(prev) = merged.last_mut() {
            let prev_is_date = prev.kind == SbKind::Np && prev.feature == Some(NpFeature::Date);
            if prev_is_date
                && b.kind == SbKind::Np
                && comma_between(tokens, prev.end, b.start)
                && looks_like_year(tokens, &b)
            {
                prev.end = b.end;
                continue;
            }
        }
        merged.push(b);
    }
    // Day nesting.
    let mut out: Vec<SyntacticBlock> = Vec::with_capacity(merged.len());
    for b in merged {
        if let Some(prev) = out.last_mut() {
            let prev_is_day = prev.kind == SbKind::Np && prev.feature == Some(NpFeature::Day);
            if prev_is_day
                && b.kind == SbKind::Np
                && b.feature == Some(NpFeature::Date)
                && comma_between(tokens, prev.end, b.start)
            {
                prev.end = b.end;
                prev.children.push(b);
                continue;
            }
        }
        out.push(b);
    }
    out
}

/// Role pass: the NP immediately after a VBC is a complement; NPs before
/// the first VBC — or all plain NPs when the sentence has no verb (typical
/// of web headings) — are subjects. Date/day/numeral NPs carry no role.
fn assign_roles(blocks: &mut [SyntacticBlock]) {
    let first_vbc = blocks.iter().position(|b| b.kind == SbKind::Vbc);
    let mut prev_was_vbc = false;
    for (idx, b) in blocks.iter_mut().enumerate() {
        if b.kind == SbKind::Np {
            let eligible = matches!(
                b.feature,
                Some(NpFeature::Comun) | Some(NpFeature::ProperNoun)
            );
            if eligible {
                b.role = match first_vbc {
                    Some(v) if idx < v => SbRole::Subject,
                    Some(_) if prev_was_vbc => SbRole::Compl,
                    Some(_) => SbRole::None,
                    None => SbRole::Subject,
                };
            }
        }
        prev_was_vbc = b.kind == SbKind::Vbc;
    }
}

/// Shallow-parses a tagged sentence into syntactic blocks.
pub fn chunk(tokens: &[TaggedToken]) -> Vec<SyntacticBlock> {
    let blocks = base_chunks(tokens);
    let mut blocks = merge_dates(tokens, blocks);
    assign_roles(&mut blocks);
    blocks
}

fn open_tag(b: &SyntacticBlock) -> String {
    match b.kind {
        SbKind::Np => format!(
            "<@NP,{},{},,>",
            b.role.label(),
            b.feature.map_or("", NpFeature::label)
        ),
        SbKind::Pp => "<@PP>".to_owned(),
        SbKind::Vbc => "<@VBC>".to_owned(),
    }
}

fn close_tag(b: &SyntacticBlock) -> String {
    match b.kind {
        SbKind::Np => format!(
            "<@/NP,{},{},,>",
            b.role.label(),
            b.feature.map_or("", NpFeature::label)
        ),
        SbKind::Pp => "<@/PP>".to_owned(),
        SbKind::Vbc => "<@/VBC>".to_owned(),
    }
}

fn render_block(tokens: &[TaggedToken], b: &SyntacticBlock, out: &mut Vec<String>) {
    out.push(open_tag(b));
    let mut pos = b.start;
    // Children are disjoint sub-ranges in order.
    for child in &b.children {
        for t in &tokens[pos..child.start] {
            out.push(t.render());
        }
        render_block(tokens, child, out);
        pos = child.end;
    }
    for t in &tokens[pos..b.end] {
        out.push(t.render());
    }
    out.push(close_tag(b));
}

/// Renders a tagged, chunked sentence in the paper's annotation format.
pub fn render_annotated(tokens: &[TaggedToken], blocks: &[SyntacticBlock]) -> String {
    let mut out: Vec<String> = Vec::new();
    let mut pos = 0usize;
    for b in blocks {
        for t in &tokens[pos..b.start] {
            out.push(t.render());
        }
        render_block(tokens, b, &mut out);
        pos = b.end;
    }
    for t in &tokens[pos..] {
        out.push(t.render());
    }
    out.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::Lexicon;
    use crate::tagger::tag_sentence;
    use crate::tokenizer::tokenize;

    fn analyze(s: &str) -> (Vec<TaggedToken>, Vec<SyntacticBlock>) {
        let lx = Lexicon::english();
        let tokens = tag_sentence(&lx, &tokenize(s));
        let blocks = chunk(&tokens);
        (tokens, blocks)
    }

    fn block_texts(tokens: &[TaggedToken], blocks: &[SyntacticBlock]) -> Vec<(SbKind, String)> {
        blocks.iter().map(|b| (b.kind, b.text(tokens))).collect()
    }

    #[test]
    fn question_chunking_matches_table_1_shape() {
        let (tokens, blocks) = analyze("What is the weather like in January of 2004 in El Prat?");
        let texts = block_texts(&tokens, &blocks);
        assert!(texts.contains(&(SbKind::Vbc, "is".to_owned())));
        assert!(texts.contains(&(SbKind::Np, "the weather".to_owned())));
        assert!(texts.contains(&(SbKind::Pp, "in January".to_owned())));
        assert!(texts.contains(&(SbKind::Pp, "of 2004".to_owned())));
        assert!(texts.contains(&(SbKind::Pp, "in El Prat".to_owned())));
        // "the weather" is the complement of "is".
        let weather = blocks
            .iter()
            .find(|b| b.text(&tokens) == "the weather")
            .unwrap();
        assert_eq!(weather.role, SbRole::Compl);
        assert_eq!(weather.feature, Some(NpFeature::Comun));
        // "El Prat" inside its PP is a proper noun.
        let el_prat_pp = blocks
            .iter()
            .find(|b| b.text(&tokens) == "in El Prat")
            .unwrap();
        assert_eq!(el_prat_pp.children[0].feature, Some(NpFeature::ProperNoun));
    }

    #[test]
    fn passage_chunking_matches_table_1_shape() {
        let (tokens, blocks) =
            analyze("Monday, January 31, 2004 Barcelona Weather: Temperature 8º C around 46.4 F");
        // Day NP nests the date NP and spans the whole date expression.
        let day = blocks
            .iter()
            .find(|b| b.feature == Some(NpFeature::Day))
            .expect("day NP");
        assert_eq!(day.text(&tokens), "Monday , January 31 , 2004");
        assert_eq!(day.children.len(), 1);
        assert_eq!(day.children[0].feature, Some(NpFeature::Date));
        assert_eq!(day.children[0].text(&tokens), "January 31 , 2004");
        // "Barcelona Weather" is a proper-noun subject (no verb in heading).
        let bw = blocks
            .iter()
            .find(|b| b.text(&tokens) == "Barcelona Weather")
            .expect("Barcelona Weather NP");
        assert_eq!(bw.feature, Some(NpFeature::ProperNoun));
        assert_eq!(bw.role, SbRole::Subject);
        // "Temperature" and "8º C" are separate chunks.
        assert!(blocks.iter().any(|b| b.text(&tokens) == "Temperature"));
        let temp_value = blocks
            .iter()
            .find(|b| b.text(&tokens) == "8 º C")
            .expect("temperature value NP");
        assert_eq!(temp_value.feature, Some(NpFeature::ProperNoun));
    }

    #[test]
    fn numeral_np() {
        let (tokens, blocks) = analyze("in 1990");
        let pp = &blocks[0];
        assert_eq!(pp.kind, SbKind::Pp);
        assert_eq!(pp.children[0].feature, Some(NpFeature::Numeral));
        assert_eq!(pp.children[0].text(&tokens), "1990");
    }

    #[test]
    fn subject_before_verb_and_head_lemma() {
        let (tokens, blocks) = analyze("The last minute sales increased");
        let np = &blocks[0];
        assert_eq!(np.kind, SbKind::Np);
        assert_eq!(np.role, SbRole::Subject);
        assert_eq!(np.head_lemma(&tokens), Some("sale".to_owned()));
        assert_eq!(blocks[1].kind, SbKind::Vbc);
    }

    #[test]
    fn clef_question_shape() {
        // "Which country did Iraq invade in 1990?" (the paper's CLEF 2006
        // example): SBs [Iraq] [to invade] [in 1990].
        let (tokens, blocks) = analyze("Which country did Iraq invade in 1990?");
        let texts = block_texts(&tokens, &blocks);
        assert!(texts.contains(&(SbKind::Np, "country".to_owned())));
        assert!(texts.contains(&(SbKind::Np, "Iraq".to_owned())));
        assert!(texts.contains(&(SbKind::Pp, "in 1990".to_owned())));
        assert!(texts
            .iter()
            .any(|(k, t)| *k == SbKind::Vbc && t.contains("invade")));
    }

    #[test]
    fn render_matches_paper_format() {
        let (tokens, blocks) = analyze("the weather");
        let rendered = render_annotated(&tokens, &blocks);
        assert_eq!(
            rendered,
            "<@NP,subject,comun,,> the DT the weather NN weather <@/NP,subject,comun,,>"
        );
    }

    #[test]
    fn render_nested_day_date() {
        let (tokens, blocks) = analyze("Monday, January 31, 2004");
        let rendered = render_annotated(&tokens, &blocks);
        assert!(rendered.starts_with("<@NP,,day,,> Monday NP monday , PUNCT ,"));
        assert!(rendered.contains("<@NP,,date,,> January NP january 31 CD 31"));
        assert!(rendered.ends_with("<@/NP,,date,,> <@/NP,,day,,>"));
    }

    #[test]
    fn walk_visits_descendants() {
        let (_, blocks) = analyze("Monday, January 31, 2004");
        let day = &blocks[0];
        assert_eq!(day.walk().len(), 2);
    }

    #[test]
    fn pp_without_np_is_skipped_gracefully() {
        // "like in January": "like" has no NP directly after it.
        let (tokens, blocks) = analyze("like in January");
        let pps: Vec<String> = blocks
            .iter()
            .filter(|b| b.kind == SbKind::Pp)
            .map(|b| b.text(&tokens))
            .collect();
        assert_eq!(pps, ["in January"]);
    }

    #[test]
    fn lemmas_skip_punctuation() {
        let (tokens, blocks) = analyze("Monday, January 31, 2004");
        let day = &blocks[0];
        let lemmas = day.lemmas(&tokens);
        assert!(!lemmas.contains(&",".to_owned()));
        assert!(lemmas.contains(&"monday".to_owned()));
        assert!(lemmas.contains(&"2004".to_owned()));
    }

    #[test]
    fn empty_input_yields_no_blocks() {
        let (tokens, blocks) = analyze("");
        assert!(tokens.is_empty());
        assert!(blocks.is_empty());
    }

    #[test]
    fn determiner_without_core_is_not_an_np() {
        // "the of" — DT followed by a preposition: no NP core.
        let (_, blocks) = analyze("the of");
        assert!(blocks.iter().all(|b| b.kind != SbKind::Np));
    }

    #[test]
    fn vbc_absorbs_negation() {
        let (tokens, blocks) = analyze("it will not rain");
        let vbc = blocks.iter().find(|b| b.kind == SbKind::Vbc).unwrap();
        assert_eq!(vbc.text(&tokens), "will not rain");
    }
}
