//! Typed entity recognition.
//!
//! The QA answer taxonomy (person, place, temporal, numerical …) needs
//! typed values extracted from token streams: temperatures ("8º C",
//! "46.4 F", "minus 3 degrees Celsius"), calendar dates in the paper's
//! formats ("Monday, January 31, 2004", "the 12th of May, 1997"),
//! month/year references ("January of 2004"), bare years, percentages and
//! money. These recognisers run over tagged tokens and are shared by the
//! QA extraction module and the question analyser.

use crate::lexicon::Pos;
use crate::tagger::TaggedToken;
use dwqa_common::{Date, Month};

/// Temperature scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TempUnit {
    /// Degrees Celsius.
    Celsius,
    /// Degrees Fahrenheit.
    Fahrenheit,
}

impl TempUnit {
    /// Converts a value in this unit to Celsius (the axiom the paper's
    /// Step 4 adds to the "temperature" concept).
    pub fn to_celsius(self, value: f64) -> f64 {
        match self {
            TempUnit::Celsius => value,
            TempUnit::Fahrenheit => (value - 32.0) * 5.0 / 9.0,
        }
    }

    /// Converts a value in this unit to Fahrenheit.
    pub fn to_fahrenheit(self, value: f64) -> f64 {
        match self {
            TempUnit::Celsius => value * 9.0 / 5.0 + 32.0,
            TempUnit::Fahrenheit => value,
        }
    }

    /// The conventional symbol ("ºC" / "F").
    pub fn symbol(self) -> &'static str {
        match self {
            TempUnit::Celsius => "ºC",
            TempUnit::Fahrenheit => "F",
        }
    }
}

/// A typed entity found in a sentence.
#[derive(Debug, Clone, PartialEq)]
pub enum EntityKind {
    /// A temperature reading.
    Temperature {
        /// Numeric value in the stated unit.
        value: f64,
        /// The stated unit.
        unit: TempUnit,
    },
    /// A complete calendar date.
    FullDate(Date),
    /// A month + year reference ("January of 2004").
    MonthYear {
        /// The month.
        month: Month,
        /// The year.
        year: i32,
    },
    /// A bare year.
    Year(i32),
    /// A percentage value.
    Percentage(f64),
    /// A money amount with a currency word/symbol.
    Money {
        /// The amount.
        amount: f64,
        /// Currency label ("$", "euro").
        currency: String,
    },
}

/// An entity with its token span `[start, end)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Entity {
    /// The typed content.
    pub kind: EntityKind,
    /// First token index.
    pub start: usize,
    /// One past the last token index.
    pub end: usize,
}

fn as_number(t: &TaggedToken) -> Option<f64> {
    if t.pos == Pos::CD {
        t.lemma.parse::<f64>().ok()
    } else {
        None
    }
}

fn as_day(t: &TaggedToken) -> Option<u32> {
    let n = as_number(t)?;
    let d = n as u32;
    if (1..=31).contains(&d) && (n - d as f64).abs() < f64::EPSILON {
        Some(d)
    } else {
        None
    }
}

fn as_year(t: &TaggedToken) -> Option<i32> {
    if t.pos == Pos::CD && t.lemma.len() == 4 {
        let y: i32 = t.lemma.parse().ok()?;
        if (1000..=2999).contains(&y) {
            return Some(y);
        }
    }
    None
}

fn as_month(t: &TaggedToken) -> Option<Month> {
    Month::parse(&t.lemma)
}

fn is_comma(t: &TaggedToken) -> bool {
    t.pos == Pos::PUNCT && t.token.text == ","
}

fn unit_at(tokens: &[TaggedToken], i: usize) -> Option<(TempUnit, usize)> {
    // "º C" / "° F" (symbol + letter), bare letter "C"/"F", or the words
    // "degrees [celsius|fahrenheit]" / "celsius" / "fahrenheit".
    match tokens.get(i) {
        Some(t) if t.pos == Pos::SYM && (t.token.text == "º" || t.token.text == "°") => {
            match tokens.get(i + 1) {
                Some(n) if n.lemma == "c" => Some((TempUnit::Celsius, i + 2)),
                Some(n) if n.lemma == "f" => Some((TempUnit::Fahrenheit, i + 2)),
                // A degree sign with no letter defaults to Celsius (the
                // format of the paper's Figure 5 table pages).
                _ => Some((TempUnit::Celsius, i + 1)),
            }
        }
        Some(t) if t.lemma == "c" && t.pos == Pos::NP => Some((TempUnit::Celsius, i + 1)),
        Some(t) if t.lemma == "f" && t.pos == Pos::NP => Some((TempUnit::Fahrenheit, i + 1)),
        Some(t) if t.lemma == "degree" => match tokens.get(i + 1) {
            Some(n) if n.lemma == "celsius" => Some((TempUnit::Celsius, i + 2)),
            Some(n) if n.lemma == "fahrenheit" => Some((TempUnit::Fahrenheit, i + 2)),
            _ => Some((TempUnit::Celsius, i + 1)),
        },
        Some(t) if t.lemma == "celsius" => Some((TempUnit::Celsius, i + 1)),
        Some(t) if t.lemma == "fahrenheit" => Some((TempUnit::Fahrenheit, i + 1)),
        _ => None,
    }
}

fn try_temperature(tokens: &[TaggedToken], i: usize) -> Option<(Entity, usize)> {
    // "-3" is a signed token; "minus three" is an adverb + number word.
    let (start, value_idx, sign) = if tokens.get(i)?.lemma == "minus" {
        (i, i + 1, -1.0)
    } else {
        (i, i, 1.0)
    };
    let value = sign * as_number(tokens.get(value_idx)?)?;
    let (unit, end) = unit_at(tokens, value_idx + 1)?;
    Some((
        Entity {
            kind: EntityKind::Temperature { value, unit },
            start,
            end,
        },
        end,
    ))
}

fn try_date(tokens: &[TaggedToken], i: usize) -> Option<(Entity, usize)> {
    // Pattern A: Month day [,] year   ("January 31, 2004")
    if let Some(month) = as_month(tokens.get(i)?) {
        if let Some(day) = tokens.get(i + 1).and_then(as_day) {
            let mut j = i + 2;
            if matches!(tokens.get(j), Some(t) if is_comma(t)) {
                j += 1;
            }
            if let Some(year) = tokens.get(j).and_then(as_year) {
                if let Some(date) = Date::new(year, month, day) {
                    return Some((
                        Entity {
                            kind: EntityKind::FullDate(date),
                            start: i,
                            end: j + 1,
                        },
                        j + 1,
                    ));
                }
            }
        }
        // Pattern B: Month ["of"] year   ("January of 2004", "January 2004")
        let mut j = i + 1;
        if matches!(tokens.get(j), Some(t) if t.pos == Pos::OF) {
            j += 1;
        }
        if let Some(year) = tokens.get(j).and_then(as_year) {
            return Some((
                Entity {
                    kind: EntityKind::MonthYear { month, year },
                    start: i,
                    end: j + 1,
                },
                j + 1,
            ));
        }
        return None;
    }
    // Pattern C: day "of" Month [,] [year]   ("the 12th of May, 1997")
    if let Some(day) = as_day(tokens.get(i)?) {
        if matches!(tokens.get(i + 1), Some(t) if t.pos == Pos::OF) {
            if let Some(month) = tokens.get(i + 2).and_then(as_month) {
                let mut j = i + 3;
                if matches!(tokens.get(j), Some(t) if is_comma(t)) {
                    j += 1;
                }
                if let Some(year) = tokens.get(j).and_then(as_year) {
                    if let Some(date) = Date::new(year, month, day) {
                        return Some((
                            Entity {
                                kind: EntityKind::FullDate(date),
                                start: i,
                                end: j + 1,
                            },
                            j + 1,
                        ));
                    }
                }
            }
        }
    }
    None
}

fn try_percentage(tokens: &[TaggedToken], i: usize) -> Option<(Entity, usize)> {
    let value = as_number(tokens.get(i)?)?;
    match tokens.get(i + 1) {
        Some(t) if t.token.text == "%" || t.lemma == "percent" || t.lemma == "percentage" => {
            Some((
                Entity {
                    kind: EntityKind::Percentage(value),
                    start: i,
                    end: i + 2,
                },
                i + 2,
            ))
        }
        _ => None,
    }
}

fn try_money(tokens: &[TaggedToken], i: usize) -> Option<(Entity, usize)> {
    let t = tokens.get(i)?;
    // "$ 100" / "€ 100"
    if t.pos == Pos::SYM && ["$", "€", "£"].contains(&t.token.text.as_str()) {
        let amount = as_number(tokens.get(i + 1)?)?;
        return Some((
            Entity {
                kind: EntityKind::Money {
                    amount,
                    currency: t.token.text.clone(),
                },
                start: i,
                end: i + 2,
            },
            i + 2,
        ));
    }
    // "100 euros" / "100 dollars"
    let amount = as_number(t)?;
    match tokens.get(i + 1) {
        Some(n) if n.lemma == "euro" || n.lemma == "dollar" => Some((
            Entity {
                kind: EntityKind::Money {
                    amount,
                    currency: n.lemma.clone(),
                },
                start: i,
                end: i + 2,
            },
            i + 2,
        )),
        _ => None,
    }
}

/// Extracts all typed entities from a tagged sentence, greedily left to
/// right (entities never overlap).
pub fn extract_entities(tokens: &[TaggedToken]) -> Vec<Entity> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Order matters: dates before years (a year inside a date must not
        // be reported twice), temperatures before bare numbers.
        if let Some((e, next)) = try_date(tokens, i) {
            out.push(e);
            i = next;
            continue;
        }
        if let Some((e, next)) = try_temperature(tokens, i) {
            out.push(e);
            i = next;
            continue;
        }
        if let Some((e, next)) = try_percentage(tokens, i) {
            out.push(e);
            i = next;
            continue;
        }
        if let Some((e, next)) = try_money(tokens, i) {
            out.push(e);
            i = next;
            continue;
        }
        if let Some(year) = as_year(&tokens[i]) {
            out.push(Entity {
                kind: EntityKind::Year(year),
                start: i,
                end: i + 1,
            });
            i += 1;
            continue;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::Lexicon;
    use crate::tagger::tag_sentence;
    use crate::tokenizer::tokenize;

    fn entities(s: &str) -> Vec<EntityKind> {
        let lx = Lexicon::english();
        let tokens = tag_sentence(&lx, &tokenize(s));
        extract_entities(&tokens)
            .into_iter()
            .map(|e| e.kind)
            .collect()
    }

    #[test]
    fn paper_passage_yields_temperatures_and_date() {
        let es = entities("Monday, January 31, 2004 Barcelona Weather: Temperature 8º C around 46.4 F Clear skies today");
        assert!(es.contains(&EntityKind::FullDate(Date::from_ymd(2004, 1, 31).unwrap())));
        assert!(es.contains(&EntityKind::Temperature {
            value: 8.0,
            unit: TempUnit::Celsius
        }));
        assert!(es.contains(&EntityKind::Temperature {
            value: 46.4,
            unit: TempUnit::Fahrenheit
        }));
    }

    #[test]
    fn month_year_patterns() {
        assert!(
            entities("in January of 2004").contains(&EntityKind::MonthYear {
                month: Month::January,
                year: 2004
            })
        );
        assert!(
            entities("in January 2004").contains(&EntityKind::MonthYear {
                month: Month::January,
                year: 2004
            })
        );
    }

    #[test]
    fn day_of_month_pattern() {
        assert!(entities("on the 12th of May, 1997")
            .contains(&EntityKind::FullDate(Date::from_ymd(1997, 5, 12).unwrap())));
        assert!(entities("on the 3 of June 2001")
            .contains(&EntityKind::FullDate(Date::from_ymd(2001, 6, 3).unwrap())));
    }

    #[test]
    fn invalid_dates_are_not_extracted() {
        let es = entities("on February 30, 2004 it rained");
        assert!(!es.iter().any(|e| matches!(e, EntityKind::FullDate(_))));
    }

    #[test]
    fn bare_year_only_outside_dates() {
        let es = entities("Iraq invaded Kuwait in 1990");
        assert_eq!(es, vec![EntityKind::Year(1990)]);
        // Year inside a full date is not double-reported.
        let es = entities("January 31, 2004");
        assert_eq!(es.len(), 1);
    }

    #[test]
    fn temperature_variants() {
        assert!(
            entities("It was 21 degrees Celsius").contains(&EntityKind::Temperature {
                value: 21.0,
                unit: TempUnit::Celsius
            })
        );
        assert!(
            entities("a low of -3 degrees").contains(&EntityKind::Temperature {
                value: -3.0,
                unit: TempUnit::Celsius
            })
        );
        assert!(
            entities("around 70 fahrenheit").contains(&EntityKind::Temperature {
                value: 70.0,
                unit: TempUnit::Fahrenheit
            })
        );
    }

    #[test]
    fn number_words_and_minus() {
        assert!(
            entities("It was five degrees celsius").contains(&EntityKind::Temperature {
                value: 5.0,
                unit: TempUnit::Celsius
            })
        );
        assert!(
            entities("a low of minus three degrees").contains(&EntityKind::Temperature {
                value: -3.0,
                unit: TempUnit::Celsius
            })
        );
        assert!(
            entities("twenty degrees fahrenheit today").contains(&EntityKind::Temperature {
                value: 20.0,
                unit: TempUnit::Fahrenheit
            })
        );
    }

    #[test]
    fn percentage_and_money() {
        assert!(entities("sales rose 12 %").contains(&EntityKind::Percentage(12.0)));
        assert!(
            entities("a ticket for 99 euros").contains(&EntityKind::Money {
                amount: 99.0,
                currency: "euro".into()
            })
        );
        assert!(entities("it cost $ 45").contains(&EntityKind::Money {
            amount: 45.0,
            currency: "$".into()
        }));
    }

    #[test]
    fn unit_conversions() {
        assert!((TempUnit::Fahrenheit.to_celsius(46.4) - 8.0).abs() < 1e-9);
        assert!((TempUnit::Celsius.to_fahrenheit(8.0) - 46.4).abs() < 1e-9);
        assert_eq!(TempUnit::Celsius.to_celsius(5.0), 5.0);
    }

    #[test]
    fn no_entities_in_plain_text() {
        assert!(entities("the weather is nice").is_empty());
    }
}
