//! Rule-based inflectional morphology.
//!
//! Given a surface form and a coarse part of speech, [`lemmatize`] strips
//! regular English inflection (plural `-s`/`-es`/`-ies`, verbal `-s`,
//! `-ed`, `-ing`) with the usual orthographic repairs (consonant doubling,
//! silent `e`). Irregular forms are handled upstream by lexicon entries;
//! this module is the fallback for regular morphology, exactly the split a
//! tool like TreeTagger makes.

use crate::lexicon::Pos;

/// Strips regular noun plural morphology; returns the singular candidate.
pub fn singularize(form: &str) -> String {
    let f = form.to_ascii_lowercase();
    if let Some(stem) = f.strip_suffix("ies") {
        if stem.len() >= 2 {
            return format!("{stem}y");
        }
    }
    for suffix in ["ches", "shes", "xes", "sses", "zes"] {
        if let Some(stem) = f.strip_suffix("es") {
            if f.ends_with(suffix) {
                return stem.to_owned();
            }
        }
    }
    if let Some(stem) = f.strip_suffix('s') {
        if !stem.is_empty() && !stem.ends_with('s') && !stem.ends_with('u') {
            return stem.to_owned();
        }
    }
    f
}

/// Candidate base forms for a regularly inflected verb.
///
/// Returns candidates in preference order; the tagger keeps the first one
/// the lexicon knows as a base verb.
pub fn verb_bases(form: &str) -> Vec<String> {
    let f = form.to_ascii_lowercase();
    let mut out = Vec::new();
    // -ies → -y ("flies" → "fly")
    if let Some(stem) = f.strip_suffix("ies") {
        if !stem.is_empty() {
            out.push(format!("{stem}y"));
        }
    }
    // -es → base ("reaches" → "reach", "analyzes" → "analyze")
    if let Some(stem) = f.strip_suffix("es") {
        if !stem.is_empty() {
            out.push(stem.to_owned());
            out.push(format!("{stem}e"));
        }
    }
    // -s → base
    if let Some(stem) = f.strip_suffix('s') {
        if !stem.is_empty() && !stem.ends_with('s') {
            out.push(stem.to_owned());
        }
    }
    // -ied → -y ("carried" → "carry")
    if let Some(stem) = f.strip_suffix("ied") {
        if !stem.is_empty() {
            out.push(format!("{stem}y"));
        }
    }
    // -ed → base / base+e / dedoubled ("landed" → "land", "increased" →
    // "increase", "dropped" → "drop")
    if let Some(stem) = f.strip_suffix("ed") {
        if !stem.is_empty() {
            out.push(stem.to_owned());
            out.push(format!("{stem}e"));
            if stem.len() >= 2 {
                let b = stem.as_bytes();
                if b[b.len() - 1] == b[b.len() - 2] {
                    out.push(stem[..stem.len() - 1].to_owned());
                }
            }
        }
    }
    // -ing → base / base+e / dedoubled
    if let Some(stem) = f.strip_suffix("ing") {
        if !stem.is_empty() {
            out.push(stem.to_owned());
            out.push(format!("{stem}e"));
            if stem.len() >= 2 {
                let b = stem.as_bytes();
                if b[b.len() - 1] == b[b.len() - 2] {
                    out.push(stem[..stem.len() - 1].to_owned());
                }
            }
        }
    }
    out.dedup();
    out
}

/// The inflection class a verb form ending implies.
pub fn verb_tag_for_suffix(form: &str) -> Option<Pos> {
    let f = form.to_ascii_lowercase();
    if f.ends_with("ing") {
        Some(Pos::VBG)
    } else if f.ends_with("ed") {
        Some(Pos::VBD)
    } else if f.ends_with('s') {
        Some(Pos::VBZ)
    } else {
        None
    }
}

/// Lemmatises a form given its (already decided) part of speech, without a
/// lexicon. Verb bases are a best-effort guess: prefer
/// [`lemmatize_with`] when a lexicon is available (the tagger always uses
/// the lexicon-aware path).
pub fn lemmatize(form: &str, pos: Pos) -> String {
    let lower = form.to_ascii_lowercase();
    match pos {
        Pos::NNS => singularize(&lower),
        Pos::VBZ | Pos::VBD | Pos::VBG | Pos::VBN => {
            verb_bases(&lower).into_iter().next().unwrap_or(lower)
        }
        Pos::NP => lower,
        _ => lower,
    }
}

/// Lemmatises with a lexicon: verb candidates are filtered to bases the
/// lexicon actually knows, and plurals to known singulars, falling back to
/// the lexicon-free guess.
pub fn lemmatize_with(lexicon: &crate::lexicon::Lexicon, form: &str, pos: Pos) -> String {
    let lower = form.to_ascii_lowercase();
    match pos {
        Pos::VBZ | Pos::VBD | Pos::VBG | Pos::VBN | Pos::VBP | Pos::VB => {
            if lexicon.has_base_verb(&lower) {
                return lower;
            }
            for candidate in verb_bases(&lower) {
                if lexicon.has_base_verb(&candidate) {
                    return candidate;
                }
            }
            lemmatize(form, pos)
        }
        Pos::NNS => {
            let sing = singularize(&lower);
            if lexicon.lookup_pos(&sing, Pos::NN).is_some() {
                sing
            } else {
                lemmatize(form, pos)
            }
        }
        _ => lemmatize(form, pos),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singularize_regular_patterns() {
        assert_eq!(singularize("temperatures"), "temperature");
        assert_eq!(singularize("cities"), "city");
        assert_eq!(singularize("beaches"), "beach");
        assert_eq!(singularize("boxes"), "box");
        assert_eq!(singularize("classes"), "class");
        assert_eq!(singularize("degree"), "degree");
        // 's' that is not plural morphology survives.
        assert_eq!(singularize("celsius"), "celsius");
    }

    #[test]
    fn verb_bases_cover_orthographic_repairs() {
        assert!(verb_bases("lands").contains(&"land".to_owned()));
        assert!(verb_bases("flies").contains(&"fly".to_owned()));
        assert!(verb_bases("increased").contains(&"increase".to_owned()));
        assert!(verb_bases("dropped").contains(&"drop".to_owned()));
        assert!(verb_bases("carrying").contains(&"carry".to_owned()));
        assert!(verb_bases("carried").contains(&"carry".to_owned()));
        assert!(verb_bases("hovering").contains(&"hover".to_owned()));
        assert!(verb_bases("reaches").contains(&"reach".to_owned()));
    }

    #[test]
    fn suffix_tags() {
        assert_eq!(verb_tag_for_suffix("landing"), Some(Pos::VBG));
        assert_eq!(verb_tag_for_suffix("landed"), Some(Pos::VBD));
        assert_eq!(verb_tag_for_suffix("lands"), Some(Pos::VBZ));
        assert_eq!(verb_tag_for_suffix("land"), None);
    }

    #[test]
    fn lemmatize_dispatches_by_pos() {
        assert_eq!(lemmatize("temperatures", Pos::NNS), "temperature");
        assert_eq!(
            lemmatize_with(&crate::lexicon::Lexicon::english(), "increased", Pos::VBD),
            "increase"
        );
        assert_eq!(lemmatize("landed", Pos::VBD), "land");
        assert_eq!(lemmatize("Barcelona", Pos::NP), "barcelona");
        assert_eq!(lemmatize("clear", Pos::JJ), "clear");
    }

    proptest! {
        #[test]
        fn prop_lemmas_are_lowercase_and_nonempty(w in "[a-zA-Z]{1,12}") {
            for pos in [Pos::NN, Pos::NNS, Pos::VBD, Pos::VBG, Pos::NP, Pos::JJ] {
                let lemma = lemmatize(&w, pos);
                prop_assert!(!lemma.is_empty());
                prop_assert_eq!(lemma.clone(), lemma.to_ascii_lowercase());
            }
        }

        #[test]
        fn prop_singularize_never_longer(w in "[a-z]{1,14}") {
            prop_assert!(singularize(&w).len() <= w.len() + 1);
        }
    }
}
