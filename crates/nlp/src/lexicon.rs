//! Part-of-speech inventory and the built-in English lexicon.
//!
//! The tagset is the Penn-style subset the paper's Table 1 footnote lists:
//! `NP` proper noun, `NN`/`NNS` common noun, `CD` number, `IN`/`OF`
//! preposition, `DT` determiner — plus the verb, adjective, adverb and
//! wh-word tags the question patterns need.

use std::collections::HashMap;

/// Part-of-speech tags (paper tagset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Pos {
    /// Common noun, singular.
    NN,
    /// Common noun, plural.
    NNS,
    /// Proper noun.
    NP,
    /// Cardinal number.
    CD,
    /// Determiner.
    DT,
    /// Preposition.
    IN,
    /// The preposition "of" (kept distinct, as in the paper's traces).
    OF,
    /// Verb, base form.
    VB,
    /// Verb, 3rd person singular present.
    VBZ,
    /// Verb, non-3rd person present.
    VBP,
    /// Verb, past tense.
    VBD,
    /// Verb, gerund.
    VBG,
    /// Verb, past participle.
    VBN,
    /// Modal.
    MD,
    /// Adjective.
    JJ,
    /// Adjective, superlative.
    JJS,
    /// Adverb.
    RB,
    /// Wh-pronoun (what, who).
    WP,
    /// Wh-adverb (when, where, how).
    WRB,
    /// Wh-determiner (which, whose).
    WDT,
    /// Coordinating conjunction.
    CC,
    /// Personal/possessive pronoun.
    PRP,
    /// Infinitival "to".
    TO,
    /// Symbol (º, %, currency).
    SYM,
    /// Sentence-final punctuation.
    SENT,
    /// Other punctuation.
    PUNCT,
}

impl Pos {
    /// The tag's surface label as printed in analyses ("NN", "VBZ", …).
    pub fn label(self) -> &'static str {
        match self {
            Pos::NN => "NN",
            Pos::NNS => "NNS",
            Pos::NP => "NP",
            Pos::CD => "CD",
            Pos::DT => "DT",
            Pos::IN => "IN",
            Pos::OF => "OF",
            Pos::VB => "VB",
            Pos::VBZ => "VBZ",
            Pos::VBP => "VBP",
            Pos::VBD => "VBD",
            Pos::VBG => "VBG",
            Pos::VBN => "VBN",
            Pos::MD => "MD",
            Pos::JJ => "JJ",
            Pos::JJS => "JJS",
            Pos::RB => "RB",
            Pos::WP => "WP",
            Pos::WRB => "WRB",
            Pos::WDT => "WDT",
            Pos::CC => "CC",
            Pos::PRP => "PRP",
            Pos::TO => "TO",
            Pos::SYM => "SYM",
            Pos::SENT => "SENT",
            Pos::PUNCT => "PUNCT",
        }
    }

    /// Whether the tag is nominal (feeds NP chunks).
    pub fn is_noun(self) -> bool {
        matches!(self, Pos::NN | Pos::NNS | Pos::NP)
    }

    /// Whether the tag is verbal (feeds VBC chunks).
    pub fn is_verb(self) -> bool {
        matches!(
            self,
            Pos::VB | Pos::VBZ | Pos::VBP | Pos::VBD | Pos::VBG | Pos::VBN | Pos::MD
        )
    }

    /// Whether the tag is a preposition.
    pub fn is_preposition(self) -> bool {
        matches!(self, Pos::IN | Pos::OF | Pos::TO)
    }

    /// Whether the tag is a wh-word.
    pub fn is_wh(self) -> bool {
        matches!(self, Pos::WP | Pos::WRB | Pos::WDT)
    }
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One lexicon reading of a surface form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexEntry {
    /// Part of speech.
    pub pos: Pos,
    /// The lemma of this reading.
    pub lemma: String,
}

/// A form → readings lexicon, keyed by case-folded surface form.
#[derive(Debug, Clone, Default)]
pub struct Lexicon {
    entries: HashMap<String, Vec<LexEntry>>,
}

impl Lexicon {
    /// Creates an empty lexicon.
    pub fn new() -> Lexicon {
        Lexicon::default()
    }

    /// Adds a reading for a form. Duplicate `(pos, lemma)` pairs are
    /// ignored.
    pub fn add(&mut self, form: &str, pos: Pos, lemma: &str) {
        let key = dwqa_common::text::fold(form);
        let readings = self.entries.entry(key).or_default();
        if !readings.iter().any(|e| e.pos == pos && e.lemma == lemma) {
            readings.push(LexEntry {
                pos,
                lemma: lemma.to_owned(),
            });
        }
    }

    /// All readings of a form (case-insensitive).
    pub fn lookup(&self, form: &str) -> &[LexEntry] {
        self.entries
            .get(&dwqa_common::text::fold(form))
            .map_or(&[], Vec::as_slice)
    }

    /// The first reading with a given part of speech, if any.
    pub fn lookup_pos(&self, form: &str, pos: Pos) -> Option<&LexEntry> {
        self.lookup(form).iter().find(|e| e.pos == pos)
    }

    /// Whether the form is known at all.
    pub fn contains(&self, form: &str) -> bool {
        !self.lookup(form).is_empty()
    }

    /// Whether the form has a verbal reading.
    pub fn has_verb(&self, form: &str) -> bool {
        self.lookup(form).iter().any(|e| e.pos.is_verb())
    }

    /// Whether a *base* verb with this lemma exists (used by the tagger to
    /// accept regularly inflected forms of known verbs).
    pub fn has_base_verb(&self, lemma: &str) -> bool {
        self.lookup(lemma).iter().any(|e| e.pos == Pos::VB)
    }

    /// Number of distinct forms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the lexicon is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The built-in English lexicon covering closed classes and the
    /// airline / weather / business vocabulary of the reproduction corpus.
    pub fn english() -> Lexicon {
        let mut lx = Lexicon::new();

        // --- Wh-words -----------------------------------------------------
        for w in ["what", "who", "whom"] {
            lx.add(w, Pos::WP, w);
        }
        for w in ["which", "whose"] {
            lx.add(w, Pos::WDT, w);
        }
        for w in ["when", "where", "how", "why"] {
            lx.add(w, Pos::WRB, w);
        }

        // --- Determiners --------------------------------------------------
        for w in [
            "the", "a", "an", "this", "that", "these", "those", "each", "every", "all", "some",
            "any", "no", "both", "either", "neither", "another", "such",
        ] {
            lx.add(w, Pos::DT, w);
        }

        // --- Prepositions (OF is its own tag, as in the paper) -------------
        lx.add("of", Pos::OF, "of");
        lx.add("to", Pos::TO, "to");
        for w in [
            "in", "on", "at", "by", "for", "with", "from", "about", "around", "during", "between",
            "under", "over", "near", "like", "after", "before", "since", "until", "within",
            "without", "per", "above", "below", "across", "into", "through", "against", "among",
            "towards", "toward", "despite", "except",
        ] {
            lx.add(w, Pos::IN, w);
        }

        // --- Conjunctions ---------------------------------------------------
        for w in ["and", "or", "but", "nor", "so", "yet"] {
            lx.add(w, Pos::CC, w);
        }

        // --- Pronouns -------------------------------------------------------
        for w in [
            "i", "you", "he", "she", "it", "we", "they", "me", "him", "her", "us", "them", "its",
            "his", "their", "our", "your", "my", "mine", "yours", "theirs", "ours",
        ] {
            lx.add(w, Pos::PRP, w);
        }

        // --- Modals ---------------------------------------------------------
        for w in [
            "will", "would", "can", "could", "may", "might", "must", "shall", "should",
        ] {
            lx.add(w, Pos::MD, w);
        }

        // --- Irregular verb paradigms ----------------------------------------
        lx.add("be", Pos::VB, "be");
        lx.add("am", Pos::VBP, "be");
        lx.add("is", Pos::VBZ, "be");
        lx.add("are", Pos::VBP, "be");
        lx.add("was", Pos::VBD, "be");
        lx.add("were", Pos::VBD, "be");
        lx.add("been", Pos::VBN, "be");
        lx.add("being", Pos::VBG, "be");
        lx.add("have", Pos::VB, "have");
        lx.add("have", Pos::VBP, "have");
        lx.add("has", Pos::VBZ, "have");
        lx.add("had", Pos::VBD, "have");
        lx.add("having", Pos::VBG, "have");
        lx.add("do", Pos::VB, "do");
        lx.add("do", Pos::VBP, "do");
        lx.add("does", Pos::VBZ, "do");
        lx.add("did", Pos::VBD, "do");
        lx.add("done", Pos::VBN, "do");
        lx.add("doing", Pos::VBG, "do");
        let irregular_past: &[(&str, &str, &str)] = &[
            // (base, past, participle)
            ("buy", "bought", "bought"),
            ("sell", "sold", "sold"),
            ("fly", "flew", "flown"),
            ("rise", "rose", "risen"),
            ("fall", "fell", "fallen"),
            ("go", "went", "gone"),
            ("come", "came", "come"),
            ("see", "saw", "seen"),
            ("know", "knew", "known"),
            ("say", "said", "said"),
            ("tell", "told", "told"),
            ("find", "found", "found"),
            ("make", "made", "made"),
            ("take", "took", "taken"),
            ("get", "got", "gotten"),
            ("give", "gave", "given"),
            ("blow", "blew", "blown"),
            ("shine", "shone", "shone"),
            ("feed", "fed", "fed"),
            ("leave", "left", "left"),
            ("pay", "paid", "paid"),
            ("mean", "meant", "meant"),
            ("feel", "felt", "felt"),
            ("keep", "kept", "kept"),
            ("lead", "led", "led"),
        ];
        for (base, past, part) in irregular_past {
            lx.add(base, Pos::VB, base);
            lx.add(past, Pos::VBD, base);
            lx.add(part, Pos::VBN, base);
        }

        // --- Regular verbs (base forms; inflections derived by the tagger) --
        for w in [
            "travel",
            "arrive",
            "depart",
            "land",
            "increase",
            "decrease",
            "rain",
            "snow",
            "forecast",
            "expect",
            "report",
            "record",
            "reach",
            "drop",
            "stay",
            "remain",
            "analyze",
            "invade",
            "visit",
            "book",
            "cost",
            "want",
            "need",
            "return",
            "extract",
            "look",
            "seem",
            "become",
            "show",
            "start",
            "end",
            "open",
            "close",
            "offer",
            "happen",
            "change",
            "cool",
            "warm",
            "average",
            "measure",
            "predict",
            "publish",
            "search",
            "answer",
            "ask",
            "live",
            "work",
            "move",
            "plan",
            "help",
            "cause",
            "affect",
            "improve",
            "climb",
            "dip",
            "hover",
            "peak",
            "settle",
            "stand",
            "assassinate",
            "elect",
            "win",
            "score",
            "play",
            "release",
            "present",
            "fill",
            "serve",
            "reform",
            "remember",
            "join",
            "study",
            "describe",
            "mention",
        ] {
            lx.add(w, Pos::VB, w);
        }

        // --- Weather vocabulary ----------------------------------------------
        for w in [
            "weather",
            "temperature",
            "degree",
            "celsius",
            "fahrenheit",
            "sky",
            "wind",
            "rain",
            "snow",
            "sun",
            "cloud",
            "humidity",
            "forecast",
            "storm",
            "fog",
            "frost",
            "heat",
            "cold",
            "climate",
            "condition",
            "precipitation",
            "breeze",
            "shower",
            "sunshine",
            "reading",
            "thermometer",
            "average",
            "maximum",
            "minimum",
            "high",
            "low",
        ] {
            lx.add(w, Pos::NN, w);
        }
        lx.add("skies", Pos::NNS, "sky");

        // --- Airline / business vocabulary -----------------------------------
        for w in [
            "airport",
            "airline",
            "flight",
            "ticket",
            "sale",
            "price",
            "mile",
            "customer",
            "passenger",
            "traveler",
            "traveller",
            "city",
            "state",
            "country",
            "capital",
            "month",
            "year",
            "day",
            "week",
            "quarter",
            "date",
            "company",
            "benefit",
            "promotion",
            "marketing",
            "department",
            "seat",
            "destination",
            "origin",
            "rate",
            "discount",
            "revenue",
            "percent",
            "percentage",
            "fare",
            "route",
            "booking",
            "trip",
            "terminal",
            "runway",
            "crew",
            "pilot",
            "gate",
            "luggage",
            "bargain",
            "deal",
            "offer",
            "euro",
            "dollar",
            "business",
            "economy",
        ] {
            lx.add(w, Pos::NN, w);
        }

        // --- General nouns -----------------------------------------------------
        for w in [
            "person",
            "man",
            "woman",
            "group",
            "object",
            "place",
            "event",
            "star",
            "universe",
            "night",
            "morning",
            "afternoon",
            "evening",
            "report",
            "email",
            "web",
            "page",
            "document",
            "information",
            "data",
            "system",
            "question",
            "answer",
            "database",
            "warehouse",
            "number",
            "figure",
            "table",
            "unit",
            "scale",
            "value",
            "range",
            "time",
            "period",
            "profession",
            "abbreviation",
            "definition",
            "musician",
            "singer",
            "band",
            "mayor",
            "politician",
            "history",
            "record",
            "home",
            "family",
            "part",
            "area",
            "region",
            "world",
            "tourist",
            "guide",
            "visitor",
            "resident",
            "winter",
            "summer",
            "spring",
            "autumn",
            "season",
            "holiday",
            "museum",
            "beach",
            "street",
        ] {
            lx.add(w, Pos::NN, w);
        }
        lx.add("minute", Pos::NN, "minute");
        lx.add("minute", Pos::JJ, "minute");
        lx.add("last", Pos::JJ, "last");
        lx.add("people", Pos::NNS, "person");
        lx.add("children", Pos::NNS, "child");
        lx.add("men", Pos::NNS, "man");
        lx.add("women", Pos::NNS, "woman");
        lx.add("feet", Pos::NNS, "foot");

        // --- Adjectives ----------------------------------------------------------
        for w in [
            "clear",
            "sunny",
            "cloudy",
            "rainy",
            "snowy",
            "windy",
            "foggy",
            "hot",
            "warm",
            "mild",
            "cool",
            "dry",
            "wet",
            "chilly",
            "freezing",
            "pleasant",
            "bright",
            "visible",
            "big",
            "small",
            "new",
            "old",
            "good",
            "great",
            "late",
            "early",
            "cheap",
            "expensive",
            "average",
            "typical",
            "daily",
            "monthly",
            "annual",
            "possible",
            "useful",
            "several",
            "strong",
            "weak",
            "heavy",
            "light",
            "gentle",
            "severe",
            "extreme",
            "moderate",
            "many",
            "few",
            "cross-lingual",
            "international",
            "national",
            "local",
            "crowded",
            "popular",
            "famous",
            "beautiful",
            "historic",
        ] {
            lx.add(w, Pos::JJ, w);
        }
        for (sup, base) in [
            ("brightest", "bright"),
            ("best", "good"),
            ("coldest", "cold"),
            ("hottest", "hot"),
            ("highest", "high"),
            ("lowest", "low"),
            ("warmest", "warm"),
            ("largest", "large"),
            ("cheapest", "cheap"),
        ] {
            lx.add(sup, Pos::JJS, base);
        }

        // --- Adverbs ----------------------------------------------------------------
        for w in [
            "today",
            "yesterday",
            "tomorrow",
            "very",
            "quite",
            "approximately",
            "roughly",
            "usually",
            "currently",
            "now",
            "then",
            "here",
            "there",
            "also",
            "only",
            "just",
            "still",
            "already",
            "often",
            "never",
            "always",
            "sometimes",
            "partly",
            "mostly",
            "slightly",
            "nearly",
            "almost",
            "again",
            "too",
            "well",
            "not",
        ] {
            lx.add(w, Pos::RB, w);
        }

        // --- Number words (tagged CD with the digit string as lemma, so
        // the entity recognisers treat "five degrees" like "5 degrees") ---
        let units: &[(&str, u32)] = &[
            ("zero", 0),
            ("one", 1),
            ("two", 2),
            ("three", 3),
            ("four", 4),
            ("five", 5),
            ("six", 6),
            ("seven", 7),
            ("eight", 8),
            ("nine", 9),
            ("ten", 10),
            ("eleven", 11),
            ("twelve", 12),
            ("thirteen", 13),
            ("fourteen", 14),
            ("fifteen", 15),
            ("sixteen", 16),
            ("seventeen", 17),
            ("eighteen", 18),
            ("nineteen", 19),
            ("twenty", 20),
            ("thirty", 30),
            ("forty", 40),
            ("fifty", 50),
            ("sixty", 60),
            ("seventy", 70),
            ("eighty", 80),
            ("ninety", 90),
            ("hundred", 100),
            ("thousand", 1000),
        ];
        for (word, n) in units {
            lx.add(word, Pos::CD, &n.to_string());
        }
        // "minus" negates the following number ("minus five degrees").
        lx.add("minus", Pos::RB, "minus");

        // --- Calendar proper nouns (tagged NP with lowercase lemma, as in
        // the paper's trace: "January NP january") ---------------------------------
        for m in dwqa_common::Month::ALL {
            lx.add(m.name(), Pos::NP, &m.name().to_ascii_lowercase());
        }
        for d in dwqa_common::Weekday::ALL {
            lx.add(d.name(), Pos::NP, &d.name().to_ascii_lowercase());
        }

        lx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_classes_present() {
        let lx = Lexicon::english();
        assert_eq!(lx.lookup_pos("what", Pos::WP).unwrap().lemma, "what");
        assert_eq!(lx.lookup_pos("of", Pos::OF).unwrap().lemma, "of");
        assert_eq!(lx.lookup_pos("the", Pos::DT).unwrap().lemma, "the");
        assert_eq!(lx.lookup_pos("is", Pos::VBZ).unwrap().lemma, "be");
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let lx = Lexicon::english();
        assert!(lx.contains("The"));
        assert!(lx.contains("WEATHER"));
        assert_eq!(lx.lookup_pos("January", Pos::NP).unwrap().lemma, "january");
    }

    #[test]
    fn ambiguous_forms_have_multiple_readings() {
        let lx = Lexicon::english();
        let readings = lx.lookup("rain");
        assert!(readings.iter().any(|e| e.pos == Pos::NN));
        assert!(readings.iter().any(|e| e.pos == Pos::VB));
        let minute = lx.lookup("minute");
        assert!(minute.iter().any(|e| e.pos == Pos::JJ));
    }

    #[test]
    fn irregular_plurals_map_to_singular_lemma() {
        let lx = Lexicon::english();
        assert_eq!(lx.lookup_pos("skies", Pos::NNS).unwrap().lemma, "sky");
        assert_eq!(lx.lookup_pos("people", Pos::NNS).unwrap().lemma, "person");
    }

    #[test]
    fn irregular_verbs_map_to_base() {
        let lx = Lexicon::english();
        assert_eq!(lx.lookup_pos("bought", Pos::VBD).unwrap().lemma, "buy");
        assert_eq!(lx.lookup_pos("flown", Pos::VBN).unwrap().lemma, "fly");
        assert!(lx.has_base_verb("invade"));
        assert!(!lx.has_base_verb("weather"));
    }

    #[test]
    fn add_deduplicates() {
        let mut lx = Lexicon::new();
        lx.add("x", Pos::NN, "x");
        lx.add("x", Pos::NN, "x");
        assert_eq!(lx.lookup("x").len(), 1);
        lx.add("x", Pos::VB, "x");
        assert_eq!(lx.lookup("x").len(), 2);
    }

    #[test]
    fn pos_classifiers() {
        assert!(Pos::NP.is_noun());
        assert!(Pos::VBZ.is_verb());
        assert!(Pos::OF.is_preposition());
        assert!(Pos::WRB.is_wh());
        assert!(!Pos::JJ.is_noun());
    }
}
