//! The natural-language-processing toolchain of the reproduction.
//!
//! AliQAn's indexation and question-analysis phases rest on a stack of NLP
//! tools the paper takes from elsewhere: a morphological analyser (Maco+ /
//! TreeTagger), a shallow parser (SUPAR) and a word-sense-disambiguation
//! module over WordNet. None of those ship with the paper, so this crate
//! implements the stack from scratch:
//!
//! * [`tokenizer`] — sentence splitting and tokenisation, including the
//!   numeric/symbol shapes of weather pages (`8º C`, `46.4 F`);
//! * [`lexicon`] — a hand-built English lexicon with part-of-speech entries
//!   and irregular forms, covering the closed classes plus the airline /
//!   weather / business vocabulary of the corpus;
//! * [`lemmatizer`] — rule-based inflectional morphology with an
//!   irregular-form table;
//! * [`tagger`] — a lexicon-driven part-of-speech tagger with suffix
//!   heuristics and contextual repair rules, emitting the paper's tagset
//!   (`NP`, `NN`/`NNS`, `CD`, `IN`/`OF`, `DT`, `VBZ`…, `WP`, `SENT`);
//! * [`chunker`] — the shallow parser eliciting **Syntactic Blocks** (SBs):
//!   `NP`, `PP` and `VBC` chunks annotated with the paper's features
//!   (`properNoun`, `comun`, `date`, `numeral`, `day`; `subject`/`compl`),
//!   rendered in Table 1's exact textual format;
//! * [`entities`] — recognisers for the typed values the QA answer
//!   taxonomy needs: temperatures, dates, years, percentages, quantities;
//! * [`wsd`] — a simplified-Lesk word-sense disambiguator, generic over a
//!   [`wsd::SenseInventory`] so the ontology crate can plug in without a
//!   dependency cycle;
//! * [`stopwords`] — the stop-word list the IR side discards (difference
//!   (1) between IR and QA in the paper's introduction).
//!
//! ```
//! use dwqa_nlp::{analyze_sentence, Lexicon, EntityKind, TempUnit};
//!
//! let lexicon = Lexicon::english();
//! let s = analyze_sentence(&lexicon, "Barcelona Weather: Temperature 8º C today");
//! assert!(s.entities.iter().any(|e| matches!(
//!     e.kind,
//!     EntityKind::Temperature { value, unit: TempUnit::Celsius } if value == 8.0
//! )));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chunker;
pub mod entities;
pub mod lemmatizer;
pub mod lexicon;
pub mod stopwords;
pub mod tagger;
pub mod tokenizer;
pub mod wsd;

pub use chunker::{chunk, render_annotated, NpFeature, SbKind, SbRole, SyntacticBlock};
pub use entities::{extract_entities, Entity, EntityKind, TempUnit};
pub use lemmatizer::{lemmatize, lemmatize_with};
pub use lexicon::{Lexicon, Pos};
pub use stopwords::is_stopword;
pub use tagger::{tag_sentence, TaggedToken};
pub use tokenizer::{split_sentences, tokenize, Token, TokenKind};

/// A fully analysed sentence: tokens, tags, lemmas and syntactic blocks.
///
/// This is the unit the QA indexation phase stores per corpus sentence and
/// the question-analysis module produces for a query.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedSentence {
    /// The raw sentence text.
    pub text: String,
    /// Tagged tokens (with lemmas).
    pub tokens: Vec<TaggedToken>,
    /// Shallow-parsed syntactic blocks over `tokens`.
    pub blocks: Vec<SyntacticBlock>,
    /// Typed entities found in the sentence.
    pub entities: Vec<Entity>,
}

/// Runs the full pipeline (tokenise → tag → chunk → entities) on one
/// sentence using the given lexicon.
pub fn analyze_sentence(lexicon: &Lexicon, sentence: &str) -> AnalyzedSentence {
    let tokens = tokenize(sentence);
    let tagged = tag_sentence(lexicon, &tokens);
    let blocks = chunk(&tagged);
    let entities = extract_entities(&tagged);
    AnalyzedSentence {
        text: sentence.to_owned(),
        tokens: tagged,
        blocks,
        entities,
    }
}

/// Splits a document into sentences and analyses each one.
pub fn analyze_text(lexicon: &Lexicon, text: &str) -> Vec<AnalyzedSentence> {
    split_sentences(text)
        .into_iter()
        .map(|s| analyze_sentence(lexicon, &s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_produces_blocks_and_entities() {
        let lex = Lexicon::english();
        let s = analyze_sentence(
            &lex,
            "Barcelona Weather: Temperature 8º C around 46.4 F Clear skies today",
        );
        assert!(!s.tokens.is_empty());
        assert!(!s.blocks.is_empty());
        assert!(s
            .entities
            .iter()
            .any(|e| matches!(e.kind, EntityKind::Temperature { .. })));
    }

    #[test]
    fn analyze_text_splits_sentences() {
        let lex = Lexicon::english();
        let out = analyze_text(&lex, "The sky is clear. The temperature is 8º C.");
        assert_eq!(out.len(), 2);
    }
}
