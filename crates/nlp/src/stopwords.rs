//! The stop-word list.
//!
//! The paper's first IR/QA difference: "IR systems … usually discard what
//! is known as stop-words", while QA keeps the full question. The IR index
//! uses this list; the QA analysis never does.

/// English stop words (closed-class function words).
pub const STOPWORDS: &[&str] = &[
    "a", "an", "the", "this", "that", "these", "those", "some", "any", "no", "each", "every",
    "all", "both", "either", "neither", "such", "and", "or", "but", "nor", "so", "yet", "in", "on",
    "at", "by", "for", "with", "from", "to", "of", "about", "around", "during", "between", "under",
    "over", "near", "like", "after", "before", "since", "until", "within", "without", "per",
    "above", "below", "across", "into", "through", "against", "among", "towards", "toward", "i",
    "you", "he", "she", "it", "we", "they", "me", "him", "her", "us", "them", "its", "his",
    "their", "our", "your", "my", "is", "am", "are", "was", "were", "be", "been", "being", "have",
    "has", "had", "having", "do", "does", "did", "done", "doing", "will", "would", "can", "could",
    "may", "might", "must", "shall", "should", "what", "who", "whom", "which", "whose", "when",
    "where", "how", "why", "not", "very", "too", "also", "only", "just", "than", "then", "there",
    "here", "as", "if", "because", "while", "once",
];

/// Whether a (case-folded) token is a stop word.
pub fn is_stopword(word: &str) -> bool {
    let folded = dwqa_common::text::fold(word);
    STOPWORDS.contains(&folded.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_words_are_stopwords() {
        for w in ["the", "The", "of", "is", "what", "IN"] {
            assert!(is_stopword(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["temperature", "Barcelona", "weather", "airport", "8"] {
            assert!(!is_stopword(w), "{w} should not be a stop word");
        }
    }

    #[test]
    fn list_has_no_duplicates() {
        let mut sorted: Vec<&str> = STOPWORDS.to_vec();
        sorted.sort_unstable();
        let before = sorted.len();
        sorted.dedup();
        assert_eq!(before, sorted.len());
    }
}
