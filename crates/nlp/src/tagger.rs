//! Part-of-speech tagging.
//!
//! A lexicon-driven tagger with the disambiguation policy of classic
//! rule-based taggers: lexicon readings first, local context to choose
//! between them, suffix morphology for unknown words, and proper-noun
//! default for unknown capitalised tokens (which is how "El Prat" — absent
//! from any lexicon — ends up `NP`, exactly as in the paper's Table 1).

use crate::lemmatizer::{singularize, verb_bases, verb_tag_for_suffix};
use crate::lexicon::{Lexicon, Pos};
use crate::tokenizer::{Token, TokenKind};

/// A token with its resolved tag and lemma.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedToken {
    /// The underlying raw token.
    pub token: Token,
    /// The chosen part of speech.
    pub pos: Pos,
    /// The lemma.
    pub lemma: String,
}

impl TaggedToken {
    /// Renders as the paper's `Term TAG lemma` triple ("January NP january").
    pub fn render(&self) -> String {
        format!("{} {} {}", self.token.text, self.pos.label(), self.lemma)
    }
}

/// Chooses among multiple lexicon readings using the previous tag.
fn disambiguate(readings: &[crate::lexicon::LexEntry], prev: Option<Pos>) -> usize {
    if readings.len() == 1 {
        return 0;
    }
    let prefer_verb = matches!(prev, Some(Pos::TO) | Some(Pos::MD) | Some(Pos::PRP));
    let prefer_noun = matches!(
        prev,
        Some(Pos::DT) | Some(Pos::JJ) | Some(Pos::JJS) | Some(Pos::CD)
    );
    if prefer_verb {
        if let Some(i) = readings.iter().position(|e| e.pos.is_verb()) {
            return i;
        }
    }
    if prefer_noun {
        if let Some(i) = readings.iter().position(|e| e.pos.is_noun()) {
            return i;
        }
    }
    // After a preposition, nominal readings are likelier than verbal ones
    // ("in the rain").
    if matches!(prev, Some(p) if p.is_preposition()) {
        if let Some(i) = readings.iter().position(|e| e.pos.is_noun()) {
            return i;
        }
    }
    0
}

/// Tags an unknown word by shape and suffix.
fn tag_unknown(lexicon: &Lexicon, token: &Token) -> (Pos, String) {
    let text = &token.text;
    let folded = dwqa_common::text::fold(text);
    // Capitalised or acronym → proper noun. This covers "El", "Prat",
    // "JFK", "Barcelona" and the bare unit letters "C" / "F".
    if dwqa_common::text::looks_proper(text) {
        return (Pos::NP, folded);
    }
    // Regular verb inflection of a known base verb.
    if let Some(tag) = verb_tag_for_suffix(&folded) {
        for base in verb_bases(&folded) {
            if lexicon.has_base_verb(&base) {
                return (tag, base);
            }
        }
    }
    // Regular plural of a known noun.
    if folded.ends_with('s') {
        let sing = singularize(&folded);
        if sing != folded && lexicon.lookup_pos(&sing, Pos::NN).is_some() {
            return (Pos::NNS, sing);
        }
    }
    // Derivational hints.
    if folded.ends_with("ly") {
        return (Pos::RB, folded);
    }
    if folded.ends_with("ing") {
        return (
            Pos::VBG,
            verb_bases(&folded).into_iter().next().unwrap_or(folded),
        );
    }
    if folded.ends_with("ed") {
        return (
            Pos::VBD,
            verb_bases(&folded).into_iter().next().unwrap_or(folded),
        );
    }
    // Default: common noun (the safest open-class guess).
    (Pos::NN, folded)
}

/// Tags one tokenised sentence.
pub fn tag_sentence(lexicon: &Lexicon, tokens: &[Token]) -> Vec<TaggedToken> {
    let mut out: Vec<TaggedToken> = Vec::with_capacity(tokens.len());
    for token in tokens {
        let prev = out.last().map(|t| t.pos);
        let (pos, lemma) = match token.kind {
            TokenKind::Number => (Pos::CD, token.text.clone()),
            TokenKind::Ordinal => {
                let digits: String = token
                    .text
                    .chars()
                    .take_while(|c| c.is_ascii_digit() || *c == '-' || *c == '+')
                    .collect();
                (Pos::CD, digits)
            }
            TokenKind::Symbol => (Pos::SYM, token.text.clone()),
            TokenKind::SentenceEnd => (Pos::SENT, token.text.clone()),
            TokenKind::Punct => (Pos::PUNCT, token.text.clone()),
            TokenKind::Word => {
                let readings = lexicon.lookup(&token.text);
                if readings.is_empty() {
                    tag_unknown(lexicon, token)
                } else {
                    let i = disambiguate(readings, prev);
                    (readings[i].pos, readings[i].lemma.clone())
                }
            }
        };
        out.push(TaggedToken {
            token: token.clone(),
            pos,
            lemma,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn tag(s: &str) -> Vec<TaggedToken> {
        let lx = Lexicon::english();
        tag_sentence(&lx, &tokenize(s))
    }

    #[test]
    fn paper_question_tags_match_table_1() {
        // "What WP ... is VBZ be ... the DT the weather NN weather like IN
        // like in IN in January NP january of OF of 2004 CD 2004 in IN in
        // El NP el Prat NP prat ? SENT ?"
        let tagged = tag("What is the weather like in January of 2004 in El Prat?");
        let expect: Vec<(&str, Pos, &str)> = vec![
            ("What", Pos::WP, "what"),
            ("is", Pos::VBZ, "be"),
            ("the", Pos::DT, "the"),
            ("weather", Pos::NN, "weather"),
            ("like", Pos::IN, "like"),
            ("in", Pos::IN, "in"),
            ("January", Pos::NP, "january"),
            ("of", Pos::OF, "of"),
            ("2004", Pos::CD, "2004"),
            ("in", Pos::IN, "in"),
            ("El", Pos::NP, "el"),
            ("Prat", Pos::NP, "prat"),
            ("?", Pos::SENT, "?"),
        ];
        assert_eq!(tagged.len(), expect.len());
        for (t, (text, pos, lemma)) in tagged.iter().zip(&expect) {
            assert_eq!(&t.token.text, text);
            assert_eq!(&t.pos, pos, "tag of {text}");
            assert_eq!(&t.lemma, lemma, "lemma of {text}");
        }
    }

    #[test]
    fn paper_passage_tags_match_table_1() {
        let tagged = tag("Monday, January 31, 2004 Barcelona Weather: Temperature 8º C around 46.4 F Clear skies today");
        let find = |text: &str| tagged.iter().find(|t| t.token.text == text).unwrap();
        assert_eq!(find("Monday").pos, Pos::NP);
        assert_eq!(find("Monday").lemma, "monday");
        assert_eq!(find("31").pos, Pos::CD);
        assert_eq!(find("Barcelona").pos, Pos::NP);
        assert_eq!(find("Temperature").pos, Pos::NN);
        assert_eq!(find("º").pos, Pos::SYM);
        assert_eq!(find("C").pos, Pos::NP);
        assert_eq!(find("C").lemma, "c");
        assert_eq!(find("46.4").pos, Pos::CD);
        assert_eq!(find("F").pos, Pos::NP);
        assert_eq!(find("skies").pos, Pos::NNS);
        assert_eq!(find("skies").lemma, "sky");
        assert_eq!(find("today").pos, Pos::RB);
    }

    #[test]
    fn unknown_capitalised_words_become_proper_nouns() {
        let t = tag("Zzyzx Quux");
        assert!(t.iter().all(|t| t.pos == Pos::NP));
    }

    #[test]
    fn unknown_verb_inflections_resolve_to_known_bases() {
        let t = tag("the temperature increased");
        let inc = t.iter().find(|t| t.token.text == "increased").unwrap();
        assert_eq!(inc.pos, Pos::VBD);
        assert_eq!(inc.lemma, "increase");
        let t = tag("it rains");
        let rains = t.iter().find(|t| t.token.text == "rains").unwrap();
        assert!(rains.pos.is_verb());
        assert_eq!(rains.lemma, "rain");
    }

    #[test]
    fn unknown_plurals_resolve_to_known_singulars() {
        let t = tag("two thermometers");
        let th = t.iter().find(|t| t.token.text == "thermometers").unwrap();
        assert_eq!(th.pos, Pos::NNS);
        assert_eq!(th.lemma, "thermometer");
    }

    #[test]
    fn context_prefers_noun_after_determiner() {
        // "rain" is NN|VB ambiguous; after "the" it must be a noun.
        let t = tag("the rain");
        assert_eq!(t[1].pos, Pos::NN);
        // After "will" it must be a verb.
        let t = tag("it will rain");
        assert_eq!(t[2].pos, Pos::VB);
    }

    #[test]
    fn ordinals_become_cardinal_numbers() {
        let t = tag("the 12th of May");
        assert_eq!(t[1].pos, Pos::CD);
        assert_eq!(t[1].lemma, "12");
    }

    #[test]
    fn tagging_accuracy_gate_on_labelled_sentences() {
        // A small hand-labelled evaluation set in the corpus register.
        // The gate fails if tagger changes regress accuracy below 95 %.
        let labelled: &[(&str, &[Pos])] = &[
            (
                "The temperature in Barcelona increased",
                &[Pos::DT, Pos::NN, Pos::IN, Pos::NP, Pos::VBD],
            ),
            (
                // "minute" reads as the noun of the noun compound here.
                "Last minute flights to Madrid were cheap",
                &[
                    Pos::JJ,
                    Pos::NN,
                    Pos::NNS,
                    Pos::TO,
                    Pos::NP,
                    Pos::VBD,
                    Pos::JJ,
                ],
            ),
            (
                "It will rain in Paris tomorrow",
                &[Pos::PRP, Pos::MD, Pos::VB, Pos::IN, Pos::NP, Pos::RB],
            ),
            (
                "The airline sold 120 tickets",
                &[Pos::DT, Pos::NN, Pos::VBD, Pos::CD, Pos::NNS],
            ),
            (
                "Clear skies and strong wind today",
                &[Pos::JJ, Pos::NNS, Pos::CC, Pos::JJ, Pos::NN, Pos::RB],
            ),
            (
                "Who was the mayor of New York ?",
                &[
                    Pos::WP,
                    Pos::VBD,
                    Pos::DT,
                    Pos::NN,
                    Pos::OF,
                    Pos::JJ,
                    Pos::NP,
                    Pos::SENT,
                ],
            ),
        ];
        let lx = Lexicon::english();
        let mut correct = 0usize;
        let mut total = 0usize;
        for (sentence, gold) in labelled {
            let tagged = tag_sentence(&lx, &tokenize(sentence));
            assert_eq!(tagged.len(), gold.len(), "token count for {sentence:?}");
            for (t, g) in tagged.iter().zip(*gold) {
                total += 1;
                if t.pos == *g {
                    correct += 1;
                }
            }
        }
        let accuracy = correct as f64 / total as f64;
        assert!(accuracy >= 0.95, "tagging accuracy {accuracy:.3} < 0.95");
    }

    #[test]
    fn render_matches_paper_format() {
        let t = tag("January");
        assert_eq!(t[0].render(), "January NP january");
    }
}
