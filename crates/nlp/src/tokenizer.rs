//! Sentence splitting and tokenisation.

/// Lexical class of a raw token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// An alphabetic word (may contain internal apostrophes/hyphens).
    Word,
    /// A number, possibly with a decimal point or sign ("8", "46.4", "-3").
    Number,
    /// An ordinal like "12th", "1st".
    Ordinal,
    /// Sentence-internal punctuation (",", ":", "(", …).
    Punct,
    /// Sentence-final punctuation (".", "?", "!").
    SentenceEnd,
    /// Other symbols ("º", "%", "$", "°").
    Symbol,
}

/// A raw token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The surface text as it appeared.
    pub text: String,
    /// Byte offset of the token start in the sentence.
    pub start: usize,
    /// The lexical class.
    pub kind: TokenKind,
}

impl Token {
    /// Case-folded surface form.
    pub fn lower(&self) -> String {
        dwqa_common::text::fold(&self.text)
    }
}

/// Abbreviations that do not end a sentence even when followed by a period.
const ABBREVIATIONS: &[&str] = &[
    "mr", "mrs", "ms", "dr", "prof", "st", "vs", "etc", "e.g", "i.e", "jan", "feb", "mar", "apr",
    "jun", "jul", "aug", "sep", "sept", "oct", "nov", "dec", "no", "dept",
];

/// Splits text into sentences.
///
/// A sentence ends at `.`, `?` or `!` followed by whitespace and an
/// uppercase letter, digit or end-of-text — unless the period terminates a
/// decimal number ("46.4 F") or a known abbreviation. Newlines that
/// separate blocks (blank lines, or a line break where the next line starts
/// a new heading-like segment) also split, because web pages (Figure 4)
/// carry headings without final punctuation.
pub fn split_sentences(text: &str) -> Vec<String> {
    let mut sentences = Vec::new();
    for block in text.split("\n\n") {
        let block = block.trim();
        if block.is_empty() {
            continue;
        }
        let chars: Vec<char> = block.chars().collect();
        let mut start = 0usize;
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c == '?' || c == '!' || c == '.' {
                let prev_word: String = {
                    let mut j = i;
                    while j > 0 && (chars[j - 1].is_alphanumeric() || chars[j - 1] == '.') {
                        j -= 1;
                    }
                    chars[j..i].iter().collect::<String>().to_ascii_lowercase()
                };
                let next_nonspace = chars[i + 1..].iter().find(|c| !c.is_whitespace());
                let decimal = c == '.'
                    && i > 0
                    && chars[i - 1].is_ascii_digit()
                    && matches!(chars.get(i + 1), Some(d) if d.is_ascii_digit());
                let abbreviation = c == '.' && ABBREVIATIONS.contains(&prev_word.as_str());
                let boundary = !decimal
                    && !abbreviation
                    && match next_nonspace {
                        None => true,
                        Some(n) => n.is_uppercase() || n.is_ascii_digit() || *n == '"' || *n == '(',
                    };
                if boundary {
                    let sentence: String = chars[start..=i].iter().collect();
                    let sentence = sentence.trim().replace('\n', " ");
                    if !sentence.is_empty() {
                        sentences.push(sentence);
                    }
                    start = i + 1;
                }
            }
            i += 1;
        }
        let tail: String = chars[start..].iter().collect();
        for line in tail.split('\n') {
            let line = line.trim();
            if !line.is_empty() {
                sentences.push(line.to_owned());
            }
        }
    }
    sentences
}

/// Tokenises one sentence.
pub fn tokenize(sentence: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let bytes: Vec<(usize, char)> = sentence.char_indices().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let (off, c) = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Numbers: optional sign, digits, optional decimal part, optional
        // ordinal suffix.
        if c.is_ascii_digit()
            || ((c == '-' || c == '+')
                && matches!(bytes.get(i + 1), Some((_, d)) if d.is_ascii_digit()))
        {
            let start = i;
            i += 1; // sign or first digit
            while i < bytes.len() && bytes[i].1.is_ascii_digit() {
                i += 1;
            }
            if i + 1 < bytes.len() && bytes[i].1 == '.' && bytes[i + 1].1.is_ascii_digit() {
                i += 1;
                while i < bytes.len() && bytes[i].1.is_ascii_digit() {
                    i += 1;
                }
            }
            // Ordinal suffix st/nd/rd/th.
            let mut kind = TokenKind::Number;
            if i + 1 < bytes.len() {
                let suffix: String = bytes[i..(i + 2).min(bytes.len())]
                    .iter()
                    .map(|(_, c)| *c)
                    .collect::<String>()
                    .to_ascii_lowercase();
                if ["st", "nd", "rd", "th"].contains(&suffix.as_str())
                    && !matches!(bytes.get(i + 2), Some((_, c)) if c.is_alphanumeric())
                {
                    i += 2;
                    kind = TokenKind::Ordinal;
                }
            }
            let text: String = bytes[start..i].iter().map(|(_, c)| *c).collect();
            tokens.push(Token {
                text,
                start: off,
                kind,
            });
            continue;
        }
        // Words (letters with internal apostrophes or hyphens). The degree
        // signs 'º'/'°' are Unicode-alphabetic but must stay symbols.
        let is_letter = |ch: char| ch.is_alphabetic() && ch != 'º' && ch != '°';
        if is_letter(c) {
            let start = i;
            i += 1;
            while i < bytes.len() {
                let ch = bytes[i].1;
                if is_letter(ch)
                    || ((ch == '\'' || ch == '-')
                        && matches!(bytes.get(i + 1), Some((_, n)) if is_letter(*n)))
                {
                    i += 1;
                } else {
                    break;
                }
            }
            let text: String = bytes[start..i].iter().map(|(_, c)| *c).collect();
            tokens.push(Token {
                text,
                start: off,
                kind: TokenKind::Word,
            });
            continue;
        }
        // Single-character tokens.
        let kind = match c {
            '.' | '?' | '!' => TokenKind::SentenceEnd,
            'º' | '°' | '%' | '$' | '€' | '£' => TokenKind::Symbol,
            _ => TokenKind::Punct,
        };
        tokens.push(Token {
            text: c.to_string(),
            start: off,
            kind,
        });
        i += 1;
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn texts(tokens: &[Token]) -> Vec<&str> {
        tokens.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn splits_basic_sentences() {
        let s = split_sentences("The sky is clear. The temperature is low.");
        assert_eq!(s, ["The sky is clear.", "The temperature is low."]);
    }

    #[test]
    fn decimal_points_do_not_split() {
        let s = split_sentences("Temperature 8º C around 46.4 F. Clear skies.");
        assert_eq!(s.len(), 2);
        assert!(s[0].contains("46.4 F"));
    }

    #[test]
    fn question_marks_split() {
        let s = split_sentences("What is the temperature? It is 8 degrees.");
        assert_eq!(s.len(), 2);
        assert!(s[0].ends_with('?'));
    }

    #[test]
    fn abbreviations_do_not_split() {
        let s = split_sentences("Dr. Smith landed in Barcelona. He was cold.");
        assert_eq!(s.len(), 2);
        assert!(s[0].starts_with("Dr. Smith"));
    }

    #[test]
    fn headings_on_their_own_lines_become_sentences() {
        let s = split_sentences("Monday, January 31, 2004\nBarcelona Weather: Temperature 8º C");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], "Monday, January 31, 2004");
    }

    #[test]
    fn tokenize_weather_line() {
        let toks = tokenize("Barcelona Weather: Temperature 8º C around 46.4 F");
        assert_eq!(
            texts(&toks),
            [
                "Barcelona",
                "Weather",
                ":",
                "Temperature",
                "8",
                "º",
                "C",
                "around",
                "46.4",
                "F"
            ]
        );
        assert_eq!(toks[4].kind, TokenKind::Number);
        assert_eq!(toks[5].kind, TokenKind::Symbol);
        assert_eq!(toks[8].kind, TokenKind::Number);
    }

    #[test]
    fn tokenize_ordinals_and_dates() {
        let toks = tokenize("on the 12th of May, 1997?");
        assert_eq!(
            texts(&toks),
            ["on", "the", "12th", "of", "May", ",", "1997", "?"]
        );
        assert_eq!(toks[2].kind, TokenKind::Ordinal);
        assert_eq!(toks[6].kind, TokenKind::Number);
        assert_eq!(toks[7].kind, TokenKind::SentenceEnd);
    }

    #[test]
    fn tokenize_negative_and_signed_numbers() {
        let toks = tokenize("It was -3 degrees");
        assert_eq!(texts(&toks), ["It", "was", "-3", "degrees"]);
        assert_eq!(toks[2].kind, TokenKind::Number);
    }

    #[test]
    fn hyphenated_and_apostrophe_words_stay_joined() {
        let toks = tokenize("the company's cross-lingual tools");
        assert_eq!(texts(&toks), ["the", "company's", "cross-lingual", "tools"]);
    }

    #[test]
    fn spans_point_into_source() {
        let src = "Temperature 8º C";
        for t in tokenize(src) {
            assert!(src[t.start..].starts_with(&t.text));
        }
    }

    proptest! {
        #[test]
        fn prop_tokenize_never_panics_and_spans_valid(s in "\\PC{0,80}") {
            for t in tokenize(&s) {
                prop_assert!(s[t.start..].starts_with(&t.text));
                prop_assert!(!t.text.is_empty());
            }
        }

        #[test]
        fn prop_split_sentences_preserves_nonspace_chars(s in "[a-zA-Z0-9,.?! ]{0,120}") {
            let joined: String = split_sentences(&s).concat();
            let count = |t: &str| t.chars().filter(|c| !c.is_whitespace()).count();
            prop_assert_eq!(count(&joined), count(&s));
        }
    }
}
