//! Word-sense disambiguation (simplified Lesk).
//!
//! The paper applies a WSD algorithm over WordNet/EuroWordNet during
//! indexation ([4] in its references). We implement the classic
//! gloss-overlap (Lesk) approach, *generic over the sense inventory*: the
//! ontology crate implements [`SenseInventory`] for its merged ontology, so
//! this module stays independent of it — and so the Step-2 enrichment
//! measurably changes WSD outcomes (the "JFK is an airport, not a person"
//! effect of the paper's Section 3).

use std::collections::HashSet;

/// An abstract sense inventory (implemented by the ontology).
pub trait SenseInventory {
    /// Opaque sense identifier.
    type Sense: Copy;

    /// All candidate senses of a lemma.
    fn senses(&self, lemma: &str) -> Vec<Self::Sense>;

    /// The gloss + related-term bag of words of a sense, case-folded.
    fn signature(&self, sense: Self::Sense) -> Vec<String>;

    /// Extra weight for a sense (e.g. domain instances fed from the DW get
    /// a boost). Defaults to zero.
    fn prior(&self, _sense: Self::Sense) -> f64 {
        0.0
    }
}

/// Disambiguates `lemma` in the given context (bag of case-folded lemmas).
///
/// Returns the sense whose signature overlaps the context most, with the
/// inventory's prior as tie-breaker and baseline; `None` when the lemma has
/// no senses. With an empty context the prior alone decides (first sense
/// wins ties, i.e. the most-frequent-sense baseline).
pub fn disambiguate<I: SenseInventory>(
    inventory: &I,
    lemma: &str,
    context: &[String],
) -> Option<I::Sense> {
    let senses = inventory.senses(lemma);
    if senses.is_empty() {
        return None;
    }
    let context: HashSet<&str> = context.iter().map(String::as_str).collect();
    let mut best: Option<(f64, usize)> = None;
    for (idx, &sense) in senses.iter().enumerate() {
        let signature = inventory.signature(sense);
        let overlap = signature
            .iter()
            .filter(|w| context.contains(w.as_str()))
            .count() as f64;
        let score = overlap + inventory.prior(sense);
        let better = match best {
            None => true,
            Some((b, _)) => score > b,
        };
        if better {
            best = Some((score, idx));
        }
    }
    best.map(|(_, idx)| senses[idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy inventory: "jfk" is a person (sense 0) or an airport (sense 1).
    struct Toy {
        boost_airport: f64,
    }

    impl SenseInventory for Toy {
        type Sense = usize;

        fn senses(&self, lemma: &str) -> Vec<usize> {
            match lemma {
                "jfk" => vec![0, 1],
                "bank" => vec![2, 3],
                _ => vec![],
            }
        }

        fn signature(&self, sense: usize) -> Vec<String> {
            let words: &[&str] = match sense {
                0 => &["president", "person", "kennedy", "politician"],
                1 => &["airport", "terminal", "flight", "new", "york"],
                2 => &["money", "account", "loan"],
                3 => &["river", "water", "shore"],
                _ => &[],
            };
            words.iter().map(|w| (*w).to_owned()).collect()
        }

        fn prior(&self, sense: usize) -> f64 {
            if sense == 1 {
                self.boost_airport
            } else {
                0.0
            }
        }
    }

    fn ctx(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| (*w).to_owned()).collect()
    }

    #[test]
    fn context_overlap_selects_sense() {
        let inv = Toy { boost_airport: 0.0 };
        assert_eq!(
            disambiguate(&inv, "jfk", &ctx(&["flight", "terminal"])),
            Some(1)
        );
        assert_eq!(
            disambiguate(&inv, "jfk", &ctx(&["president", "politician"])),
            Some(0)
        );
    }

    #[test]
    fn first_sense_baseline_without_context() {
        let inv = Toy { boost_airport: 0.0 };
        assert_eq!(disambiguate(&inv, "jfk", &[]), Some(0));
    }

    #[test]
    fn prior_breaks_ties_the_enrichment_effect() {
        // With the DW-fed boost, the airport sense wins even with no
        // context — the paper's Step-2 improvement in miniature.
        let inv = Toy { boost_airport: 0.5 };
        assert_eq!(disambiguate(&inv, "jfk", &[]), Some(1));
        // A strongly person-flavoured context still overrides the prior.
        assert_eq!(
            disambiguate(&inv, "jfk", &ctx(&["president", "person", "politician"])),
            Some(0)
        );
    }

    #[test]
    fn unknown_lemma_has_no_sense() {
        let inv = Toy { boost_airport: 0.0 };
        assert_eq!(disambiguate(&inv, "zzz", &ctx(&["x"])), None);
    }

    #[test]
    fn independent_lemmas_do_not_interfere() {
        let inv = Toy { boost_airport: 9.0 };
        assert_eq!(disambiguate(&inv, "bank", &ctx(&["river"])), Some(3));
    }
}
