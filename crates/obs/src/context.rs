//! The thread-local observation context.
//!
//! A worker calls [`observe`] once per question: the guard installs the
//! engine's metrics registry and (when tracing is on) a fresh trace
//! rooted at a `question` span into thread-local storage, and on drop
//! finalises the root span and hands the trace to the flight recorder.
//! Everything below the engine — `dwqa-ir`, `dwqa-faults`,
//! `dwqa-core` — records through the free functions here without any
//! handle threading: if no context is installed (a bare library call,
//! a test, the exhaustive reference path) every call is a no-op.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use crate::metrics::MetricsRegistry;
use crate::recorder::Tracer;
use crate::trace::{EventRecord, FieldValue, SpanRecord, Trace};

struct ActiveTrace {
    trace: Trace,
    /// Indices of currently-open spans, innermost last.
    stack: Vec<usize>,
    t0: Instant,
}

#[derive(Default)]
struct Ctx {
    registry: Option<Arc<MetricsRegistry>>,
    trace: Option<ActiveTrace>,
}

thread_local! {
    static CTX: RefCell<Ctx> = RefCell::new(Ctx::default());
}

/// Installs `registry` (and, when `tracer.enabled()`, a fresh trace
/// rooted at `root_name`) into this thread's context for the lifetime
/// of the returned guard. Nested `observe` calls are not supported —
/// the guard restores an *empty* context on drop, which is exactly the
/// one-question-per-worker shape the engine uses.
pub fn observe(
    registry: Option<Arc<MetricsRegistry>>,
    tracer: Option<&Tracer>,
    root_name: &'static str,
    label: &str,
) -> ObserveGuard {
    let tracing = crate::COMPILED && tracer.map(|t| t.enabled()).unwrap_or(false);
    CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        ctx.registry = registry;
        ctx.trace = if tracing {
            let id = tracer.map(|t| t.next_trace_id()).unwrap_or(0);
            let root = SpanRecord {
                name: root_name,
                parent: None,
                start_us: 0,
                elapsed_us: 0,
                fields: Vec::new(),
                events: Vec::new(),
            };
            Some(ActiveTrace {
                trace: Trace {
                    id,
                    label: label.to_owned(),
                    spans: vec![root],
                },
                stack: vec![0],
                t0: Instant::now(),
            })
        } else {
            None
        };
    });
    ObserveGuard {
        tracer: if tracing { tracer.cloned() } else { None },
    }
}

/// RAII guard returned by [`observe`]. Dropping it finalises the root
/// span's elapsed time, pushes the completed trace into the tracer's
/// flight recorder, and clears the thread context.
#[must_use = "dropping the guard immediately ends the observation"]
pub struct ObserveGuard {
    tracer: Option<Tracer>,
}

impl ObserveGuard {
    /// Records `key=value` on the root span of the active trace.
    pub fn root_field<V: Into<FieldValue>>(&self, key: &'static str, value: V) {
        root_field(key, value);
    }
}

impl Drop for ObserveGuard {
    fn drop(&mut self) {
        let finished = CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            ctx.registry = None;
            ctx.trace.take()
        });
        if let (Some(active), Some(tracer)) = (finished, &self.tracer) {
            let mut trace = active.trace;
            let total = elapsed_us(active.t0);
            if let Some(root) = trace.root_mut() {
                root.elapsed_us = total;
            }
            tracer.recorder().push(trace);
        }
    }
}

fn elapsed_us(t0: Instant) -> u64 {
    t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// Opens a child span under the innermost open span of the active
/// trace. A no-op (returning an inert guard) outside any observation
/// or when tracing is disabled. Prefer the [`span!`](crate::span)
/// macro, which also attaches fields.
pub fn enter_span(name: &'static str) -> SpanGuard {
    if !crate::COMPILED {
        return SpanGuard { idx: None };
    }
    let idx = CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        let active = ctx.trace.as_mut()?;
        let parent = active.stack.last().copied();
        let start_us = elapsed_us(active.t0);
        let idx = active.trace.spans.len();
        active.trace.spans.push(SpanRecord {
            name,
            parent,
            start_us,
            elapsed_us: 0,
            fields: Vec::new(),
            events: Vec::new(),
        });
        active.stack.push(idx);
        Some(idx)
    });
    SpanGuard { idx }
}

/// RAII guard for a span opened with [`enter_span`]: records fields on
/// *its own* span (safe with nested children open) and stamps the
/// span's elapsed time on drop.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    /// Arena index of this guard's span; `None` when tracing was off.
    idx: Option<usize>,
}

impl SpanGuard {
    /// Records `key=value` on this span.
    pub fn record<V: Into<FieldValue>>(&self, key: &'static str, value: V) {
        let Some(idx) = self.idx else { return };
        let value = value.into();
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            if let Some(active) = ctx.trace.as_mut() {
                if let Some(span) = active.trace.spans.get_mut(idx) {
                    span.set_field(key, value);
                }
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(idx) = self.idx else { return };
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            if let Some(active) = ctx.trace.as_mut() {
                let elapsed = elapsed_us(active.t0);
                if let Some(span) = active.trace.spans.get_mut(idx) {
                    span.elapsed_us = elapsed.saturating_sub(span.start_us);
                }
                // Close this span and anything opened under it that
                // leaked past its guard (can't happen with RAII use,
                // but keeps the stack sound under panic-unwind).
                if let Some(pos) = active.stack.iter().rposition(|&i| i == idx) {
                    active.stack.truncate(pos);
                }
            }
        });
    }
}

/// Records a point-in-time event on the innermost open span. A no-op
/// outside any active trace. Prefer the [`event!`](crate::event)
/// macro.
pub fn record_event(name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    if !crate::COMPILED {
        return;
    }
    CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        if let Some(active) = ctx.trace.as_mut() {
            let at_us = elapsed_us(active.t0);
            if let Some(&idx) = active.stack.last() {
                if let Some(span) = active.trace.spans.get_mut(idx) {
                    span.events.push(EventRecord {
                        name,
                        at_us,
                        fields,
                    });
                }
            }
        }
    });
}

/// Records `key=value` on the active trace's root span (the
/// per-question span), regardless of which span is innermost.
pub fn root_field<V: Into<FieldValue>>(key: &'static str, value: V) {
    if !crate::COMPILED {
        return;
    }
    let value = value.into();
    CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        if let Some(active) = ctx.trace.as_mut() {
            if let Some(root) = active.trace.root_mut() {
                root.set_field(key, value);
            }
        }
    });
}

/// True when a trace is being collected on this thread right now.
pub fn tracing_active() -> bool {
    crate::COMPILED && CTX.with(|ctx| ctx.borrow().trace.is_some())
}

/// Adds `delta` to the named counter of the installed registry, if one
/// is installed on this thread.
pub fn counter_add(name: &str, delta: u64) {
    CTX.with(|ctx| {
        if let Some(reg) = ctx.borrow().registry.as_ref() {
            reg.counter(name).add(delta);
        }
    });
}

/// Records a histogram sample (µs) into the installed registry, if any.
pub fn histogram_record_us(name: &str, us: u64) {
    CTX.with(|ctx| {
        if let Some(reg) = ctx.borrow().registry.as_ref() {
            reg.histogram(name).record_us(us);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::new())
    }

    fn tracer_on() -> Tracer {
        let t = Tracer::new(8);
        t.set_enabled(true);
        t
    }

    #[test]
    #[cfg_attr(feature = "off", ignore = "tracing compiled out")]
    fn observe_collects_a_rooted_trace() {
        let tracer = tracer_on();
        {
            let obs = observe(None, Some(&tracer), "question", "q1");
            obs.root_field("cache", "miss");
            {
                let s = enter_span("retrieve");
                s.record("docs_candidate", 9u64);
                let _inner = enter_span("score");
                crate::context::record_event("retry", vec![("attempt", FieldValue::from(1u64))]);
            }
            root_field("outcome", "ok");
        }
        let trace = tracer.recorder().last().unwrap_or_default();
        assert_eq!(trace.label, "q1");
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["question", "retrieve", "score"]);
        assert_eq!(trace.spans[1].parent, Some(0));
        assert_eq!(trace.spans[2].parent, Some(1));
        assert_eq!(
            trace.spans[1]
                .field("docs_candidate")
                .and_then(|v| v.as_u64()),
            Some(9)
        );
        // The event landed on the innermost span at the time.
        assert_eq!(trace.spans[2].events.len(), 1);
        assert_eq!(
            trace.root_field("outcome").and_then(|v| v.as_str()),
            Some("ok")
        );
        assert_eq!(
            trace.root_field("cache").and_then(|v| v.as_str()),
            Some("miss")
        );
    }

    #[test]
    #[cfg_attr(feature = "off", ignore = "tracing compiled out")]
    fn guard_records_its_own_span_not_top_of_stack() {
        let tracer = tracer_on();
        {
            let _obs = observe(None, Some(&tracer), "question", "q");
            let outer = enter_span("outer");
            let _inner = enter_span("inner");
            outer.record("tag", 7u64); // must land on "outer"
        }
        let trace = tracer.recorder().last().unwrap_or_default();
        let outer = trace.find("outer").cloned().unwrap_or_else(|| SpanRecord {
            name: "missing",
            parent: None,
            start_us: 0,
            elapsed_us: 0,
            fields: vec![],
            events: vec![],
        });
        assert_eq!(outer.field("tag").and_then(|v| v.as_u64()), Some(7));
        assert!(trace
            .find("inner")
            .map(|s| s.field("tag").is_none())
            .unwrap_or(false));
    }

    #[test]
    fn no_context_means_no_ops() {
        assert!(!tracing_active());
        let guard = enter_span("orphan");
        guard.record("x", 1u64);
        drop(guard);
        record_event("nothing", vec![]);
        root_field("y", 2u64);
        counter_add("c", 1);
        histogram_record_us("h", 5);
        assert!(!tracing_active());
    }

    #[test]
    fn disabled_tracer_collects_nothing_but_metrics_flow() {
        let tracer = Tracer::new(8); // disabled
        let reg = registry();
        {
            let _obs = observe(Some(Arc::clone(&reg)), Some(&tracer), "question", "q");
            assert!(!tracing_active());
            let _s = enter_span("retrieve");
            counter_add("retrieval.count", 1);
        }
        assert!(tracer.recorder().is_empty());
        assert_eq!(reg.counter_value("retrieval.count"), 1);
    }

    #[test]
    #[cfg_attr(feature = "off", ignore = "tracing compiled out")]
    fn context_is_cleared_after_observation() {
        let tracer = tracer_on();
        let reg = registry();
        {
            let _obs = observe(Some(Arc::clone(&reg)), Some(&tracer), "question", "q");
            assert!(tracing_active());
        }
        assert!(!tracing_active());
        counter_add("after", 1);
        assert_eq!(reg.counter_value("after"), 0, "registry uninstalled");
    }
}
