//! # dwqa-obs — structured observability for the QA ⇄ DW pipeline
//!
//! One substrate for the three questions the ad-hoc counters couldn't
//! answer:
//!
//! * **Where did this one question spend its time?** Hierarchical
//!   spans ([`span!`]) opened per pipeline stage, with typed fields and
//!   point-in-time events ([`event!`]), collected into a [`Trace`] per
//!   question.
//! * **What happened recently?** A bounded [`FlightRecorder`] ring
//!   buffer keeps the last N completed traces, dumpable as JSON lines
//!   or an indented tree.
//! * **What happened overall?** A [`MetricsRegistry`] of named
//!   counters, gauges and power-of-two-µs histograms — the engine's
//!   `EngineStats` is a view over it.
//!
//! The crate has **zero dependencies** (std only). Instrumented crates
//! never thread handles: a worker installs its engine's registry and
//! tracer into thread-local storage via [`observe`] for the duration
//! of one question, and every [`span!`]/[`event!`]/[`counter_add`]
//! below it resolves through that context — or no-ops when none is
//! installed.
//!
//! Building with the `off` feature sets [`COMPILED`] to `false`: every
//! tracing entry point short-circuits on a `const`, so the optimizer
//! deletes the instrumentation entirely (metrics registries still work
//! when used directly, but the thread-local trace path is gone).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

pub mod context;
pub mod metrics;
pub mod names;
pub mod recorder;
pub mod trace;

pub use context::{
    counter_add, enter_span, histogram_record_us, observe, record_event, root_field,
    tracing_active, ObserveGuard, SpanGuard,
};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, BUCKETS};
pub use recorder::{FlightRecorder, Tracer, DEFAULT_TRACE_CAPACITY};
pub use trace::{EventRecord, FieldValue, SpanRecord, Trace};

/// `false` when the crate was built with the `off` feature: every
/// tracing entry point checks this `const` first, so disabled builds
/// compile the instrumentation away entirely.
pub const COMPILED: bool = !cfg!(feature = "off");

/// Opens a span that closes when the returned guard drops.
///
/// ```
/// # use dwqa_obs::span;
/// let docs_candidate = 9u64;
/// let _span = span!("retrieve", docs_candidate); // field name = variable name
/// let _span = span!("score", windows = 40u64); // explicit field name
/// let _span = span!("analyze"); // no fields
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::enter_span($name)
    };
    ($name:expr, $($field:tt)*) => {{
        let guard = $crate::enter_span($name);
        $crate::record_span_fields!(guard, $($field)*);
        guard
    }};
}

/// Records a point-in-time event on the innermost open span.
///
/// ```
/// # use dwqa_obs::event;
/// let attempt = 2u64;
/// event!("retry", attempt, backoff_us = 1500u64);
/// event!("breaker.open");
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::record_event($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($field:tt)*) => {
        $crate::record_event($name, $crate::event_fields!($($field)*))
    };
}

/// Internal helper for [`span!`]: records each `key = value` or bare
/// `ident` field on an already-opened guard.
#[doc(hidden)]
#[macro_export]
macro_rules! record_span_fields {
    ($guard:ident, $key:ident = $value:expr) => {
        $guard.record(stringify!($key), $value);
    };
    ($guard:ident, $key:ident = $value:expr, $($rest:tt)*) => {
        $guard.record(stringify!($key), $value);
        $crate::record_span_fields!($guard, $($rest)*);
    };
    ($guard:ident, $key:ident) => {
        $guard.record(stringify!($key), $key);
    };
    ($guard:ident, $key:ident, $($rest:tt)*) => {
        $guard.record(stringify!($key), $key);
        $crate::record_span_fields!($guard, $($rest)*);
    };
}

/// Internal helper for [`event!`]: builds the field vector.
#[doc(hidden)]
#[macro_export]
macro_rules! event_fields {
    ($key:ident = $value:expr) => {
        ::std::vec![(stringify!($key), $crate::FieldValue::from($value))]
    };
    ($key:ident) => {
        ::std::vec![(stringify!($key), $crate::FieldValue::from($key))]
    };
    ($key:ident = $value:expr, $($rest:tt)*) => {{
        let mut fields = $crate::event_fields!($($rest)*);
        fields.insert(0, (stringify!($key), $crate::FieldValue::from($value)));
        fields
    }};
    ($key:ident, $($rest:tt)*) => {{
        let mut fields = $crate::event_fields!($($rest)*);
        fields.insert(0, (stringify!($key), $crate::FieldValue::from($key)));
        fields
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(feature = "off", ignore = "tracing compiled out")]
    fn span_macro_records_shorthand_and_named_fields() {
        let tracer = Tracer::new(4);
        tracer.set_enabled(true);
        {
            let _obs = observe(None, Some(&tracer), "question", "q");
            let docs_candidate = 9u64;
            let _s = span!("retrieve", docs_candidate, windows = 40u64);
            event!("retry", attempt = 1u64, backoff_us = 500u64);
            event!("breaker.open");
        }
        let trace = tracer.recorder().last().unwrap_or_default();
        let retrieve = match trace.find("retrieve") {
            Some(s) => s.clone(),
            None => panic!("retrieve span missing"),
        };
        assert_eq!(
            retrieve.field("docs_candidate").and_then(|v| v.as_u64()),
            Some(9)
        );
        assert_eq!(retrieve.field("windows").and_then(|v| v.as_u64()), Some(40));
        assert_eq!(retrieve.events.len(), 2);
        assert_eq!(retrieve.events[0].name, "retry");
        assert_eq!(
            retrieve.events[0].fields,
            vec![
                ("attempt", FieldValue::U64(1)),
                ("backoff_us", FieldValue::U64(500)),
            ]
        );
        assert_eq!(retrieve.events[1].name, "breaker.open");
    }

    #[test]
    fn compiled_flag_matches_feature() {
        assert_eq!(COMPILED, !cfg!(feature = "off"));
    }
}
