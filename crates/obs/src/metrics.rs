//! The metrics registry: named counters, gauges, and latency histograms.
//!
//! All instruments are lock-free once resolved: the registry hands out
//! `Arc` handles that record through atomics, so hot paths cache the
//! handle and never touch the registry lock again. Histograms use the
//! logarithmic (power-of-two microsecond) bucket scheme the engine's
//! `EngineStats` always used — `EngineStats` is now a *view* over a
//! registry instead of a parallel implementation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^(i-1), 2^i)` µs, with bucket 0 holding sub-microsecond samples.
pub const BUCKETS: usize = 40;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instrument for values that are *mirrored* rather
/// than accumulated (e.g. the cumulative health counters of a source
/// stack, stored idempotently).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Stores the latest value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (used when absorbing another registry).
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free latency histogram with power-of-two microsecond buckets
/// plus a running sum, so both quantile bounds and exact means are O(1)
/// to read.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    fn bucket_for(us: u64) -> usize {
        ((u64::BITS - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// The exclusive upper bound (µs) of a bucket.
    pub fn bucket_bound(bucket: usize) -> u64 {
        1u64 << bucket.min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        self.record_us(latency.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one sample given in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[Self::bucket_for(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all samples, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Mean sample, in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us().checked_div(self.samples()).unwrap_or(0)
    }

    /// An upper bound (µs) on the `q`-quantile latency (0.0 ..= 1.0).
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.samples();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_bound(i);
            }
        }
        Self::bucket_bound(BUCKETS - 1)
    }

    /// A snapshot of every bucket count.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Merges `other` into `self`, bucket by bucket over the **full**
    /// bucket range. A merge bounded by the destination's highest
    /// observed bucket silently drops the source's tail counts whenever
    /// the two histograms saw different latency ranges — the
    /// `EngineStats` bug this registry migration fixed; the regression
    /// test lives in `dwqa-engine::stats`.
    pub fn absorb(&self, other: &Histogram) {
        for i in 0..BUCKETS {
            let n = other.buckets[i].load(Ordering::Relaxed);
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum_us.fetch_add(other.sum_us(), Ordering::Relaxed);
    }
}

/// A named registry of counters, gauges and histograms. Cheap to share
/// (`Arc`), safe to record into from any thread; instrument handles are
/// `Arc`s so hot paths resolve a name once and record lock-free after.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // The maps are only held for get-or-insert; a poisoned lock means a
    // panic mid-BTreeMap-insert, which leaves the map structurally
    // sound, so recovering the guard is safe.
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = locked(&self.counters);
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::new());
                map.insert(name.to_owned(), Arc::clone(&c));
                c
            }
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = locked(&self.gauges);
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::new());
                map.insert(name.to_owned(), Arc::clone(&g));
                g
            }
        }
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = locked(&self.histograms);
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new());
                map.insert(name.to_owned(), Arc::clone(&h));
                h
            }
        }
    }

    /// The current value of a counter, **without** creating it (0 when
    /// the counter was never recorded).
    pub fn counter_value(&self, name: &str) -> u64 {
        locked(&self.counters)
            .get(name)
            .map(|c| c.value())
            .unwrap_or(0)
    }

    /// The current value of a gauge, without creating it.
    pub fn gauge_value(&self, name: &str) -> u64 {
        locked(&self.gauges)
            .get(name)
            .map(|g| g.value())
            .unwrap_or(0)
    }

    /// Every registered counter name (sorted).
    pub fn counter_names(&self) -> Vec<String> {
        locked(&self.counters).keys().cloned().collect()
    }

    /// Merges every instrument of `other` into `self`: counters and
    /// gauges add, histograms merge bucket-wise over the full range.
    /// Do not absorb two registries into each other concurrently.
    pub fn absorb(&self, other: &MetricsRegistry) {
        let theirs: Vec<(String, Arc<Counter>)> = locked(&other.counters)
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        for (name, c) in theirs {
            self.counter(&name).add(c.value());
        }
        let theirs: Vec<(String, Arc<Gauge>)> = locked(&other.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        for (name, g) in theirs {
            self.gauge(&name).add(g.value());
        }
        let theirs: Vec<(String, Arc<Histogram>)> = locked(&other.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        for (name, h) in theirs {
            self.histogram(&name).absorb(&h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(2);
        reg.counter("c").inc();
        assert_eq!(reg.counter_value("c"), 3);
        assert_eq!(reg.counter_value("missing"), 0);
        reg.gauge("g").set(7);
        reg.gauge("g").set(5);
        assert_eq!(reg.gauge_value("g"), 5);
        assert_eq!(reg.counter_names(), vec!["c".to_owned()]);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        for us in [1u64, 2, 3, 100, 100, 100, 100, 5000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.samples(), 8);
        assert_eq!(h.sum_us(), 5406);
        assert_eq!(h.mean_us(), 675);
        // Half the samples sit at 100 µs, so p50 lands in its bucket
        // (64..128 µs → bound 128).
        assert_eq!(h.quantile_us(0.5), 128);
        assert!(h.quantile_us(1.0) >= 5000);
        assert_eq!(Histogram::new().quantile_us(0.5), 0);
    }

    #[test]
    fn absorb_keeps_every_bucket_of_disjoint_ranges() {
        // Regression shape for the EngineStats merge bug: one histogram
        // saw only microsecond-scale samples, the other only
        // second-scale ones. A merge bounded by the destination's
        // observed range would drop the entire source.
        let small = Histogram::new();
        for _ in 0..10 {
            small.record(Duration::from_micros(3));
        }
        let large = Histogram::new();
        for _ in 0..4 {
            large.record(Duration::from_secs(2));
        }
        small.absorb(&large);
        assert_eq!(small.samples(), 14, "no bucket count lost");
        assert_eq!(small.sum_us(), 30 + 4 * 2_000_000);
        assert!(small.quantile_us(1.0) >= 2_000_000);
        assert_eq!(small.quantile_us(0.5), 4); // small samples still lead
    }

    #[test]
    fn registry_absorb_merges_all_instruments() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("x").add(1);
        b.counter("x").add(2);
        b.counter("only_b").add(5);
        b.gauge("g").set(9);
        b.histogram("h").record(Duration::from_micros(10));
        a.absorb(&b);
        assert_eq!(a.counter_value("x"), 3);
        assert_eq!(a.counter_value("only_b"), 5);
        assert_eq!(a.gauge_value("g"), 9);
        assert_eq!(a.histogram("h").samples(), 1);
    }

    #[test]
    fn handles_are_shared() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("shared");
        let c2 = reg.counter("shared");
        c1.add(1);
        c2.add(1);
        assert_eq!(reg.counter_value("shared"), 2);
    }
}
