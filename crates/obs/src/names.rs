//! The shared metric-name taxonomy (DESIGN.md §10).
//!
//! Every instrumented crate records against these constants so the
//! engine's `EngineStats` view, the REPL `:stats` table, and the
//! experiment binaries all read the same names. Dotted segments group
//! by subsystem: `engine.*` (stage latencies, cache, outcomes),
//! `retrieval.*` (index pruning), `source.*` (fault layer), `feed.*`
//! (ETL dispositions).

/// Stage latency histogram: question analysis.
pub const STAGE_ANALYZE: &str = "engine.stage.analyze";
/// Stage latency histogram: passage retrieval (incl. acquisition).
pub const STAGE_PASSAGES: &str = "engine.stage.passages";
/// Stage latency histogram: answer extraction + validation.
pub const STAGE_EXTRACT: &str = "engine.stage.extract";
/// Stage latency histogram: feedback ETL batches.
pub const STAGE_FEED: &str = "engine.stage.feed";

/// Counter: questions answered (incl. failures).
pub const QUESTIONS: &str = "engine.questions";
/// Counter: batches submitted.
pub const BATCHES: &str = "engine.batches";
/// Counter: answer-cache hits.
pub const CACHE_HITS: &str = "engine.cache.hits";
/// Counter: answer-cache misses.
pub const CACHE_MISSES: &str = "engine.cache.misses";
/// Counter prefix for per-outcome totals; the outcome label is
/// appended, e.g. `engine.outcome.degraded`.
pub const OUTCOME_PREFIX: &str = "engine.outcome.";
/// Counter: feedback batches rolled back.
pub const ROLLBACKS: &str = "engine.feed.rollbacks";
/// Counter: worker panics caught.
pub const WORKER_DEATHS: &str = "engine.worker.deaths";

/// Counter: retrieval queries executed against the pruned index.
pub const RETRIEVAL_COUNT: &str = "retrieval.count";
/// Counter: documents in the corpus at query time (summed per query).
pub const RETRIEVAL_DOCS_TOTAL: &str = "retrieval.docs.total";
/// Counter: candidate documents gathered from postings (summed).
pub const RETRIEVAL_DOCS_CANDIDATE: &str = "retrieval.docs.candidate";
/// Counter: documents pruned without scoring (summed).
pub const RETRIEVAL_DOCS_PRUNED: &str = "retrieval.docs.pruned";
/// Counter: passage windows actually scored (summed).
pub const RETRIEVAL_WINDOWS_SCORED: &str = "retrieval.windows.scored";

/// Gauge: retry attempts performed by the resilient source (mirrored
/// from the source's own cumulative health counters).
pub const SOURCE_RETRIES: &str = "source.retries";
/// Gauge: circuit-breaker trips (closed → open).
pub const SOURCE_BREAKER_TRIPS: &str = "source.breaker.trips";
/// Gauge: fetches rejected by an open breaker.
pub const SOURCE_BREAKER_REJECTIONS: &str = "source.breaker.rejections";
/// Gauge: fetches that exhausted every attempt.
pub const SOURCE_FAILURES: &str = "source.failures";

/// Counter: WAL records appended by the feedback store (`dwqa-store`).
pub const STORE_WAL_APPENDS: &str = "store.wal.appends";
/// Counter: WAL payload + header bytes written.
pub const STORE_WAL_BYTES: &str = "store.wal.bytes";
/// Counter: fsync calls issued by the WAL writer.
pub const STORE_WAL_FSYNCS: &str = "store.wal.fsyncs";
/// Histogram: wall time of one WAL append (encode + write + policy
/// fsync).
pub const STORE_WAL_APPEND_TIME: &str = "store.wal.append_time";
/// Counter: checkpoints written (snapshot serialized, WAL truncated).
pub const STORE_CHECKPOINTS: &str = "store.checkpoints";
/// Counter: checkpoint attempts that failed and left the previous
/// checkpoint + WAL authoritative.
pub const STORE_CHECKPOINT_FAILURES: &str = "store.checkpoint.failures";
/// Histogram: wall time of one checkpoint (serialize + fsync + rename
/// + truncate).
pub const STORE_CHECKPOINT_TIME: &str = "store.checkpoint.time";
/// Counter: torn-write faults injected by the `TornWriter` layer.
pub const STORE_TORN_FAULTS: &str = "store.torn.faults";
/// Counter: WAL records dropped on recovery as a torn / stale tail.
pub const STORE_RECOVERY_TRUNCATED: &str = "store.recovery.truncated";

/// Counter: roll-up plans compiled against a fresh warehouse revision
/// (`dwqa-warehouse`).
pub const WAREHOUSE_PLANS_COMPILED: &str = "warehouse.plans.compiled";
/// Counter: roll-up plans served from the warehouse plan cache.
pub const WAREHOUSE_PLANS_REUSED: &str = "warehouse.plans.reused";
/// Counter: fact rows walked by compiled roll-up scans (summed).
pub const WAREHOUSE_ROWS_SCANNED: &str = "warehouse.rows.scanned";
/// Counter: groups materialised by compiled roll-up scans (summed).
pub const WAREHOUSE_GROUPS: &str = "warehouse.groups";
/// Counter: roll-up *result* cache hits (`dwqa-core`).
pub const WAREHOUSE_ROLLUP_HITS: &str = "warehouse.rollup.hits";
/// Counter: roll-up result cache misses (query executed).
pub const WAREHOUSE_ROLLUP_MISSES: &str = "warehouse.rollup.misses";
/// Counter: materialized roll-up entries that absorbed a commit's delta
/// in place (incremental maintenance, `dwqa-core`).
pub const WAREHOUSE_DELTA_APPLIED: &str = "warehouse.delta.applied";
/// Counter: materialized roll-up entries demoted to recompute-on-next-
/// read because a delta could not be absorbed.
pub const WAREHOUSE_DELTA_DEMOTED: &str = "warehouse.delta.demoted";
/// Counter: fact rows folded incrementally into live materialized
/// roll-ups (summed over entries).
pub const WAREHOUSE_DELTA_ROWS: &str = "warehouse.delta.rows";

/// Counter: requests received by the QA service, every kind and
/// disposition (`dwqa-server`).
pub const SERVER_REQUESTS: &str = "server.requests";
/// Counter: work requests admitted into the service queue.
pub const SERVER_ADMITTED: &str = "server.admitted";
/// Counter: work requests shed with `busy` because the admission queue
/// was at capacity.
pub const SERVER_SHED: &str = "server.shed";
/// Counter: work requests rejected by a client's token bucket.
pub const SERVER_RATE_LIMITED: &str = "server.rate_limited";
/// Counter: work requests rejected because the server was draining.
pub const SERVER_DRAINED: &str = "server.drained";
/// Counter: admitted requests completed (response written).
pub const SERVER_COMPLETED: &str = "server.completed";
/// Counter: request lines that failed to parse or validate.
pub const SERVER_PROTOCOL_ERRORS: &str = "server.protocol_errors";
/// Histogram: admission-to-dispatch queue wait per admitted request.
pub const SERVER_QUEUE_WAIT: &str = "server.queue.wait";
/// Gauge: work requests currently queued (admitted, not yet running).
pub const SERVER_QUEUE_DEPTH: &str = "server.queue.depth";
/// Gauge: connected clients.
pub const SERVER_CLIENTS: &str = "server.clients";
/// Histogram: admission-to-response-written latency per admitted
/// request (queue wait + execution), the service-side view of what an
/// admitted client experiences.
pub const SERVER_SERVICE_TIME: &str = "server.service_time";
/// Counter: client connections dropped because a read timed out before
/// a full request line arrived (slow-loris defence).
pub const SERVER_DISCONNECTS_TIMEOUT: &str = "server.disconnects.timeout";

/// Counter: WAL/checkpoint frames shipped to replication peers
/// (`dwqa-server`'s primary hub; one count per peer per frame).
pub const REPL_FRAMES_SHIPPED: &str = "repl.frames.shipped";
/// Counter: replicated frames applied by a standby's pipeline.
pub const REPL_FRAMES_APPLIED: &str = "repl.frames.applied";
/// Counter: replicated frames skipped by a standby as already-applied
/// sequence numbers (link duplicates, resends after resubscribe).
pub const REPL_FRAMES_DUPLICATE: &str = "repl.frames.duplicate";
/// Counter: replication streams abandoned on an undecodable (torn or
/// corrupted) frame; the follower resubscribes from its own offset.
pub const REPL_FRAMES_TORN: &str = "repl.frames.torn";
/// Counter: replicated frames ignored as a stale (fenced-out)
/// generation.
pub const REPL_FRAMES_STALE: &str = "repl.frames.stale";
/// Counter: ack frames received by the primary from standbys.
pub const REPL_ACKS: &str = "repl.acks";
/// Counter: heartbeat frames received by a standby.
pub const REPL_HEARTBEATS: &str = "repl.heartbeats";
/// Counter: frames dropped by the seeded link-fault layer.
pub const REPL_LINK_DROPS: &str = "repl.link.drops";
/// Counter: frames torn mid-write by the seeded link-fault layer.
pub const REPL_LINK_TEARS: &str = "repl.link.tears";
/// Counter: half-open stalls injected by the seeded link-fault layer.
pub const REPL_LINK_HALF_OPEN: &str = "repl.link.half_open";
/// Counter: follower reconnect + resubscribe cycles (after the first
/// connect).
pub const REPL_RECONNECTS: &str = "repl.reconnects";
/// Counter: backlog frames shipped on subscribe (catch-up reads from
/// the primary's checkpoint + WAL).
pub const REPL_CATCHUP_FRAMES: &str = "repl.catchup.frames";
/// Counter: standby promotions to primary (drain-handoff or failure
/// detector).
pub const REPL_PROMOTIONS: &str = "repl.promotions";
/// Counter: sync-mode feedback commits that timed out waiting for the
/// ack quorum (committed locally, reported `busy` for the client to
/// retry).
pub const REPL_QUORUM_TIMEOUTS: &str = "repl.quorum.timeouts";
/// Gauge: replication lag in frames — on the primary, the worst
/// connected peer's unacked span; on a standby, the primary's position
/// minus its own.
pub const REPL_LAG: &str = "repl.lag.frames";
