//! The flight recorder: a bounded ring buffer of the most recently
//! completed question traces, plus the [`Tracer`] switch that decides
//! whether traces are collected at all.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::trace::{FieldValue, Trace};

/// Default number of completed traces the recorder keeps.
pub const DEFAULT_TRACE_CAPACITY: usize = 64;

/// A bounded ring buffer of completed traces: pushing past capacity
/// evicts the oldest. All methods take `&self`; the buffer is behind a
/// mutex touched once per *completed question*, never per span.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<Ring>,
}

#[derive(Debug, Default)]
struct Ring {
    traces: Vec<Trace>,
    start: usize,
}

fn locked(m: &Mutex<Ring>) -> MutexGuard<'_, Ring> {
    // Push/iterate never leave the ring inconsistent across a panic
    // point, so a poisoned guard is safe to recover.
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` traces (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(Ring::default()),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        locked(&self.inner).traces.len()
    }

    /// True when no trace has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a completed trace, evicting the oldest when full.
    pub fn push(&self, trace: Trace) {
        let mut ring = locked(&self.inner);
        if ring.traces.len() < self.capacity {
            ring.traces.push(trace);
        } else {
            let start = ring.start;
            ring.traces[start] = trace;
            ring.start = (start + 1) % self.capacity;
        }
    }

    /// All held traces, oldest first.
    pub fn recent(&self) -> Vec<Trace> {
        let ring = locked(&self.inner);
        let n = ring.traces.len();
        (0..n)
            .map(|i| ring.traces[(ring.start + i) % n].clone())
            .collect()
    }

    /// The most recently completed trace.
    pub fn last(&self) -> Option<Trace> {
        let ring = locked(&self.inner);
        let n = ring.traces.len();
        if n == 0 {
            return None;
        }
        Some(ring.traces[(ring.start + n - 1) % n].clone())
    }

    /// The worst-latency trace (largest root `elapsed_us`) among the
    /// most recent `n` completions.
    pub fn worst_of_last(&self, n: usize) -> Option<Trace> {
        let ring = locked(&self.inner);
        let held = ring.traces.len();
        if held == 0 || n == 0 {
            return None;
        }
        let take = n.min(held);
        (0..take)
            .map(|i| &ring.traces[(ring.start + held - take + i) % held])
            .max_by_key(|t| t.root().map(|r| r.elapsed_us).unwrap_or(0))
            .cloned()
    }

    /// The worst-latency trace held anywhere in the buffer.
    pub fn worst(&self) -> Option<Trace> {
        self.worst_of_last(self.capacity)
    }

    /// Stamps `key=value` onto the root span of each of the last `n`
    /// traces — how the engine back-annotates the batch-level feedback
    /// disposition onto per-question traces after the ETL commits.
    pub fn annotate_last(&self, n: usize, key: &'static str, value: FieldValue) {
        let mut ring = locked(&self.inner);
        let held = ring.traces.len();
        let start = ring.start;
        let take = n.min(held);
        for i in 0..take {
            let idx = (start + held - take + i) % held;
            if let Some(root) = ring.traces[idx].root_mut() {
                root.set_field(key, value.clone());
            }
        }
    }

    /// Every held trace as JSON lines (oldest first), ready to write to
    /// a `--trace-out` file.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for trace in self.recent() {
            out.push_str(&trace.to_json());
            out.push('\n');
        }
        out
    }

    /// Drops every held trace.
    pub fn clear(&self) {
        let mut ring = locked(&self.inner);
        ring.traces.clear();
        ring.start = 0;
    }
}

/// The per-engine tracing switch + flight recorder. Cloning shares the
/// underlying recorder (it is an `Arc` internally).
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: Arc<AtomicBool>,
    next_id: Arc<AtomicU64>,
    recorder: Arc<FlightRecorder>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    /// A tracer with the given flight-recorder capacity. Starts
    /// disabled unless the `DWQA_TRACE` environment variable is set to
    /// something other than `0`/empty.
    pub fn new(capacity: usize) -> Tracer {
        let default_on = std::env::var("DWQA_TRACE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        Tracer {
            enabled: Arc::new(AtomicBool::new(default_on && crate::COMPILED)),
            next_id: Arc::new(AtomicU64::new(1)),
            recorder: Arc::new(FlightRecorder::new(capacity)),
        }
    }

    /// Turns trace collection on or off. A no-op (stays off) when the
    /// crate was compiled with the `off` feature.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on && crate::COMPILED, Ordering::Relaxed);
    }

    /// Whether trace collection is currently on.
    pub fn enabled(&self) -> bool {
        crate::COMPILED && self.enabled.load(Ordering::Relaxed)
    }

    /// Allocates the next trace id.
    pub fn next_trace_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The shared flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanRecord;

    fn trace(id: u64, elapsed_us: u64) -> Trace {
        Trace {
            id,
            label: format!("q{id}"),
            spans: vec![SpanRecord {
                name: "question",
                parent: None,
                start_us: 0,
                elapsed_us,
                fields: vec![],
                events: vec![],
            }],
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let rec = FlightRecorder::new(3);
        for id in 1..=5 {
            rec.push(trace(id, id * 10));
        }
        let ids: Vec<u64> = rec.recent().iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![3, 4, 5]);
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.last().map(|t| t.id), Some(5));
    }

    #[test]
    fn worst_of_last_scans_only_the_tail() {
        let rec = FlightRecorder::new(8);
        rec.push(trace(1, 900)); // outside the window below
        rec.push(trace(2, 50));
        rec.push(trace(3, 70));
        rec.push(trace(4, 60));
        assert_eq!(rec.worst_of_last(3).map(|t| t.id), Some(3));
        assert_eq!(rec.worst().map(|t| t.id), Some(1));
        assert_eq!(FlightRecorder::new(4).worst_of_last(3), None);
    }

    #[test]
    fn annotate_last_stamps_roots() {
        let rec = FlightRecorder::new(4);
        for id in 1..=3 {
            rec.push(trace(id, 10));
        }
        rec.annotate_last(2, "feed", FieldValue::from("committed"));
        let traces = rec.recent();
        assert_eq!(traces[0].root_field("feed"), None);
        assert_eq!(
            traces[1].root_field("feed").and_then(|v| v.as_str()),
            Some("committed")
        );
        assert_eq!(
            traces[2].root_field("feed").and_then(|v| v.as_str()),
            Some("committed")
        );
    }

    #[test]
    fn dump_jsonl_one_line_per_trace() {
        let rec = FlightRecorder::new(4);
        rec.push(trace(1, 10));
        rec.push(trace(2, 20));
        let dump = rec.dump_jsonl();
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.lines().next().unwrap_or("").contains("\"trace_id\":1"));
        rec.clear();
        assert!(rec.is_empty());
        assert!(rec.dump_jsonl().is_empty());
    }

    #[test]
    #[cfg_attr(feature = "off", ignore = "tracing compiled out")]
    fn tracer_toggles_and_allocates_ids() {
        let tracer = Tracer::new(4);
        tracer.set_enabled(true);
        assert!(tracer.enabled());
        tracer.set_enabled(false);
        assert!(!tracer.enabled());
        let a = tracer.next_trace_id();
        let b = tracer.next_trace_id();
        assert!(b > a);
        let clone = tracer.clone();
        clone.recorder().push(trace(1, 5));
        assert_eq!(tracer.recorder().len(), 1);
    }
}
