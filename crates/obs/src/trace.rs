//! The trace model: a completed question trace is a flat arena of
//! spans (parent links by index), each span carrying wall-time, typed
//! fields and point-in-time events.
//!
//! Traces are plain data — no locks, no globals — so they can be
//! cloned into the flight recorder, compared in tests, rendered as an
//! indented tree, or serialised as a JSON line without pulling serde
//! below the hot path.

use std::fmt;

/// A typed span/event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, sizes, microseconds).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point value (rates, scores).
    F64(f64),
    /// A boolean flag.
    Bool(bool),
    /// A string (question text, outcome labels, URLs).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> FieldValue {
        FieldValue::I64(i64::from(v))
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl FieldValue {
    /// The value as a `u64`, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(v) => Some(v.as_str()),
            _ => None,
        }
    }

    fn to_json(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::F64(v) if v.is_finite() => v.to_string(),
            FieldValue::F64(_) => "null".to_owned(),
            FieldValue::Bool(v) => v.to_string(),
            FieldValue::Str(v) => json_string(v),
        }
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A point-in-time event inside a span (a retry, a breaker trip, an
/// injected fault), stamped relative to the trace start.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name, e.g. `"retry"` or `"breaker.open"`.
    pub name: &'static str,
    /// Microseconds since the root span started.
    pub at_us: u64,
    /// Event fields, in recording order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// One completed (or still-open, mid-trace) span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name from the fixed taxonomy (DESIGN.md §10).
    pub name: &'static str,
    /// Index of the parent span in [`Trace::spans`]; `None` for the root.
    pub parent: Option<usize>,
    /// Microseconds since the root span started.
    pub start_us: u64,
    /// Wall time the span was open, in microseconds.
    pub elapsed_us: u64,
    /// Span fields, in recording order (last write wins on lookup).
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Events recorded while this span was innermost.
    pub events: Vec<EventRecord>,
}

impl SpanRecord {
    /// The most recent value recorded for `key`, if any.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields
            .iter()
            .rev()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    /// Records (or re-records) a field.
    pub fn set_field(&mut self, key: &'static str, value: FieldValue) {
        self.fields.push((key, value));
    }
}

/// One question's journey through the pipeline: a span arena rooted at
/// `spans[0]`, in open order (parents always precede children).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Monotonic per-tracer trace id.
    pub id: u64,
    /// Human label — by convention the question text.
    pub label: String,
    /// Span arena; `spans[0]` is the root when non-empty.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// The root span, when the trace is non-empty.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.first()
    }

    /// Mutable root span.
    pub fn root_mut(&mut self) -> Option<&mut SpanRecord> {
        self.spans.first_mut()
    }

    /// The most recent root-span value for `key`.
    pub fn root_field(&self, key: &str) -> Option<&FieldValue> {
        self.root().and_then(|r| r.field(key))
    }

    /// Indices of the direct children of span `idx`, in open order.
    pub fn children(&self, idx: usize) -> Vec<usize> {
        self.spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parent == Some(idx))
            .map(|(i, _)| i)
            .collect()
    }

    /// The first span named `name`, if any.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Every span named `name`, in open order.
    pub fn find_all(&self, name: &str) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// Serialises the whole trace as a single JSON object (one flight-
    /// recorder line). Spans keep their arena order and parent indices
    /// so consumers can rebuild the tree without name heuristics.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 128);
        out.push_str("{\"trace_id\":");
        out.push_str(&self.id.to_string());
        out.push_str(",\"label\":");
        out.push_str(&json_string(&self.label));
        out.push_str(",\"spans\":[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            out.push_str(&json_string(span.name));
            out.push_str(",\"parent\":");
            match span.parent {
                Some(p) => out.push_str(&p.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"start_us\":");
            out.push_str(&span.start_us.to_string());
            out.push_str(",\"elapsed_us\":");
            out.push_str(&span.elapsed_us.to_string());
            out.push_str(",\"fields\":{");
            push_fields(&mut out, &span.fields);
            out.push_str("},\"events\":[");
            for (j, ev) in span.events.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"name\":");
                out.push_str(&json_string(ev.name));
                out.push_str(",\"at_us\":");
                out.push_str(&ev.at_us.to_string());
                out.push_str(",\"fields\":{");
                push_fields(&mut out, &ev.fields);
                out.push_str("}}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Renders the span tree as an indented, human-readable block —
    /// what `dwqa_repl`'s bare `:trace` prints.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("trace #{} — {}\n", self.id, self.label));
        if !self.spans.is_empty() {
            self.render_span(&mut out, 0, 0);
        }
        out
    }

    fn render_span(&self, out: &mut String, idx: usize, depth: usize) {
        let span = &self.spans[idx];
        out.push_str(&"  ".repeat(depth + 1));
        out.push_str(&format!("{} [{} us]", span.name, span.elapsed_us));
        for (k, v) in &span.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        for ev in &span.events {
            out.push_str(&"  ".repeat(depth + 2));
            out.push_str(&format!("! {} @{} us", ev.name, ev.at_us));
            for (k, v) in &ev.fields {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
        }
        for child in self.children(idx) {
            self.render_span(out, child, depth + 1);
        }
    }
}

fn push_fields(out: &mut String, fields: &[(&'static str, FieldValue)]) {
    // Last write wins: skip earlier duplicates so the JSON object has
    // unique keys matching `SpanRecord::field` semantics.
    for (i, (k, v)) in fields.iter().enumerate() {
        if fields[i + 1..].iter().any(|(k2, _)| k2 == k) {
            continue;
        }
        if !out.ends_with('{') {
            out.push(',');
        }
        out.push_str(&json_string(k));
        out.push(':');
        out.push_str(&v.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            id: 7,
            label: "what was the temperature".to_owned(),
            spans: vec![
                SpanRecord {
                    name: "question",
                    parent: None,
                    start_us: 0,
                    elapsed_us: 900,
                    fields: vec![
                        ("outcome", FieldValue::from("ok")),
                        ("cache", FieldValue::from("miss")),
                    ],
                    events: vec![],
                },
                SpanRecord {
                    name: "retrieve",
                    parent: Some(0),
                    start_us: 10,
                    elapsed_us: 500,
                    fields: vec![("docs_candidate", FieldValue::from(9u64))],
                    events: vec![EventRecord {
                        name: "retry",
                        at_us: 120,
                        fields: vec![("attempt", FieldValue::from(1u64))],
                    }],
                },
            ],
        }
    }

    #[test]
    fn field_lookup_is_last_write_wins() {
        let mut t = sample_trace();
        if let Some(root) = t.root_mut() {
            root.set_field("outcome", FieldValue::from("degraded"));
        }
        assert_eq!(
            t.root_field("outcome").and_then(|v| v.as_str()),
            Some("degraded")
        );
        assert_eq!(t.root_field("missing"), None);
    }

    #[test]
    fn tree_navigation() {
        let t = sample_trace();
        assert_eq!(t.children(0), vec![1]);
        assert!(t.children(1).is_empty());
        assert_eq!(t.find("retrieve").map(|s| s.start_us), Some(10));
        assert_eq!(t.find_all("question").len(), 1);
    }

    #[test]
    fn json_round_structure() {
        let t = sample_trace();
        let json = t.to_json();
        assert!(json.starts_with("{\"trace_id\":7,"));
        assert!(json.contains("\"label\":\"what was the temperature\""));
        assert!(json.contains("\"name\":\"retrieve\",\"parent\":0"));
        assert!(json.contains("\"docs_candidate\":9"));
        assert!(json.contains("\"events\":[{\"name\":\"retry\",\"at_us\":120"));
        // Duplicate keys collapse to the most recent write.
        let mut t2 = sample_trace();
        if let Some(root) = t2.root_mut() {
            root.set_field("outcome", FieldValue::from("degraded"));
        }
        let json2 = t2.to_json();
        assert!(json2.contains("\"outcome\":\"degraded\""));
        assert!(!json2.contains("\"outcome\":\"ok\""));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        let t = Trace {
            id: 1,
            label: "say \"hi\"".to_owned(),
            spans: vec![],
        };
        assert!(t.to_json().contains("\"say \\\"hi\\\"\""));
    }

    #[test]
    fn render_tree_indents_children_and_events() {
        let t = sample_trace();
        let tree = t.render_tree();
        assert!(tree.starts_with("trace #7 — what was the temperature\n"));
        assert!(tree.contains("  question [900 us] outcome=ok cache=miss\n"));
        assert!(tree.contains("    retrieve [500 us] docs_candidate=9\n"));
        assert!(tree.contains("      ! retry @120 us attempt=1\n"));
    }
}
