//! Step 2: feeding the ontology with DW contents.
//!
//! "The ontology is fed by the contents of the DW system … the ontological
//! concept 'Airport' will have instances like 'JFK', 'John Wayne' or 'La
//! Guardia'; therefore, if we ask the QA system for the temperature in
//! 'JFK' … the system will know that the previous entities mean airports
//! instead of a person or a Spanish musical group."
//!
//! Every textual descriptor value of every hierarchy level becomes an
//! instance of that level's concept, annotated with `source = dw` (the
//! WSD prior consults that annotation — that is the measurable
//! precision-improvement mechanism).

use crate::graph::{ConceptKind, OntoPos, Ontology, Relation};
use dwqa_warehouse::{Value, Warehouse};
use serde::{Deserialize, Serialize};

/// Outcome of an enrichment run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnrichmentReport {
    /// Instances created, per `(level concept, count)`.
    pub per_level: Vec<(String, usize)>,
    /// Total instances created.
    pub instances_added: usize,
    /// Members skipped because their level has no concept in the ontology.
    pub skipped_unknown_level: usize,
}

/// Enriches `ontology` (typically the Step-1 domain ontology, or the
/// already-merged upper ontology) with the members of every dimension of
/// the warehouse.
pub fn enrich_from_warehouse(ontology: &mut Ontology, warehouse: &Warehouse) -> EnrichmentReport {
    let mut report = EnrichmentReport::default();
    let schema = warehouse.schema().clone();
    for dim in schema.dimensions() {
        let table = warehouse
            .dimension(&dim.name)
            .expect("schema dimension has a table");
        // Coarsest level first, so a member's parent instance (the city of
        // an airport) already exists when the part-of link is made.
        for (level_idx, level) in dim.levels.iter().enumerate().rev() {
            let Some(level_concept) = ontology.class_for(&level.name) else {
                report.skipped_unknown_level += table.len();
                continue;
            };
            let mut added_here = 0usize;
            for key in table.keys() {
                let value = table
                    .level_value(key, &level.name)
                    .expect("level exists on its own dimension");
                let Value::Text(label) = value else {
                    continue; // dates/numbers are not lexical instances
                };
                // Deduplicate: same member may appear under many keys once
                // we look at coarser levels (many airports share a city).
                let exists = ontology.concepts_for(&label).iter().any(|id| {
                    ontology.concept(*id).kind == ConceptKind::Instance
                        && ontology.is_a(*id, level_concept)
                });
                if exists {
                    continue;
                }
                let parent_name = dim.levels.get(level_idx + 1).map(|l| l.name.to_lowercase());
                let gloss = match &parent_name {
                    Some(p) => format!(
                        "a {} from the data warehouse, in its {}",
                        level.name.to_lowercase(),
                        p
                    ),
                    None => format!("a {} from the data warehouse", level.name.to_lowercase()),
                };
                let id =
                    ontology.add_concept(&[&label], &gloss, OntoPos::Noun, ConceptKind::Instance);
                ontology.relate(id, Relation::InstanceOf, level_concept);
                ontology.annotate(id, "source", "dw");
                // Geographic containment: link to the parent level member.
                if level_idx + 1 < dim.levels.len() {
                    let parent_level = &dim.levels[level_idx + 1];
                    if let Ok(Value::Text(parent_label)) =
                        table.level_value(key, &parent_level.name)
                    {
                        if let Some(parent_id) = ontology
                            .concepts_for(&parent_label)
                            .iter()
                            .copied()
                            .find(|c| ontology.concept(*c).kind == ConceptKind::Instance)
                        {
                            ontology.relate(id, Relation::Meronym, parent_id);
                        }
                    }
                }
                added_here += 1;
            }
            if added_here > 0 {
                report.per_level.push((level.name.clone(), added_here));
                report.instances_added += added_here;
            }
        }
    }
    report.per_level.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::schema_to_ontology;
    use dwqa_mdmodel::last_minute_sales;
    use dwqa_warehouse::FactRowBuilder;

    fn loaded_warehouse() -> Warehouse {
        let mut wh = Warehouse::new(last_minute_sales());
        let mut rows = Vec::new();
        for (airport, city, state, country) in [
            ("El Prat", "Barcelona", "Catalonia", "Spain"),
            ("JFK", "New York", "New York State", "United States"),
            ("La Guardia", "New York", "New York State", "United States"),
            ("John Wayne", "Costa Mesa", "California", "United States"),
        ] {
            let mut b = FactRowBuilder::new();
            b.measure("price", Value::Float(100.0))
                .measure("miles", Value::Float(500.0))
                .measure("traveler_rate", Value::Float(0.5))
                .role_member("Origin", &[("airport_name", Value::text("Alicante"))])
                .role_member(
                    "Destination",
                    &[
                        ("airport_name", Value::text(airport)),
                        ("city_name", Value::text(city)),
                        ("state_name", Value::text(state)),
                        ("country_name", Value::text(country)),
                    ],
                )
                .role_member("Customer", &[("customer_name", Value::text("Ann"))])
                .role_member("Date", &[("date", Value::date(2004, 1, 31).unwrap())]);
            rows.push(b.build());
        }
        wh.load("Last Minute Sales", rows).unwrap();
        wh
    }

    #[test]
    fn airports_become_instances_of_the_airport_concept() {
        let wh = loaded_warehouse();
        let mut onto = schema_to_ontology(wh.schema());
        let report = enrich_from_warehouse(&mut onto, &wh);
        let airport = onto.class_for("Airport").unwrap();
        for name in ["JFK", "La Guardia", "John Wayne", "El Prat", "Alicante"] {
            let ids = onto.concepts_for(name);
            assert!(
                ids.iter().any(|id| onto.is_a(*id, airport)),
                "{name} should be an airport instance"
            );
        }
        assert!(report.instances_added >= 10);
        assert!(report
            .per_level
            .iter()
            .any(|(level, n)| level == "Airport" && *n == 5));
    }

    #[test]
    fn city_members_are_deduplicated() {
        let wh = loaded_warehouse();
        let mut onto = schema_to_ontology(wh.schema());
        enrich_from_warehouse(&mut onto, &wh);
        // Two airports in New York → one New York city instance.
        let city = onto.class_for("City").unwrap();
        let ny: Vec<_> = onto
            .concepts_for("New York")
            .iter()
            .copied()
            .filter(|id| onto.is_a(*id, city))
            .collect();
        assert_eq!(ny.len(), 1);
    }

    #[test]
    fn instances_carry_dw_provenance_and_geography() {
        let wh = loaded_warehouse();
        let mut onto = schema_to_ontology(wh.schema());
        enrich_from_warehouse(&mut onto, &wh);
        let airport = onto.class_for("Airport").unwrap();
        let el_prat = onto
            .concepts_for("El Prat")
            .iter()
            .copied()
            .find(|id| onto.is_a(*id, airport))
            .unwrap();
        assert_eq!(onto.annotation(el_prat, "source"), vec!["dw"]);
        // El Prat is part of Barcelona.
        let bcn_parts = onto.related(el_prat, Relation::Meronym);
        assert_eq!(bcn_parts.len(), 1);
        assert_eq!(onto.concept(bcn_parts[0]).canonical(), "Barcelona");
    }

    #[test]
    fn enrichment_is_idempotent() {
        let wh = loaded_warehouse();
        let mut onto = schema_to_ontology(wh.schema());
        let first = enrich_from_warehouse(&mut onto, &wh);
        let size = onto.len();
        let second = enrich_from_warehouse(&mut onto, &wh);
        assert_eq!(onto.len(), size);
        assert_eq!(second.instances_added, 0);
        assert!(first.instances_added > 0);
    }

    #[test]
    fn unknown_levels_are_counted_not_crashed() {
        let wh = loaded_warehouse();
        let mut onto = Ontology::new("empty");
        let report = enrich_from_warehouse(&mut onto, &wh);
        assert_eq!(report.instances_added, 0);
        assert!(report.skipped_unknown_level > 0);
    }

    #[test]
    fn dates_do_not_become_instances() {
        let wh = loaded_warehouse();
        let mut onto = schema_to_ontology(wh.schema());
        enrich_from_warehouse(&mut onto, &wh);
        // The Date level descriptor is a date value → no lexical instance;
        // but Month/Year *text* levels do become instances.
        let date_level = onto.class_for("Date").unwrap();
        assert!(onto.related(date_level, Relation::HasInstance).is_empty());
        let month = onto.class_for("Month").unwrap();
        assert_eq!(onto.related(month, Relation::HasInstance).len(), 1); // "2004-01"
    }
}
