//! The ontology data structure.

use std::collections::{HashMap, HashSet, VecDeque};

/// Identifier of a concept within its ontology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConceptId(pub(crate) u32);

impl ConceptId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Grammatical category of a concept (WordNet keeps noun and verb
/// hierarchies separate; so do we).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OntoPos {
    /// Noun synset.
    Noun,
    /// Verb synset.
    Verb,
}

/// Whether a concept is a class or an individual.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConceptKind {
    /// A class/synset ("airport").
    Class,
    /// A named individual ("JFK", "Barcelona").
    Instance,
}

/// Typed, directed relations. Each has a maintained inverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `a Hypernym b`: b is the more general concept (a IS-A b).
    Hypernym,
    /// Inverse of [`Relation::Hypernym`].
    Hyponym,
    /// `a Meronym b`: a is part of b (airport part-of city).
    Meronym,
    /// Inverse of [`Relation::Meronym`].
    Holonym,
    /// Opposition (symmetric).
    Antonym,
    /// `a InstanceOf b`: a is an individual of class b.
    InstanceOf,
    /// Inverse of [`Relation::InstanceOf`].
    HasInstance,
    /// Untyped domain association (fact ↔ dimension, fact ↔ measure).
    RelatedTo,
}

impl Relation {
    /// The inverse relation (RelatedTo and Antonym are symmetric).
    pub fn inverse(self) -> Relation {
        match self {
            Relation::Hypernym => Relation::Hyponym,
            Relation::Hyponym => Relation::Hypernym,
            Relation::Meronym => Relation::Holonym,
            Relation::Holonym => Relation::Meronym,
            Relation::Antonym => Relation::Antonym,
            Relation::InstanceOf => Relation::HasInstance,
            Relation::HasInstance => Relation::InstanceOf,
            Relation::RelatedTo => Relation::RelatedTo,
        }
    }

    /// All relation variants (used by serialization).
    pub const ALL: [Relation; 8] = [
        Relation::Hypernym,
        Relation::Hyponym,
        Relation::Meronym,
        Relation::Holonym,
        Relation::Antonym,
        Relation::InstanceOf,
        Relation::HasInstance,
        Relation::RelatedTo,
    ];

    /// Stable name for serialization.
    pub fn name(self) -> &'static str {
        match self {
            Relation::Hypernym => "Hypernym",
            Relation::Hyponym => "Hyponym",
            Relation::Meronym => "Meronym",
            Relation::Holonym => "Holonym",
            Relation::Antonym => "Antonym",
            Relation::InstanceOf => "InstanceOf",
            Relation::HasInstance => "HasInstance",
            Relation::RelatedTo => "RelatedTo",
        }
    }
}

/// A concept: a set of synonym labels with a gloss (a WordNet synset).
#[derive(Debug, Clone, PartialEq)]
pub struct Concept {
    /// Synonym labels; the first is canonical. Stored as given, matched
    /// case-folded.
    pub labels: Vec<String>,
    /// Short definition (the Lesk signature source).
    pub gloss: String,
    /// Noun or verb.
    pub pos: OntoPos,
    /// Class or instance.
    pub kind: ConceptKind,
}

impl Concept {
    /// The canonical (first) label.
    pub fn canonical(&self) -> &str {
        &self.labels[0]
    }
}

/// Summary counters returned by [`Ontology::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OntologyStats {
    /// Class (synset) concepts.
    pub classes: usize,
    /// Instance concepts.
    pub instances: usize,
    /// Undirected relation edges (forward+inverse counted once).
    pub edges: usize,
    /// Distinct case-folded labels in the lexical index.
    pub lexical_entries: usize,
}

/// An ontology: concepts, typed relations, annotations and a lexical index.
#[derive(Debug, Clone, Default)]
pub struct Ontology {
    name: String,
    concepts: Vec<Concept>,
    edges: HashMap<(ConceptId, Relation), Vec<ConceptId>>,
    lexical: HashMap<String, Vec<ConceptId>>,
    annotations: HashMap<ConceptId, Vec<(String, String)>>,
}

impl Ontology {
    /// Creates an empty ontology.
    pub fn new(name: &str) -> Ontology {
        Ontology {
            name: name.to_owned(),
            ..Ontology::default()
        }
    }

    /// The ontology's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether there are no concepts.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Adds a concept; the first label is canonical.
    ///
    /// # Panics
    /// Panics if `labels` is empty.
    pub fn add_concept(
        &mut self,
        labels: &[&str],
        gloss: &str,
        pos: OntoPos,
        kind: ConceptKind,
    ) -> ConceptId {
        assert!(!labels.is_empty(), "a concept needs at least one label");
        let id = ConceptId(u32::try_from(self.concepts.len()).expect("ontology overflow"));
        self.concepts.push(Concept {
            labels: labels.iter().map(|l| (*l).to_owned()).collect(),
            gloss: gloss.to_owned(),
            pos,
            kind,
        });
        for label in labels {
            self.lexical
                .entry(dwqa_common::text::fold(label))
                .or_default()
                .push(id);
        }
        id
    }

    /// Adds a synonym label to an existing concept (Step 3's "enriched as
    /// synonym of the new term").
    pub fn add_label(&mut self, id: ConceptId, label: &str) {
        let folded = dwqa_common::text::fold(label);
        let entry = self.lexical.entry(folded).or_default();
        if !entry.contains(&id) {
            entry.push(id);
        }
        let c = &mut self.concepts[id.index()];
        if !c
            .labels
            .iter()
            .any(|l| dwqa_common::text::fold(l) == dwqa_common::text::fold(label))
        {
            c.labels.push(label.to_owned());
        }
    }

    /// Resolves a concept.
    pub fn concept(&self, id: ConceptId) -> &Concept {
        &self.concepts[id.index()]
    }

    /// Iterates `(id, concept)`.
    pub fn iter(&self) -> impl Iterator<Item = (ConceptId, &Concept)> {
        self.concepts
            .iter()
            .enumerate()
            .map(|(i, c)| (ConceptId(i as u32), c))
    }

    /// All concepts bearing a label (case-folded lookup).
    pub fn concepts_for(&self, label: &str) -> &[ConceptId] {
        self.lexical
            .get(&dwqa_common::text::fold(label))
            .map_or(&[], Vec::as_slice)
    }

    /// The first *class* concept with the label, if any.
    pub fn class_for(&self, label: &str) -> Option<ConceptId> {
        self.concepts_for(label)
            .iter()
            .copied()
            .find(|id| self.concept(*id).kind == ConceptKind::Class)
    }

    /// Adds a typed relation; the inverse edge is maintained automatically.
    pub fn relate(&mut self, from: ConceptId, rel: Relation, to: ConceptId) {
        let fwd = self.edges.entry((from, rel)).or_default();
        if !fwd.contains(&to) {
            fwd.push(to);
        }
        let bwd = self.edges.entry((to, rel.inverse())).or_default();
        if !bwd.contains(&from) {
            bwd.push(from);
        }
    }

    /// The targets of a relation from a concept.
    pub fn related(&self, from: ConceptId, rel: Relation) -> &[ConceptId] {
        self.edges.get(&(from, rel)).map_or(&[], Vec::as_slice)
    }

    /// Walks hypernyms from `id` to a root, returning the path (excluding
    /// `id`). Instances first hop through `InstanceOf`.
    pub fn hypernym_path(&self, id: ConceptId) -> Vec<ConceptId> {
        let mut path = Vec::new();
        let mut seen = HashSet::new();
        seen.insert(id);
        let mut cursor = if self.concept(id).kind == ConceptKind::Instance {
            self.related(id, Relation::InstanceOf).first().copied()
        } else {
            self.related(id, Relation::Hypernym).first().copied()
        };
        while let Some(c) = cursor {
            if !seen.insert(c) {
                break; // defensive: cycles cannot hang the walk
            }
            path.push(c);
            cursor = self.related(c, Relation::Hypernym).first().copied();
        }
        path
    }

    /// Whether `a` IS-A `b` (transitively; instances hop through
    /// `InstanceOf` first). `a == b` counts.
    pub fn is_a(&self, a: ConceptId, b: ConceptId) -> bool {
        a == b || self.hypernym_path(a).contains(&b)
    }

    /// All hyponyms and instances below a class (transitive closure,
    /// breadth-first, deterministic order).
    pub fn descendants(&self, id: ConceptId) -> Vec<ConceptId> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(id);
        seen.insert(id);
        while let Some(c) = queue.pop_front() {
            for rel in [Relation::Hyponym, Relation::HasInstance] {
                for &child in self.related(c, rel) {
                    if seen.insert(child) {
                        out.push(child);
                        queue.push_back(child);
                    }
                }
            }
        }
        out
    }

    /// Class concepts with no hypernym (tree roots).
    pub fn roots(&self) -> Vec<ConceptId> {
        self.iter()
            .filter(|(id, c)| {
                c.kind == ConceptKind::Class && self.related(*id, Relation::Hypernym).is_empty()
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Attaches a key/value annotation to a concept (Step 4 stores its
    /// axioms this way, e.g. `("unit", "celsius|fahrenheit")`).
    pub fn annotate(&mut self, id: ConceptId, key: &str, value: &str) {
        self.annotations
            .entry(id)
            .or_default()
            .push((key.to_owned(), value.to_owned()));
    }

    /// All values annotated under a key.
    pub fn annotation(&self, id: ConceptId, key: &str) -> Vec<&str> {
        self.annotations
            .get(&id)
            .map(|v| {
                v.iter()
                    .filter(|(k, _)| k == key)
                    .map(|(_, val)| val.as_str())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All annotations of a concept in insertion order.
    pub fn annotations(&self, id: ConceptId) -> &[(String, String)] {
        self.annotations.get(&id).map_or(&[], Vec::as_slice)
    }

    /// Count of concepts by kind.
    pub fn count_kind(&self, kind: ConceptKind) -> usize {
        self.concepts.iter().filter(|c| c.kind == kind).count()
    }

    /// A summary of the ontology: classes, instances, relation-edge count
    /// and lexical entries.
    pub fn stats(&self) -> OntologyStats {
        OntologyStats {
            classes: self.count_kind(ConceptKind::Class),
            instances: self.count_kind(ConceptKind::Instance),
            edges: self.edges.values().map(Vec::len).sum::<usize>() / 2,
            lexical_entries: self.lexical.len(),
        }
    }

    /// Checks structural invariants, returning human-readable violations:
    ///
    /// * the hypernym relation is acyclic;
    /// * instances have no hyponyms and are not hypernyms of anything;
    /// * every lexical-index entry points at a concept carrying the label;
    /// * inverse edges are consistent.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        // Hypernym acyclicity via the safe walk: hypernym_path() breaks on
        // revisits, so a cycle shows as a path containing the start.
        for (id, _) in self.iter() {
            let path = self.hypernym_path(id);
            if path.contains(&id) {
                problems.push(format!(
                    "hypernym cycle through {:?}",
                    self.concept(id).canonical()
                ));
            }
        }
        // Instances are taxonomy leaves.
        for (id, c) in self.iter() {
            if c.kind == ConceptKind::Instance {
                if !self.related(id, Relation::Hyponym).is_empty() {
                    problems.push(format!("instance {:?} has hyponyms", c.canonical()));
                }
                if !self.related(id, Relation::Hypernym).is_empty() {
                    problems.push(format!(
                        "instance {:?} uses Hypernym instead of InstanceOf",
                        c.canonical()
                    ));
                }
            }
        }
        // Lexical index integrity.
        for (label, ids) in &self.lexical {
            for &id in ids {
                let carried = self.concepts[id.index()]
                    .labels
                    .iter()
                    .any(|l| &dwqa_common::text::fold(l) == label);
                if !carried {
                    problems.push(format!(
                        "lexical entry {label:?} points at {:?} which lacks the label",
                        self.concept(id).canonical()
                    ));
                }
            }
        }
        // Inverse-edge consistency.
        for ((from, rel), targets) in &self.edges {
            for to in targets {
                if !self.related(*to, rel.inverse()).contains(from) {
                    problems.push(format!(
                        "missing inverse {:?} edge for {:?} → {:?}",
                        rel.inverse(),
                        self.concept(*from).canonical(),
                        self.concept(*to).canonical()
                    ));
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Ontology, ConceptId, ConceptId, ConceptId, ConceptId) {
        let mut o = Ontology::new("tiny");
        let entity = o.add_concept(
            &["entity"],
            "that which exists",
            OntoPos::Noun,
            ConceptKind::Class,
        );
        let location = o.add_concept(&["location"], "a place", OntoPos::Noun, ConceptKind::Class);
        let city = o.add_concept(
            &["city", "metropolis"],
            "an urban area",
            OntoPos::Noun,
            ConceptKind::Class,
        );
        let barcelona = o.add_concept(
            &["Barcelona"],
            "a city in Spain",
            OntoPos::Noun,
            ConceptKind::Instance,
        );
        o.relate(location, Relation::Hypernym, entity);
        o.relate(city, Relation::Hypernym, location);
        o.relate(barcelona, Relation::InstanceOf, city);
        (o, entity, location, city, barcelona)
    }

    #[test]
    fn lexical_lookup_is_case_folded_and_synonym_aware() {
        let (o, _, _, city, _) = tiny();
        assert_eq!(o.concepts_for("CITY"), &[city]);
        assert_eq!(o.concepts_for("Metropolis"), &[city]);
        assert!(o.concepts_for("village").is_empty());
    }

    #[test]
    fn inverse_edges_are_maintained() {
        let (o, _, location, city, barcelona) = tiny();
        assert_eq!(o.related(location, Relation::Hyponym), &[city]);
        assert_eq!(o.related(city, Relation::HasInstance), &[barcelona]);
    }

    #[test]
    fn hypernym_path_and_is_a() {
        let (o, entity, location, city, barcelona) = tiny();
        assert_eq!(o.hypernym_path(barcelona), vec![city, location, entity]);
        assert!(o.is_a(barcelona, location));
        assert!(o.is_a(city, entity));
        assert!(!o.is_a(entity, city));
        assert!(o.is_a(city, city));
    }

    #[test]
    fn descendants_closure() {
        let (o, entity, ..) = tiny();
        assert_eq!(o.descendants(entity).len(), 3);
    }

    #[test]
    fn roots_are_hypernym_free_classes() {
        let (o, entity, ..) = tiny();
        assert_eq!(o.roots(), vec![entity]);
    }

    #[test]
    fn add_label_enriches_synonyms() {
        let (mut o, .., barcelona) = tiny();
        o.add_label(barcelona, "BCN");
        assert_eq!(o.concepts_for("bcn"), &[barcelona]);
        assert_eq!(o.concept(barcelona).labels, vec!["Barcelona", "BCN"]);
        // Idempotent.
        o.add_label(barcelona, "bcn");
        assert_eq!(o.concept(barcelona).labels.len(), 2);
    }

    #[test]
    fn annotations_round_trip() {
        let (mut o, _, _, city, _) = tiny();
        o.annotate(city, "source", "uml");
        o.annotate(city, "source", "dw");
        assert_eq!(o.annotation(city, "source"), vec!["uml", "dw"]);
        assert!(o.annotation(city, "missing").is_empty());
    }

    #[test]
    fn relation_inverses_are_involutive() {
        for r in Relation::ALL {
            assert_eq!(r.inverse().inverse(), r);
        }
    }

    #[test]
    fn relate_deduplicates() {
        let (mut o, _, location, city, _) = tiny();
        o.relate(city, Relation::Hypernym, location);
        assert_eq!(o.related(city, Relation::Hypernym).len(), 1);
    }

    #[test]
    fn class_for_skips_instances() {
        let mut o = Ontology::new("t");
        let inst = o.add_concept(&["x"], "", OntoPos::Noun, ConceptKind::Instance);
        assert_eq!(o.class_for("x"), None);
        let class = o.add_concept(&["x"], "", OntoPos::Noun, ConceptKind::Class);
        assert_eq!(o.class_for("x"), Some(class));
        assert_ne!(inst, class);
    }

    #[test]
    fn stats_count_the_tiny_graph() {
        let (o, ..) = tiny();
        let stats = o.stats();
        assert_eq!(stats.classes, 3);
        assert_eq!(stats.instances, 1);
        assert_eq!(stats.edges, 3);
        assert_eq!(stats.lexical_entries, 5); // entity location city metropolis barcelona
    }

    #[test]
    fn validate_accepts_well_formed_graphs() {
        let (o, ..) = tiny();
        assert!(o.validate().is_empty(), "{:?}", o.validate());
    }

    #[test]
    fn validate_flags_instances_with_hypernyms() {
        let mut o = Ontology::new("bad");
        let class = o.add_concept(&["c"], "", OntoPos::Noun, ConceptKind::Class);
        let inst = o.add_concept(&["i"], "", OntoPos::Noun, ConceptKind::Instance);
        o.relate(inst, Relation::Hypernym, class);
        let problems = o.validate();
        assert!(
            problems.iter().any(|p| p.contains("InstanceOf")),
            "{problems:?}"
        );
    }

    #[test]
    fn count_kind() {
        let (o, ..) = tiny();
        assert_eq!(o.count_kind(ConceptKind::Class), 3);
        assert_eq!(o.count_kind(ConceptKind::Instance), 1);
    }
}
