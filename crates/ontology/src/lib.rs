//! Ontologies: the glue of the DW ⇄ QA integration.
//!
//! The paper's five-step model is ontology-mediated: the DW's
//! multidimensional schema becomes a *domain ontology* (Step 1), the DW's
//! contents become *instances* of its concepts (Step 2), and the result is
//! merged into the *upper ontology* used by the QA system — WordNet in the
//! original, a from-scratch mini-WordNet here (Step 3). This crate
//! implements all of that:
//!
//! * [`graph`] — the ontology data structure: concepts (synset-like, with
//!   synonym labels and a gloss), typed relations with maintained inverses
//!   (hypernym/hyponym, meronym/holonym, antonym, instance-of), free-form
//!   annotations (used by Step 4's axioms), and a lexical index;
//! * [`upper`] — the mini-WordNet: WordNet's 25 noun and 15 verb unique
//!   beginners plus a few hundred synsets covering the airline, weather,
//!   geography and general vocabulary the reproduction needs, including
//!   the ambiguous entries the paper discusses ("JFK" the president vs.
//!   the airport, "La Guardia" the politician vs. the airport);
//! * [`transform`] — Step 1: the ad-hoc UML → ontology transformation
//!   (classes → concepts, roll-ups → part-of relations, fact/dimension
//!   associations → related-to);
//! * [`enrich`] — Step 2: feeding the ontology with DW instances;
//! * [`merge`] — Step 3: the PROMPT-style merge into the upper ontology
//!   (exact match → head-word match → new root), with instance placement
//!   and synonym enrichment ("JFK" ≈ "Kennedy International Airport");
//! * [`owl`] — an OWL-functional-syntax serializer and parser (the paper's
//!   step 1.b: "the generation of the ontology in some of the ontology
//!   representation languages … OWL");
//! * [`senses`] — the [`dwqa_nlp::wsd::SenseInventory`] implementation, so
//!   the simplified-Lesk WSD runs over the merged ontology and Step-2
//!   enrichment measurably shifts disambiguation.

//! ```
//! use dwqa_ontology::{schema_to_ontology, upper_ontology, merge_into_upper, MergeOptions};
//! use dwqa_mdmodel::last_minute_sales;
//!
//! let domain = schema_to_ontology(&last_minute_sales());       // Step 1
//! let mut upper = upper_ontology();
//! let report = merge_into_upper(&domain, &mut upper, &MergeOptions::default()); // Step 3
//! let lms = upper.class_for("Last Minute Sales").unwrap();
//! let sale = upper.class_for("sale").unwrap();
//! assert!(upper.is_a(lms, sale));                              // head-word placement
//! # assert!(report.count(dwqa_ontology::MatchKind::Exact) > 5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod enrich;
pub mod graph;
pub mod merge;
pub mod owl;
pub mod senses;
pub mod similarity;
pub mod transform;
pub mod upper;

pub use enrich::{enrich_from_warehouse, EnrichmentReport};
pub use graph::{ConceptId, ConceptKind, OntoPos, Ontology, OntologyStats, Relation};
pub use merge::{merge_into_upper, MatchKind, MergeOptions, MergeReport};
pub use owl::{parse_owl, render_owl};
pub use similarity::{least_common_subsumer, path_length, wup_similarity};
pub use transform::schema_to_ontology;
pub use upper::upper_ontology;
