//! Step 3: merging the domain ontology into the upper ontology.
//!
//! The paper adopts a PROMPT-style matching algorithm (Fridman & Musen
//! 2000; McGuinness et al. 2000) on class names:
//!
//! 1. every domain concept is looked up in WordNet — an **exact** match
//!    maps the concept onto the existing synset;
//! 2. otherwise the syntactic **head** of the compound is looked up
//!    ("Last Minute Sales" → "sale") and the domain concept is added as a
//!    new hyponym of the head's synset;
//! 3. otherwise the concept is added with no hypernym, "getting a new
//!    ontological tree" (**new root**).
//!
//! Instances are added as hyponyms of their mapped class; instances the
//! upper ontology already knows under another name enrich the existing
//! synset with a **synonym** ("JFK" joins "Kennedy International
//! Airport"). Alias annotations and a Levenshtein similarity threshold
//! drive that (WordNet's own entry listed JFK as a synonym; our
//! mini-WordNet records it as an alias annotation).

use crate::graph::{ConceptId, ConceptKind, OntoPos, Ontology, Relation};
use dwqa_common::text::{label_words, similarity};
use dwqa_nlp::lemmatizer::singularize;
use std::collections::HashMap;

/// How a domain class was placed in the upper ontology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchKind {
    /// Found by exact (case-folded, number-normalised) label match.
    Exact,
    /// Added as a hyponym of its head word's synset.
    HeadWord,
    /// Added as a new root tree.
    NewRoot,
}

/// Tuning knobs for the merge (ablated in experiment E6).
#[derive(Debug, Clone, PartialEq)]
pub struct MergeOptions {
    /// Enable step 2 (head-word fallback). Disabling it sends every
    /// non-exact concept to a new root.
    pub head_word_fallback: bool,
    /// Similarity threshold above which an instance label is treated as a
    /// synonym of an existing instance instead of a new one.
    pub synonym_similarity: f64,
}

impl Default for MergeOptions {
    fn default() -> MergeOptions {
        MergeOptions {
            head_word_fallback: true,
            synonym_similarity: 0.85,
        }
    }
}

/// Outcome of a merge.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MergeReport {
    /// Per domain class: how it was placed.
    pub class_matches: Vec<(String, MatchKind)>,
    /// New instances created in the upper ontology.
    pub instances_added: usize,
    /// `(new term, enriched existing concept)` synonym enrichments.
    pub synonyms_enriched: Vec<(String, String)>,
    /// Instances skipped because already present under the mapped class.
    pub instances_existing: usize,
    /// Domain → upper concept mapping (by domain concept id index).
    pub mapping: HashMap<u32, ConceptId>,
}

impl MergeReport {
    /// Count of classes placed with the given match kind.
    pub fn count(&self, kind: MatchKind) -> usize {
        self.class_matches
            .iter()
            .filter(|(_, k)| *k == kind)
            .count()
    }
}

fn head_word(label: &str) -> Option<String> {
    let words = label_words(label);
    // The head is the last *contentful* word: unit-style one/two-letter
    // suffixes ("temperature_c") are skipped.
    words
        .iter()
        .rev()
        .find(|w| w.len() >= 3)
        .or_else(|| words.last())
        .map(|w| singularize(w))
}

/// Digit-bearing labels are only similar when their digit sequences agree:
/// "Customer 2" and "Customer 12" are different individuals no matter how
/// close their spellings are.
fn labels_similar(a: &str, b: &str, threshold: f64) -> bool {
    let digits = |s: &str| s.chars().filter(char::is_ascii_digit).collect::<String>();
    digits(a) == digits(b) && similarity(a, b) >= threshold
}

/// Merges `domain` into `upper`, returning the report.
pub fn merge_into_upper(
    domain: &Ontology,
    upper: &mut Ontology,
    options: &MergeOptions,
) -> MergeReport {
    let mut report = MergeReport::default();
    let mut mapping: HashMap<ConceptId, ConceptId> = HashMap::new();

    // Pass 1: place classes.
    for (id, concept) in domain.iter() {
        if concept.kind != ConceptKind::Class {
            continue;
        }
        let label = concept.canonical();
        // Exact match, tolerating plural class names ("Treatments").
        let target = upper
            .class_for(label)
            .or_else(|| upper.class_for(&singularize(label)));
        let (upper_id, kind) = if let Some(existing) = target {
            (existing, MatchKind::Exact)
        } else if options.head_word_fallback {
            let head = head_word(label).and_then(|h| upper.class_for(&h));
            match head {
                Some(parent) => {
                    let new_id =
                        upper.add_concept(&[label], &concept.gloss, concept.pos, concept.kind);
                    upper.relate(new_id, Relation::Hypernym, parent);
                    (new_id, MatchKind::HeadWord)
                }
                None => {
                    let new_id =
                        upper.add_concept(&[label], &concept.gloss, concept.pos, concept.kind);
                    (new_id, MatchKind::NewRoot)
                }
            }
        } else {
            let new_id = upper.add_concept(&[label], &concept.gloss, concept.pos, concept.kind);
            (new_id, MatchKind::NewRoot)
        };
        // Every domain label — canonical and synonyms — enriches the
        // target synset.
        for l in &concept.labels {
            upper.add_label(upper_id, l);
        }
        // Carry the domain annotations (descriptor names, roles, …).
        for (k, v) in domain.annotations(id) {
            upper.annotate(upper_id, k, v);
        }
        mapping.insert(id, upper_id);
        report.class_matches.push((label.to_owned(), kind));
    }

    // Pass 2: transfer class-level relations among mapped concepts.
    for (id, concept) in domain.iter() {
        if concept.kind != ConceptKind::Class {
            continue;
        }
        let Some(&from) = mapping.get(&id) else {
            continue;
        };
        for rel in [Relation::Meronym, Relation::RelatedTo] {
            for &to_domain in domain.related(id, rel) {
                if let Some(&to) = mapping.get(&to_domain) {
                    if from != to {
                        upper.relate(from, rel, to);
                    }
                }
            }
        }
    }

    // Pass 3: place instances.
    for (id, concept) in domain.iter() {
        if concept.kind != ConceptKind::Instance {
            continue;
        }
        let label = concept.canonical().to_owned();
        let Some(&class_id) = domain
            .related(id, Relation::InstanceOf)
            .first()
            .and_then(|c| mapping.get(c))
        else {
            continue;
        };
        // Already known under this class?
        let folded = dwqa_common::text::fold(&label);
        let existing_same =
            upper.concepts_for(&label).iter().copied().find(|c| {
                upper.concept(*c).kind == ConceptKind::Instance && upper.is_a(*c, class_id)
            });
        if let Some(existing) = existing_same {
            report.instances_existing += 1;
            for (k, v) in domain.annotations(id) {
                upper.annotate(existing, k, v);
            }
            mapping.insert(id, existing);
            continue;
        }
        // Alias or near-duplicate of an existing instance of the class?
        let siblings: Vec<ConceptId> = upper
            .descendants(class_id)
            .into_iter()
            .filter(|c| upper.concept(*c).kind == ConceptKind::Instance)
            .collect();
        let mut enriched: Option<ConceptId> = None;
        for sib in siblings {
            let alias_hit = upper
                .annotation(sib, "alias")
                .iter()
                .any(|a| dwqa_common::text::fold(a) == folded);
            let near = upper
                .concept(sib)
                .labels
                .iter()
                .any(|l| labels_similar(l, &label, options.synonym_similarity));
            if alias_hit || near {
                enriched = Some(sib);
                break;
            }
        }
        if let Some(sib) = enriched {
            let canonical = upper.concept(sib).canonical().to_owned();
            upper.add_label(sib, &label);
            for (k, v) in domain.annotations(id) {
                upper.annotate(sib, k, v);
            }
            report.synonyms_enriched.push((label, canonical));
            mapping.insert(id, sib);
            continue;
        }
        // New instance under the mapped class.
        let new_id = upper.add_concept(&[&label], &concept.gloss, OntoPos::Noun, concept.kind);
        upper.relate(new_id, Relation::InstanceOf, class_id);
        for (k, v) in domain.annotations(id) {
            upper.annotate(new_id, k, v);
        }
        mapping.insert(id, new_id);
        report.instances_added += 1;
    }

    // Pass 4: transfer instance meronymy (El Prat part-of Barcelona).
    for (id, concept) in domain.iter() {
        if concept.kind != ConceptKind::Instance {
            continue;
        }
        let Some(&from) = mapping.get(&id) else {
            continue;
        };
        for &to_domain in domain.related(id, Relation::Meronym) {
            if let Some(&to) = mapping.get(&to_domain) {
                if from != to {
                    upper.relate(from, Relation::Meronym, to);
                }
            }
        }
    }

    report.mapping = mapping.into_iter().map(|(k, v)| (k.0, v)).collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enrich::enrich_from_warehouse;
    use crate::transform::schema_to_ontology;
    use crate::upper::upper_ontology;
    use dwqa_mdmodel::last_minute_sales;
    use dwqa_warehouse::{FactRowBuilder, Value, Warehouse};

    fn domain_with_instances() -> Ontology {
        let mut wh = Warehouse::new(last_minute_sales());
        let mut rows = Vec::new();
        for (airport, city, state, country) in [
            ("El Prat", "Barcelona", "Catalonia", "Spain"),
            ("JFK", "New York", "New York State", "United States"),
            ("La Guardia", "New York", "New York State", "United States"),
            ("John Wayne", "Costa Mesa", "California", "United States"),
        ] {
            let mut b = FactRowBuilder::new();
            b.measure("price", Value::Float(100.0))
                .measure("miles", Value::Float(500.0))
                .measure("traveler_rate", Value::Float(0.5))
                .role_member("Origin", &[("airport_name", Value::text("Alicante"))])
                .role_member(
                    "Destination",
                    &[
                        ("airport_name", Value::text(airport)),
                        ("city_name", Value::text(city)),
                        ("state_name", Value::text(state)),
                        ("country_name", Value::text(country)),
                    ],
                )
                .role_member("Customer", &[("customer_name", Value::text("Ann"))])
                .role_member("Date", &[("date", Value::date(2004, 1, 31).unwrap())]);
            rows.push(b.build());
        }
        wh.load("Last Minute Sales", rows).unwrap();
        let mut onto = schema_to_ontology(wh.schema());
        enrich_from_warehouse(&mut onto, &wh);
        onto
    }

    #[test]
    fn exact_matches_map_onto_existing_synsets() {
        let domain = domain_with_instances();
        let mut upper = upper_ontology();
        let before = upper.len();
        let report = merge_into_upper(&domain, &mut upper, &MergeOptions::default());
        // Airport, City, State, Country, Customer, Date, Month, Quarter,
        // Year, price, miles all exist (directly or singularised).
        assert!(
            report.count(MatchKind::Exact) >= 9,
            "{:?}",
            report.class_matches
        );
        // Exact matches add no new class concepts for those labels.
        let airport_concepts = upper.concepts_for("airport");
        assert_eq!(airport_concepts.len(), 1);
        assert!(upper.len() > before); // but instances were added
    }

    #[test]
    fn last_minute_sales_hangs_under_sale_by_head_word() {
        let domain = domain_with_instances();
        let mut upper = upper_ontology();
        let report = merge_into_upper(&domain, &mut upper, &MergeOptions::default());
        assert!(report
            .class_matches
            .contains(&("Last Minute Sales".to_owned(), MatchKind::HeadWord)));
        let lms = upper.class_for("Last Minute Sales").unwrap();
        let sale = upper.class_for("sale").unwrap();
        assert!(upper.is_a(lms, sale));
    }

    #[test]
    fn jfk_becomes_synonym_of_kennedy_airport() {
        let domain = domain_with_instances();
        let mut upper = upper_ontology();
        let report = merge_into_upper(&domain, &mut upper, &MergeOptions::default());
        assert!(report
            .synonyms_enriched
            .iter()
            .any(|(term, target)| term == "JFK" && target == "Kennedy International Airport"));
        // "JFK" now resolves to an airport sense too.
        let airport = upper.class_for("airport").unwrap();
        let senses = upper.concepts_for("JFK");
        assert!(senses.iter().any(|s| upper.is_a(*s, airport)));
        // The person senses survive (the ambiguity WSD resolves).
        let person = upper.class_for("person").unwrap();
        assert!(senses.iter().any(|s| upper.is_a(*s, person)));
    }

    #[test]
    fn new_airports_are_added_as_instances() {
        let domain = domain_with_instances();
        let mut upper = upper_ontology();
        merge_into_upper(&domain, &mut upper, &MergeOptions::default());
        let airport = upper.class_for("airport").unwrap();
        for name in ["El Prat", "John Wayne", "La Guardia"] {
            let ids = upper.concepts_for(name);
            assert!(
                ids.iter().any(|id| upper.is_a(*id, airport)),
                "{name} should be an airport instance after merge"
            );
        }
        // "La Guardia" is *also* still a person — a new airport instance
        // was created rather than corrupting the politician synset.
        let person = upper.class_for("person").unwrap();
        assert!(upper
            .concepts_for("La Guardia")
            .iter()
            .any(|id| upper.is_a(*id, person)));
    }

    #[test]
    fn existing_cities_are_not_duplicated() {
        let domain = domain_with_instances();
        let mut upper = upper_ontology();
        let report = merge_into_upper(&domain, &mut upper, &MergeOptions::default());
        let city = upper.class_for("city").unwrap();
        let bcn: Vec<_> = upper
            .concepts_for("Barcelona")
            .iter()
            .copied()
            .filter(|id| upper.is_a(*id, city))
            .collect();
        assert_eq!(bcn.len(), 1);
        assert!(report.instances_existing > 0);
    }

    #[test]
    fn disabling_head_word_fallback_creates_new_roots() {
        let domain = domain_with_instances();
        let mut upper = upper_ontology();
        let options = MergeOptions {
            head_word_fallback: false,
            ..MergeOptions::default()
        };
        let report = merge_into_upper(&domain, &mut upper, &options);
        assert!(report
            .class_matches
            .contains(&("Last Minute Sales".to_owned(), MatchKind::NewRoot)));
        let lms = upper.class_for("Last Minute Sales").unwrap();
        assert!(upper.related(lms, Relation::Hypernym).is_empty());
    }

    #[test]
    fn merge_is_idempotent_on_second_run() {
        let domain = domain_with_instances();
        let mut upper = upper_ontology();
        merge_into_upper(&domain, &mut upper, &MergeOptions::default());
        let size = upper.len();
        let second = merge_into_upper(&domain, &mut upper, &MergeOptions::default());
        assert_eq!(upper.len(), size, "second merge must not grow the ontology");
        assert_eq!(second.instances_added, 0);
    }

    #[test]
    fn instance_meronymy_is_transferred() {
        let domain = domain_with_instances();
        let mut upper = upper_ontology();
        merge_into_upper(&domain, &mut upper, &MergeOptions::default());
        let airport = upper.class_for("airport").unwrap();
        let el_prat = upper
            .concepts_for("El Prat")
            .iter()
            .copied()
            .find(|id| upper.is_a(*id, airport))
            .unwrap();
        let parts_of = upper.related(el_prat, Relation::Meronym);
        assert!(parts_of
            .iter()
            .any(|id| upper.concept(*id).canonical() == "Barcelona"));
    }

    #[test]
    fn head_word_extraction() {
        assert_eq!(head_word("Last Minute Sales"), Some("sale".to_owned()));
        assert_eq!(head_word("AgeGroup"), Some("agegroup".to_owned()));
        assert_eq!(head_word(""), None);
    }
}
