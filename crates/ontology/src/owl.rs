//! OWL serialization (functional-style syntax subset).
//!
//! Step 1.b of the paper: "the generation of the ontology in some of the
//! ontology representation languages. For instance, we can use the most
//! extended ontology language, OWL". We emit a deterministic subset of the
//! OWL 2 functional-style syntax — declarations, `SubClassOf`,
//! `ClassAssertion`, annotation assertions for glosses/synonyms and a
//! custom object property per non-taxonomic relation — and can parse it
//! back, so ontologies can be exchanged with other tools.

use crate::graph::{ConceptId, ConceptKind, OntoPos, Ontology, Relation};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Turns a label into an OWL local name (`Last Minute Sales` →
/// `Last_Minute_Sales`).
fn iri(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

fn unquote(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

/// Renders an ontology as OWL functional-style syntax.
pub fn render_owl(o: &Ontology) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Prefix(:=<http://dwqa.example.org/{}#>)",
        iri(o.name())
    );
    let _ = writeln!(out, "Ontology(<http://dwqa.example.org/{}>", iri(o.name()));
    // Give every concept a unique local name (labels can collide across
    // synsets — "JFK" the president vs. the band).
    let mut names: HashMap<ConceptId, String> = HashMap::new();
    let mut used: HashMap<String, usize> = HashMap::new();
    for (id, c) in o.iter() {
        let base = iri(c.canonical());
        let n = used.entry(base.clone()).or_insert(0);
        let name = if *n == 0 {
            base.clone()
        } else {
            format!("{base}_{n}")
        };
        *n += 1;
        names.insert(id, name);
    }
    for (id, c) in o.iter() {
        let name = &names[&id];
        match c.kind {
            ConceptKind::Class => {
                let _ = writeln!(out, "Declaration(Class(:{name}))");
            }
            ConceptKind::Instance => {
                let _ = writeln!(out, "Declaration(NamedIndividual(:{name}))");
            }
        }
        let pos = match c.pos {
            OntoPos::Noun => "noun",
            OntoPos::Verb => "verb",
        };
        let _ = writeln!(out, "AnnotationAssertion(:pos :{name} {})", quote(pos));
        if !c.gloss.is_empty() {
            let _ = writeln!(
                out,
                "AnnotationAssertion(rdfs:comment :{name} {})",
                quote(&c.gloss)
            );
        }
        for label in &c.labels {
            let _ = writeln!(
                out,
                "AnnotationAssertion(rdfs:label :{name} {})",
                quote(label)
            );
        }
        for (k, v) in o.annotations(id) {
            let _ = writeln!(out, "AnnotationAssertion(:{} :{name} {})", iri(k), quote(v));
        }
    }
    // Only forward relations are serialized; inverses are rebuilt on parse.
    for (id, _) in o.iter() {
        let name = &names[&id];
        for &t in o.related(id, Relation::Hypernym) {
            let _ = writeln!(out, "SubClassOf(:{name} :{})", names[&t]);
        }
        for &t in o.related(id, Relation::InstanceOf) {
            let _ = writeln!(out, "ClassAssertion(:{} :{name})", names[&t]);
        }
        for &t in o.related(id, Relation::Meronym) {
            let _ = writeln!(
                out,
                "ObjectPropertyAssertion(:partOf :{name} :{})",
                names[&t]
            );
        }
        for &t in o.related(id, Relation::Antonym) {
            if id < t {
                let _ = writeln!(
                    out,
                    "ObjectPropertyAssertion(:antonymOf :{name} :{})",
                    names[&t]
                );
            }
        }
        for &t in o.related(id, Relation::RelatedTo) {
            if id < t {
                let _ = writeln!(
                    out,
                    "ObjectPropertyAssertion(:relatedTo :{name} :{})",
                    names[&t]
                );
            }
        }
    }
    out.push_str(")\n");
    out
}

/// Parses the subset emitted by [`render_owl`] back into an [`Ontology`].
///
/// Returns `None` on any structural problem (unknown construct, reference
/// to an undeclared name, missing header).
pub fn parse_owl(text: &str) -> Option<Ontology> {
    let mut lines = text.lines();
    let _prefix = lines.next()?.strip_prefix("Prefix(")?;
    let header = lines.next()?;
    let name = header
        .strip_prefix("Ontology(<http://dwqa.example.org/")?
        .strip_suffix('>')?
        .replace('_', " ");
    // First pass: declarations + annotations, building concepts.
    #[derive(Default)]
    struct Pending {
        kind: Option<ConceptKind>,
        pos: Option<OntoPos>,
        labels: Vec<String>,
        gloss: String,
        annotations: Vec<(String, String)>,
        order: usize,
    }
    let mut pending: HashMap<String, Pending> = HashMap::new();
    let mut order = 0usize;
    let mut relations: Vec<(String, Relation, String)> = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line == ")" {
            continue;
        }
        if let Some(rest) = line.strip_prefix("Declaration(Class(:") {
            let name = rest.strip_suffix("))")?;
            let e = pending.entry(name.to_owned()).or_default();
            e.kind = Some(ConceptKind::Class);
            e.order = order;
            order += 1;
        } else if let Some(rest) = line.strip_prefix("Declaration(NamedIndividual(:") {
            let name = rest.strip_suffix("))")?;
            let e = pending.entry(name.to_owned()).or_default();
            e.kind = Some(ConceptKind::Instance);
            e.order = order;
            order += 1;
        } else if let Some(rest) = line.strip_prefix("AnnotationAssertion(") {
            let rest = rest.strip_suffix(')')?;
            let (prop, rest) = rest.split_once(" :")?;
            let (subject, value) = rest.split_once(' ')?;
            let value = unquote(value)?;
            let e = pending.get_mut(subject)?;
            match prop {
                "rdfs:label" => e.labels.push(value),
                "rdfs:comment" => e.gloss = value,
                ":pos" => {
                    e.pos = Some(if value == "verb" {
                        OntoPos::Verb
                    } else {
                        OntoPos::Noun
                    });
                }
                other => {
                    let key = other.strip_prefix(':').unwrap_or(other);
                    e.annotations.push((key.to_owned(), value));
                }
            }
        } else if let Some(rest) = line.strip_prefix("SubClassOf(:") {
            let rest = rest.strip_suffix(')')?;
            let (a, b) = rest.split_once(" :")?;
            relations.push((a.to_owned(), Relation::Hypernym, b.to_owned()));
        } else if let Some(rest) = line.strip_prefix("ClassAssertion(:") {
            let rest = rest.strip_suffix(')')?;
            let (class, individual) = rest.split_once(" :")?;
            relations.push((
                individual.to_owned(),
                Relation::InstanceOf,
                class.to_owned(),
            ));
        } else if let Some(rest) = line.strip_prefix("ObjectPropertyAssertion(:") {
            let rest = rest.strip_suffix(')')?;
            let mut parts = rest.splitn(3, ' ');
            let prop = parts.next()?;
            let a = parts.next()?.strip_prefix(':')?;
            let b = parts.next()?.strip_prefix(':')?;
            let rel = match prop {
                "partOf" => Relation::Meronym,
                "antonymOf" => Relation::Antonym,
                "relatedTo" => Relation::RelatedTo,
                _ => return None,
            };
            relations.push((a.to_owned(), rel, b.to_owned()));
        } else {
            return None;
        }
    }
    // Materialise in declaration order so ids are stable.
    let mut entries: Vec<(String, Pending)> = pending.into_iter().collect();
    entries.sort_by_key(|(_, p)| p.order);
    let mut o = Ontology::new(&name);
    let mut ids: HashMap<String, ConceptId> = HashMap::new();
    for (owl_name, p) in entries {
        let kind = p.kind?;
        let labels: Vec<&str> = if p.labels.is_empty() {
            vec![owl_name.as_str()]
        } else {
            p.labels.iter().map(String::as_str).collect()
        };
        let id = o.add_concept(&labels, &p.gloss, p.pos.unwrap_or(OntoPos::Noun), kind);
        for (k, v) in &p.annotations {
            o.annotate(id, k, v);
        }
        ids.insert(owl_name, id);
    }
    for (a, rel, b) in relations {
        let &fa = ids.get(&a)?;
        let &fb = ids.get(&b)?;
        o.relate(fa, rel, fb);
    }
    Some(o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::upper::upper_ontology;

    fn tiny() -> Ontology {
        let mut o = Ontology::new("tiny demo");
        let loc = o.add_concept(&["location"], "a place", OntoPos::Noun, ConceptKind::Class);
        let city = o.add_concept(
            &["city", "metropolis"],
            "an urban area",
            OntoPos::Noun,
            ConceptKind::Class,
        );
        let bcn = o.add_concept(
            &["Barcelona"],
            "a city in Spain",
            OntoPos::Noun,
            ConceptKind::Instance,
        );
        o.relate(city, Relation::Hypernym, loc);
        o.relate(bcn, Relation::InstanceOf, city);
        o.annotate(bcn, "source", "dw");
        o
    }

    #[test]
    fn render_emits_expected_constructs() {
        let owl = render_owl(&tiny());
        for needle in [
            "Declaration(Class(:city))",
            "Declaration(NamedIndividual(:Barcelona))",
            "SubClassOf(:city :location)",
            "ClassAssertion(:city :Barcelona)",
            "AnnotationAssertion(rdfs:label :city \"metropolis\")",
            "AnnotationAssertion(rdfs:comment :Barcelona \"a city in Spain\")",
            "AnnotationAssertion(:source :Barcelona \"dw\")",
        ] {
            assert!(owl.contains(needle), "missing {needle} in:\n{owl}");
        }
    }

    #[test]
    fn tiny_round_trip() {
        let original = tiny();
        let parsed = parse_owl(&render_owl(&original)).expect("parse back");
        assert_eq!(parsed.name(), original.name());
        assert_eq!(parsed.len(), original.len());
        let city = parsed.class_for("city").unwrap();
        let loc = parsed.class_for("location").unwrap();
        assert!(parsed.is_a(city, loc));
        let bcn = parsed.concepts_for("Barcelona")[0];
        assert!(parsed.is_a(bcn, city));
        assert_eq!(parsed.annotation(bcn, "source"), vec!["dw"]);
        assert_eq!(parsed.concept(city).labels, vec!["city", "metropolis"]);
    }

    #[test]
    fn upper_ontology_round_trips() {
        let original = upper_ontology();
        let owl = render_owl(&original);
        let parsed = parse_owl(&owl).expect("upper ontology parses back");
        assert_eq!(parsed.len(), original.len());
        // Spot checks: taxonomy, instances, aliases, antonyms.
        let airport = parsed.class_for("airport").unwrap();
        let artifact = parsed.class_for("artifact").unwrap();
        assert!(parsed.is_a(airport, artifact));
        let kennedy = parsed
            .concepts_for("Kennedy International Airport")
            .first()
            .copied()
            .unwrap();
        assert_eq!(parsed.annotation(kennedy, "alias"), vec!["JFK"]);
        let inc = parsed
            .concepts_for("increase")
            .iter()
            .copied()
            .find(|c| parsed.concept(*c).pos == OntoPos::Verb)
            .unwrap();
        assert!(!parsed.related(inc, Relation::Antonym).is_empty());
    }

    #[test]
    fn duplicate_labels_get_distinct_names() {
        let mut o = Ontology::new("dup");
        let cls = o.add_concept(&["JFK"], "president", OntoPos::Noun, ConceptKind::Instance);
        let cls2 = o.add_concept(&["JFK"], "band", OntoPos::Noun, ConceptKind::Instance);
        assert_ne!(cls, cls2);
        let owl = render_owl(&o);
        assert!(owl.contains(":JFK"));
        assert!(owl.contains(":JFK_1"));
        let parsed = parse_owl(&owl).unwrap();
        assert_eq!(parsed.concepts_for("JFK").len(), 2);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(parse_owl("").is_none());
        assert!(parse_owl("Prefix(x)\nOntology(<http://dwqa.example.org/x>\ngarbage\n)").is_none());
        assert!(
            parse_owl("Prefix(x)\nOntology(<http://dwqa.example.org/x>\nSubClassOf(:a :b)\n)")
                .is_none()
        ); // undeclared names
    }

    #[test]
    fn quoting_survives_special_characters() {
        let mut o = Ontology::new("q");
        o.add_concept(
            &["odd \"label\""],
            "gloss with \\ backslash",
            OntoPos::Noun,
            ConceptKind::Class,
        );
        let parsed = parse_owl(&render_owl(&o)).unwrap();
        assert_eq!(parsed.concept(ConceptId(0)).canonical(), "odd \"label\"");
        assert_eq!(
            parsed.concept(ConceptId(0)).gloss,
            "gloss with \\ backslash"
        );
    }
}
