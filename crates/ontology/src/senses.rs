//! The ontology as a WSD sense inventory.
//!
//! Implements [`dwqa_nlp::wsd::SenseInventory`] for [`Ontology`]: the
//! senses of a lemma are the concepts bearing it as a label; a sense's
//! Lesk signature is its gloss plus the labels of its taxonomic
//! neighbourhood; and concepts fed from the data warehouse (Step 2,
//! annotation `source = dw`) receive a prior boost — the concrete
//! mechanism behind the paper's claim that enrichment makes the QA system
//! "more precise" ("the system will know that the previous entities mean
//! airports instead of a person or a Spanish musical group").

use crate::graph::{ConceptId, Ontology, Relation};
use dwqa_nlp::wsd::SenseInventory;

/// Prior boost for DW-fed senses.
pub const DW_PRIOR: f64 = 0.5;

impl SenseInventory for Ontology {
    type Sense = ConceptId;

    fn senses(&self, lemma: &str) -> Vec<ConceptId> {
        self.concepts_for(lemma).to_vec()
    }

    fn signature(&self, sense: ConceptId) -> Vec<String> {
        let mut words: Vec<String> = Vec::new();
        let concept = self.concept(sense);
        words.extend(dwqa_common::text::label_words(&concept.gloss));
        for label in &concept.labels {
            words.extend(dwqa_common::text::label_words(label));
        }
        // Taxonomic neighbourhood: the class (for instances), hypernyms,
        // and part-of targets all contribute signature words.
        let mut neighbours: Vec<ConceptId> = Vec::new();
        neighbours.extend(self.related(sense, Relation::InstanceOf));
        neighbours.extend(self.hypernym_path(sense).into_iter().take(3));
        neighbours.extend(self.related(sense, Relation::Meronym));
        neighbours.extend(self.related(sense, Relation::RelatedTo));
        for n in neighbours {
            for label in &self.concept(n).labels {
                words.extend(dwqa_common::text::label_words(label));
            }
        }
        words.sort();
        words.dedup();
        words
    }

    fn prior(&self, sense: ConceptId) -> f64 {
        if self.annotation(sense, "source").contains(&"dw") {
            DW_PRIOR
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ConceptKind, OntoPos};
    use crate::merge::{merge_into_upper, MergeOptions};
    use crate::upper::upper_ontology;
    use dwqa_nlp::wsd::disambiguate;

    fn ctx(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| (*w).to_owned()).collect()
    }

    #[test]
    fn signatures_include_gloss_and_taxonomy() {
        let o = upper_ontology();
        let airport = o.class_for("airport").unwrap();
        let sig = o.signature(airport);
        assert!(sig.contains(&"terminals".to_owned()) || sig.contains(&"terminal".to_owned()));
        assert!(sig.contains(&"facility".to_owned()));
    }

    #[test]
    fn before_enrichment_jfk_resolves_to_the_president() {
        let o = upper_ontology();
        let sense = disambiguate(&o, "jfk", &ctx(&["president"])).unwrap();
        let person = o.class_for("person").unwrap();
        assert!(o.is_a(sense, person));
    }

    #[test]
    fn after_enrichment_jfk_prefers_the_airport_in_weather_context() {
        // Build a domain ontology with a DW-sourced JFK airport instance
        // and merge it in; the DW prior then tips neutral contexts.
        let mut upper = upper_ontology();
        let mut domain = crate::graph::Ontology::new("d");
        let airport = domain.add_concept(&["Airport"], "", OntoPos::Noun, ConceptKind::Class);
        let jfk = domain.add_concept(
            &["JFK"],
            "an airport from the data warehouse",
            OntoPos::Noun,
            ConceptKind::Instance,
        );
        domain.relate(jfk, Relation::InstanceOf, airport);
        domain.annotate(jfk, "source", "dw");
        merge_into_upper(&domain, &mut upper, &MergeOptions::default());

        let airport_class = upper.class_for("airport").unwrap();
        // Weather/flight context → airport sense.
        let sense =
            disambiguate(&upper, "jfk", &ctx(&["temperature", "flight", "airport"])).unwrap();
        assert!(upper.is_a(sense, airport_class));
        // Even an empty context now prefers the DW-boosted sense.
        let sense = disambiguate(&upper, "jfk", &[]).unwrap();
        assert!(upper.is_a(sense, airport_class));
        // A strong presidential context still selects the person.
        let sense = disambiguate(
            &upper,
            "jfk",
            &ctx(&["president", "assassinated", "politician"]),
        )
        .unwrap();
        let person = upper.class_for("person").unwrap();
        assert!(upper.is_a(sense, person));
    }

    #[test]
    fn dw_prior_is_applied() {
        let mut o = upper_ontology();
        let c = o.add_concept(&["xyzzy"], "", OntoPos::Noun, ConceptKind::Instance);
        assert_eq!(o.prior(c), 0.0);
        o.annotate(c, "source", "dw");
        assert_eq!(o.prior(c), DW_PRIOR);
    }
}
