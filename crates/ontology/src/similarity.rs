//! Taxonomic similarity measures.
//!
//! WordNet-based QA systems routinely use path-based similarity for
//! semantic preference (the paper's Module 3 prefers "hyponyms of
//! country"). This module provides the standard measures over the
//! hypernym taxonomy: the **least common subsumer** (LCS), path length,
//! and **Wu–Palmer** similarity
//! `wup(a, b) = 2·depth(lcs) / (depth(a) + depth(b))`.

use crate::graph::{ConceptId, Ontology};
use std::collections::HashMap;

/// Depth of a concept: distance to its taxonomy root (a root has depth 0;
/// instances hop through `InstanceOf` first, like
/// [`Ontology::hypernym_path`]).
pub fn depth(ontology: &Ontology, id: ConceptId) -> usize {
    ontology.hypernym_path(id).len()
}

/// Ancestors of a concept with their distance from it (the concept itself
/// is included at distance 0 — every concept subsumes itself).
fn ancestors(ontology: &Ontology, id: ConceptId) -> HashMap<ConceptId, usize> {
    let mut out = HashMap::new();
    out.insert(id, 0);
    for (i, a) in ontology.hypernym_path(id).into_iter().enumerate() {
        out.entry(a).or_insert(i + 1);
    }
    out
}

/// The least common subsumer of two concepts, with the path distances
/// from each; `None` when they share no ancestor (different trees — e.g.
/// a noun and a verb, or a new-root concept).
pub fn least_common_subsumer(
    ontology: &Ontology,
    a: ConceptId,
    b: ConceptId,
) -> Option<(ConceptId, usize, usize)> {
    let anc_a = ancestors(ontology, a);
    let anc_b = ancestors(ontology, b);
    anc_a
        .iter()
        .filter_map(|(id, da)| anc_b.get(id).map(|db| (*id, *da, *db)))
        .min_by_key(|(_, da, db)| da + db)
}

/// Shortest path length between two concepts through their LCS; `None`
/// when unrelated.
pub fn path_length(ontology: &Ontology, a: ConceptId, b: ConceptId) -> Option<usize> {
    least_common_subsumer(ontology, a, b).map(|(_, da, db)| da + db)
}

/// Wu–Palmer similarity in `(0, 1]`; `None` when the concepts share no
/// subsumer. Identical concepts score 1.
pub fn wup_similarity(ontology: &Ontology, a: ConceptId, b: ConceptId) -> Option<f64> {
    let (lcs, _, _) = least_common_subsumer(ontology, a, b)?;
    let d_lcs = depth(ontology, lcs) as f64;
    let d_a = depth(ontology, a) as f64;
    let d_b = depth(ontology, b) as f64;
    if d_a + d_b == 0.0 {
        // Both are the same root (the LCS exists, so a == b == root).
        return Some(1.0);
    }
    Some(2.0 * d_lcs / (d_a + d_b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ConceptKind;
    use crate::upper::upper_ontology;

    fn class(o: &Ontology, label: &str) -> ConceptId {
        o.class_for(label)
            .unwrap_or_else(|| panic!("{label} missing"))
    }

    fn instance(o: &Ontology, label: &str) -> ConceptId {
        o.concepts_for(label)
            .iter()
            .copied()
            .find(|&id| o.concept(id).kind == ConceptKind::Instance)
            .unwrap_or_else(|| panic!("instance {label} missing"))
    }

    #[test]
    fn depth_increases_down_the_taxonomy() {
        let o = upper_ontology();
        let entity = class(&o, "entity");
        let artifact = class(&o, "artifact");
        let airport = class(&o, "airport");
        assert_eq!(depth(&o, entity), 0);
        assert_eq!(depth(&o, artifact), 1);
        assert!(depth(&o, airport) > depth(&o, artifact));
    }

    #[test]
    fn lcs_of_siblings_is_their_parent_region() {
        let o = upper_ontology();
        let city = class(&o, "city");
        let country = class(&o, "country");
        let (lcs, da, db) = least_common_subsumer(&o, city, country).unwrap();
        assert_eq!(o.concept(lcs).canonical(), "region");
        assert_eq!(da, 1);
        assert_eq!(db, 1);
        assert_eq!(path_length(&o, city, country), Some(2));
    }

    #[test]
    fn lcs_is_reflexive_and_symmetric() {
        let o = upper_ontology();
        let city = class(&o, "city");
        let airport = class(&o, "airport");
        assert_eq!(
            least_common_subsumer(&o, city, city).map(|(l, ..)| l),
            Some(city)
        );
        let ab = least_common_subsumer(&o, city, airport).map(|(l, ..)| l);
        let ba = least_common_subsumer(&o, airport, city).map(|(l, ..)| l);
        assert_eq!(ab, ba);
    }

    #[test]
    fn wup_orders_related_above_unrelated() {
        let o = upper_ontology();
        let city = class(&o, "city");
        let capital = class(&o, "capital");
        let airport = class(&o, "airport");
        let wup_city_capital = wup_similarity(&o, city, capital).unwrap();
        let wup_city_airport = wup_similarity(&o, city, airport).unwrap();
        assert!(wup_city_capital > wup_city_airport);
        assert_eq!(wup_similarity(&o, city, city), Some(1.0));
        for v in [wup_city_capital, wup_city_airport] {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn nouns_and_verbs_share_no_subsumer() {
        let o = upper_ontology();
        let city = class(&o, "city");
        let rain_verb = o
            .concepts_for("rain")
            .iter()
            .copied()
            .find(|&id| o.concept(id).pos == crate::graph::OntoPos::Verb)
            .unwrap();
        assert_eq!(least_common_subsumer(&o, city, rain_verb), None);
        assert_eq!(wup_similarity(&o, city, rain_verb), None);
        assert_eq!(path_length(&o, city, rain_verb), None);
    }

    #[test]
    fn instances_measure_through_their_class() {
        let o = upper_ontology();
        let bcn = instance(&o, "Barcelona");
        let madrid = instance(&o, "Madrid");
        // Barcelona is a city, Madrid a capital (city's child): LCS = city.
        let (lcs, ..) = least_common_subsumer(&o, bcn, madrid).unwrap();
        assert_eq!(o.concept(lcs).canonical(), "city");
        // Barcelona: depth 4 (city→region→location→entity); Madrid:
        // depth 5 (capital→city→…); LCS city at depth 3 → wup = 6/9.
        let sim = wup_similarity(&o, bcn, madrid).unwrap();
        assert!((sim - 2.0 / 3.0).abs() < 1e-9, "{sim}");
    }
}
