//! Step 1: the ad-hoc UML → ontology transformation.
//!
//! The paper compares two strategies — XMI/XSLT rule transformation vs. an
//! ad-hoc direct transformation of the class diagram — and picks the
//! second as simpler and computationally cheaper. We implement exactly
//! that: "the classes are converted into ontological concepts and the
//! relations are converted into relations between the concepts" (producing
//! the paper's Figure 2 for the Last Minute Sales model):
//!
//! * every fact class, dimension and hierarchy level becomes a noun
//!   concept, annotated with its UML origin;
//! * `«Rolls-upTo»` associations become part-of (meronym) relations — an
//!   airport is located in its city, a city in its state;
//! * fact ↔ dimension associations and fact ↦ measure attributes become
//!   `RelatedTo` edges with role annotations.

use crate::graph::{ConceptKind, OntoPos, Ontology, Relation};
use dwqa_mdmodel::Schema;

/// Transforms a multidimensional schema into its domain ontology.
pub fn schema_to_ontology(schema: &Schema) -> Ontology {
    let mut o = Ontology::new(&format!("{} ontology", schema.name()));

    // Dimensions and their levels.
    for dim in schema.dimensions() {
        for level in &dim.levels {
            // The dimension class and its base level often share a name
            // (dimension "Airport", level "Airport"); one concept suffices.
            if o.class_for(&level.name).is_none() {
                let id = o.add_concept(
                    &[&level.name],
                    &format!(
                        "level of the {} dimension, identified by {}",
                        dim.name, level.descriptor.name
                    ),
                    OntoPos::Noun,
                    ConceptKind::Class,
                );
                o.annotate(id, "uml", "level");
                o.annotate(id, "dimension", &dim.name);
                o.annotate(id, "descriptor", &level.descriptor.name);
                for a in &level.attributes {
                    o.annotate(id, "attribute", &a.name);
                }
            }
        }
        // A dimension named differently from all of its levels still
        // deserves a lexical entry: it aliases the base-level concept.
        if o.class_for(&dim.name).is_none() {
            let base = o
                .class_for(&dim.base_level().name)
                .expect("base level concept was just created");
            o.add_label(base, &dim.name);
        }
        // Roll-ups become part-of: a member of the child level belongs to
        // a member of the parent level.
        for (child, parent) in dim.rollups() {
            let c = o.class_for(&child.name).expect("level concept exists");
            let p = o.class_for(&parent.name).expect("level concept exists");
            o.relate(c, Relation::Meronym, p);
        }
    }

    // Facts, their measures and dimension roles.
    for fact in schema.facts() {
        let fid = o.add_concept(
            &[&fact.name],
            &format!("fact class recording {} events", fact.name.to_lowercase()),
            OntoPos::Noun,
            ConceptKind::Class,
        );
        o.annotate(fid, "uml", "fact");
        for m in &fact.measures {
            let mid = if let Some(existing) = o.class_for(&m.name) {
                existing
            } else {
                let id = o.add_concept(
                    &[&m.name],
                    &format!("measure of the {} fact", fact.name.to_lowercase()),
                    OntoPos::Noun,
                    ConceptKind::Class,
                );
                o.annotate(id, "uml", "measure");
                id
            };
            o.relate(fid, Relation::RelatedTo, mid);
        }
        for role in &fact.roles {
            let dim = schema.dimension_by_id(role.dimension);
            let base = o
                .class_for(&dim.base_level().name)
                .expect("dimension base concept exists");
            o.relate(fid, Relation::RelatedTo, base);
            o.annotate(fid, "role", &format!("{}={}", role.role, dim.name));
        }
    }

    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwqa_mdmodel::{last_minute_sales, patient_treatments};

    #[test]
    fn figure_2_concepts_exist() {
        let o = schema_to_ontology(&last_minute_sales());
        for label in [
            "Last Minute Sales",
            "Airport",
            "City",
            "State",
            "Country",
            "Customer",
            "Date",
            "Month",
            "Quarter",
            "Year",
            "price",
            "miles",
        ] {
            assert!(o.class_for(label).is_some(), "missing concept {label}");
        }
    }

    #[test]
    fn rollups_become_part_of() {
        let o = schema_to_ontology(&last_minute_sales());
        let airport = o.class_for("Airport").unwrap();
        let city = o.class_for("City").unwrap();
        let state = o.class_for("State").unwrap();
        assert_eq!(o.related(airport, Relation::Meronym), &[city]);
        assert_eq!(o.related(city, Relation::Meronym), &[state]);
        assert!(o.related(city, Relation::Holonym).contains(&airport));
    }

    #[test]
    fn fact_is_related_to_dimensions_and_measures() {
        let o = schema_to_ontology(&last_minute_sales());
        let fact = o.class_for("Last Minute Sales").unwrap();
        let related = o.related(fact, Relation::RelatedTo);
        for label in [
            "Airport",
            "Customer",
            "Date",
            "price",
            "miles",
            "traveler_rate",
        ] {
            let id = o.class_for(label).unwrap();
            assert!(related.contains(&id), "fact should relate to {label}");
        }
        // Role annotations keep the role names (Origin/Destination).
        let roles = o.annotation(fact, "role");
        assert!(roles.contains(&"Origin=Airport"));
        assert!(roles.contains(&"Destination=Airport"));
    }

    #[test]
    fn annotations_record_uml_origin() {
        let o = schema_to_ontology(&last_minute_sales());
        let city = o.class_for("City").unwrap();
        assert_eq!(o.annotation(city, "uml"), vec!["level"]);
        assert_eq!(o.annotation(city, "descriptor"), vec!["city_name"]);
        assert_eq!(o.annotation(city, "attribute"), vec!["population"]);
        let fact = o.class_for("Last Minute Sales").unwrap();
        assert_eq!(o.annotation(fact, "uml"), vec!["fact"]);
    }

    #[test]
    fn transform_is_schema_generic() {
        let o = schema_to_ontology(&patient_treatments());
        assert!(o.class_for("Treatments").is_some());
        assert!(o.class_for("Patient").is_some());
        assert!(o.class_for("Airport").is_none());
        let patient = o.class_for("Patient").unwrap();
        let age_group = o.class_for("AgeGroup").unwrap();
        assert_eq!(o.related(patient, Relation::Meronym), &[age_group]);
    }

    #[test]
    fn shared_level_names_are_not_duplicated() {
        // "Date" appears in both fixtures' Date dimension; within one
        // schema the dimension name and base level share one concept.
        let o = schema_to_ontology(&last_minute_sales());
        assert_eq!(o.concepts_for("Date").len(), 1);
    }
}
