//! The upper ontology: a from-scratch mini-WordNet.
//!
//! The paper merges its domain ontology into WordNet, "a lexical database
//! near to an upper ontology", using its "main level of ontological
//! concepts": 25 unique beginners for nouns and 15 for verbs. WordNet
//! itself cannot be shipped here, so this module builds a structurally
//! faithful miniature: the same 25 + 15 beginners, a few hundred synsets
//! covering the geography / aviation / weather / commerce vocabulary the
//! reproduction corpus uses, instances (including "Kennedy International
//! Airport", which the paper's Step 3 enriches with the synonym "JFK"),
//! and the ambiguous person readings ("JFK" the president, "La Guardia"
//! the politician) whose disambiguation the Step-2 enrichment experiment
//! measures.

use crate::graph::{ConceptKind, OntoPos, Ontology, Relation};

/// WordNet's 25 noun unique beginners (lexicographer files).
pub const NOUN_BEGINNERS: [&str; 25] = [
    "act",
    "animal",
    "artifact",
    "attribute",
    "body",
    "cognition",
    "communication",
    "event",
    "feeling",
    "food",
    "group",
    "location",
    "motive",
    "object",
    "person",
    "phenomenon",
    "plant",
    "possession",
    "process",
    "quantity",
    "relation",
    "shape",
    "state",
    "substance",
    "time",
];

/// WordNet's 15 verb unique beginners.
pub const VERB_BEGINNERS: [&str; 15] = [
    "body",
    "change",
    "cognition",
    "communication",
    "competition",
    "consumption",
    "contact",
    "creation",
    "emotion",
    "motion",
    "perception",
    "possession",
    "social",
    "stative",
    "weather",
];

/// Noun synsets below the beginners: `(labels, gloss, parent label)`.
/// Parents must appear earlier in the table (or be a beginner).
const NOUN_SYNSETS: &[(&[&str], &str, &str)] = &[
    // --- Geography -------------------------------------------------------
    (&["region"], "a large area of land", "location"),
    (&["country", "nation"], "a politically organized territory with its own government", "region"),
    (&["state", "province"], "an administrative district of a country", "region"),
    (&["city", "metropolis"], "a large urban settlement where people live and work", "region"),
    (&["capital"], "the city that is the seat of government of a country", "city"),
    (&["town"], "an urban area smaller than a city", "region"),
    (&["continent"], "one of the large landmasses of the earth", "region"),
    (&["coast", "shore"], "the land along the edge of a sea", "location"),
    // --- Artifacts / aviation ---------------------------------------------
    (&["structure", "construction"], "a thing constructed from parts", "artifact"),
    (&["building"], "a structure with a roof and walls", "structure"),
    (&["facility"], "a building or place that provides a service", "structure"),
    (&["airport", "airfield", "aerodrome"], "an airfield with terminals where passenger flights land and depart", "facility"),
    (&["terminal"], "a building at an airport where passengers board flights", "building"),
    (&["runway"], "a strip where aircraft take off and land", "facility"),
    (&["vehicle"], "a conveyance that transports people or goods", "artifact"),
    (&["aircraft", "airplane", "plane"], "a vehicle that can fly", "vehicle"),
    (&["instrument", "device"], "a tool made for a purpose", "artifact"),
    (&["thermometer"], "an instrument that measures temperature", "instrument"),
    (&["document"], "a writing that provides information", "artifact"),
    (&["web page", "page"], "a document on the world wide web", "document"),
    (&["report"], "a document describing findings", "document"),
    (&["email"], "an electronic message document", "document"),
    (&["ticket"], "a document entitling the holder to travel or entry", "document"),
    (&["database"], "an organized collection of data", "artifact"),
    (&["data warehouse", "warehouse"], "a database that integrates historical data for analysis", "database"),
    // --- People ------------------------------------------------------------
    (&["professional"], "a person engaged in an occupation", "person"),
    (&["politician"], "a person active in government and politics", "professional"),
    (&["president"], "the politician who heads a republic", "politician"),
    (&["mayor"], "the politician who heads a city government", "politician"),
    (&["musician"], "a person who plays music", "professional"),
    (&["traveler", "traveller", "passenger"], "a person who travels, for example on a flight", "person"),
    (&["customer", "client"], "a person who buys goods or services", "person"),
    (&["pilot"], "a professional who flies aircraft", "professional"),
    (&["profession", "occupation"], "the principal activity a person does to earn money", "act"),
    // --- Groups / organizations ---------------------------------------------
    (&["organization", "organisation"], "a group of people with a purpose", "group"),
    (&["company", "firm"], "a business organization", "organization"),
    (&["airline", "carrier"], "a company that operates passenger flights between airports", "company"),
    (&["band", "musical group"], "a group of musicians who play together", "group"),
    (&["government"], "the organization that governs a state", "organization"),
    // --- Acts / events / commerce -------------------------------------------
    (&["transaction"], "an act of buying, selling or exchanging", "act"),
    (&["sale"], "a transaction in which goods are exchanged for money", "transaction"),
    (&["purchase"], "a transaction in which something is bought", "transaction"),
    (&["promotion"], "an act of publicizing goods to increase sales", "act"),
    (&["travel", "trip", "journey"], "the act of going from one place to another", "act"),
    (&["flight"], "a trip on an aircraft between airports", "travel"),
    (&["analysis"], "the act of studying something carefully", "act"),
    (&["decision"], "the act of making up your mind", "act"),
    (&["invasion"], "the event of an army entering a country by force", "event"),
    (&["storm"], "a violent weather event with wind and rain", "event"),
    // --- Attributes / quantities ----------------------------------------------
    (&["property", "quality"], "an attribute of a thing", "attribute"),
    (&["temperature"], "the degree of hotness or coldness of the weather or a body, measured in degrees celsius or fahrenheit", "property"),
    (&["humidity"], "the amount of water vapour in the air", "property"),
    (&["price", "cost"], "the quantity of money required to buy something", "possession"),
    (&["fare"], "the price charged to transport a passenger", "price"),
    (&["money"], "a medium of exchange", "possession"),
    (&["measure", "quantity unit"], "a quantity ascertained by measurement", "quantity"),
    (&["degree"], "a unit on a temperature scale such as celsius or fahrenheit", "measure"),
    (&["percentage", "percent"], "a proportion expressed per hundred", "quantity"),
    (&["rate"], "a quantity considered relative to another quantity", "quantity"),
    (&["number"], "a mathematical quantity", "quantity"),
    (&["mile"], "a unit of length used for flight distances", "measure"),
    (&["distance"], "the amount of space between places", "quantity"),
    // --- Phenomena (weather) -----------------------------------------------------
    (&["natural phenomenon"], "a phenomenon arising in nature", "phenomenon"),
    (&["atmospheric phenomenon", "weather", "weather condition"], "the state of the atmosphere: temperature, wind, clouds and precipitation", "natural phenomenon"),
    (&["precipitation"], "weather in which water falls from the sky", "atmospheric phenomenon"),
    (&["rain"], "precipitation of liquid water drops", "precipitation"),
    (&["snow"], "precipitation of ice crystals", "precipitation"),
    (&["wind"], "air moving across the surface of the earth", "atmospheric phenomenon"),
    (&["fog"], "droplets suspended near the ground reducing visibility", "atmospheric phenomenon"),
    (&["cloud"], "visible condensed water vapour in the sky", "atmospheric phenomenon"),
    (&["sunshine"], "the light and heat of the sun in clear weather", "atmospheric phenomenon"),
    (&["sky"], "the apparent dome over the earth where weather is seen", "natural phenomenon"),
    // --- Cognition / communication -------------------------------------------------
    (&["information"], "knowledge communicated about facts", "cognition"),
    (&["question", "query"], "a sentence that asks for information", "communication"),
    (&["answer", "reply"], "a statement made in response to a question", "communication"),
    (&["definition"], "a statement of the meaning of a word", "communication"),
    (&["abbreviation", "acronym"], "a shortened form of a word or phrase", "communication"),
    (&["name"], "a word by which an entity is known", "communication"),
    (&["forecast", "prediction"], "a statement about what will happen, for example about the weather", "communication"),
    // --- Time ------------------------------------------------------------------------
    (&["time period", "period"], "an amount of time", "time"),
    (&["season"], "a quarter of the year with characteristic weather", "time period"),
    (&["winter"], "the coldest season of the year", "season"),
    (&["summer"], "the warmest season of the year", "season"),
    (&["spring"], "the season between winter and summer", "season"),
    (&["autumn", "fall season"], "the season between summer and winter", "season"),
    (&["year"], "a period of twelve months", "time period"),
    (&["quarter"], "a period of three months", "time period"),
    (&["month"], "one of the twelve divisions of a year", "time period"),
    (&["week"], "a period of seven days", "time period"),
    (&["day", "date"], "a single day of the calendar, such as january 31 2004", "time period"),
    (&["morning"], "the early part of the day", "time period"),
    (&["night"], "the dark part of the day", "time period"),
    // --- Medical (the paper's other fact example: "treatments of patients") --
    (&["hospital"], "a facility where patients receive medical treatment", "facility"),
    (&["doctor", "physician"], "a professional licensed to practice medicine", "professional"),
    (&["nurse"], "a professional who cares for patients", "professional"),
    (&["patient"], "a person receiving medical treatment", "person"),
    (&["treatment", "therapy"], "the act of caring for a patient medically", "act"),
    (&["surgery", "operation"], "a medical treatment performed by cutting", "treatment"),
    (&["medicine", "drug"], "a substance used to treat disease", "substance"),
    (&["disease", "illness"], "an impairment of health", "state"),
    (&["specialty", "speciality"], "a branch of medicine a doctor focuses on", "cognition"),
    (&["diagnosis"], "the identification of a disease from its signs", "cognition"),
    // --- Objects (celestial, for the paper's Sirius example) -----------------------------
    (&["celestial body", "heavenly body"], "a natural object visible in the sky", "object"),
    (&["star"], "a celestial body that shines by its own light, visible at night", "celestial body"),
    (&["sun"], "the star that the earth orbits", "star"),
    (&["universe", "cosmos"], "everything that exists anywhere", "object"),
];

// Month and weekday instances live under "month" / "day".

/// Noun instances: `(labels, gloss, class, aliases)`.
/// Aliases are recorded as annotations; the merge's synonym-enrichment step
/// consults them (WordNet likewise listed "JFK" under Kennedy International
/// Airport).
const NOUN_INSTANCES: &[(&[&str], &str, &str, &[&str])] = &[
    (
        &["Spain"],
        "a country in southwestern europe",
        "country",
        &[],
    ),
    (&["France"], "a country in western europe", "country", &[]),
    (
        &["United States", "USA"],
        "a country in north america",
        "country",
        &["US"],
    ),
    (&["Iraq"], "a country in the middle east", "country", &[]),
    (
        &["Kuwait"],
        "a country on the persian gulf invaded by iraq in 1990",
        "country",
        &[],
    ),
    (
        &["Catalonia"],
        "an autonomous region of spain",
        "state",
        &[],
    ),
    (
        &["New York State"],
        "a state of the united states",
        "state",
        &[],
    ),
    (
        &["California"],
        "a state of the united states on the pacific coast",
        "state",
        &[],
    ),
    (
        &["Barcelona"],
        "a city in catalonia spain on the mediterranean coast",
        "city",
        &[],
    ),
    (&["Madrid"], "the capital city of spain", "capital", &[]),
    (
        &["New York", "New York City"],
        "the largest city of the united states",
        "city",
        &["NYC"],
    ),
    (&["Paris"], "the capital city of france", "capital", &[]),
    (
        &["London"],
        "the capital city of the united kingdom",
        "capital",
        &[],
    ),
    (&["Costa Mesa"], "a city in california", "city", &[]),
    (&["Alicante"], "a city in southeastern spain", "city", &[]),
    (
        &["Kennedy International Airport", "Kennedy Airport"],
        "the major international airport of new york city",
        "airport",
        &["JFK"],
    ),
    (
        &["JFK", "John Fitzgerald Kennedy", "John F. Kennedy"],
        "the american president assassinated in 1963, a politician and person",
        "president",
        &[],
    ),
    (
        &["La Guardia", "Fiorello La Guardia"],
        "the american politician who was mayor of new york city, a person",
        "mayor",
        &[],
    ),
    (
        &["JFK", "JFK Band"],
        "a spanish musical group of musicians",
        "band",
        &[],
    ),
    (
        &["Sirius", "Dog Star"],
        "the brightest star visible in the night sky",
        "star",
        &[],
    ),
    (
        &["Kennedy Airport Terminal 4"],
        "a terminal of kennedy international airport",
        "terminal",
        &[],
    ),
];

/// Verb synsets: `(labels, gloss, beginner)`.
const VERB_SYNSETS: &[(&[&str], &str, &str)] = &[
    (&["be", "exist"], "have the quality of being", "stative"),
    (&["remain", "stay"], "continue in a state", "stative"),
    (&["rain"], "precipitate as liquid water", "weather"),
    (&["snow"], "precipitate as ice crystals", "weather"),
    (
        &["shine"],
        "emit light, as the sun in clear weather",
        "weather",
    ),
    (&["blow"], "move, as the wind", "weather"),
    (&["freeze"], "change to ice in cold weather", "weather"),
    (
        &["fly", "travel by air"],
        "move through the air, as on a flight",
        "motion",
    ),
    (
        &["travel", "go"],
        "move from one place to another",
        "motion",
    ),
    (&["arrive", "land"], "reach a destination", "motion"),
    (&["depart", "leave"], "go away from a place", "motion"),
    (&["rise", "climb"], "move or increase upward", "motion"),
    (&["fall", "drop"], "move or decrease downward", "motion"),
    (
        &["buy", "purchase"],
        "obtain in exchange for money",
        "possession",
    ),
    (&["sell"], "exchange goods for money", "possession"),
    (&["pay"], "give money in exchange for goods", "possession"),
    (&["cost"], "require a payment of", "possession"),
    (
        &["increase", "grow"],
        "become greater in size or amount",
        "change",
    ),
    (
        &["decrease", "diminish"],
        "become smaller in size or amount",
        "change",
    ),
    (&["change", "alter"], "become different", "change"),
    (&["warm"], "become warmer in temperature", "change"),
    (&["cool"], "become cooler in temperature", "change"),
    (&["ask", "inquire"], "put a question to", "communication"),
    (
        &["answer", "reply"],
        "respond to a question",
        "communication",
    ),
    (&["report"], "announce information", "communication"),
    (
        &["forecast", "predict"],
        "state what will happen, for example about the weather",
        "communication",
    ),
    (&["know"], "have knowledge of", "cognition"),
    (&["analyze", "study"], "consider in detail", "cognition"),
    (&["decide"], "reach a decision", "cognition"),
    (
        &["invade"],
        "march aggressively into another country",
        "social",
    ),
    (&["visit"], "go to see a place or person", "social"),
    (&["see", "perceive"], "perceive by sight", "perception"),
    (
        &["measure"],
        "determine the size or degree of",
        "perception",
    ),
];

/// Builds the mini-WordNet upper ontology.
pub fn upper_ontology() -> Ontology {
    let mut o = Ontology::new("mini-wordnet");
    // Root and noun beginners.
    let entity = o.add_concept(
        &["entity"],
        "that which is perceived or known to have its own existence",
        OntoPos::Noun,
        ConceptKind::Class,
    );
    for b in NOUN_BEGINNERS {
        let id = o.add_concept(
            &[b],
            &format!("wordnet noun unique beginner: {b}"),
            OntoPos::Noun,
            ConceptKind::Class,
        );
        o.relate(id, Relation::Hypernym, entity);
    }
    // Noun synsets (parents appear earlier).
    for (labels, gloss, parent) in NOUN_SYNSETS {
        let parent_id = o
            .class_for(parent)
            .unwrap_or_else(|| panic!("upper ontology: parent {parent:?} not yet defined"));
        let id = o.add_concept(labels, gloss, OntoPos::Noun, ConceptKind::Class);
        o.relate(id, Relation::Hypernym, parent_id);
    }
    // Month and weekday instances.
    let month = o.class_for("month").expect("month synset exists");
    for m in dwqa_common::Month::ALL {
        let id = o.add_concept(
            &[m.name()],
            &format!("the month of {}", m.name().to_ascii_lowercase()),
            OntoPos::Noun,
            ConceptKind::Instance,
        );
        o.relate(id, Relation::InstanceOf, month);
    }
    let day = o.class_for("day").expect("day synset exists");
    for d in dwqa_common::Weekday::ALL {
        let id = o.add_concept(
            &[d.name()],
            &format!("the day of the week {}", d.name().to_ascii_lowercase()),
            OntoPos::Noun,
            ConceptKind::Instance,
        );
        o.relate(id, Relation::InstanceOf, day);
    }
    // Named instances with aliases.
    for (labels, gloss, class, aliases) in NOUN_INSTANCES {
        let class_id = o
            .class_for(class)
            .unwrap_or_else(|| panic!("upper ontology: class {class:?} not yet defined"));
        let id = o.add_concept(labels, gloss, OntoPos::Noun, ConceptKind::Instance);
        o.relate(id, Relation::InstanceOf, class_id);
        for alias in *aliases {
            o.annotate(id, "alias", alias);
        }
    }
    // Geographic part-of structure (used by "the city of that airport").
    for (part, whole) in [
        ("Kennedy International Airport", "New York"),
        ("Barcelona", "Catalonia"),
        ("Catalonia", "Spain"),
        ("Madrid", "Spain"),
        ("Alicante", "Spain"),
        ("New York", "New York State"),
        ("Costa Mesa", "California"),
    ] {
        let p = first_instance(&o, part);
        let w = first_instance(&o, whole);
        o.relate(p, Relation::Meronym, w);
    }
    // Verb beginners (separate roots, as in WordNet) and verb synsets.
    for b in VERB_BEGINNERS {
        let labels = format!("{b} (verb)");
        let id = o.add_concept(
            &[&labels],
            &format!("wordnet verb unique beginner: {b}"),
            OntoPos::Verb,
            ConceptKind::Class,
        );
        o.annotate(id, "beginner", b);
    }
    for (labels, gloss, beginner) in VERB_SYNSETS {
        let parent = o
            .concepts_for(&format!("{beginner} (verb)"))
            .first()
            .copied()
            .unwrap_or_else(|| panic!("verb beginner {beginner:?} missing"));
        let id = o.add_concept(labels, gloss, OntoPos::Verb, ConceptKind::Class);
        o.relate(id, Relation::Hypernym, parent);
    }
    // A couple of antonym pairs exercise the symmetric relation.
    for (a, b) in [
        ("increase", "decrease"),
        ("arrive", "depart"),
        ("buy", "sell"),
    ] {
        let ca = verb_class(&o, a);
        let cb = verb_class(&o, b);
        o.relate(ca, Relation::Antonym, cb);
    }
    o
}

fn first_instance(o: &Ontology, label: &str) -> crate::graph::ConceptId {
    o.concepts_for(label)
        .iter()
        .copied()
        .find(|id| o.concept(*id).kind == ConceptKind::Instance)
        .unwrap_or_else(|| panic!("instance {label:?} missing from upper ontology"))
}

fn verb_class(o: &Ontology, label: &str) -> crate::graph::ConceptId {
    o.concepts_for(label)
        .iter()
        .copied()
        .find(|id| o.concept(*id).pos == OntoPos::Verb)
        .unwrap_or_else(|| panic!("verb {label:?} missing from upper ontology"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beginners_are_present_and_rooted() {
        let o = upper_ontology();
        let entity = o.class_for("entity").unwrap();
        for b in NOUN_BEGINNERS {
            let id = o.class_for(b).expect(b);
            assert!(o.is_a(id, entity), "{b} should be under entity");
        }
        // 15 verb beginners are roots of their own trees.
        let verb_roots: Vec<_> = o
            .roots()
            .into_iter()
            .filter(|id| o.concept(*id).pos == OntoPos::Verb)
            .collect();
        assert_eq!(verb_roots.len(), VERB_BEGINNERS.len());
    }

    #[test]
    fn domain_chains_exist() {
        let o = upper_ontology();
        let airport = o.class_for("airport").unwrap();
        let facility = o.class_for("facility").unwrap();
        let artifact = o.class_for("artifact").unwrap();
        assert!(o.is_a(airport, facility));
        assert!(o.is_a(airport, artifact));
        let temperature = o.class_for("temperature").unwrap();
        let attribute = o.class_for("attribute").unwrap();
        assert!(o.is_a(temperature, attribute));
    }

    #[test]
    fn kennedy_airport_has_jfk_alias() {
        let o = upper_ontology();
        let k = first_instance(&o, "Kennedy International Airport");
        assert_eq!(o.annotation(k, "alias"), vec!["JFK"]);
        let airport = o.class_for("airport").unwrap();
        assert!(o.is_a(k, airport));
    }

    #[test]
    fn jfk_is_ambiguous_before_enrichment() {
        let o = upper_ontology();
        let senses = o.concepts_for("JFK");
        // The president and the musical group — but *not* the airport
        // (the airport synset is "Kennedy International Airport").
        assert_eq!(senses.len(), 2);
        let airport = o.class_for("airport").unwrap();
        assert!(senses.iter().all(|s| !o.is_a(*s, airport)));
    }

    #[test]
    fn la_guardia_is_a_person_not_an_airport() {
        let o = upper_ontology();
        let lg = first_instance(&o, "La Guardia");
        let person = o.class_for("person").unwrap();
        assert!(o.is_a(lg, person));
    }

    #[test]
    fn months_and_weekdays_are_instances() {
        let o = upper_ontology();
        let january = first_instance(&o, "January");
        let month = o.class_for("month").unwrap();
        assert!(o.is_a(january, month));
        let monday = first_instance(&o, "Monday");
        let day = o.class_for("day").unwrap();
        assert!(o.is_a(monday, day));
    }

    #[test]
    fn meronymy_links_geography() {
        let o = upper_ontology();
        let bcn = first_instance(&o, "Barcelona");
        let cat = first_instance(&o, "Catalonia");
        assert_eq!(o.related(bcn, Relation::Meronym), &[cat]);
        assert!(o.related(cat, Relation::Holonym).contains(&bcn));
    }

    #[test]
    fn antonyms_are_symmetric() {
        let o = upper_ontology();
        let inc = verb_class(&o, "increase");
        let dec = verb_class(&o, "decrease");
        assert!(o.related(inc, Relation::Antonym).contains(&dec));
        assert!(o.related(dec, Relation::Antonym).contains(&inc));
    }

    #[test]
    fn ontology_is_reasonably_sized() {
        let o = upper_ontology();
        assert!(o.len() > 150, "got {}", o.len());
        assert!(o.count_kind(ConceptKind::Instance) > 30);
    }

    #[test]
    fn sirius_supports_the_papers_qa_example() {
        let o = upper_ontology();
        let sirius = first_instance(&o, "Sirius");
        let star = o.class_for("star").unwrap();
        assert!(o.is_a(sirius, star));
        assert!(o.concept(sirius).gloss.contains("brightest"));
    }
}
