//! The AliQAn facade: indexation + the three search-phase modules.

use crate::analysis::{analyze_question, QuestionAnalysis};
use crate::extraction::{extract_answers, Answer};
use crate::index::QaIndex;
use crate::patterns::{default_patterns, QuestionPattern};
use dwqa_common::ConfigError;
use dwqa_ir::{DocumentStore, Passage, PassageRetriever};
use dwqa_nlp::{analyze_sentence, render_annotated, Lexicon};
use dwqa_ontology::Ontology;

/// Configuration of an AliQAn instance.
///
/// Construct with [`AliQAnConfig::builder`]; the struct is
/// `#[non_exhaustive]` so new knobs can be added without breaking
/// downstream crates.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct AliQAnConfig {
    /// IR-n passage window in sentences (paper: 8).
    pub passage_window: usize,
    /// Passages Module 2 hands to Module 3.
    pub passages_k: usize,
    /// Answers returned per question.
    pub answers_k: usize,
    /// Worker threads for the indexation phase.
    pub index_threads: usize,
}

impl Default for AliQAnConfig {
    fn default() -> AliQAnConfig {
        AliQAnConfig {
            passage_window: PassageRetriever::DEFAULT_WINDOW,
            passages_k: 5,
            answers_k: 5,
            index_threads: 1,
        }
    }
}

impl AliQAnConfig {
    /// Starts a builder pre-loaded with the defaults.
    pub fn builder() -> AliQAnConfigBuilder {
        AliQAnConfigBuilder {
            config: AliQAnConfig::default(),
        }
    }

    /// Checks every knob's range (the workspace builder convention:
    /// validation happens once at `build()`, not at first use).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.passage_window == 0 {
            return Err(ConfigError::new(
                "passage_window",
                "must be at least 1 sentence (got 0)",
            ));
        }
        if self.passages_k == 0 {
            return Err(ConfigError::new(
                "passages_k",
                "must hand at least 1 passage to Module 3 (got 0)",
            ));
        }
        if self.answers_k == 0 {
            return Err(ConfigError::new(
                "answers_k",
                "must return at least 1 answer (got 0)",
            ));
        }
        if self.index_threads == 0 {
            return Err(ConfigError::new(
                "index_threads",
                "must use at least 1 indexation thread (got 0)",
            ));
        }
        Ok(())
    }
}

/// Builder for [`AliQAnConfig`].
///
/// ```
/// use dwqa_qa::AliQAnConfig;
/// let config = AliQAnConfig::builder()
///     .passage_window(4)
///     .answers_k(3)
///     .build()
///     .unwrap();
/// assert_eq!(config.passage_window, 4);
/// assert_eq!(config.answers_k, 3);
/// assert!(AliQAnConfig::builder().passage_window(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct AliQAnConfigBuilder {
    config: AliQAnConfig,
}

impl AliQAnConfigBuilder {
    /// Sets the IR-n passage window in sentences.
    pub fn passage_window(mut self, sentences: usize) -> Self {
        self.config.passage_window = sentences;
        self
    }

    /// Sets how many passages Module 2 hands to Module 3.
    pub fn passages_k(mut self, k: usize) -> Self {
        self.config.passages_k = k;
        self
    }

    /// Sets how many answers are returned per question.
    pub fn answers_k(mut self, k: usize) -> Self {
        self.config.answers_k = k;
        self
    }

    /// Sets the worker-thread count for the indexation phase.
    pub fn index_threads(mut self, threads: usize) -> Self {
        self.config.index_threads = threads;
        self
    }

    /// Finishes the builder, validating every knob's range.
    pub fn build(self) -> Result<AliQAnConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// The QA system: lexicon, ontology, pattern bank and an indexed corpus.
pub struct AliQAn {
    lexicon: Lexicon,
    ontology: Ontology,
    patterns: Vec<QuestionPattern>,
    config: AliQAnConfig,
    index: Option<QaIndex>,
    store: Option<DocumentStore>,
}

/// A full pipeline trace — the rows of the paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineTrace {
    /// Row 1: the query.
    pub query: String,
    /// Row 2: syntactic-morphologic analysis of the query.
    pub query_analysis: String,
    /// Row 3: the matched question pattern.
    pub question_pattern: String,
    /// Row 4: the expected answer type.
    pub expected_answer_type: String,
    /// Row 5: main SBs passed to the IR-n passage retrieval system.
    pub main_sbs: Vec<String>,
    /// Row 6: the passage returned by the IR-n system.
    pub passage: String,
    /// Row 7: syntactic-morphologic analysis of the passage.
    pub passage_analysis: String,
    /// Row 8: the extracted answer(s).
    pub extracted_answers: Vec<String>,
}

impl PipelineTrace {
    /// Renders the trace as the two-column table of the paper.
    pub fn render(&self) -> String {
        let mut rows: Vec<(&str, String)> = vec![
            ("Query", self.query.clone()),
            (
                "Syntactic-morphologic analysis of the query",
                self.query_analysis.clone(),
            ),
            ("Question pattern", self.question_pattern.clone()),
            ("Expected answer type", self.expected_answer_type.clone()),
            (
                "Main SBs passed to the IR-n passage retrieval system",
                self.main_sbs
                    .iter()
                    .map(|s| format!("[{s}]"))
                    .collect::<Vec<_>>()
                    .join("  "),
            ),
            ("Passage returned by the IR-n system", self.passage.clone()),
            (
                "Syntactic-morphologic analysis of the passage",
                self.passage_analysis.clone(),
            ),
            ("Extracted answer", self.extracted_answers.join(", ")),
        ];
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        rows.iter_mut()
            .map(|(k, v)| format!("{k:<width$} | {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl AliQAn {
    /// Creates a system with the default pattern bank over the given
    /// ontology (typically the merged upper ontology).
    pub fn new(ontology: Ontology, config: AliQAnConfig) -> AliQAn {
        AliQAn {
            lexicon: Lexicon::english(),
            ontology,
            patterns: default_patterns(),
            config,
            index: None,
            store: None,
        }
    }

    /// Step 4: registers an additional (tuned) question pattern.
    pub fn tune(&mut self, pattern: QuestionPattern) {
        self.patterns.push(pattern);
    }

    /// The ontology in use.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Mutable access to the ontology (Step 4 attaches axioms).
    pub fn ontology_mut(&mut self) -> &mut Ontology {
        &mut self.ontology
    }

    /// The lexicon in use.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// The indexed corpus, if [`AliQAn::index_corpus`] has run. Document
    /// acquisition layers use it to resolve passage documents to URLs.
    pub fn store(&self) -> Option<&DocumentStore> {
        self.store.as_ref()
    }

    /// Runs the indexation phase over a corpus.
    pub fn index_corpus(&mut self, store: DocumentStore) {
        let index = QaIndex::build_with_threads(
            &self.lexicon,
            &store,
            self.config.passage_window,
            self.config.index_threads,
        );
        self.index = Some(index);
        self.store = Some(store);
    }

    fn indexed(&self) -> (&QaIndex, &DocumentStore) {
        (
            self.index.as_ref().expect("index_corpus must run first"),
            self.store.as_ref().expect("index_corpus must run first"),
        )
    }

    /// Module 1 on its own.
    pub fn analyze(&self, question: &str) -> QuestionAnalysis {
        analyze_question(&self.lexicon, &self.ontology, &self.patterns, question)
    }

    /// Module 2 on its own. If the main SBs alone retrieve nothing, the
    /// focus noun joins the query as a fallback (the paper\'s "semantic
    /// preference": hyponyms of the focus are likelier near its name).
    /// The query is compiled once against the retriever's interned
    /// vocabulary — no term strings are cloned. Index-pruning counters
    /// (candidate/pruned documents, windows scored) are recorded by the
    /// retrieval itself as `retrieve` span fields and `retrieval.*`
    /// registry counters (see `dwqa-obs`), so nothing is hand-threaded
    /// back to the caller.
    pub fn passages(&self, analysis: &QuestionAnalysis) -> Vec<Passage> {
        let (index, _) = self.indexed();
        let query = index
            .passages
            .compile_query(&index.ir_index, analysis.weighted_term_refs());
        let (passages, _) = index
            .passages
            .retrieve_query(&query, self.config.passages_k);
        if !passages.is_empty() {
            return passages;
        }
        let Some(focus) = &analysis.focus else {
            return passages;
        };
        let query = index.passages.compile_query(
            &index.ir_index,
            analysis
                .weighted_term_refs()
                .chain(std::iter::once((focus.as_str(), 1.0))),
        );
        index
            .passages
            .retrieve_query(&query, self.config.passages_k)
            .0
    }

    /// Module 3 on its own: extracts typed answers from the passages.
    pub fn extract(&self, analysis: &QuestionAnalysis, passages: &[Passage]) -> Vec<Answer> {
        let (index, store) = self.indexed();
        extract_answers(
            analysis,
            index,
            store,
            &self.ontology,
            passages,
            self.config.answers_k,
        )
    }

    /// The full search phase: analyse → select passages → extract.
    pub fn answer(&self, question: &str) -> Vec<Answer> {
        let analysis = self.analyze(question);
        let passages = self.passages(&analysis);
        self.extract(&analysis, &passages)
    }

    /// Runs the pipeline and records every intermediate artefact — the
    /// regeneration of the paper's Table 1.
    pub fn trace(&self, question: &str) -> PipelineTrace {
        let analysis = self.analyze(question);
        let passages = self.passages(&analysis);
        let answers = self.extract(&analysis, &passages);
        let query_analysis = render_annotated(&analysis.sentence.tokens, &analysis.sentence.blocks);
        let (passage_text, passage_analysis) = match passages.first() {
            Some(p) => {
                let rendered = p
                    .sentences
                    .iter()
                    .map(|s| {
                        let a = analyze_sentence(&self.lexicon, s);
                        render_annotated(&a.tokens, &a.blocks)
                    })
                    .collect::<Vec<_>>()
                    .join(" ");
                (p.text(), rendered)
            }
            None => (String::new(), String::new()),
        };
        PipelineTrace {
            query: analysis.question.clone(),
            query_analysis,
            question_pattern: analysis.pattern_description.clone(),
            expected_answer_type: analysis.answer_type.expectation().to_owned(),
            main_sbs: analysis.main_sbs.iter().map(|s| s.text.clone()).collect(),
            passage: passage_text,
            passage_analysis,
            extracted_answers: answers.iter().map(Answer::tuple_format).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::temperature_pattern;
    use dwqa_ir::{DocFormat, Document};
    use dwqa_ontology::upper_ontology;

    fn system() -> AliQAn {
        let mut ontology = upper_ontology();
        let airport = ontology.class_for("airport").unwrap();
        let bcn = ontology.concepts_for("Barcelona")[0];
        let el_prat = ontology.add_concept(
            &["El Prat"],
            "an airport from the data warehouse",
            dwqa_ontology::OntoPos::Noun,
            dwqa_ontology::ConceptKind::Instance,
        );
        ontology.relate(el_prat, dwqa_ontology::Relation::InstanceOf, airport);
        ontology.relate(el_prat, dwqa_ontology::Relation::Meronym, bcn);
        let mut qa = AliQAn::new(ontology, AliQAnConfig::default());
        qa.tune(temperature_pattern());
        let mut store = DocumentStore::new();
        store.add(Document::new(
            "http://www.barcelona-tourist-guide.com/en/weather/weather-january.html",
            DocFormat::Plain,
            "",
            "Saturday, January 31, 2004\n\
             Barcelona Weather: Temperature 8º C around 46.4 F Clear skies today",
        ));
        qa.index_corpus(store);
        qa
    }

    #[test]
    fn end_to_end_answer() {
        let qa = system();
        let answers = qa.answer("What is the weather like in January of 2004 in El Prat?");
        assert!(!answers.is_empty());
        assert!(answers[0].tuple_format().contains("8ºC"));
    }

    #[test]
    fn trace_regenerates_table_1_rows() {
        let qa = system();
        let trace = qa.trace("What is the weather like in January of 2004 in El Prat?");
        assert!(trace.query_analysis.contains("What WP what"));
        assert!(trace.query_analysis.contains("weather NN weather"));
        assert!(trace.query_analysis.contains("El NP el"));
        assert_eq!(
            trace.question_pattern,
            "[WHAT | HOW] [to be] [synonym of weather | temperature] …"
        );
        assert_eq!(trace.expected_answer_type, "Number + [ºC | F]");
        assert!(trace.main_sbs.iter().any(|s| s == "El Prat"));
        assert!(trace.main_sbs.iter().any(|s| s == "Barcelona"));
        assert!(trace.passage.contains("Temperature 8º C"));
        assert!(trace.passage_analysis.contains("Barcelona NP barcelona"));
        assert!(!trace.extracted_answers.is_empty());
        assert!(trace.extracted_answers[0].contains("8ºC"));
        assert!(trace.extracted_answers[0].contains("Barcelona"));
        // The rendered table mentions every row header.
        let rendered = trace.render();
        assert!(rendered.contains("Question pattern"));
        assert!(rendered.contains("Expected answer type"));
        assert!(rendered.contains("Extracted answer"));
    }

    #[test]
    fn tuning_changes_the_matched_pattern() {
        let mut ontology = upper_ontology();
        let _ = &mut ontology;
        let mut qa = AliQAn::new(upper_ontology(), AliQAnConfig::default());
        let mut store = DocumentStore::new();
        store.add(Document::new("u", DocFormat::Plain, "", "x"));
        qa.index_corpus(store);
        let before = qa.analyze("What is the temperature in Barcelona?");
        assert_ne!(before.pattern_name, "weather-temperature");
        qa.tune(temperature_pattern());
        let after = qa.analyze("What is the temperature in Barcelona?");
        assert_eq!(after.pattern_name, "weather-temperature");
    }
}
